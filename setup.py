"""Setuptools shim.

Kept so ``pip install -e .`` works on minimal offline environments
where the ``wheel`` package (required by the PEP 660 editable path)
is unavailable; all real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
