#!/usr/bin/env python3
"""BIST plus compressed deterministic top-up.

The paper's introduction frames the design space: BIST covers what
pseudo-random patterns can reach, but custom IP needs deterministic
patterns — and those are what the ATE must download, so *they* are what
the LZW scheme compresses.  This script runs that exact hybrid flow:

1. an on-chip PRPG (LFSR) applies pseudo-random patterns; the
   bit-parallel fault simulator measures what they catch;
2. PODEM generates cubes only for the random-resistant faults;
3. the top-up cube stream is LZW-compressed for download, and the total
   ATE traffic is compared against the pure-deterministic flow.

Run:  python examples/hybrid_bist.py
"""

from repro.atpg import generate_tests, hybrid_generate
from repro.atpg.hybrid import HybridConfig
from repro.circuit import random_circuit
from repro.core import LZWConfig, compress
from repro.experiments import Table


def ate_bits(test_set, config) -> int:
    """Compressed download volume of a cube set (0 when empty)."""
    if not len(test_set):
        return 0
    return compress(test_set.to_stream(), config).compressed_bits


def main() -> None:
    core = random_circuit("ip_core", n_inputs=16, n_flops=32, n_gates=260,
                          seed=42)
    print(core)
    lzw = LZWConfig(char_bits=5, dict_size=128, entry_bits=40)

    # Pure deterministic flow: every cube crosses the ATE interface.
    pure = generate_tests(core)
    pure_bits = ate_bits(pure.test_set, lzw)

    table = Table(
        "BIST + compressed top-up vs pure deterministic download",
        ["Flow", "coverage %", "ATE vectors", "raw bits", "LZW bits"],
    )
    table.add_row(
        "deterministic only",
        pure.coverage_percent,
        len(pure.test_set),
        pure.test_set.total_bits,
        pure_bits,
    )

    for n_random in (64, 256, 1024):
        hybrid = hybrid_generate(core, HybridConfig(random_patterns=n_random))
        table.add_row(
            f"BIST {n_random} + top-up",
            hybrid.coverage_percent,
            len(hybrid.top_up),
            hybrid.top_up.total_bits,
            ate_bits(hybrid.top_up, lzw),
        )
        print(
            f"BIST {n_random:5d}: random patterns alone reach "
            f"{hybrid.random_coverage_percent:.1f}%, "
            f"{len(hybrid.top_up)} top-up cubes close the rest"
        )

    print()
    print(table.render())
    print("\nThe on-chip PRPG costs no download at all, so the ATE traffic "
          "shrinks to the compressed random-resistant residue - the "
          "combination the paper's introduction argues for.")


if __name__ == "__main__":
    main()
