#!/usr/bin/env python3
"""Engineering trade-offs of the decompressor (the paper's Section 6).

For one benchmark this script sweeps the three hardware knobs —
character width C_C, dictionary size N, entry width C_MDATA — and the
internal clock ratio, then picks the best configuration under an
embedded-memory budget, exactly the optimisation the paper walks through
("if s13207f is an embedded core and optimal compression is desired...").

Run:  python examples/architecture_tradeoffs.py [benchmark] [memory_kbits]
"""

import sys

from repro.core import LZWConfig, compress
from repro.experiments import Table
from repro.hardware import MemoryRequirements, analyze_download, estimate_area
from repro.workloads import build_testset, get_benchmark


def sweep(stream, bench_name: str) -> None:
    """Tables 4/5/6 for a single circuit, on one page."""
    t4 = Table(f"{bench_name}: ratio % vs character width (N=1024, C_MDATA=63)",
               ["C_C", "ratio %", "codes free"])
    for char_bits in (1, 2, 4, 7, 10):
        config = LZWConfig(char_bits=char_bits, dict_size=1024, entry_bits=63)
        result = compress(stream, config)
        t4.add_row(char_bits, result.ratio_percent, config.free_codes)
    print(t4.render(), "\n")

    t5 = Table(f"{bench_name}: ratio % vs entry width (N=1024, C_C=7)",
               ["C_MDATA", "ratio %", "longest entry", "perf @10x %"])
    for entry_bits in (63, 127, 255, 511):
        config = LZWConfig(char_bits=7, dict_size=1024, entry_bits=entry_bits)
        result = compress(stream, config)
        report = analyze_download(result.compressed, 10)
        t5.add_row(entry_bits, result.ratio_percent,
                   result.longest_entry_bits, report.improvement_percent)
    print(t5.render(), "\n")

    t2 = Table(f"{bench_name}: download improvement % vs clock ratio",
               ["clock", "serial", "double-buffered"])
    config = LZWConfig(char_bits=7, dict_size=1024, entry_bits=63)
    result = compress(stream, config)
    for k in (2, 4, 8, 10, 16):
        serial = analyze_download(result.compressed, k)
        buffered = analyze_download(result.compressed, k, double_buffered=True)
        t2.add_row(f"{k}x", serial.improvement_percent,
                   buffered.improvement_percent)
    print(t2.render(), "\n")


def optimise(stream, bench_name: str, budget_bits: int) -> None:
    """Best configuration whose dictionary fits the memory budget."""
    best = None
    for char_bits in (4, 7, 10):
        for dict_size in (256, 512, 1024, 2048):
            if dict_size < (1 << char_bits):
                continue
            for entry_bits in (63, 127, 255):
                config = LZWConfig(char_bits=char_bits, dict_size=dict_size,
                                   entry_bits=entry_bits)
                memory = MemoryRequirements.for_config(config)
                if memory.total_bits > budget_bits:
                    continue
                result = compress(stream, config)
                if best is None or result.ratio > best[0].ratio:
                    best = (result, config, memory)
    if best is None:
        print(f"no configuration fits {budget_bits} memory bits")
        return
    result, config, memory = best
    area = estimate_area(config)
    print(f"best under {budget_bits // 1000}k memory bits for {bench_name}:")
    print(f"  {config.describe()}")
    print(f"  ratio {result.ratio_percent:.2f}%, memory {memory.geometry}, "
          f"datapath ~{area.datapath_ge:.0f} gate equivalents")


def main() -> None:
    bench_name = sys.argv[1] if len(sys.argv) > 1 else "s9234f"
    budget_kbits = int(sys.argv[2]) if len(sys.argv) > 2 else 80
    bench = get_benchmark(bench_name)
    print(f"{bench_name}: {bench.vectors} vectors x {bench.width} bits, "
          f"{bench.x_percent}% X, paper used N={bench.dict_size}\n")
    stream = build_testset(bench_name).to_stream()
    sweep(stream, bench_name)
    optimise(stream, bench_name, budget_kbits * 1000)


if __name__ == "__main__":
    main()
