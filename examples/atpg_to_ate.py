#!/usr/bin/env python3
"""End-to-end DFT flow: the paper's Figure 1 and Figure 2 in one script.

Test-generation side (Figure 1): build a full-scan core, run the PODEM
ATPG for every collapsed stuck-at fault, compact the cubes, and compress
the scan stream with dynamic don't-care assignment.

Test-application side (Figure 2): stream the compressed bits into the
cycle-accurate decompressor model (internal clock 10x the tester),
reconstruct the vectors from the scan chain, and prove by fault
simulation that silicon coverage is unchanged.

Run:  python examples/atpg_to_ate.py
"""

from repro.atpg import fault_simulate, generate_tests, parallel_fault_simulate
from repro.atpg.fastsim import CompiledView
from repro.circuit import ScanChain, TestSet, random_circuit
from repro.circuit.faults import collapse_faults
from repro.core import LZWConfig, compress
from repro.hardware import MISR, STANDARD_POLYNOMIALS, DecompressorModel, MemoryRequirements

CLOCK_RATIO = 10


def main() -> None:
    # ------------------------------------------------------------------
    # Figure 1: test insertion and generation
    # ------------------------------------------------------------------
    core = random_circuit("embedded_core", n_inputs=16, n_flops=32,
                          n_gates=260, seed=42)
    print(core)

    atpg = generate_tests(core)
    print(f"ATPG: {atpg.detected}/{atpg.total_faults} faults detected "
          f"({atpg.coverage_percent:.1f}% coverage, "
          f"{atpg.untestable} untestable, {atpg.aborted} aborted)")
    print(f"cubes: {atpg.cubes_before_compaction} generated, "
          f"{len(atpg.test_set)} after static compaction")
    print(atpg.test_set.summary())

    # One scan chain over every controllable cell, as in the paper's
    # single-chain experiments.
    chain = ScanChain("chain0", atpg.test_set.input_names)
    stream = atpg.test_set.to_stream()

    # Size the dictionary to the test set (Table 3's lesson: dictionary
    # size tracks test size) - a small core wants a small dictionary.
    config = LZWConfig(char_bits=5, dict_size=128, entry_bits=40)
    result = compress(stream, config)
    print(f"\ncompression: {result.original_bits} -> "
          f"{result.compressed_bits} bits ({result.ratio_percent:.2f}%)")

    # ------------------------------------------------------------------
    # Figure 2: test application through the on-chip decompressor
    # ------------------------------------------------------------------
    memory = MemoryRequirements.for_config(config)
    print(f"decompressor dictionary: {memory.geometry} "
          f"({memory.total_bits} borrowed memory bits)")

    hw = DecompressorModel(config, clock_ratio=CLOCK_RATIO)
    run = hw.run(result.compressed.to_bits(), len(stream))
    print(f"hardware run: {run.tester_cycles} tester cycles vs "
          f"{len(stream)} uncompressed "
          f"({run.improvement_percent(len(stream)):.2f}% faster download, "
          f"{run.memory_reads} dictionary reads, "
          f"{run.memory_writes} writes)")

    # The chain now holds fully specified vectors; prove nothing was lost.
    applied = TestSet.from_stream(run.scan_stream, chain.cells)
    faults = collapse_faults(core)
    view = core.combinational_view()
    before = fault_simulate(view, list(atpg.test_set), faults)
    # The applied vectors are fully specified, so the bit-parallel PPSFP
    # engine checks them in one sweep.
    after = parallel_fault_simulate(view, list(applied), faults)
    assert set(before.detected) <= set(after.detected)
    print(f"\nfault simulation: {len(before.detected)} faults detected by "
          f"the cubes, {len(after.detected)} by the decompressed vectors "
          f"- coverage preserved")

    # Output side: compact every vector's responses into one 16-bit MISR
    # signature, so the tester compares a single word per lot instead of
    # storing expected responses.
    cv = CompiledView(view)
    misr = MISR(STANDARD_POLYNOMIALS[16], seed=1)
    for cube in applied:
        values = cv.evaluate(cv.cube_values(cube))
        response = 0
        for i, net in enumerate(cv.output_indices):
            response ^= values[net] << (i % 16)
        misr.absorb(response)
    print(f"golden MISR signature over {len(applied)} responses: "
          f"0x{misr.signature():04x} "
          f"(aliasing ~2^-16)")


if __name__ == "__main__":
    main()
