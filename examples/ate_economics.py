#!/usr/bin/env python3
"""What the scheme is worth on the tester (the paper's introduction).

The paper motivates compression with ATE economics: vector memory depth
prices the machine, and test time prices the floor.  This script prices
one benchmark on a configurable tester, with and without compression,
including the pattern-reload penalty when a test set no longer fits the
vector memory — the non-linear effect that makes compression decisive.

It also exports the synthesizable decompressor RTL plus a self-checking
testbench for the same test set, closing the loop for anyone with a
Verilog simulator.

Run:  python examples/ate_economics.py [benchmark] [rtl_output_dir]
"""

import sys
from pathlib import Path

from repro.core import LZWConfig, compress
from repro.experiments import Table
from repro.hardware import (
    ATEProfile,
    estimate_area,
    evaluate_economics,
    generate_decompressor,
    generate_testbench,
)
from repro.workloads import build_testset, get_benchmark


def main() -> None:
    bench_name = sys.argv[1] if len(sys.argv) > 1 else "s13207f"
    rtl_dir = Path(sys.argv[2]) if len(sys.argv) > 2 else None

    bench = get_benchmark(bench_name)
    test_set = build_testset(bench_name)
    stream = test_set.to_stream()
    config = LZWConfig(char_bits=7, dict_size=bench.dict_size, entry_bits=63)
    result = compress(stream, config)
    print(test_set.summary())
    print(f"compression: {result.ratio_percent:.2f}% "
          f"({result.original_bits} -> {result.compressed_bits} bits)\n")

    # Three tester profiles: roomy, tight and multi-site.
    profiles = {
        "roomy (16 Mb/pin)": ATEProfile(),
        "tight (32 kb/pin)": ATEProfile(vector_memory_bits=32_000),
        "tight, 4 sites": ATEProfile(vector_memory_bits=32_000, sites=4),
    }
    table = Table(
        f"ATE economics for {bench_name} (10x internal clock, serial engine)",
        ["Tester", "reloads u/c", "time saved %", "memory saved %",
         "cost saved %"],
    )
    for label, profile in profiles.items():
        report = evaluate_economics(result.compressed, profile, clock_ratio=10)
        table.add_row(
            label,
            f"{report.uncompressed_reloads}/{report.compressed_reloads}",
            report.time_saving_percent,
            report.memory_saving_percent,
            report.cost_saving_percent,
        )
    print(table.render())

    area = estimate_area(config)
    print(f"\non-chip cost: ~{area.datapath_ge:.0f} gate equivalents of "
          f"datapath; dictionary reuses a {area.memory.geometry} core memory")

    if rtl_dir is not None:
        rtl_dir.mkdir(parents=True, exist_ok=True)
        (rtl_dir / "lzw_decompressor.v").write_text(
            generate_decompressor(config)
        )
        (rtl_dir / "tb_lzw_decompressor.v").write_text(
            generate_testbench(result.compressed, clock_ratio=10)
        )
        print(f"wrote synthesizable RTL + self-checking bench to {rtl_dir}/")


if __name__ == "__main__":
    main()
