#!/usr/bin/env python3
"""Quickstart: compress a scan test set with don't-care-aware LZW.

Builds the matched synthetic test set for the paper's s9234f benchmark,
compresses it with the paper's configuration, verifies the round trip
and prints the numbers a DFT engineer would ask for.

Run:  python examples/quickstart.py
"""

from repro import LZWConfig, compress, decompress
from repro.hardware import MemoryRequirements, analyze_download
from repro.workloads import build_testset


def main() -> None:
    # 1. A test set: 159 vectors x 247 scan cells, 73% don't-cares,
    #    statistically matched to the published s9234f profile.  Swap in
    #    repro.testfile.read_test_file(...) to use your own vectors.
    test_set = build_testset("s9234f")
    print(test_set.summary())

    # 2. The scan-in stream the ATE would ship, and the paper's
    #    configuration: 7-bit characters, 1024 codes, 63-bit entries.
    stream = test_set.to_stream()
    config = LZWConfig(char_bits=7, dict_size=1024, entry_bits=63)
    result = compress(stream, config)

    print(f"\nconfig: {config.describe()}")
    print(f"original:   {result.original_bits} bits")
    print(f"compressed: {result.compressed_bits} bits "
          f"({result.compressed.num_codes} codes)")
    print(f"ratio:      {result.ratio_percent:.2f}%")

    # 3. Every specified bit must survive; the X bits were chosen by the
    #    encoder to maximise dictionary reuse.
    assert result.verify(stream), "decode must cover the original cubes"
    reconstructed = decompress(result.compressed)
    print(f"verified:   decoded {len(reconstructed)} bits cover all "
          f"{stream.care_count} specified bits")

    # 4. What it costs on chip and what it saves on the tester.
    memory = MemoryRequirements.for_config(config)
    print(f"\ndictionary memory: {memory.geometry} "
          f"({memory.total_bits} bits, reused from the core)")
    for k in (4, 8, 10):
        report = analyze_download(result.compressed, clock_ratio=k)
        print(f"download improvement at {k}x internal clock: "
              f"{report.improvement_percent:.2f}%")


if __name__ == "__main__":
    main()
