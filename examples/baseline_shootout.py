#!/usr/bin/env python3
"""Scheme shootout: LZW vs LZ77 vs Golomb RLE vs fixed RLE vs Huffman.

Reproduces the paper's Table 1 comparison on any benchmark (plus the two
schemes the paper only cites), and shows *why* LZW wins: the dynamic
don't-care assignment buys it match flexibility the others lack, which
the static-fill ablation makes visible.

Run:  python examples/baseline_shootout.py [benchmark] [scale]
"""

import sys
import time

from repro.baselines import (
    AlternatingRLECompressor,
    GolombCompressor,
    LZ77Compressor,
    LZWCompressorAdapter,
    SelectiveHuffmanCompressor,
)
from repro.core import LZWConfig, compress, static_fill
from repro.core.dontcare import STATIC_FILLS
from repro.experiments import Table
from repro.workloads import build_testset, get_benchmark


def main() -> None:
    bench_name = sys.argv[1] if len(sys.argv) > 1 else "s13207f"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    bench = get_benchmark(bench_name)
    test_set = build_testset(bench_name, scale=scale)
    print(test_set.summary(), "\n")
    stream = test_set.to_stream()

    config = LZWConfig(char_bits=7, dict_size=bench.dict_size, entry_bits=63)
    schemes = [
        LZWCompressorAdapter(config),
        LZ77Compressor(),
        GolombCompressor(),
        AlternatingRLECompressor(),
        SelectiveHuffmanCompressor(),
    ]

    table = Table(
        f"Compression shootout on {bench_name} (scale {scale})",
        ["Scheme", "ratio %", "compressed bits", "seconds"],
    )
    for scheme in schemes:
        start = time.perf_counter()
        result = scheme.compress(stream)
        elapsed = time.perf_counter() - start
        assert result.verify(stream), f"{scheme.name} broke a care bit!"
        table.add_row(
            result.scheme, result.ratio_percent, result.compressed_bits, elapsed
        )
    print(table.render(), "\n")

    # Why dynamic assignment matters: the same LZW engine fed statically
    # pre-filled streams (the strawmen of the paper's Section 5).
    ablation = Table(
        "LZW with static pre-fills instead of dynamic assignment",
        ["Fill", "ratio %"],
    )
    ablation.add_row("dynamic (paper)", compress(stream, config).ratio_percent)
    for rule in STATIC_FILLS:
        filled = static_fill(stream, rule, seed=0)
        ablation.add_row(f"static {rule}", compress(filled, config).ratio_percent)
    print(ablation.render())


if __name__ == "__main__":
    main()
