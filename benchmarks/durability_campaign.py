"""Crash-point durability campaign — the CI durability smoke job's driver.

Replays a simulated power cut at **every** I/O boundary of every
artefact writer in the package (atomic v2/v3/v4 containers, the v5
streaming frame journal, the batch checkpoint journal, LZWS snapshot
blobs, fleet cache entries, metrics reports), expands each cut over the
page-cache-survival × metadata-survival grid, and classifies the
recovered state against the writer's documented contract:

* **old-or-new** for every :func:`atomic_write_bytes` artefact — the
  final path holds the complete old version or the complete new one,
  never a prefix;
* **whole-frame-prefix** for the v5 journal — salvage recovers exactly
  a frame-aligned prefix of the uninterrupted encode;
* **resume-equals-fresh** for the checkpoint journal — every entry a
  resumed run replays is byte-identical to a fresh encode of that
  shard;
* **never-serve-corrupt** for the fleet cache — a post-crash ``get``
  returns the correct container or a miss, never damaged bytes.

Every post-crash state is additionally run through ``repro fsck
--repair``: afterwards no ``corrupt``/``salvageable``/``stale_tmp``
finding may remain (repairs must verify; refusals must be typed).  A
second arm injects ``ENOSPC`` at every write/fsync and requires a typed
:class:`ReproError` (or a documented silent-advisory path, e.g. the
cache) — an untyped exception is ``escaped``.

Usage::

    PYTHONPATH=src python benchmarks/durability_campaign.py \
        -o DURABILITY_report.json

Exit status 0 when zero ``silent``/``escaped`` outcomes occurred, 1
otherwise; the JSON report is written either way (it is the CI
artifact).  Everything is deterministic — a red crash point reproduces
exactly from its ``(writer, op index, survival, meta)`` coordinates.
"""

import argparse
import hashlib
import json
import random
import sys
import tempfile
import time
from pathlib import Path

from repro.bitstream import TernaryVector
from repro.container import (
    COLD_SEED,
    SEED_BLOB,
    SegmentSeed,
    dump_bytes,
    dump_segments,
)
from repro.core import LZWConfig, compress
from repro.core.decoder import derive_final_snapshot
from repro.core.stream import StreamEncoder
from repro.fleet.cache import ResultCache
from repro.parallel.engine import ShardResult
from repro.parallel.journal import ShardJournal
from repro.reliability.atomic import DurableAppendFile, atomic_write_bytes, atomic_write_text
from repro.reliability.crashsim import (
    CrashWriterSpec,
    campaign_report,
    run_crash_campaign,
)
from repro.reliability.errors import ConfigError, ContainerError
from repro.reliability.fsck import fsck_paths
from repro.reliability.salvage import salvage_container
from repro.reliability.verify import verify_container
from repro.streamio import StreamContainerWriter, decode_stream_bytes

CONFIG = LZWConfig(char_bits=4, dict_size=64, entry_bits=20)
CODES_PER_FRAME = 16
JOURNAL_FINGERPRINT = hashlib.sha256(b"durability-campaign-batch").hexdigest()
CACHE_FINGERPRINT = hashlib.sha256(b"durability-campaign-entry").hexdigest()

# ----------------------------------------------------------------------
# Deterministic fixture artefacts (computed once; writers re-emit them)
# ----------------------------------------------------------------------

_RNG = random.Random(20030308)
STREAM = TernaryVector.random(600, x_density=0.7, rng=_RNG)
STREAM_B = TernaryVector.random(350, x_density=0.4, rng=_RNG)

_RESULT = compress(STREAM, CONFIG)
_RESULT_B = compress(STREAM_B, CONFIG)
V2_NEW = dump_bytes(_RESULT.compressed, _RESULT.assigned_stream)
V2_OLD = dump_bytes(_RESULT_B.compressed, _RESULT_B.assigned_stream)

V3_NEW = dump_segments(
    [_RESULT.compressed, _RESULT_B.compressed],
    streams=[_RESULT.assigned_stream, _RESULT_B.assigned_stream],
)

_SNAPSHOT = derive_final_snapshot(_RESULT.compressed.codes, CONFIG)
_SEEDED = compress(STREAM_B, CONFIG, seed=_SNAPSHOT)
V4_NEW = dump_segments(
    [_RESULT.compressed, _SEEDED.compressed],
    streams=[_RESULT.assigned_stream, _SEEDED.assigned_stream],
    seeds=[
        COLD_SEED,
        SegmentSeed(SEED_BLOB, _SNAPSHOT, None),
    ],
)

SNAP_BYTES = _SNAPSHOT.to_bytes()
REPORT_NEW = json.dumps({"schema": "repro.metrics/1", "counters": {"runs": 2}}, indent=2)
REPORT_OLD = json.dumps({"schema": "repro.metrics/1", "counters": {"runs": 1}}, indent=2)

# Checkpoint-journal shards: the campaign stream split in two, each
# compressed cold exactly as a fresh batch would.
_HALF = len(STREAM) // 2
_SHARD_STREAMS = [STREAM[:_HALF], STREAM[_HALF:]]
_SHARD_RESULTS = {}
EXPECTED_SHARD_BYTES = {}
for _i, _part in enumerate(_SHARD_STREAMS):
    _res = compress(_part, CONFIG)
    _SHARD_RESULTS[(0, _i)] = ShardResult(
        index=_i,
        compressed=_res.compressed,
        assigned_stream=_res.assigned_stream,
        stats=_res.stats,
    )
    EXPECTED_SHARD_BYTES[(0, _i)] = dump_bytes(_res.compressed, _res.assigned_stream)


def _v5_reference() -> bytes:
    import io

    encoder = StreamEncoder(CONFIG)
    sink = io.BytesIO()
    writer = StreamContainerWriter(CONFIG, sink, codes_per_frame=CODES_PER_FRAME)
    writer.write_codes(encoder.feed(STREAM))
    writer.finalize(encoder.finalize(), encoder.original_bits)
    return sink.getvalue()


V5_FULL = _v5_reference()
V5_DECODED = decode_stream_bytes(V5_FULL)


# ----------------------------------------------------------------------
# The fsck gate every post-crash state must pass
# ----------------------------------------------------------------------

#: fsck statuses that may not survive a --repair pass.
_FSCK_BAD = ("corrupt", "salvageable", "stale_tmp")


def _fsck_gate(root: Path):
    """Run ``fsck --repair`` over the state; None when it settles clean.

    Returns a ``(outcome, detail)`` failure tuple when any
    repair-mandated status survives — repairs must verify, sweeps must
    sweep; only typed refusals and clean/quarantined artefacts remain.
    """
    report = fsck_paths([root], repair=True)
    bad = [item for item in report.items if item.status in _FSCK_BAD]
    if bad:
        return (
            "silent:fsck-left-faults",
            "; ".join(item.describe() for item in bad),
        )
    return None


def _with_fsck(root: Path, outcome: str, detail: str = ""):
    failure = _fsck_gate(root)
    if failure is not None:
        return failure
    return outcome, detail


# ----------------------------------------------------------------------
# Writer specs
# ----------------------------------------------------------------------


def _atomic_spec(name: str, filename: str, new: bytes, old: bytes = None) -> CrashWriterSpec:
    """old-or-new contract for one atomic_write_bytes artefact."""

    def setup(root):
        return {} if old is None else {filename: old}

    def write(root):
        atomic_write_bytes(root / filename, new)

    def recover(root):
        target = root / filename
        if not target.exists():
            if old is not None:
                return "silent:old-version-lost"
            return _with_fsck(root, "absent")
        data = target.read_bytes()
        if data == new:
            return _with_fsck(root, "new")
        if old is not None and data == old:
            return _with_fsck(root, "old")
        return "silent:torn-artefact", f"{len(data)} bytes, neither old nor new"

    return CrashWriterSpec(
        name=name,
        write=write,
        recover=recover,
        setup=setup,
        description=f"atomic_write_bytes old-or-new for {filename}",
    )


def _stream_spec() -> CrashWriterSpec:
    """whole-frame-prefix contract for the v5 streaming journal."""

    def write(root):
        encoder = StreamEncoder(CONFIG)
        sink = DurableAppendFile(root / "stream.lzwt")
        writer = StreamContainerWriter(CONFIG, sink, codes_per_frame=CODES_PER_FRAME)
        writer.write_codes(encoder.feed(STREAM))
        writer.finalize(encoder.finalize(), encoder.original_bits)
        sink.close()

    def recover(root):
        target = root / "stream.lzwt"
        if not target.exists():
            return "absent", "crash before the directory entry was durable"
        data = target.read_bytes()
        try:
            partial = salvage_container(data)
        except ContainerError as exc:
            # Header unusable: nothing durable was ever claimed.  fsck
            # must still flag the stub loudly (refusal/unknown).
            failure = _fsck_gate(root)
            if failure is not None:
                return failure
            return "detected:header-unusable", exc.message
        prefix = partial.stream
        reference = V5_DECODED[: len(prefix)]
        if (
            prefix.value_mask != reference.value_mask
            or prefix.care_mask != reference.care_mask
        ):
            return "silent:non-prefix-salvage", partial.describe()
        failure = _fsck_gate(root)
        if failure is not None:
            return failure
        # After repair the artefact (if still present) must verify and
        # decode to the same prefix.
        if target.exists():
            repaired = target.read_bytes()
            if not verify_container(repaired).ok:
                return "silent:repair-does-not-verify", ""
            redecoded = decode_stream_bytes(repaired)
            ref = V5_DECODED[: len(redecoded)]
            if (
                redecoded.value_mask != ref.value_mask
                or redecoded.care_mask != ref.care_mask
            ):
                return "silent:repair-decodes-wrong", ""
        label = "complete" if partial.complete else "prefix"
        return label, partial.describe()

    return CrashWriterSpec(
        name="stream-v5-journal",
        write=write,
        recover=recover,
        description="v5 frame journal: whole-frame-prefix + fsck rebuild",
    )


def _journal_spec() -> CrashWriterSpec:
    """resume-equals-fresh contract for the checkpoint journal."""

    def write(root):
        journal = ShardJournal.open(root / "batch.ckpt", JOURNAL_FINGERPRINT)
        for (workload, shard), result in sorted(_SHARD_RESULTS.items()):
            journal.record(workload, shard, result)
        journal.close()

    def recover(root):
        target = root / "batch.ckpt"
        if not target.exists():
            return "absent", "crash before the journal file was durable"
        # Resume from a copy so the fsck gate still sees the raw state
        # (ShardJournal.open truncates a header-less file).
        copy = root / "resume.ckpt.copy"
        copy.write_bytes(target.read_bytes())
        try:
            journal = ShardJournal.open(copy, JOURNAL_FINGERPRINT, resume=True)
        except ConfigError as exc:
            copy.unlink()
            failure = _fsck_gate(root)
            if failure is not None:
                return failure
            return "detected:unusable-header", exc.message
        replayed = dict(journal.completed)
        journal.close()
        copy.unlink()
        for key, result in replayed.items():
            if key not in EXPECTED_SHARD_BYTES:
                return "silent:foreign-entry", str(key)
            fresh = EXPECTED_SHARD_BYTES[key]
            if dump_bytes(result.compressed, result.assigned_stream) != fresh:
                return "silent:resume-differs-from-fresh", str(key)
        return _with_fsck(
            root, f"replayed-{len(replayed)}", f"of {len(EXPECTED_SHARD_BYTES)} shards"
        )

    return CrashWriterSpec(
        name="checkpoint-journal",
        write=write,
        recover=recover,
        description="shard journal: resume-equals-fresh + torn-tail trim",
    )


def _cache_spec() -> CrashWriterSpec:
    """never-serve-corrupt contract for the fleet result cache."""

    def write(root):
        cache = ResultCache(root / "cache")
        cache.put(CACHE_FINGERPRINT, {"op": "compress", "ratio": 61.2}, V2_NEW)

    def recover(root):
        cache = ResultCache(root / "cache")
        hit = cache.get(CACHE_FINGERPRINT)
        if hit is not None:
            _fields, container = hit
            if container != V2_NEW:
                return "silent:served-corrupt-bytes", ""
            label = "hit"
        else:
            label = "miss"
        failure = _fsck_gate(root)
        if failure is not None:
            return failure
        stats = cache.scrub(repair=True)
        if stats["corrupt"] and stats["quarantined"] != stats["corrupt"]:
            return "silent:scrub-left-corrupt-entries", json.dumps(stats)
        return label, json.dumps(stats)

    return CrashWriterSpec(
        name="fleet-cache-entry",
        write=write,
        recover=recover,
        description="result cache: verified reads + scrub quarantine",
    )


def _snapshot_spec() -> CrashWriterSpec:
    def write(root):
        atomic_write_bytes(root / "dict.lzws", SNAP_BYTES)

    def recover(root):
        target = root / "dict.lzws"
        if not target.exists():
            return _with_fsck(root, "absent")
        if target.read_bytes() != SNAP_BYTES:
            return "silent:torn-snapshot", ""
        return _with_fsck(root, "new")

    return CrashWriterSpec(
        name="snapshot-blob",
        write=write,
        recover=recover,
        description="LZWS dictionary snapshot: old-or-new",
    )


def _report_spec() -> CrashWriterSpec:
    def setup(root):
        return {"metrics.json": REPORT_OLD.encode("utf-8")}

    def write(root):
        atomic_write_text(root / "metrics.json", REPORT_NEW)

    def recover(root):
        target = root / "metrics.json"
        if not target.exists():
            return "silent:old-version-lost", ""
        text = target.read_text(encoding="utf-8")
        if text == REPORT_NEW:
            return _with_fsck(root, "new")
        if text == REPORT_OLD:
            return _with_fsck(root, "old")
        return "silent:torn-report", ""

    return CrashWriterSpec(
        name="metrics-report",
        write=write,
        recover=recover,
        setup=setup,
        description="metrics JSON: old-or-new",
    )


def build_specs():
    return [
        _atomic_spec("atomic-v2-fresh", "fresh.lzwt", V2_NEW),
        _atomic_spec("atomic-v2-overwrite", "art.lzwt", V2_NEW, old=V2_OLD),
        _atomic_spec("atomic-v3-multi", "multi.lzwt", V3_NEW, old=V2_OLD),
        _atomic_spec("atomic-v4-seeded", "seeded.lzwt", V4_NEW),
        _stream_spec(),
        _journal_spec(),
        _cache_spec(),
        _snapshot_spec(),
        _report_spec(),
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    all_names = [spec.name for spec in build_specs()]
    parser.add_argument(
        "--writers", nargs="*", default=all_names, choices=all_names,
        help="artefact writers to campaign (default: all)",
    )
    parser.add_argument(
        "-o", "--output", default="DURABILITY_report.json",
        help="report path (default DURABILITY_report.json)",
    )
    args = parser.parse_args(argv)

    specs = [spec for spec in build_specs() if spec.name in args.writers]
    started = time.perf_counter()
    results = []
    with tempfile.TemporaryDirectory(prefix="durability-") as tmp:
        for spec in specs:
            workdir = Path(tmp) / spec.name
            workdir.mkdir()
            result = run_crash_campaign(spec, workdir)
            results.append(result)
            print(result.summary())
    elapsed = time.perf_counter() - started

    report = campaign_report(results)
    report["writers_run"] = [spec.name for spec in specs]
    report["seconds"] = round(elapsed, 3)
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    ok = report["ok"]
    totals = report["totals"]
    print(
        f"{totals['points']} crash points, {totals['unique_states']} unique "
        f"states, {totals['failures']} failures; {elapsed:.1f}s, report "
        f"written to {args.output}"
    )
    if not ok:
        print(
            "DURABILITY CAMPAIGN FAILED: silent corruption or escaped "
            "exception at a crash point",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
