"""Ablation — serial vs double-buffered decompressor front end.

The paper's architecture loads the full C_E code before decoding
(serial), which costs a 1/k tax on the download improvement.  This bench
quantifies what the natural double-buffering extension would recover:
the buffered improvement must approach the compression ratio at modest
clock ratios.
"""

from conftest import run_table

from repro.experiments import ablation_architecture


def test_ablation_architecture(benchmark, lab):
    table = run_table(
        benchmark, ablation_architecture, lab, "ablation_architecture"
    )
    for row_index, name in enumerate(table.column("Test")):
        ratio = float(table.column("ratio")[row_index])
        serial10 = float(table.column("serial@10x")[row_index])
        buffered10 = float(table.column("buffered@10x")[row_index])
        assert buffered10 > serial10, name
        # Buffered at 10x should sit within a couple points of the ratio.
        assert ratio - buffered10 < 3.0, name
