"""Ablation — dynamic assignment vs static pre-fills (Section 5 claim).

The paper reports that every pre-processing fill it tried produced only
40-60% compression, and that the published results required assigning
the don't-cares *inside* the LZW loop.  The bench regenerates that
comparison and asserts the dynamic scheme wins every circuit.
"""

from conftest import run_table

from repro.experiments import ablation_dontcare
from repro.core.dontcare import STATIC_FILLS


def test_ablation_dontcare(benchmark, lab):
    table = run_table(benchmark, ablation_dontcare, lab, "ablation_dontcare")
    for row_index, name in enumerate(table.column("Test")):
        dynamic = float(table.column("dynamic")[row_index])
        statics = [
            float(table.column(f"static:{f}")[row_index]) for f in STATIC_FILLS
        ]
        assert dynamic > max(statics), (
            f"{name}: dynamic assignment must beat every static fill"
        )
