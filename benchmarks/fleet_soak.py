"""Soak harness for the dispatcher tier (``repro fleet``).

Drives a real fleet — N ``repro serve`` backend subprocesses behind a
``repro fleet`` dispatcher subprocess — and asserts the fleet-wide
robustness contract:

* **byte identity through the dispatcher** — every accepted compress
  reply is byte-identical to the serial ``repro compress`` path, cache
  hit or not, failover or not;
* **node death is survivable** — with one of three backends SIGKILLed
  mid-run, every request still gets a correct reply or a typed error;
* **typed shedding** — exactly the single-server contract: structured
  replies with documented codes, never a hang, never a silent drop;
* **graceful drain** — SIGTERM drains the dispatcher to exit 0 with a
  valid final ``repro.metrics/1`` snapshot, and each surviving backend
  drains to exit 0 afterwards.

Modes (CI runs the first two)::

    PYTHONPATH=src python benchmarks/fleet_soak.py --smoke \
        --report FLEET_report.json        # golden gate + mid-run kill
    PYTHONPATH=src python benchmarks/fleet_soak.py --chaos --seeds 3
    PYTHONPATH=src python benchmarks/fleet_soak.py \
        --scenario kill_midburst --seconds 20

Scenarios model production traffic shapes: ``kill_midburst`` (a node
dies under a request burst), ``hot_key`` (heavily skewed traffic that
must ride the verified result cache), ``diurnal`` (client load ramps
up, peaks, and falls away).  Exit status: 0 clean, 1 with every
violation listed on stderr (and in the ``--report`` JSON).
"""

import argparse
import json
import shutil
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from service_soak import (  # noqa: E402 - sibling module, not a package
    Stats,
    _check_metrics,
    _check_reply,
    _good_client,
    _report,
    _start_server,
    _stop_server,
    _workload_texts,
)

from repro.fleet.chaos import run_campaign  # noqa: E402
from repro.fleet.procs import spawn_backend, stop_backend  # noqa: E402
from repro.service import ServiceClient  # noqa: E402

#: Backends per fleet in every mode.
BACKENDS = 3

#: Backend tuning: enough workers to absorb the fleet's relay load.
BACKEND_ARGS = (
    "--workers", "2",
    "--queue-depth", "8",
    "--io-timeout", "2.0",
    "--drain-grace", "5.0",
    "--debug-ops",
)

#: Dispatcher tuning: fast probes so a killed backend is noticed within
#: a request or two, plus a verified result cache.
FLEET_ARGS = [
    "--port", "0",
    "--workers", "4",
    "--queue-depth", "16",
    "--probe-interval", "0.3",
    "--probe-timeout", "0.6",
    "--backend-timeout", "5.0",
    "--failover-attempts", "2",
    "--default-deadline", "15.0",
    "--drain-grace", "5.0",
    "--debug-ops",
]

#: Fleet counters surfaced in every report.
FLEET_COUNTERS = (
    "fleet.requests", "fleet.cache_hits", "fleet.cache_misses",
    "fleet.cache_corrupt", "fleet.failovers", "fleet.backend_errors",
    "fleet.no_backends", "fleet.probe_failures", "service.drained",
)

SCENARIOS = ("kill_midburst", "hot_key", "diurnal")


class _Fleet:
    """One live fleet: N backend subprocesses + a dispatcher subprocess."""

    def __init__(self, metrics_path, label):
        self.cache_dir = tempfile.mkdtemp(prefix=f"fleet-{label}-cache-")
        self.backends = [spawn_backend(BACKEND_ARGS) for _ in range(BACKENDS)]
        extra = ["--cache-dir", self.cache_dir]
        for backend in self.backends:
            extra += ["--backend", backend.address]
        self.proc, self.address = _start_server(
            metrics_path, extra, subcommand="fleet", base_args=FLEET_ARGS
        )

    def kill_backend(self, index, stats):
        self.backends[index].kill()
        stats.count("fault.backend_killed")

    def shutdown(self, stats):
        """Dispatcher first (drain contract), then the backends."""
        _stop_server(self.proc, stats)
        for backend in self.backends:
            if not backend.alive():
                continue
            code = stop_backend(backend, timeout=15.0)
            if code != 0:
                stats.violation(f"backend {backend.address} exited {code}")
        shutil.rmtree(self.cache_dir, ignore_errors=True)


def _require(counters, name, stats, why):
    if not counters.get(name):
        stats.violation(f"expected {name} > 0: {why}")


def run_smoke(report_path=None):
    """Golden byte-equality through the dispatcher, one backend killed."""
    stats = Stats()
    corpus = _workload_texts()
    metrics_path = Path("fleet_smoke_metrics.json").resolve()
    fleet = _Fleet(metrics_path, "smoke")
    try:
        with ServiceClient(fleet.address, timeout=30.0) as client:
            for round_label in ("healthy", "degraded"):
                for name, text, serial in corpus:
                    header, payload = client.compress(text)
                    if not header.get("ok"):
                        stats.violation(
                            f"smoke[{round_label}] compress({name}): {header}"
                        )
                        continue
                    if payload != serial:
                        stats.violation(
                            f"smoke[{round_label}] compress({name}): not "
                            f"byte-identical to serial ({len(payload)} vs "
                            f"{len(serial)} bytes)"
                        )
                    stats.count(f"smoke.{round_label}_ok")
                    if header.get("cache") == "hit":
                        stats.count("smoke.cache_hit")
                    # verify is deliberately uncacheable: it must route
                    # to a live backend even when compress hit the cache,
                    # which is what proves failover in the degraded round.
                    header, _ = client.verify(payload)
                    if header.get("verify_exit_code") != 0:
                        stats.violation(
                            f"smoke[{round_label}] verify({name}): {header}"
                        )
                    else:
                        stats.count(f"smoke.{round_label}_verify_ok")
                if round_label == "healthy":
                    # The degraded round must survive a dead node.
                    fleet.kill_backend(0, stats)
            ping = client.ping()
            states = ping.get("backends", {})
            if len(states) != BACKENDS:
                stats.violation(f"ping reported {len(states)} backends: {ping}")
    finally:
        fleet.shutdown(stats)
    counters = _check_metrics(metrics_path, stats)
    _require(counters, "fleet.requests", stats, "nothing was routed")
    _require(counters, "fleet.cache_hits", stats,
             "the repeated corpus should hit the result cache")
    return _report(
        stats, counters, report_path, mode="fleet-smoke",
        interesting=FLEET_COUNTERS,
    )


def run_chaos(seeds, requests, report_path=None):
    """The oracle-checked fault campaign (see repro.fleet.chaos)."""
    work_dir = Path(tempfile.mkdtemp(prefix="fleet-chaos-"))
    try:
        campaign = run_campaign(
            list(range(seeds)), work_dir, requests=requests
        )
    finally:
        shutil.rmtree(work_dir, ignore_errors=True)
    if report_path:
        Path(report_path).write_text(json.dumps(campaign, indent=2) + "\n")
        print(f"wrote {report_path}")
    for trial in campaign["trials"]:
        status = "ok" if trial["ok"] else "FAILED"
        print(
            f"  {trial['fault']} seed={trial['seed']}: "
            f"{trial['outcomes']} [{status}]"
        )
    totals = campaign["totals"]
    print(f"chaos totals: {totals}")
    if not campaign["ok"]:
        bad = [t for t in campaign["trials"] if not t["ok"]]
        print(f"chaos FAILED: {len(bad)} trial(s) violated the contract",
              file=sys.stderr)
        for trial in bad:
            print(f"  - {trial['fault']} seed={trial['seed']}: "
                  f"{trial['outcomes']} notes={trial['notes']}",
                  file=sys.stderr)
        return 1
    print("chaos passed: zero silent corruption, zero untyped outcomes")
    return 0


def _hot_key_client(address, corpus, stats, stop):
    """Skewed traffic: ~80% of requests hammer one hot workload."""
    try:
        client = ServiceClient(address, timeout=15.0)
    except OSError as exc:
        stats.violation(f"hot_key: could not connect: {exc}")
        return
    hot_name, hot_text, hot_serial = corpus[0]
    turn = 0
    with client:
        while not stop.is_set():
            name, text, serial = (
                (hot_name, hot_text, hot_serial)
                if turn % 5 != 4
                else corpus[1 + turn // 5 % (len(corpus) - 1)]
            )
            try:
                header, payload = client.compress(text)
            except OSError as exc:
                if not stop.is_set():
                    stats.violation(f"hot_key: socket error: {exc}")
                return
            except Exception as exc:  # noqa: BLE001 - drain races the send
                if not stop.is_set():
                    stats.violation(f"hot_key: {exc}")
                return
            if _check_reply(stats, "hot_key", header) and payload != serial:
                stats.violation(
                    f"hot_key compress({name}): container differs from serial"
                )
            turn += 1


def run_scenario(name, seconds, report_path=None):
    """One traffic-shape scenario against a live 3-backend fleet."""
    stats = Stats()
    corpus = _workload_texts()
    metrics_path = Path(f"fleet_{name}_metrics.json").resolve()
    fleet = _Fleet(metrics_path, name)
    stop = threading.Event()
    threads = [
        threading.Thread(
            target=_good_client, args=(i, fleet.address, corpus, stats, stop)
        )
        for i in range(2)
    ]
    if name == "hot_key":
        threads.append(
            threading.Thread(
                target=_hot_key_client,
                args=(fleet.address, corpus, stats, stop),
            )
        )
    ramp = []
    if name == "diurnal":
        # Peak-hours load joins a third of the way in and leaves at two
        # thirds; the fleet must absorb the ramp both directions.
        ramp = [
            threading.Thread(
                target=_good_client,
                args=(10 + i, fleet.address, corpus, stats, stop),
            )
            for i in range(3)
        ]
    try:
        for thread in threads:
            thread.start()
        if name == "kill_midburst":
            time.sleep(seconds / 2)
            fleet.kill_backend(0, stats)
            time.sleep(seconds / 2)
        elif name == "diurnal":
            time.sleep(seconds / 3)
            for thread in ramp:
                thread.start()
            stats.count("diurnal.ramp_up")
            time.sleep(seconds / 3)
            # (threads stop together below; the "ramp down" is the tail
            # third running on the base clients only in observed load.)
            time.sleep(seconds / 3)
        else:
            time.sleep(seconds)
        stop.set()
        for thread in threads + ramp:
            if thread.is_alive():
                thread.join(timeout=30)
            if thread.is_alive():
                stats.violation(f"client thread {thread.name} failed to stop")
    finally:
        stop.set()
        fleet.shutdown(stats)
    counters = _check_metrics(metrics_path, stats)
    _require(counters, "fleet.requests", stats, "nothing was routed")
    if name == "kill_midburst":
        _require(counters, "fleet.probe_failures", stats,
                 "the prober must notice the killed backend")
    if name == "hot_key":
        _require(counters, "fleet.cache_hits", stats,
                 "skewed traffic must ride the result cache")
    return _report(
        stats, counters, report_path, mode=f"fleet-{name}",
        interesting=FLEET_COUNTERS,
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="golden gate: byte-equality, mid-run backend kill, drain",
    )
    parser.add_argument(
        "--chaos", action="store_true",
        help="oracle-checked fault campaign over FLEET_FAULTS",
    )
    parser.add_argument(
        "--seeds", type=int, default=2, help="seeds per chaos fault"
    )
    parser.add_argument(
        "--requests", type=int, default=12, help="requests per chaos trial"
    )
    parser.add_argument(
        "--scenario", choices=SCENARIOS, help="traffic-shape scenario"
    )
    parser.add_argument(
        "--seconds", type=float, default=15.0, help="scenario duration"
    )
    parser.add_argument("--report", help="write the JSON report here")
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke(args.report)
    if args.chaos:
        return run_chaos(args.seeds, args.requests, args.report)
    if args.scenario:
        return run_scenario(args.scenario, args.seconds, args.report)
    parser.error("pick a mode: --smoke, --chaos or --scenario")


if __name__ == "__main__":
    sys.exit(main())
