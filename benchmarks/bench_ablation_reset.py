"""Ablation — dictionary-full policy: freeze (the paper) vs flush.

Classic LZW tools flush a full dictionary to stay adaptive; the paper
freezes it.  Scan test sets are statistically stationary, so the frozen
dictionary keeps paying back while a flush rebuilds from scratch — this
bench confirms the paper's choice wins on every circuit and dictionary
size tried.
"""

from conftest import run_table

from repro.experiments import ablation_reset

DICT_SIZES = (256, 1024)


def test_ablation_reset(benchmark, lab):
    table = run_table(benchmark, ablation_reset, lab, "ablation_reset")
    for row_index, name in enumerate(table.column("Test")):
        for n in DICT_SIZES:
            frozen = float(table.column(f"frozen N={n}")[row_index])
            flush = float(table.column(f"flush N={n}")[row_index])
            assert frozen >= flush - 0.25, (
                f"{name} N={n}: the paper's freeze policy should win on "
                f"stationary scan data"
            )
