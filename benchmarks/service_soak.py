"""Soak harness for the hardened compression service (``repro serve``).

Drives a real ``repro serve`` subprocess with a mixed fleet of clients —
well-behaved compress/decompress/verify traffic, deadline abusers,
breaker-tripping failure injectors, and one hostile client per
:data:`repro.reliability.chaos.CLIENT_FAULTS` class (slow-loris,
oversized frame, garbage frame, mid-request disconnect) — then asserts
the service's whole robustness contract at once:

* **no hangs, no crashes** — every request gets a structured reply (or
  a clean close after a framing violation by that client) within its
  budget, and the server process survives the entire run;
* **typed shedding** — every rejected request carries a typed error
  (`OverloadError` / `DeadlineError` / `ProtocolError` / `ShardError`)
  with an HTTP-flavoured code from the documented set;
* **byte identity** — every *accepted* compress reply's container is
  byte-identical to the serial ``repro compress`` path on the same
  input;
* **graceful drain** — SIGTERM ends the run with exit 0 and a valid
  final ``repro.metrics/1`` snapshot on disk.

Run it as CI does::

    PYTHONPATH=src python benchmarks/service_soak.py --smoke   # fast gate
    PYTHONPATH=src python benchmarks/service_soak.py --seconds 30 \
        --report soak_report.json                              # full soak

``--smoke`` round-trips the three golden workloads through a live
server and byte-compares against the serial path, then exits.  The full
soak adds the concurrent fleet for ``--seconds``.  Exit status: 0 clean,
1 with every violation listed on stderr (and in the ``--report`` JSON).
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.container import dump_bytes
from repro.core import LZWConfig, compress
from repro.reliability.chaos import CLIENT_FAULTS, ClientFaultPlan
from repro.reliability.errors import ProtocolError
from repro.service import CODE_OK, ServiceClient
from repro.testfile import format_test_text
from repro.workloads import build_testset

#: The golden corpus (mirrors tests/golden): name, scale.
WORKLOADS = (("s5378f", 0.12), ("s9234f", 0.08), ("s35932f", 0.25))

#: Reply codes a well-formed request may legitimately receive.
EXPECTED_CODES = frozenset({CODE_OK, 408, 429, 500, 503})

#: Server tuning for the soak: tight enough that shedding and the
#: breaker actually fire under the fleet's load.
SERVER_ARGS = [
    "--port", "0",
    "--workers", "2",
    "--queue-depth", "6",
    "--io-timeout", "0.5",
    "--default-deadline", "10.0",
    "--drain-grace", "5.0",
    "--breaker-threshold", "4",
    "--breaker-cooldown", "0.5",
    "--debug-ops",
]


def _workload_texts():
    """The golden corpus as (name, cube text, serial container) triples."""
    triples = []
    for name, scale in WORKLOADS:
        test_set = build_testset(name, scale=scale)
        text = format_test_text(test_set)
        result = compress(test_set.to_stream(), LZWConfig())
        serial = dump_bytes(result.compressed, result.assigned_stream)
        triples.append((name, text, serial))
    return triples


class Stats:
    """Thread-safe outcome tally plus the violation list."""

    def __init__(self):
        self.lock = threading.Lock()
        self.outcomes = {}
        self.violations = []

    def count(self, label):
        with self.lock:
            self.outcomes[label] = self.outcomes.get(label, 0) + 1

    def violation(self, message):
        with self.lock:
            self.violations.append(message)

    def snapshot(self):
        with self.lock:
            return dict(sorted(self.outcomes.items())), list(self.violations)


def _check_reply(stats, label, header):
    """Every reply must be structured: ok, or a typed coded error."""
    code = header.get("code")
    if header.get("ok"):
        stats.count(f"{label}.ok")
        return True
    error = header.get("error")
    if not isinstance(error, dict) or "type" not in error:
        stats.violation(f"{label}: untyped error reply: {header}")
    elif code not in EXPECTED_CODES:
        stats.violation(f"{label}: unexpected reply code {code}: {header}")
    else:
        stats.count(f"{label}.code_{code}")
    return False


def _good_client(index, address, corpus, stats, stop):
    """Round-robins compress (byte-checked), decompress and verify."""
    try:
        client = ServiceClient(address, timeout=15.0)
    except OSError as exc:
        stats.violation(f"good[{index}]: could not connect: {exc}")
        return
    containers = {}
    turn = 0
    with client:
        while not stop.is_set():
            name, text, serial = corpus[turn % len(corpus)]
            try:
                op = ("compress", "decompress", "verify")[turn % 3]
                if op == "compress" or name not in containers:
                    header, payload = client.compress(text)
                    if _check_reply(stats, "compress", header):
                        if payload != serial:
                            stats.violation(
                                f"compress({name}): container differs from "
                                f"serial path ({len(payload)} vs "
                                f"{len(serial)} bytes)"
                            )
                        containers[name] = payload
                elif op == "decompress":
                    header, _ = client.decompress(containers[name])
                    _check_reply(stats, "decompress", header)
                else:
                    header, _ = client.verify(containers[name])
                    if _check_reply(stats, "verify", header) and (
                        header.get("verify_exit_code") != 0
                    ):
                        stats.violation(
                            f"verify({name}): good container reported "
                            f"exit {header.get('verify_exit_code')}"
                        )
            except ProtocolError as exc:
                # A conforming server never hangs up on this client's
                # well-formed traffic — except when drain raced the send.
                if not stop.is_set():
                    stats.violation(f"good[{index}]: {exc}")
                return
            except OSError as exc:
                if not stop.is_set():
                    stats.violation(f"good[{index}]: socket error: {exc}")
                return
            turn += 1


def _deadline_client(address, stats, stop):
    """Sends slow ops with tiny deadlines: every reply must be a 408."""
    try:
        client = ServiceClient(address, timeout=15.0)
    except OSError as exc:
        stats.violation(f"deadline: could not connect: {exc}")
        return
    with client:
        while not stop.is_set():
            try:
                header, _ = client.request("sleep", deadline_ms=30, seconds=2.0)
                if header.get("ok"):
                    stats.violation(f"deadline: slow op beat a 30ms deadline")
                else:
                    _check_reply(stats, "deadline", header)
            except (ProtocolError, OSError) as exc:
                if not stop.is_set():
                    stats.violation(f"deadline: {exc}")
                return
            time.sleep(0.05)


def _breaker_client(address, stats, stop):
    """Bursts injected failures, then watches the breaker shed (503)."""
    try:
        client = ServiceClient(address, timeout=15.0)
    except OSError as exc:
        stats.violation(f"breaker: could not connect: {exc}")
        return
    with client:
        while not stop.is_set():
            try:
                header, _ = client.request("fail")
                _check_reply(stats, "breaker", header)
            except (ProtocolError, OSError) as exc:
                if not stop.is_set():
                    stats.violation(f"breaker: {exc}")
                return
            time.sleep(0.02)


def _fault_client(fault, address, stats, stop):
    """Repeats one hostile behaviour; asserts typed-reply-or-close."""
    turn = 0
    while not stop.is_set():
        plan = ClientFaultPlan(fault, seed=turn, reply_timeout=6.0)
        try:
            outcome = plan.run(address)
        except OSError as exc:
            if not stop.is_set():
                stats.violation(f"{fault}: connect failed: {exc}")
            return
        reply = outcome["reply"]
        if fault == "disconnect":
            stats.count(f"{fault}.sent")
        elif reply is not None:
            if reply.get("ok") or "error" not in reply:
                stats.violation(f"{fault}: expected typed error, got {reply}")
            else:
                stats.count(f"{fault}.code_{reply.get('code')}")
        elif outcome["closed"]:
            stats.count(f"{fault}.closed")
        else:
            stats.violation(f"{fault}: no reply and no close (leaked thread?)")
        turn += 1
        time.sleep(0.1)


def _start_server(metrics_path, extra=(), subcommand="serve", base_args=None):
    """Launch one ``repro <subcommand>`` process, return (proc, address).

    The fleet soak reuses this with ``subcommand="fleet"`` — both
    subcommands print the same ``serving on <address> ...`` banner.
    """
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    if base_args is None:
        base_args = SERVER_ARGS
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", subcommand,
         "--metrics-json", str(metrics_path), *base_args, *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    banner = proc.stdout.readline()
    if "serving on" not in banner:
        proc.kill()
        raise RuntimeError(f"server failed to start: {banner!r}")
    return proc, banner.split()[2]


def _stop_server(proc, stats):
    """SIGTERM, require exit 0 within the drain budget."""
    proc.send_signal(signal.SIGTERM)
    try:
        output, _ = proc.communicate(timeout=20)
    except subprocess.TimeoutExpired:
        proc.kill()
        stats.violation("server did not drain within 20s of SIGTERM")
        return ""
    if proc.returncode != 0:
        stats.violation(f"server exited {proc.returncode} after drain")
    return output


def _check_metrics(metrics_path, stats):
    try:
        snapshot = json.loads(Path(metrics_path).read_text())
    except (OSError, ValueError) as exc:
        stats.violation(f"final metrics snapshot unreadable: {exc}")
        return {}
    if snapshot.get("schema") != "repro.metrics/1":
        stats.violation(f"bad metrics schema: {snapshot.get('schema')!r}")
    if snapshot.get("partial"):
        stats.violation("final drain snapshot must not be marked partial")
    return snapshot.get("counters", {})


def run_smoke(report_path=None):
    """Golden round-trip: three workloads, byte-equal to serial, drain 0."""
    stats = Stats()
    corpus = _workload_texts()
    metrics_path = Path("soak_smoke_metrics.json").resolve()
    proc, address = _start_server(metrics_path)
    try:
        with ServiceClient(address, timeout=30.0) as client:
            for name, text, serial in corpus:
                header, payload = client.compress(text)
                if not header.get("ok"):
                    stats.violation(f"smoke compress({name}): {header}")
                    continue
                if payload != serial:
                    stats.violation(
                        f"smoke compress({name}): not byte-identical to "
                        f"serial ({len(payload)} vs {len(serial)} bytes)"
                    )
                stats.count("smoke.compress_ok")
                header, _ = client.verify(payload)
                if header.get("verify_exit_code") != 0:
                    stats.violation(f"smoke verify({name}): {header}")
                else:
                    stats.count("smoke.verify_ok")
    finally:
        _stop_server(proc, stats)
    counters = _check_metrics(metrics_path, stats)
    return _report(stats, counters, report_path, mode="smoke")


def run_soak(seconds, good_clients, report_path=None):
    """The full mixed-fleet soak (module docstring)."""
    stats = Stats()
    corpus = _workload_texts()
    metrics_path = Path("soak_metrics.json").resolve()
    proc, address = _start_server(metrics_path)
    stop = threading.Event()
    threads = [
        threading.Thread(
            target=_good_client, args=(i, address, corpus, stats, stop)
        )
        for i in range(good_clients)
    ]
    threads.append(
        threading.Thread(target=_deadline_client, args=(address, stats, stop))
    )
    threads.append(
        threading.Thread(target=_breaker_client, args=(address, stats, stop))
    )
    threads.extend(
        threading.Thread(target=_fault_client, args=(f, address, stats, stop))
        for f in CLIENT_FAULTS
    )
    print(
        f"soak: {len(threads)} concurrent clients "
        f"({good_clients} good, 1 deadline, 1 breaker, "
        f"{len(CLIENT_FAULTS)} hostile) for {seconds}s against {address}"
    )
    for thread in threads:
        thread.start()
    time.sleep(seconds)
    stop.set()
    for thread in threads:
        thread.join(timeout=30)
        if thread.is_alive():
            stats.violation(f"client thread {thread.name} failed to stop")
    _stop_server(proc, stats)
    counters = _check_metrics(metrics_path, stats)
    if not counters.get("service.completed"):
        stats.violation("soak completed zero requests — nothing was tested")
    return _report(stats, counters, report_path, mode="soak")


def _report(stats, counters, report_path, mode, interesting=None):
    outcomes, violations = stats.snapshot()
    report = {
        "mode": mode,
        "outcomes": outcomes,
        "server_counters": counters,
        "violations": violations,
        "ok": not violations,
    }
    if report_path:
        Path(report_path).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {report_path}")
    print(f"{mode} outcomes:")
    for label, count in outcomes.items():
        print(f"  {label}: {count}")
    if interesting is None:
        interesting = (
            "service.requests", "service.completed", "service.shed",
            "service.deadline_exceeded", "service.breaker_open",
            "service.protocol_errors", "service.drained", "service.errors",
        )
    print("server counters:")
    for name in interesting:
        print(f"  {name}: {counters.get(name, 0)}")
    if violations:
        print(f"{mode} FAILED: {len(violations)} violation(s)", file=sys.stderr)
        for message in violations:
            print(f"  - {message}", file=sys.stderr)
        return 1
    print(f"{mode} passed: no hangs, no crashes, every reply typed")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="golden round-trip only (fast CI gate)",
    )
    parser.add_argument(
        "--seconds", type=float, default=30.0, help="soak duration"
    )
    parser.add_argument(
        "--clients", type=int, default=3, help="well-behaved client threads"
    )
    parser.add_argument("--report", help="write the JSON report here")
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke(args.report)
    return run_soak(args.seconds, args.clients, args.report)


if __name__ == "__main__":
    sys.exit(main())
