"""Capstone bench — the complete flow of Figures 1 and 2 on one core.

Hybrid ATPG (LFSR pseudo-random phase + PODEM top-up) on a ~500-gate
full-scan core, LZW compression of the top-up cubes, bit-accurate
hardware decompression at a 10x internal clock, and PPSFP verification
that the reconstructed vectors preserve the claimed fault coverage.
Asserts every system-level invariant in one run.
"""

from repro.atpg import hybrid_generate, parallel_fault_simulate
from repro.atpg.hybrid import HybridConfig
from repro.circuit import TestSet, random_circuit
from repro.circuit.faults import collapse_faults
from repro.core import LZWConfig, compress
from repro.hardware import DecompressorModel, analyze_download


def test_end_to_end_flow(benchmark):
    def run():
        core = random_circuit(
            "soc_core", n_inputs=24, n_flops=48, n_gates=500, seed=7
        )
        atpg = hybrid_generate(core, HybridConfig(random_patterns=512))
        config = LZWConfig(char_bits=5, dict_size=256, entry_bits=40)
        stream = atpg.top_up.to_stream()
        result = compress(stream, config)
        hw = DecompressorModel(config, clock_ratio=10)
        run_result = hw.run(result.compressed.to_bits(), len(stream))
        return core, atpg, result, run_result

    core, atpg, result, hw_run = benchmark.pedantic(run, rounds=1, iterations=1)

    # Test generation reached production-grade coverage.
    assert atpg.coverage_percent > 90.0

    # Hardware decompression reproduced the cube stream exactly.
    stream = atpg.top_up.to_stream()
    assert hw_run.scan_stream.covers(stream)

    # The reconstructed vectors, plus the (free) on-chip random patterns,
    # re-detect everything the flow claimed.
    reconstructed = TestSet.from_stream(
        hw_run.scan_stream, atpg.top_up.input_names
    )
    vectors = atpg.random_patterns + list(reconstructed)
    report = parallel_fault_simulate(
        core.combinational_view(), vectors, collapse_faults(core)
    )
    assert len(report.detected) >= atpg.detected

    # And the download is cheaper than shipping the cubes raw.
    timing = analyze_download(result.compressed, 10, double_buffered=True)
    assert timing.tester_cycles < len(stream)

    print(
        f"\nend-to-end: {atpg.coverage_percent:.1f}% coverage, "
        f"{len(atpg.top_up)} top-up cubes, ratio "
        f"{result.ratio_percent:.1f}%, download "
        f"{timing.tester_cycles}/{len(stream)} tester cycles"
    )
