"""Process-fault chaos campaign — the CI chaos smoke job's driver.

Runs the full process-fault grid (worker exception, SIGKILL, hang,
corrupt-result) for a range of seeds against a small supervised batch
and asserts the zero-silent-corruption guarantee: every trial must end
``CORRECT`` (containers byte-identical to the unfaulted serial run) or
``DETECTED`` (a loud, typed failure) — never ``SILENT`` or ``ESCAPED``.

Usage::

    PYTHONPATH=src python benchmarks/chaos_campaign.py --seeds 10 \
        -o CHAOS_report.json

Exit status 0 when the guarantee holds, 1 otherwise; the JSON report is
written either way (it is the CI artifact).  The ``kill`` fault needs a
real process pool, so the campaign runs with ``--workers 2`` by
default; every fault and corruption is a pure function of its
``(fault, seed)`` pair, so a red trial reproduces exactly.
"""

import argparse
import json
import random
import sys
import time
from pathlib import Path

from repro.bitstream import TernaryVector
from repro.core import LZWConfig
from repro.parallel import RetryPolicy
from repro.reliability.campaign import run_process_campaign
from repro.reliability.chaos import PROCESS_FAULTS

CONFIG = LZWConfig(char_bits=4, dict_size=64, entry_bits=20)


def build_streams():
    """The campaign workloads: two small deterministic cube streams."""
    rng = random.Random(20030306)
    return [
        TernaryVector.random(500, x_density=0.7, rng=rng),
        TernaryVector.random(350, x_density=0.4, rng=rng),
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seeds", type=int, default=10, help="seeds per fault class (default 10)"
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="pool size ('kill' is bumped to >= 2 regardless; default 2)",
    )
    parser.add_argument(
        "--faults", nargs="*", default=list(PROCESS_FAULTS),
        choices=PROCESS_FAULTS, help="fault classes to run (default: all)",
    )
    parser.add_argument(
        "--shard-timeout", type=float, default=2.0,
        help="per-shard timeout so 'hang' trials converge (default 2.0s)",
    )
    parser.add_argument(
        "-o", "--output", default="CHAOS_report.json",
        help="report path (default CHAOS_report.json)",
    )
    args = parser.parse_args(argv)

    streams = build_streams()
    started = time.perf_counter()
    result = run_process_campaign(
        CONFIG,
        streams,
        faults=tuple(args.faults),
        seeds=range(args.seeds),
        workers=args.workers,
        shard_bits=150,
        retry_policy=RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0),
        shard_timeout=args.shard_timeout,
        on_failure="degrade",
    )
    elapsed = time.perf_counter() - started

    report = result.to_json()
    report["faults"] = list(args.faults)
    report["seeds"] = args.seeds
    report["workers"] = args.workers
    report["seconds"] = round(elapsed, 3)
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    print(result.summary())
    print(f"{elapsed:.1f}s, report written to {args.output}")
    if not result.ok:
        print("CHAOS CAMPAIGN FAILED: silent corruption or escaped exception",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
