"""Microbenchmarks — raw throughput of the core engines.

Unlike the table benches (one-shot experiments), these are true
pytest-benchmark measurements over repeated rounds: encoder, software
decoder and the cycle-accurate hardware model on a fixed mid-size
workload, so regressions in the hot loops show up as timing changes.
"""

import pytest

from repro.core import LZWConfig, LZWEncoder, decode
from repro.hardware import DecompressorModel
from repro.workloads import build_testset

CONFIG = LZWConfig(char_bits=7, dict_size=1024, entry_bits=63)


@pytest.fixture(scope="module")
def stream():
    return build_testset("s9234f", scale=0.25).to_stream()


@pytest.fixture(scope="module")
def compressed(stream):
    return LZWEncoder(CONFIG).encode(stream)


def test_encoder_throughput(benchmark, stream):
    result = benchmark(lambda: LZWEncoder(CONFIG).encode(stream))
    assert result.num_codes > 0


def test_decoder_throughput(benchmark, compressed):
    result = benchmark(lambda: decode(compressed))
    assert len(result) == compressed.original_bits


def test_hardware_model_throughput(benchmark, compressed):
    bits = compressed.to_bits()

    def run():
        model = DecompressorModel(CONFIG, clock_ratio=10)
        return model.run(bits, compressed.original_bits)

    result = benchmark(run)
    assert result.codes_processed == compressed.num_codes
