"""Throughput benchmarks — core engines and the sharded batch pipeline.

Two personalities:

* Under pytest (``pytest benchmarks/bench_throughput.py``) the
  pytest-benchmark measurements at the bottom time the encoder, the
  software decoder and the cycle-accurate hardware model over repeated
  rounds, so regressions in the hot loops show up as timing changes.

* As a script (``PYTHONPATH=src python benchmarks/bench_throughput.py``)
  it runs the batch-engine throughput experiment: the paper corpus is
  compressed serially (one ``compress`` call per workload, no sharding)
  and then through ``compress_batch`` with pattern-aligned shards at
  several worker counts, asserting the determinism contract (identical
  containers at every worker count) and writing ``BENCH_throughput.json``
  at the repo root.  Numbers are *measured*, machine facts included —
  on a single-core container the parallel runs cannot beat serial, and
  the JSON says so rather than pretending otherwise.

Every timed pass runs with a :mod:`repro.observability` recorder
attached, so the report breaks the wall clock down by pipeline stage
(``plan``/``encode``/``reassemble`` in the parent, encode/assign summed
across worker shards) and carries the deterministic counter snapshot of
the reference run alongside the timings.
"""

import argparse
import json
import os
import platform
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro.core import LZWConfig, LZWEncoder, compress, compress_batch, decode
from repro.observability import (
    SCHEMA_VERSION,
    CompositeRecorder,
    CounterRecorder,
    SpanRecorder,
)
from repro.workloads import DEFAULT_CORPUS, build_corpus, build_testset

CONFIG = LZWConfig(char_bits=7, dict_size=1024, entry_bits=63)

#: Target shard size for the batch runs — ~590 characters at the paper
#: config: the throughput/ratio sweet spot on this corpus (smaller
#: shards encode faster but restart the dictionary more often).
SHARD_BITS = 4096

WORKER_COUNTS = (1, 2, 4)

_REPO_ROOT = Path(__file__).resolve().parent.parent
_DEFAULT_OUTPUT = _REPO_ROOT / "BENCH_throughput.json"


def _mb(bits: int) -> float:
    """Bits → decimal megabytes (the MB/s denominator)."""
    return bits / 8 / 1e6


def _peak_rss_bytes() -> int:
    """The process's peak resident set size so far, in bytes.

    ``ru_maxrss`` is a lifetime high-water mark: sampled after each
    stage it tells you which stage *raised* the peak (the first stage
    whose sample equals the final value is the memory-dominant one),
    not each stage's isolated footprint.  Linux reports kilobytes,
    macOS bytes; 0 on platforms without ``resource``.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform != "darwin":
        peak *= 1024
    return peak


def run_serial(streams, engine="auto"):
    """Unsharded baseline: one plain ``compress`` per workload.

    ``engine`` picks the encoder implementation (``auto`` resolves to
    the fast path; ``reference`` is the conformance oracle).  Returns
    the total seconds, the per-workload results and the stage breakdown
    the attached :class:`SpanRecorder` measured (``encode`` is the LZW
    loop, ``assign`` the decode that materialises the X-filled stream).
    """
    config = replace(CONFIG, engine=engine)
    spans = SpanRecorder()
    start = time.perf_counter()
    results = [compress(stream, config, recorder=spans) for stream in streams]
    seconds = time.perf_counter() - start
    stages = {
        "encode": round(spans.seconds("encode"), 4),
        "assign": round(spans.seconds("assign"), 4),
    }
    return seconds, results, stages


def _batch_stage_breakdown(spans: SpanRecorder) -> dict:
    """Fold one batch pass's spans into the per-stage report entry.

    Parent stages are exact-name sums; the per-shard worker spans come
    back merged under ``shard[i.j].`` labels and are aggregated into
    CPU-seconds totals (they overlap in wall time when workers > 1).
    """
    shard_encode = shard_assign = 0.0
    for name, seconds in spans.iter_named("shard["):
        if name.endswith(".encode"):
            shard_encode += seconds
        elif name.endswith(".assign"):
            shard_assign += seconds
    return {
        "plan": round(spans.seconds("plan"), 4),
        "encode_wall": round(spans.seconds("encode"), 4),
        "reassemble": round(spans.seconds("reassemble"), 4),
        "shard_encode_cpu": round(shard_encode, 4),
        "shard_assign_cpu": round(shard_assign, 4),
    }


def run_batch(streams, pattern_bits, workers, seed_mode="cold"):
    """One sharded batch pass at a fixed pool size, instrumented.

    ``seed_mode`` selects the warm-dictionary plan (``cold`` /
    ``preamble`` / ``wave``).  Returns seconds, the batch items, the
    stage breakdown and the deterministic counter snapshot (identical
    at every pool size).
    """
    counters = CounterRecorder()
    spans = SpanRecorder()
    recorder = CompositeRecorder([counters, spans])
    start = time.perf_counter()
    items = compress_batch(
        CONFIG,
        streams,
        workers=workers,
        shard_bits=SHARD_BITS,
        pattern_bits=pattern_bits,
        recorder=recorder,
        seed_plan=seed_mode,
    )
    seconds = time.perf_counter() - start
    return seconds, items, _batch_stage_breakdown(spans), counters.snapshot()


def run_experiment(scale: float, workers=WORKER_COUNTS) -> dict:
    corpus = build_corpus(DEFAULT_CORPUS, scale=scale)
    names = [name for name, _ in corpus]
    streams = [testset.to_stream() for _, testset in corpus]
    pattern_bits = [testset.width for _, testset in corpus]
    total_bits = sum(len(stream) for stream in streams)

    # Serial passes, both engines: ``serial`` is the shipping fast path
    # (what ``auto`` resolves to); the reference oracle runs in the same
    # process so the engine speedup is a same-machine, same-load ratio.
    serial_seconds, serial_results, serial_stages = run_serial(streams, "fast")
    serial_bits = sum(r.compressed_bits for r in serial_results)
    rss_after_serial = _peak_rss_bytes()
    ref_seconds, ref_results, ref_stages = run_serial(streams, "reference")
    rss_after_reference = _peak_rss_bytes()
    for fast_r, ref_r in zip(serial_results, ref_results):
        if fast_r.compressed.codes != ref_r.compressed.codes:
            raise AssertionError(
                "fast and reference engines emitted different codes — "
                "byte-identity contract violated"
            )

    parallel_runs = []
    reference_containers = None
    reference_counters = None
    for count in workers:
        seconds, items, stages, counters = run_batch(streams, pattern_bits, count)
        containers = [item.container for item in items]
        if reference_containers is None:
            reference_containers = containers
            reference_counters = counters
            for item, stream in zip(items, streams):
                if not item.verify(stream):
                    raise AssertionError("batch output does not cover its input")
            batch_bits = sum(item.compressed_bits for item in items)
            shard_counts = [item.num_shards for item in items]
        else:
            if containers != reference_containers:
                raise AssertionError(
                    f"workers={count} changed the output bytes — "
                    "determinism contract violated"
                )
            if counters != reference_counters:
                raise AssertionError(
                    f"workers={count} changed the merged counters — "
                    "recorder determinism violated"
                )
        parallel_runs.append(
            {
                "workers": count,
                "seconds": round(seconds, 4),
                "mb_per_s": round(_mb(total_bits) / seconds, 5),
                "speedup_vs_serial": round(serial_seconds / seconds, 3),
                "stages": stages,
                "peak_rss_bytes": _peak_rss_bytes(),
            }
        )

    ratio_serial = 100.0 * (1.0 - serial_bits / total_bits)
    ratio_batch = 100.0 * (1.0 - batch_bits / total_bits)

    # Seed-mode ablation: the same corpus and shard plan, warm.  Cold
    # reuses the workers=1 pass above; preamble and wave re-run it with
    # the planner engaged.  Ratio and bytes are deterministic; only the
    # seconds are machine facts.
    seed_ablation = [
        {
            "mode": "cold",
            "seconds": parallel_runs[0]["seconds"],
            "ratio_percent": round(ratio_batch, 2),
            "ratio_delta_vs_serial": round(ratio_batch - ratio_serial, 2),
            "seeded_shards": 0,
        }
    ]
    warm_runs = {}
    for mode in ("preamble", "wave"):
        seconds, items, _stages, counters = run_batch(
            streams, pattern_bits, 1, seed_mode=mode
        )
        for item, stream in zip(items, streams):
            if not item.verify(stream):
                raise AssertionError(
                    f"{mode}-seeded batch output does not cover its input"
                )
        bits = sum(item.compressed_bits for item in items)
        ratio = 100.0 * (1.0 - bits / total_bits)
        warm_runs[mode] = {"seconds": seconds, "ratio": ratio}
        seed_ablation.append(
            {
                "mode": mode,
                "seconds": round(seconds, 4),
                "ratio_percent": round(ratio, 2),
                "ratio_delta_vs_serial": round(ratio - ratio_serial, 2),
                "seeded_shards": counters.get("counters", {}).get(
                    "batch.seeded_shards", 0
                ),
            }
        )

    # The tentpole contract, asserted in-run so a committed report can
    # never claim it without having measured it: warm sharding holds
    # the serial ratio (within 3 points) while the sharded fast path
    # stays >= 2x faster than the reference serial encode — the
    # machine-independent speedup axis on a single-core host.
    warm_ratio = warm_runs["wave"]["ratio"]
    warm_seconds = warm_runs["wave"]["seconds"]
    ratio_gap = ratio_serial - warm_ratio
    if ratio_gap > 3.0:
        raise AssertionError(
            f"wave-seeded sharding lost {ratio_gap:.2f} ratio points vs "
            "serial (contract: <= 3)"
        )
    warm_speedup = ref_seconds / warm_seconds
    if warm_speedup < 2.0:
        raise AssertionError(
            f"wave-seeded sharded encode is only {warm_speedup:.2f}x the "
            "reference serial pass (contract: >= 2x)"
        )

    return {
        "benchmark": "parallel sharded batch compression",
        "command": "PYTHONPATH=src python benchmarks/bench_throughput.py",
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "config": {
            "char_bits": CONFIG.char_bits,
            "dict_size": CONFIG.dict_size,
            "entry_bits": CONFIG.entry_bits,
        },
        "scale": scale,
        "shard_bits": SHARD_BITS,
        "corpus": [
            {
                "name": name,
                "original_bits": len(stream),
                "shards": shards,
            }
            for name, stream, shards in zip(names, streams, shard_counts)
        ],
        "total_original_bits": total_bits,
        "serial": {
            "engine": "fast",
            "seconds": round(serial_seconds, 4),
            "mb_per_s": round(_mb(total_bits) / serial_seconds, 5),
            "encode_mb_per_s": round(
                _mb(total_bits) / serial_stages["encode"], 5
            ),
            "ratio_percent": round(ratio_serial, 2),
            "stages": serial_stages,
            "peak_rss_bytes": rss_after_serial,
        },
        "serial_reference": {
            "engine": "reference",
            "seconds": round(ref_seconds, 4),
            "mb_per_s": round(_mb(total_bits) / ref_seconds, 5),
            "encode_mb_per_s": round(_mb(total_bits) / ref_stages["encode"], 5),
            "stages": ref_stages,
            "peak_rss_bytes": rss_after_reference,
        },
        # Same-run, same-machine ratio of the two engines — the
        # machine-independent number the perf gate checks.
        "engine_speedup": {
            "encode_stage": round(
                ref_stages["encode"] / serial_stages["encode"], 2
            ),
            "overall": round(ref_seconds / serial_seconds, 2),
        },
        "parallel": parallel_runs,
        "metrics_schema": SCHEMA_VERSION,
        "counters": reference_counters.get("counters", {}),
        "ratio_percent_sharded": round(ratio_batch, 2),
        "ratio_delta_percent": round(ratio_batch - ratio_serial, 2),
        "seed_mode_ablation": seed_ablation,
        "warm_sharded": {
            "mode": "wave",
            "seconds": round(warm_seconds, 4),
            "mb_per_s": round(_mb(total_bits) / warm_seconds, 5),
            "ratio_percent": round(warm_ratio, 2),
            "ratio_delta_vs_serial": round(warm_ratio - ratio_serial, 2),
            "speedup_vs_reference_serial": round(warm_speedup, 2),
        },
        "deterministic_across_workers": True,
        "peak_rss_bytes": _peak_rss_bytes(),
        "note": (
            "peak_rss_bytes samples the process high-water mark after "
            "each stage (ru_maxrss; monotone, so the stage that first "
            "reaches the final value set the peak). "
            "Speedup is bounded by the machine's cpu_count; per-shard "
            "dictionaries trade ratio_delta_percent for parallelism — "
            "seed_mode_ablation shows the warm planner buying that "
            "ratio back (wave chains each shard from its predecessor's "
            "final dictionary). "
            "stages come from the observability recorder: *_cpu entries "
            "sum worker-shard spans and overlap in wall time."
        ),
    }


def check_against_baseline(
    report, baseline_path, max_regression, min_speedup, min_sharded_ratio=None
):
    """Regression gate: compare a fresh run against the committed JSON.

    Returns a list of human-readable failure strings (empty = gate
    passes).  Three independent checks:

    * fast-path serial MB/s must not regress more than ``max_regression``
      (fraction) below the committed baseline — catches absolute slowdowns
      on comparable machines;
    * the same-run engine speedup (reference encode stage / fast encode
      stage) must stay at or above ``min_speedup`` — machine-independent,
      so it holds even when the host is loaded or slower than the one
      that produced the baseline;
    * the warm (wave-seeded) sharded ratio must stay at or above
      ``min_sharded_ratio`` percent — fully deterministic, so any dip is
      a real planner/encoder change, never measurement noise.
    """
    baseline = json.loads(Path(baseline_path).read_text())
    failures = []
    base_mb = baseline["serial"]["mb_per_s"]
    cur_mb = report["serial"]["mb_per_s"]
    floor = base_mb * (1.0 - max_regression)
    if cur_mb < floor:
        failures.append(
            f"serial fast-path throughput regressed: {cur_mb} MB/s < "
            f"{floor:.5f} MB/s ({base_mb} baseline - {max_regression:.0%})"
        )
    if min_speedup is not None:
        speedup = report["engine_speedup"]["encode_stage"]
        if speedup < min_speedup:
            failures.append(
                f"engine speedup {speedup}x below required {min_speedup}x "
                "(reference/fast encode-stage, same run)"
            )
    if min_sharded_ratio is not None:
        warm_ratio = report["warm_sharded"]["ratio_percent"]
        if warm_ratio < min_sharded_ratio:
            failures.append(
                f"warm sharded ratio {warm_ratio}% below required "
                f"{min_sharded_ratio}% (wave-seeded, deterministic)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure serial vs sharded-batch compression throughput."
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="corpus vector-count multiplier in (0, 1] (default: 1.0)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=list(WORKER_COUNTS),
        help="pool sizes to measure (default: 1 2 4)",
    )
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=_DEFAULT_OUTPUT,
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--check",
        type=Path,
        metavar="BASELINE_JSON",
        help="regression-gate mode: measure, compare against this "
        "committed report and exit non-zero on regression (the report "
        "file is not rewritten)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.15,
        help="with --check: tolerated fractional MB/s drop vs the "
        "baseline (default 0.15)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="with --check: required same-run reference/fast "
        "encode-stage speedup factor",
    )
    parser.add_argument(
        "--min-sharded-ratio",
        type=float,
        default=None,
        metavar="PERCENT",
        help="with --check: required warm (wave-seeded) sharded "
        "compression ratio in percent; deterministic, so any miss is "
        "a real ratio regression",
    )
    parser.add_argument(
        "--attempts",
        type=int,
        default=3,
        help="with --check: re-measure up to this many times and pass "
        "if any attempt clears the gate (best-of-N noise rejection, "
        "default 3)",
    )
    args = parser.parse_args(argv)

    if args.check is not None:
        # Best-of-N gating: a single wall-clock sample on a shared/loaded
        # host wobbles more than the regression threshold, so re-measure
        # (up to --attempts times) and pass if any attempt clears — the
        # fastest observed run is the least-perturbed one, exactly like
        # timeit's min-of-N.  A true regression fails every attempt.
        failures = []
        for attempt in range(1, args.attempts + 1):
            report = run_experiment(args.scale, tuple(args.workers))
            failures = check_against_baseline(
                report,
                args.check,
                args.max_regression,
                args.min_speedup,
                args.min_sharded_ratio,
            )
            print(
                f"attempt {attempt}/{args.attempts}: "
                f"serial {report['serial']['mb_per_s']} MB/s "
                f"(encode {report['serial']['encode_mb_per_s']} MB/s), "
                f"engine speedup {report['engine_speedup']['encode_stage']}x "
                f"encode-stage / {report['engine_speedup']['overall']}x overall, "
                f"warm sharded ratio {report['warm_sharded']['ratio_percent']}%"
            )
            if not failures:
                print(f"PASS: within {args.max_regression:.0%} of {args.check}")
                return 0
            for failure in failures:
                print(f"attempt {attempt} below baseline: {failure}")
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1

    report = run_experiment(args.scale, tuple(args.workers))
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    print(f"corpus: {', '.join(e['name'] for e in report['corpus'])}")
    print(
        f"serial (fast): {report['serial']['seconds']}s"
        f" ({report['serial']['mb_per_s']} MB/s,"
        f" ratio {report['serial']['ratio_percent']}%)"
    )
    print(
        f"serial (reference): {report['serial_reference']['seconds']}s"
        f" ({report['serial_reference']['mb_per_s']} MB/s);"
        f" engine speedup {report['engine_speedup']['encode_stage']}x"
        f" encode-stage, {report['engine_speedup']['overall']}x overall"
    )
    for run in report["parallel"]:
        stages = run["stages"]
        print(
            f"workers={run['workers']}: {run['seconds']}s"
            f" ({run['mb_per_s']} MB/s, {run['speedup_vs_serial']}x;"
            f" plan {stages['plan']}s, encode {stages['encode_wall']}s,"
            f" reassemble {stages['reassemble']}s)"
        )
    print(
        f"sharded ratio {report['ratio_percent_sharded']}%"
        f" (delta {report['ratio_delta_percent']}%),"
        f" identical bytes at every worker count"
    )
    for entry in report["seed_mode_ablation"]:
        print(
            f"seed-mode {entry['mode']}: ratio {entry['ratio_percent']}%"
            f" (delta {entry['ratio_delta_vs_serial']}% vs serial,"
            f" {entry['seeded_shards']} seeded shards, {entry['seconds']}s)"
        )
    warm = report["warm_sharded"]
    print(
        f"warm sharded ({warm['mode']}): ratio {warm['ratio_percent']}%"
        f" (delta {warm['ratio_delta_vs_serial']}% vs serial)"
        f" at {warm['speedup_vs_reference_serial']}x the reference serial pass"
    )
    print(f"wrote {args.output}")
    return 0


# --- pytest-benchmark measurements (unchanged core-engine microbenches) ---

try:
    import pytest
except ImportError:  # pragma: no cover - script mode without pytest
    pytest = None

if pytest is not None:
    from repro.hardware import DecompressorModel

    @pytest.fixture(scope="module")
    def stream():
        return build_testset("s9234f", scale=0.25).to_stream()

    @pytest.fixture(scope="module")
    def compressed(stream):
        return LZWEncoder(CONFIG).encode(stream)

    def test_encoder_throughput(benchmark, stream):
        result = benchmark(lambda: LZWEncoder(CONFIG).encode(stream))
        assert result.num_codes > 0

    def test_decoder_throughput(benchmark, compressed):
        result = benchmark(lambda: decode(compressed))
        assert len(result) == compressed.original_bits

    def test_hardware_model_throughput(benchmark, compressed):
        bits = compressed.to_bits()

        def run():
            model = DecompressorModel(CONFIG, clock_ratio=10)
            return model.run(bits, compressed.original_bits)

        result = benchmark(run)
        assert result.codes_processed == compressed.num_codes

    def test_batch_engine_matches_serial(stream):
        """Smoke conformance inside the bench module: one batch pass at
        workers=2 must byte-match the workers=1 reference."""
        width = build_testset("s9234f", scale=0.25).width
        kwargs = dict(shard_bits=SHARD_BITS, pattern_bits=width)
        one = compress_batch(CONFIG, [stream], workers=1, **kwargs)
        two = compress_batch(CONFIG, [stream], workers=2, **kwargs)
        assert one[0].container == two[0].container


if __name__ == "__main__":
    sys.exit(main())
