"""Guard bench — every matched workload must validate against its profile.

The substitution argument (DESIGN.md §3) holds only while the synthetic
sets actually exhibit the published statistics; this bench regenerates
all twelve and runs the structural validator over them.
"""

import pytest

from conftest import bench_scale

from repro.workloads import (
    TABLE3_CIRCUITS,
    build_testset,
    validate_testset,
)


def test_workload_validation(benchmark):
    scale = bench_scale()

    def run():
        reports = {}
        for name in TABLE3_CIRCUITS:
            ts = build_testset(name, scale=scale)
            reports[name] = validate_testset(ts, name)
        return reports

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, report in reports.items():
        # Geometry is scale-adjusted, so check the structural properties.
        assert report.checks["x_density"], (name, report.messages)
        assert report.checks["clustering"], (name, report.messages)
        assert report.checks["similarity"], (name, report.messages)
