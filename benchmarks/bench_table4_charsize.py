"""Table 4 — compression vs LZW character size (N=1024, C_MDATA=63).

Shape checks: the ratio improves from 1-bit toward 7-bit characters, and
collapses to ~0 at C_C=10 where the 1024 base codes exhaust the
dictionary ("there are no more compress codes available").
"""

from conftest import run_table

from repro.experiments import table4


def test_table4_charsize(benchmark, lab):
    table = run_table(benchmark, table4, lab, "table4")
    for row_index, name in enumerate(table.column("Test")):
        c1 = float(table.column("C_C=1")[row_index])
        c7 = float(table.column("C_C=7")[row_index])
        c10 = float(table.column("C_C=10")[row_index])
        assert c7 > c1, f"{name}: bigger characters should help X assignment"
        assert abs(c10) < 1.0, f"{name}: C_C=10 must collapse to ~0%"
