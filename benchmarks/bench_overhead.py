"""NullRecorder overhead smoke — the observability tax must stay <= 5%.

The instrumented seams in :class:`repro.core.encoder.LZWEncoder` promise
that with the default :data:`~repro.observability.NULL_RECORDER` the
whole encode pays one attribute read plus one local-bool branch per
event site.  This benchmark holds that promise to a number: it keeps a
faithful copy of the encode loop with every hook deleted (the
commit-local no-hooks baseline), cross-checks that both loops emit the
exact same codes, then times both best-of-N and fails (exit 1) if the
instrumented loop is more than ``--max-overhead-percent`` slower.

Run it as CI does::

    PYTHONPATH=src python benchmarks/bench_overhead.py

If the hooked loop drifts, either the instrumentation grew a per-event
cost outside its ``if recording:`` guards, or this reference copy is
stale — ``_reference_encode`` must be updated in the same commit as any
encoder-loop change (the identical-codes assertion catches semantic
drift, this comment is the reminder for the mechanical part).
"""

import argparse
import sys
import time
from typing import List

from repro.bitstream import TernaryVector, to_characters
from repro.core import LZWConfig, LZWEncoder
from repro.core.dictionary import LZWDictionary
from repro.core.dontcare import ChildSelector
from repro.workloads import build_testset

CONFIG = LZWConfig(char_bits=7, dict_size=1024, entry_bits=63)

#: Timing repetitions; best-of keeps scheduler noise out of the ratio.
DEFAULT_ROUNDS = 5


def _reference_encode(stream: TernaryVector, cfg: LZWConfig) -> List[int]:
    """The encoder's hot loop with every observability hook removed.

    Verbatim control flow of :meth:`LZWEncoder.encode` minus recorder
    lines, stats bookkeeping and the CompressedStream wrapper — the
    fastest this loop can possibly run without hooks, which is what the
    instrumented loop is measured against.
    """
    dictionary = LZWDictionary(cfg)
    chars = to_characters(stream, cfg.char_bits)
    codes: List[int] = []
    if not chars:
        return codes

    selector = ChildSelector(dictionary, cfg)
    buffer = selector.choose_base(chars, 0)
    i = 1
    while i < len(chars):
        choice = selector.choose_child(buffer, chars, i)
        if choice is not None:
            _char, child = choice
            buffer = child
            i += 1
            continue
        codes.append(buffer)
        head = selector.choose_base(chars, i)
        if (
            cfg.reset_on_full
            and not dictionary.is_full
            and dictionary.can_extend(buffer)
            and dictionary.next_code == cfg.dict_size - 1
        ):
            dictionary.reset()
        else:
            dictionary.add(buffer, head)
        buffer = head
        i += 1
    codes.append(buffer)
    return codes


def _best_of_interleaved(rounds: int, fn_a, fn_b):
    """Best-of timings with A/B runs alternated.

    Interleaving keeps one-time warm-up (allocator arenas, page faults)
    from being billed entirely to whichever loop happens to run first —
    back-to-back blocks skew the ratio by double digits on cold starts.
    """
    best_a = best_b = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Assert the NullRecorder observability overhead budget."
    )
    parser.add_argument(
        "--max-overhead-percent",
        type=float,
        default=5.0,
        help="fail if the hooked encode is more than this much slower "
        "than the no-hooks reference (default: 5)",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=DEFAULT_ROUNDS,
        help=f"timing repetitions, best-of (default: {DEFAULT_ROUNDS})",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.5,
        help="workload vector-count multiplier (default: 0.5)",
    )
    args = parser.parse_args(argv)

    stream = build_testset("s13207f", scale=args.scale).to_stream()

    # Semantic guard first: if the reference loop and the instrumented
    # encoder disagree on a single code, the baseline is stale and the
    # timing comparison below would be meaningless.
    hooked = LZWEncoder(CONFIG).encode(stream)
    reference = _reference_encode(stream, CONFIG)
    if list(hooked.codes) != reference:
        print(
            "bench_overhead: reference loop is out of sync with "
            "LZWEncoder.encode — update _reference_encode",
            file=sys.stderr,
        )
        return 2

    ref_seconds, hook_seconds = _best_of_interleaved(
        args.rounds,
        lambda: _reference_encode(stream, CONFIG),
        lambda: LZWEncoder(CONFIG).encode(stream),
    )
    overhead = 100.0 * (hook_seconds / ref_seconds - 1.0)

    print(f"workload: s13207f scale={args.scale} ({len(stream)} bits)")
    print(f"no-hooks reference: {ref_seconds * 1e3:.2f} ms (best of {args.rounds})")
    print(f"NullRecorder encode: {hook_seconds * 1e3:.2f} ms")
    print(f"overhead: {overhead:+.2f}% (budget {args.max_overhead_percent}%)")
    if overhead > args.max_overhead_percent:
        print("bench_overhead: FAIL — overhead budget exceeded", file=sys.stderr)
        return 1
    print("bench_overhead: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
