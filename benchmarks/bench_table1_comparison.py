"""Table 1 — LZW vs LZ77 vs RLE compression ratios (5 ISCAS89 circuits).

Checks the paper's headline claim on regeneration: the don't-care-aware
LZW scheme wins every row.
"""

from conftest import run_table

from repro.experiments import table1


def test_table1_comparison(benchmark, lab):
    table = run_table(benchmark, table1, lab, "table1")
    for row_index in range(len(table.rows)):
        lzw = float(table.column("LZW")[row_index])
        lz77 = float(table.column("LZ77")[row_index])
        rle = float(table.column("RLE")[row_index])
        name = table.column("Test")[row_index]
        assert lzw >= lz77 - 0.5, f"{name}: LZW must not lose to LZ77"
        assert lzw >= rle - 0.5, f"{name}: LZW must not lose to RLE"
        assert lzw > 40.0, f"{name}: LZW ratio implausibly low"
