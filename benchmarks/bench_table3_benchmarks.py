"""Table 3 — the full ISCAS89 + ITC99 benchmark sweep.

Shape check: compression tracks the don't-care density (the paper's
"the amount of compression is proportional to the Don't-Care data
ratio"), verified as a positive rank correlation across the 12 rows.
"""

from conftest import run_table

from repro.experiments import table3


def _rank_correlation(xs, ys):
    """Spearman rank correlation, no scipy needed for 12 points."""
    def ranks(values):
        order = sorted(range(len(values)), key=lambda i: values[i])
        out = [0.0] * len(values)
        for rank, i in enumerate(order):
            out[i] = float(rank)
        return out

    rx, ry = ranks(xs), ranks(ys)
    n = len(xs)
    d2 = sum((a - b) ** 2 for a, b in zip(rx, ry))
    return 1 - 6 * d2 / (n * (n**2 - 1))


def test_table3_benchmarks(benchmark, lab):
    table = run_table(benchmark, table3, lab, "table3")
    density = [float(v) for v in table.column("Don't cares %")]
    ratio = [float(v) for v in table.column("Compression")]
    assert len(table.rows) == 12
    rho = _rank_correlation(density, ratio)
    assert rho > 0.5, f"compression should track X density (rho={rho:.2f})"
    # Densities must match the published profiles they were matched to.
    for name, x in zip(table.column("Test"), density):
        assert 20.0 < x < 98.0, name
