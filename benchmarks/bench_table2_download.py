"""Table 2 — download-time improvement vs decompressor clock ratio.

Shape checks: improvement grows with the clock ratio and stays below the
compression ratio (the serial architecture's 1/k tax), approaching it as
the ratio increases — exactly the paper's 4x/8x/10x progression.
"""

from conftest import run_table

from repro.experiments import table1, table2


def test_table2_download(benchmark, lab):
    table = run_table(benchmark, table2, lab, "table2")
    t1 = table1(lab)
    ratios = {
        row[0]: float(ratio) for row, ratio in zip(t1.rows, t1.column("LZW"))
    }
    for row_index, name in enumerate(table.column("Test")):
        k4 = float(table.column("4x")[row_index])
        k8 = float(table.column("8x")[row_index])
        k10 = float(table.column("10x")[row_index])
        assert k4 < k8 < k10, f"{name}: improvement must grow with clock"
        assert k10 < ratios[name], f"{name}: serial time beats its own ratio?"
        # At 10x the gap to the ratio is the 1/k tax plus small overheads.
        assert ratios[name] - k10 < 16.0, f"{name}: gap too large"
