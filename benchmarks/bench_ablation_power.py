"""Ablation — scan-shift power cost of the dynamic X assignment.

The run-length literature the paper cites fills X bits to minimise scan
transitions; the LZW encoder instead fills them to maximise dictionary
reuse.  This bench quantifies the resulting weighted-transition-count
overhead — the honest cost side of the compression win.
"""

from conftest import run_table

from repro.experiments import ablation_power


def test_ablation_power(benchmark, lab):
    table = run_table(benchmark, ablation_power, lab, "ablation_power")
    for row_index, name in enumerate(table.column("Test")):
        repeat = int(table.column("repeat fill")[row_index])
        lzw = int(table.column("LZW assignment")[row_index])
        # Repeat fill minimises transitions by construction.
        assert repeat <= lzw, name
        overhead = float(
            table.column("LZW overhead % vs repeat")[row_index]
        )
        assert overhead >= 0.0, name
