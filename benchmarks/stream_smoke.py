"""Streaming-codec smoke: bounded memory, capped-RSS pipe round-trip.

The streaming codec's promise is that peak memory is a function of the
chunk size and the dictionary, never of the input length.  This smoke
proves it two ways, fast enough for CI:

1. **Allocation flatness** — stream a corpus and a 10x larger corpus
   through ``StreamEncoder`` + ``StreamContainerWriter`` (sink:
   ``os.devnull``) under :mod:`tracemalloc` and assert the traced peak
   for the 10x input stays within 2x of the base peak.  ``tracemalloc``
   sees only Python allocations, so the baseline is tiny and a
   buffer-the-world regression (the one-shot path allocates the whole
   character list: ~28 bytes/char) shows up as an order-of-magnitude
   blowup, not noise.

2. **Capped pipe round-trip** — run the real CLI as two subprocesses,
   ``repro compress --stream | repro decompress --stream``, each under
   a hard ``RLIMIT_DATA`` ceiling (``--rss-cap-mb``, default 256).  The
   kernel kills any stage that tries to buffer past the cap; the smoke
   then byte-compares the restored output against the corpus.

Exits non-zero on any violation.  Usage::

    PYTHONPATH=src python benchmarks/stream_smoke.py [--base-kb 48]
        [--rss-cap-mb 256] [--chunk-bytes 65536]
"""

import argparse
import io
import os
import resource
import subprocess
import sys
import tempfile
import tracemalloc
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bitstream import TernaryVector  # noqa: E402
from repro.core import LZWConfig, StreamEncoder  # noqa: E402
from repro.streamio import StreamContainerWriter  # noqa: E402


def make_corpus(size: int) -> bytes:
    line = (
        b"streaming smoke corpus: repeated structure, repeated structure, "
        b"line %06d\n"
    )
    out = bytearray()
    i = 0
    while len(out) < size:
        out += line % i
        i += 1
    return bytes(out[:size])


def traced_stream_peak(data: bytes, chunk_bytes: int) -> int:
    """Peak traced allocation while streaming ``data`` to /dev/null."""
    config = LZWConfig()
    with open(os.devnull, "wb") as sink:
        tracemalloc.start()
        try:
            enc = StreamEncoder(config)
            writer = StreamContainerWriter(config, sink)
            for off in range(0, len(data), chunk_bytes):
                buf = data[off : off + chunk_bytes]
                writer.write_codes(enc.feed(TernaryVector.from_int(
                    int.from_bytes(buf, "little"), len(buf) * 8
                )))
            writer.finalize(enc.finalize(), enc.original_bits)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
    return peak


def check_allocation_flatness(base_kb: int, chunk_bytes: int) -> bool:
    base = make_corpus(base_kb * 1024)
    big = make_corpus(base_kb * 1024 * 10)
    peak_base = traced_stream_peak(base, chunk_bytes)
    peak_big = traced_stream_peak(big, chunk_bytes)
    ratio = peak_big / max(peak_base, 1)
    flat = ratio <= 2.0
    print(
        f"allocation flatness: base {len(base)} B -> peak {peak_base} B; "
        f"10x {len(big)} B -> peak {peak_big} B; ratio {ratio:.2f}x "
        f"({'OK' if flat else 'FAIL: peak tracks input size'})"
    )
    return flat


def rlimit_preexec(cap_bytes: int):
    def apply() -> None:
        resource.setrlimit(resource.RLIMIT_DATA, (cap_bytes, cap_bytes))

    return apply


def check_capped_pipe(base_kb: int, cap_mb: int, chunk_bytes: int) -> bool:
    corpus = make_corpus(base_kb * 1024 * 4)
    cap = cap_mb * 1024 * 1024
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    with tempfile.TemporaryDirectory() as tmp:
        corpus_path = Path(tmp) / "corpus.bin"
        corpus_path.write_bytes(corpus)
        compress = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "compress", str(corpus_path),
             "--stream", "--chunk-bytes", str(chunk_bytes), "-o", "-"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=env, preexec_fn=rlimit_preexec(cap),
        )
        restored_path = Path(tmp) / "restored.bin"
        decompress = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "decompress", "-",
             "-o", str(restored_path)],
            stdin=compress.stdout, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, env=env,
            preexec_fn=rlimit_preexec(cap),
        )
        compress.stdout.close()  # let decompress see EOF
        _, comp_err = compress.communicate()
        _, dec_err = decompress.communicate()
        if compress.returncode != 0:
            print(f"capped pipe: compress stage failed rc={compress.returncode} "
                  f"under {cap_mb} MiB RLIMIT_DATA:\n{comp_err.decode()}")
            return False
        if decompress.returncode != 0:
            print(f"capped pipe: decompress stage failed "
                  f"rc={decompress.returncode} under {cap_mb} MiB "
                  f"RLIMIT_DATA:\n{dec_err.decode()}")
            return False
        restored = restored_path.read_bytes()
    ok = restored == corpus
    print(
        f"capped pipe round-trip: {len(corpus)} B through compress|decompress "
        f"under {cap_mb} MiB RLIMIT_DATA -> "
        f"{'byte-identical OK' if ok else 'FAIL: output differs'}"
    )
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--base-kb", type=int, default=24,
                        help="base corpus size in KiB (10x for flatness)")
    parser.add_argument("--rss-cap-mb", type=int, default=256,
                        help="RLIMIT_DATA cap for each pipe stage")
    # The base corpus must span several chunks, otherwise the base
    # run's effective chunk (and so its per-chunk allocation peak) is
    # smaller than the 10x run's and the comparison is meaningless.
    parser.add_argument("--chunk-bytes", type=int, default=8192)
    args = parser.parse_args(argv)
    if args.base_kb * 1024 < 3 * args.chunk_bytes:
        parser.error("--base-kb must cover at least 3 chunks")

    ok = check_allocation_flatness(args.base_kb, args.chunk_bytes)
    ok = check_capped_pipe(args.base_kb, args.rss_cap_mb,
                           args.chunk_bytes) and ok
    print("stream smoke:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
