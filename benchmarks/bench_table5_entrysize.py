"""Table 5 — compression vs dictionary entry width (N=1024, C_C=7).

Shape checks: "the larger the dictionary entry, the higher the
compression", saturating once the longest phrase fits.
"""

from conftest import run_table

from repro.experiments import table5

ENTRY_SIZES = (63, 127, 255, 511)


def test_table5_entrysize(benchmark, lab):
    table = run_table(benchmark, table5, lab, "table5")
    for row_index, name in enumerate(table.column("Test")):
        values = [
            float(table.column(f"C_MDATA={e}")[row_index]) for e in ENTRY_SIZES
        ]
        # Non-decreasing up to a small plateau tolerance.
        for a, b in zip(values, values[1:]):
            assert b >= a - 0.75, f"{name}: larger entries should not hurt"
        assert values[-1] >= values[0], name
