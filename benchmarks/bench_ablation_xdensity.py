"""Ablation — compression vs don't-care density (Section 6 claim).

"In general, the amount of compression is proportional to the Don't-Care
data ratio": sweep the density at fixed size and assert monotone growth
of the LZW ratio.
"""

from conftest import run_table

from repro.experiments import ablation_xdensity


def test_ablation_xdensity(benchmark, lab):
    table = run_table(benchmark, ablation_xdensity, lab, "ablation_xdensity")
    lzw = [float(v) for v in table.column("LZW")]
    for a, b in zip(lzw, lzw[1:]):
        assert b > a - 1.0, "LZW ratio should grow with X density"
    assert lzw[-1] > lzw[0] + 10.0
