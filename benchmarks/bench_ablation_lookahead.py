"""Ablation — dynamic-assignment heuristic and sliding-window depth.

DESIGN.md flags the exact child-selection rule as the paper's main
under-specification; this bench quantifies how much the choice matters:
the bounded-lookahead policy must beat the naive lowest-code policy, and
deeper windows must not hurt.
"""

from conftest import run_table

from repro.experiments import ablation_lookahead

WINDOWS = (1, 2, 4, 8)


def test_ablation_lookahead(benchmark, lab):
    table = run_table(benchmark, ablation_lookahead, lab, "ablation_lookahead")
    for row_index, name in enumerate(table.column("Test")):
        first = float(table.column("policy:first")[row_index])
        w4 = float(table.column("W=4")[row_index])
        assert w4 >= first - 0.25, f"{name}: lookahead should beat 'first'"
        deep = float(table.column("W=8")[row_index])
        shallow = float(table.column("W=1")[row_index])
        assert deep >= shallow - 0.75, f"{name}: deeper window hurt badly"
