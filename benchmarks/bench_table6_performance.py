"""Table 6 — download performance vs entry width, with longest strings.

Shape checks: performance at a 10x clock grows with C_MDATA and levels
out, and the "longest string" column explains the saturation — once
C_MDATA exceeds the longest phrase the encoder forms, growing the
memory word buys nothing.
"""

from conftest import run_table

from repro.experiments import table6

ENTRY_SIZES = (63, 127, 255)


def test_table6_performance(benchmark, lab):
    table = run_table(benchmark, table6, lab, "table6")
    for row_index, name in enumerate(table.column("Test")):
        longest = int(table.column("Longest string (bits)")[row_index])
        perf = [
            float(table.column(f"perf@{e}")[row_index]) for e in ENTRY_SIZES
        ]
        for a, b in zip(perf, perf[1:]):
            assert b >= a - 0.75, f"{name}: perf must not drop with C_MDATA"
        assert longest > 0 and longest % 7 == 0, name
        # Saturation: once C_MDATA >= longest string, perf stops moving.
        saturated = [
            p for e, p in zip(ENTRY_SIZES, perf) if e >= longest
        ]
        for a, b in zip(saturated, saturated[1:]):
            assert abs(a - b) < 0.5, f"{name}: no gain expected past {longest}"
