"""Ablation — multi-chain scan arrangements.

The paper's single-chain experiments are the natural case for a
dictionary coder.  Splitting the cells across independent per-chain
engines fragments the dictionary, so it cannot beat the single chain by
more than noise.  Cycle-interleaving is subtler: it reorders the stream
(and adds free idle slots for unequal chains), which usually costs a
little but can *help* when per-cycle cross-chain columns happen to be
more repetitive than the per-vector layout — the s15850f x8 point shows
exactly that, so the assertion brackets it instead of forbidding it.
"""

from conftest import run_table

from repro.experiments import ablation_multichain

CHAINS = (1, 2, 4, 8)


def test_ablation_multichain(benchmark, lab):
    table = run_table(
        benchmark, ablation_multichain, lab, "ablation_multichain"
    )
    for row_index, name in enumerate(table.column("Test")):
        single = float(table.column("single")[row_index])
        for n in CHAINS[1:]:
            per_chain = float(table.column(f"per-chain x{n}")[row_index])
            interleaved = float(table.column(f"interleaved x{n}")[row_index])
            # Dictionary fragmentation cannot beat the shared history.
            assert per_chain <= single + 1.5, (name, n)
            # Interleaving may move either way, but never catastrophically.
            assert abs(interleaved - single) < 15.0, (name, n)
            assert interleaved > 0.0, (name, n)
