"""Shared infrastructure for the table benchmarks.

Each ``bench_tableN`` module regenerates one paper table at full scale
(override with ``REPRO_BENCH_SCALE=0.2`` for a quick pass), times the
run via pytest-benchmark (one round — these are experiments, not
microbenchmarks), prints the rendered table and archives it under
``benchmarks/results/``.
"""

import os
from pathlib import Path

import pytest

from repro.experiments import Lab

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    """Workload scale for this run (env-overridable)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def lab():
    """One shared workload/compression cache across every table bench."""
    return Lab(scale=bench_scale())


def run_table(benchmark, runner, lab, name: str):
    """Generate a table once under the benchmark timer, then archive it."""
    table = benchmark.pedantic(lambda: runner(lab), rounds=1, iterations=1)
    text = table.render()
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    return table
