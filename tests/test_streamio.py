"""The v5 streaming frame journal: format, round-trip, typed failures."""

import hashlib
import io
import random
import struct
import zlib

import pytest

from repro.bitstream import TernaryVector
from repro.container import container_version, decode_container, load_seeded
from repro.core import LZWConfig, StreamEncoder, compress
from repro.reliability.errors import ContainerError
from repro.streamio import (
    DEFAULT_CODES_PER_FRAME,
    FRAME_DATA,
    FRAME_DATA_HEADER_SIZE,
    StreamContainerReader,
    StreamContainerWriter,
    VERSION_STREAM,
    decode_stream_bytes,
    frame_seal,
    iter_decode_stream,
    pack_chars,
    pack_frame_payload,
    read_stream_header,
    scan_stream,
    stream_header_bytes,
)

CFG = LZWConfig(char_bits=4, dict_size=64, entry_bits=32)


def build_stream_container(stream, config=CFG, codes_per_frame=32,
                           chunk_bits=500):
    enc = StreamEncoder(config)
    sink = io.BytesIO()
    writer = StreamContainerWriter(config, sink, codes_per_frame=codes_per_frame)
    for i in range(0, len(stream), chunk_bits):
        writer.write_codes(enc.feed(stream[i : i + chunk_bits]))
    writer.finalize(enc.finalize(), enc.original_bits)
    return sink.getvalue()


def random_stream(n=3000, seed=1, x_density=0.3):
    return TernaryVector.random(n, x_density=x_density, rng=random.Random(seed))


class TestHeader:
    def test_round_trip(self):
        config = LZWConfig(char_bits=5, dict_size=256, entry_bits=40,
                           reset_on_full=True)
        parsed = read_stream_header(stream_header_bytes(config))
        assert parsed.char_bits == 5
        assert parsed.dict_size == 256
        assert parsed.entry_bits == 40
        assert parsed.reset_on_full is True

    def test_version_is_5(self):
        data = stream_header_bytes(CFG)
        assert data[:4] == b"LZWT" and data[4] == VERSION_STREAM == 5
        assert container_version(build_stream_container(random_stream(200))) == 5

    def test_header_crc_detected(self):
        data = bytearray(stream_header_bytes(CFG))
        data[6] ^= 0x01
        with pytest.raises(ContainerError):
            read_stream_header(bytes(data))


class TestRoundTrip:
    def test_equals_one_shot(self):
        stream = random_stream()
        data = build_stream_container(stream)
        assert decode_stream_bytes(data) == compress(stream, CFG).assigned_stream

    def test_decode_container_dispatches_v5(self):
        stream = random_stream(1500, seed=2)
        data = build_stream_container(stream)
        assert decode_container(data) == compress(stream, CFG).assigned_stream

    def test_load_seeded_refuses_v5_with_typed_error(self):
        data = build_stream_container(random_stream(400, seed=3))
        with pytest.raises(ContainerError):
            load_seeded(data)

    def test_empty_input(self):
        data = build_stream_container(TernaryVector.xs(0))
        scan = scan_stream(data)
        assert scan.error is None
        assert scan.terminal is not None and scan.terminal.frame_count == 0
        assert len(decode_stream_bytes(data)) == 0

    def test_codes_split_across_frames_exactly(self):
        stream = random_stream(2000, seed=4)
        data = build_stream_container(stream, codes_per_frame=7)
        scan = scan_stream(data)
        codes = [c for f in scan.frames for c in f.codes]
        assert codes == list(compress(stream, CFG).compressed.codes)
        assert all(f.num_codes <= 7 for f in scan.frames)

    def test_single_code_frames(self):
        stream = random_stream(600, seed=5)
        data = build_stream_container(stream, codes_per_frame=1)
        assert decode_stream_bytes(data) == compress(stream, CFG).assigned_stream


class TestZeroLengthFinalFrame:
    def test_reader_accepts_empty_data_frame(self):
        """The writer never emits empty frames, but the format tolerates
        a zero-code frame (payload_len 0, seal unchanged) — hand-craft
        one between the last data frame and the terminal."""
        stream = random_stream(800, seed=6)
        data = build_stream_container(stream, codes_per_frame=32)
        scan = scan_stream(data)
        last = scan.frames[-1]
        terminal = scan.terminal

        # Recompute the running chars CRC at the end of the data frames
        # to seal the empty frame with (identical to the terminal seal's
        # CRC input, since no characters are added).
        chars_crc = 0
        from repro.core import StreamDecoder

        dec = StreamDecoder(CFG)
        for frame in scan.frames:
            chars = []
            for code in frame.codes:
                chars.extend(dec.push(code))
            chars_crc = zlib.crc32(pack_chars(chars), chars_crc)
        seal = frame_seal(dec.snapshot(), chars_crc)

        empty_wo_crc = struct.pack(
            ">BIIIQII8s",
            FRAME_DATA,
            last.index + 1,
            0,                       # num_codes
            0,                       # payload_len
            terminal.total_original_bits,
            zlib.crc32(b""),
            last.chain_crc,          # unchanged running CRC
            seal,
        )
        empty = empty_wo_crc + struct.pack(">I", zlib.crc32(empty_wo_crc))
        assert len(empty) == FRAME_DATA_HEADER_SIZE

        terminal_bytes = data[terminal.header_offset : terminal.end_offset]
        # Patch the terminal's frame_count (+1) and re-sign its CRC.
        patched = bytearray(terminal_bytes)
        patched[1:5] = struct.pack(">I", terminal.frame_count + 1)
        patched[-4:] = struct.pack(">I", zlib.crc32(bytes(patched[:-4])))
        doctored = (
            data[: terminal.header_offset] + empty + bytes(patched)
        )
        assert decode_stream_bytes(doctored) == decode_stream_bytes(data)


class TestTypedErrors:
    def test_torn_tail(self):
        data = build_stream_container(random_stream(1000, seed=7))
        scan = scan_stream(data[:-10])
        assert scan.error is not None
        assert getattr(scan.error, "reason", None) in (
            "torn_tail", "missing_terminal"
        )
        with pytest.raises(ContainerError):
            decode_stream_bytes(data[:-10])

    def test_missing_terminal(self):
        data = build_stream_container(random_stream(1000, seed=8))
        scan = scan_stream(data)
        cut = scan.terminal.header_offset
        headless = data[:cut]
        scan2 = scan_stream(headless)
        assert getattr(scan2.error, "reason", None) == "missing_terminal"
        assert len(scan2.frames) == len(scan.frames)

    def test_payload_crc_mismatch(self):
        data = build_stream_container(random_stream(1000, seed=9))
        scan = scan_stream(data)
        frame = scan.frames[0]
        bad = bytearray(data)
        bad[frame.end_offset - 1] ^= 0x40  # flip a payload bit
        with pytest.raises(ContainerError) as err:
            decode_stream_bytes(bytes(bad))
        assert getattr(err.value, "reason", None) in (
            "payload_crc", "header_crc"
        )

    def test_trailing_data_rejected(self):
        data = build_stream_container(random_stream(500, seed=10))
        with pytest.raises(ContainerError) as err:
            decode_stream_bytes(data + b"junk")
        assert getattr(err.value, "reason", None) == "trailing_data"

    def test_reader_on_stdin_like_filehandle(self):
        data = build_stream_container(random_stream(700, seed=11))
        reader = StreamContainerReader(io.BytesIO(data))
        chars_total = 0
        for chars, _frame in iter_decode_stream(reader):
            chars_total += len(chars)
        assert chars_total * CFG.char_bits >= reader.terminal.total_original_bits


class TestGolden:
    def test_golden_container_digest(self):
        """Lock the v5 format bytes: any change to the header layout,
        frame packing, chain CRC or seal definition must show up here
        as a deliberate golden update."""
        stream = TernaryVector("0110X01X" * 64)
        data = build_stream_container(stream, codes_per_frame=16,
                                      chunk_bits=100)
        assert len(data) == 156
        assert hashlib.sha256(data).hexdigest() == (
            "c06c9b08dcaaf3ccf4be3e189030abc4a0500ad1279cb7fb72591e7fa125ede2"
        )

    def test_default_codes_per_frame(self):
        assert DEFAULT_CODES_PER_FRAME == 4096


def test_writer_refuses_after_finalize():
    sink = io.BytesIO()
    writer = StreamContainerWriter(CFG, sink, codes_per_frame=4)
    enc = StreamEncoder(CFG)
    writer.write_codes(enc.feed(random_stream(100, seed=12)))
    writer.finalize(enc.finalize(), enc.original_bits)
    with pytest.raises(RuntimeError):
        writer.write_codes([0])
    with pytest.raises(RuntimeError):
        writer.finalize([], 0)
