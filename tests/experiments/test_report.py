"""Unit tests for the EXPERIMENTS.md report generator."""

import io

from repro.experiments.report import generate_report


def test_report_contains_every_table():
    out = io.StringIO()
    generate_report(scale=0.05, out=out)
    text = out.getvalue()
    assert text.startswith("# EXPERIMENTS")
    for section in (
        "## table1",
        "## table2",
        "## table3",
        "## table4",
        "## table5",
        "## table6",
        "## ablation_dontcare",
        "## ablation_xdensity",
        "## ablation_lookahead",
        "## ablation_architecture",
        "## ablation_multichain",
        "## ablation_power",
        "## ablation_reset",
    ):
        assert section in text, section
    # Paper columns must survive into the report.
    assert "LZW paper" in text
    assert "regenerated in" in text
    assert "scale 0.05" in text
