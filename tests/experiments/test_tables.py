"""Unit tests for the experiment harness (tiny scales)."""

import pytest

from repro.experiments import (
    ALL_TABLES,
    Lab,
    Table,
    ablation_architecture,
    ablation_dontcare,
    ablation_lookahead,
    ablation_xdensity,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)

SMALL = ("s9234f",)


@pytest.fixture(scope="module")
def lab():
    return Lab(scale=0.1)


class TestRender:
    def test_add_row_checks_arity(self):
        t = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_render_contains_everything(self):
        t = Table("Title", ["a", "b"], notes=["hello"])
        t.add_row(1.5, None)
        text = t.render()
        assert "Title" in text and "1.50" in text and "-" in text
        assert "note: hello" in text

    def test_column(self):
        t = Table("t", ["a", "b"])
        t.add_row(1, 2)
        t.add_row(3, 4)
        assert t.column("b") == ["2", "4"]


class TestPaperTables:
    def test_table1_shape(self, lab):
        t = table1(lab, circuits=SMALL)
        assert t.headers[0] == "Test"
        assert len(t.rows) == 1
        assert t.column("Test") == ["s9234f"]
        assert float(t.column("LZW")[0]) > 0

    def test_table2_has_memory_and_ratios(self, lab):
        t = table2(lab, circuits=SMALL, clock_ratios=(4, 10))
        assert "Dict. size" in t.headers
        assert t.column("Dict. size") == ["1024x69"]
        assert float(t.column("10x")[0]) > float(t.column("4x")[0])

    def test_table3_reports_density_and_size(self, lab):
        t = table3(lab, circuits=SMALL)
        density = float(t.column("Don't cares %")[0])
        assert 70 < density < 77
        assert int(t.column("Orig. size (bits)")[0]) > 0

    def test_table4_collapses_at_cc10(self, lab):
        t = table4(lab, circuits=SMALL, char_sizes=(7, 10))
        assert float(t.column("C_C=10")[0]) == pytest.approx(0.0, abs=0.5)

    def test_table5_monotone_trend(self, lab):
        t = table5(lab, circuits=SMALL, entry_sizes=(14, 63))
        small = float(t.column("C_MDATA=14")[0])
        large = float(t.column("C_MDATA=63")[0])
        assert large >= small - 0.5

    def test_table6_longest_string(self, lab):
        t = table6(lab, circuits=SMALL, entry_sizes=(63,))
        longest = int(t.column("Longest string (bits)")[0])
        assert longest % 7 == 0
        assert longest > 0


class TestAblations:
    def test_dontcare_dynamic_beats_static(self, lab):
        t = ablation_dontcare(lab, circuits=SMALL, fills=("zero",))
        dynamic = float(t.column("dynamic")[0])
        static = float(t.column("static:zero")[0])
        assert dynamic > static

    def test_xdensity_monotone(self):
        t = ablation_xdensity(densities=(0.4, 0.9), vectors=20, width=80)
        low = float(t.column("LZW")[0])
        high = float(t.column("LZW")[1])
        assert high > low

    def test_lookahead_table_runs(self, lab):
        t = ablation_lookahead(lab, circuits=SMALL, windows=(1, 4))
        assert len(t.rows) == 1

    def test_architecture_buffered_wins(self, lab):
        t = ablation_architecture(lab, circuits=SMALL, clock_ratios=(4,))
        serial = float(t.column("serial@4x")[0])
        buffered = float(t.column("buffered@4x")[0])
        assert buffered >= serial


class TestRegistry:
    def test_all_tables_registered(self):
        for name in ("table1", "table2", "table3", "table4", "table5",
                     "table6", "ablation_dontcare", "ablation_xdensity",
                     "ablation_lookahead", "ablation_architecture"):
            assert name in ALL_TABLES

    def test_lab_cache_reuse(self):
        lab = Lab(scale=0.05)
        a = lab.stream("s9234f")
        b = lab.stream("s9234f")
        assert a is b


class TestExtensionAblations:
    def test_reset_table_shape(self, lab):
        from repro.experiments import ablation_reset

        t = ablation_reset(lab, circuits=SMALL, dict_sizes=(256,))
        frozen = float(t.column("frozen N=256")[0])
        flush = float(t.column("flush N=256")[0])
        assert frozen >= flush - 0.5

    def test_multichain_table_shape(self, lab):
        from repro.experiments import ablation_multichain

        t = ablation_multichain(lab, circuits=SMALL, chain_counts=(1, 2))
        single = float(t.column("single")[0])
        per_chain = float(t.column("per-chain x2")[0])
        assert per_chain <= single + 1.5

    def test_power_table_shape(self, lab):
        from repro.experiments import ablation_power

        t = ablation_power(lab, circuits=SMALL)
        repeat = int(t.column("repeat fill")[0])
        lzw = int(t.column("LZW assignment")[0])
        assert repeat <= lzw
