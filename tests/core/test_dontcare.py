"""Unit tests for don't-care assignment: static fills and the selector."""

import pytest

from repro.bitstream import TernaryVector, to_characters
from repro.core import LZWConfig, LZWDictionary, static_fill
from repro.core.dontcare import STATIC_FILLS, ChildSelector


class TestStaticFill:
    def test_zero_one(self):
        v = TernaryVector("1XX0")
        assert str(static_fill(v, "zero")) == "1000"
        assert str(static_fill(v, "one")) == "1110"

    def test_repeat(self):
        assert str(static_fill(TernaryVector("1XX0X"), "repeat")) == "11100"

    def test_random_seeded(self):
        v = TernaryVector.xs(32)
        assert static_fill(v, "random", seed=3) == static_fill(v, "random", seed=3)

    def test_unknown_rule(self):
        with pytest.raises(ValueError, match="unknown static fill"):
            static_fill(TernaryVector("X"), "magic")

    def test_all_rules_cover(self):
        v = TernaryVector("01XX10XX")
        for rule in STATIC_FILLS:
            filled = static_fill(v, rule, seed=0)
            assert filled.is_fully_specified
            assert filled.covers(v)


def _setup(policy, lookahead=4):
    config = LZWConfig(
        char_bits=2, dict_size=32, entry_bits=12, policy=policy, lookahead=lookahead
    )
    d = LZWDictionary(config)
    return config, d


class TestChildSelector:
    def test_no_compatible_child_returns_none(self):
        config, d = _setup("first")
        sel = ChildSelector(d, config)
        chars = to_characters(TernaryVector("0101"), 2)
        assert sel.choose_child(0, chars, 0) is None

    def test_single_candidate_shortcut(self):
        config, d = _setup("lookahead")
        child = d.add(0, 3)
        sel = ChildSelector(d, config)
        chars = to_characters(TernaryVector("11XX"), 2)  # char 0 = 0b11
        assert sel.choose_child(0, chars, 0) == (3, child)

    def test_first_policy_picks_lowest_code(self):
        config, d = _setup("first")
        c1 = d.add(0, 1)
        d.add(0, 3)
        sel = ChildSelector(d, config)
        chars = [TernaryVector.xs(2)]
        assert sel.choose_child(0, chars, 0) == (1, c1)

    def test_popular_policy_picks_heaviest_subtree(self):
        config, d = _setup("popular")
        c1 = d.add(0, 1)
        c3 = d.add(0, 3)
        d.add(c3, 2)  # subtree of c3 is heavier
        sel = ChildSelector(d, config)
        chars = [TernaryVector.xs(2)]
        assert sel.choose_child(0, chars, 0) == (3, c3)

    def test_lookahead_prefers_longer_continuation(self):
        config, d = _setup("lookahead")
        c1 = d.add(0, 1)  # dead end
        c3 = d.add(0, 3)
        c32 = d.add(c3, 2)  # c3 continues deeper
        d.add(c32, 2)
        sel = ChildSelector(d, config)
        chars = [TernaryVector.xs(2)] * 4
        assert sel.choose_child(0, chars, 0) == (3, c3)

    def test_lookahead_respects_care_bits_downstream(self):
        config, d = _setup("lookahead")
        c1 = d.add(0, 1)
        d.add(c1, 2)  # path 1 -> 2
        c3 = d.add(0, 3)
        d.add(c3, 0)  # path 3 -> 0
        sel = ChildSelector(d, config)
        # Next char is X, the one after demands 0b00: only 3->0 survives.
        chars = [TernaryVector.xs(2), TernaryVector.from_int(0, 2)]
        assert sel.choose_child(0, chars, 0) == (3, c3)

    def test_choose_base_zero_fill_fallback(self):
        config, d = _setup("lookahead")
        sel = ChildSelector(d, config)
        # bit0 = 1, bit1 = X -> zero fill 0b01 = 1.
        chars = [TernaryVector.from_masks(0b01, 0b01, 2)]
        assert sel.choose_base(chars, 0) == 1

    def test_choose_base_prefers_active_subtree(self):
        config, d = _setup("lookahead")
        d.add(3, 1)
        sel = ChildSelector(d, config)
        chars = [TernaryVector.xs(2), TernaryVector.from_masks(0b01, 0b11, 2)]
        assert sel.choose_base(chars, 0) == 3

    def test_deterministic_tie_break(self):
        config, d = _setup("lookahead")
        d.add(0, 1)
        d.add(0, 3)
        sel = ChildSelector(d, config)
        chars = [TernaryVector.xs(2)]
        first = sel.choose_child(0, chars, 0)
        again = sel.choose_child(0, chars, 0)
        assert first == again


class TestTieBreakDeterminism:
    """Equal-scoring candidates must resolve identically on every run.

    The determinism contract (identical batch bytes at any worker
    count) rests on these tie-breaks: depth, then subtree weight, then
    the lowest code.
    """

    def test_popular_tie_falls_to_lowest_code(self):
        config, d = _setup("popular")
        c1 = d.add(0, 1)
        d.add(0, 3)  # equal weight (both leaves)
        sel = ChildSelector(d, config)
        assert sel.choose_child(0, [TernaryVector.xs(2)], 0) == (1, c1)

    def test_lookahead_tie_falls_to_lowest_code(self):
        config, d = _setup("lookahead")
        c1 = d.add(0, 1)
        c3 = d.add(0, 3)
        # Symmetric continuations: both children go one deeper.
        d.add(c1, 2)
        d.add(c3, 2)
        sel = ChildSelector(d, config)
        chars = [TernaryVector.xs(2)] * 3
        assert sel.choose_child(0, chars, 0) == (1, c1)

    def test_choose_base_popular_tie_falls_to_lowest_base(self):
        config, d = _setup("popular")
        d.add(1, 0)
        d.add(3, 0)  # bases 1 and 3, equal weights
        sel = ChildSelector(d, config)
        chars = [TernaryVector.xs(2)]
        assert sel.choose_base(chars, 0) == 1

    def test_same_choice_from_identically_built_dictionaries(self):
        def build():
            config, d = _setup("lookahead")
            for base, char in ((0, 1), (0, 3), (2, 2)):
                d.add(base, char)
            return ChildSelector(d, config)

        chars = [TernaryVector.xs(2)] * 4
        picks = {build().choose_child(0, chars, 0) for _ in range(5)}
        assert len(picks) == 1

    def test_insertion_order_does_not_break_lowest_code_rule(self):
        # Children registered high-code-first still tie-break to the
        # lowest code, not to dict iteration order.
        config, d = _setup("first")
        d.add(0, 3)  # code 4
        c_low = d.add(0, 1)  # code 5
        sel = ChildSelector(d, config)
        assert sel.choose_child(0, [TernaryVector.xs(2)], 0) == (3, 4)
        del c_low

    def test_exhausted_budget_is_still_deterministic(self):
        config = LZWConfig(
            char_bits=2,
            dict_size=32,
            entry_bits=12,
            policy="lookahead",
            lookahead=4,
            lookahead_budget=1,
        )
        d = LZWDictionary(config)
        c1 = d.add(0, 1)
        c3 = d.add(0, 3)
        d.add(c1, 2)
        d.add(c3, 2)
        chars = [TernaryVector.xs(2)] * 4
        picks = {
            ChildSelector(d, config).choose_child(0, chars, 0) for _ in range(5)
        }
        assert len(picks) == 1
