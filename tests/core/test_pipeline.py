"""Unit tests for the high-level compress/verify pipeline."""

import pytest

from repro.bitstream import TernaryVector
from repro.core import LZWConfig, compress, decompress


@pytest.fixture
def config():
    return LZWConfig(char_bits=3, dict_size=32, entry_bits=12)


class TestCompressionResult:
    def test_basic_fields(self, config, sparse_stream):
        result = compress(sparse_stream, config)
        assert result.original_bits == len(sparse_stream)
        assert result.compressed_bits == result.compressed.compressed_bits
        assert result.ratio == result.compressed.ratio
        assert result.ratio_percent == pytest.approx(100 * result.ratio)

    def test_assigned_stream_covers(self, config, sparse_stream):
        result = compress(sparse_stream, config)
        assert result.assigned_stream.is_fully_specified
        assert result.assigned_stream.covers(sparse_stream)

    def test_verify_true_for_own_input(self, config, sparse_stream):
        assert compress(sparse_stream, config).verify(sparse_stream)

    def test_verify_false_for_other_input(self, config):
        a = TernaryVector("000000000000")
        b = TernaryVector("111111111111")
        result = compress(a, config)
        assert not result.verify(b)

    def test_longest_entry_bits(self, config, sparse_stream):
        result = compress(sparse_stream, config)
        assert result.longest_entry_bits % config.char_bits == 0
        assert result.longest_entry_bits <= config.entry_bits

    def test_longest_phrase_at_least_longest_entry(self, config, sparse_stream):
        result = compress(sparse_stream, config)
        assert result.longest_phrase_bits >= result.longest_entry_bits - config.char_bits

    def test_default_config_used_when_none(self, sparse_stream):
        result = compress(sparse_stream)
        assert result.compressed.config == LZWConfig()

    def test_decompress_alias(self, config, sparse_stream):
        result = compress(sparse_stream, config)
        assert decompress(result.compressed) == result.assigned_stream


class TestDictionaryBoundEffects:
    def test_bigger_entries_never_hurt_much(self, sparse_stream):
        """Monotone trend of Table 5: larger C_MDATA cannot make the
        same stream dramatically worse (identical configs otherwise)."""
        sizes = {}
        for entry_bits in (6, 12, 24, 48):
            config = LZWConfig(char_bits=3, dict_size=64, entry_bits=entry_bits)
            sizes[entry_bits] = compress(sparse_stream, config).compressed_bits
        assert sizes[48] <= sizes[6]

    def test_wider_dictionary_never_hurts(self, sparse_stream):
        small = LZWConfig(char_bits=3, dict_size=16, entry_bits=12)
        large = LZWConfig(char_bits=3, dict_size=256, entry_bits=12)
        bits_small = compress(sparse_stream, small).compressed_bits
        bits_large = compress(sparse_stream, large).compressed_bits
        # More codes cost more bits each (C_E 4 vs 8) but match longer;
        # at minimum the run must stay decodable and comparable.
        assert bits_large > 0 and bits_small > 0
