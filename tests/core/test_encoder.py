"""Unit tests for the LZW encoder, including a textbook-LZW oracle."""

import random

import pytest

from repro.bitstream import TernaryVector, to_characters
from repro.core import CompressedStream, LZWConfig, LZWEncoder, compress, decode


def textbook_lzw(chars, n_base, capacity, max_chars):
    """Reference greedy LZW with the same capacity and width bounds."""
    table = {(c,): c for c in range(n_base)}
    next_code = n_base
    out = []
    w = (chars[0],)
    for c in chars[1:]:
        wc = w + (c,)
        if wc in table:
            w = wc
            continue
        out.append(table[w])
        if next_code < capacity and len(wc) <= max_chars:
            table[wc] = next_code
            next_code += 1
        w = (c,)
    out.append(table[w])
    return out


@pytest.mark.parametrize("policy", ["first", "popular", "lookahead"])
@pytest.mark.parametrize(
    "char_bits,dict_size,entry_bits",
    [(1, 8, 4), (2, 16, 8), (3, 64, 15), (2, 4, 8)],
)
def test_matches_textbook_lzw_on_specified_streams(
    policy, char_bits, dict_size, entry_bits
):
    """With no X bits, every policy must reduce to classic greedy LZW."""
    rng = random.Random(char_bits * 100 + dict_size)
    config = LZWConfig(
        char_bits=char_bits,
        dict_size=dict_size,
        entry_bits=entry_bits,
        policy=policy,
    )
    for trial in range(10):
        # Whole characters only: padding would introduce X bits, and the
        # comparison targets the fully specified regime.
        stream = TernaryVector.random(
            rng.randrange(1, 60) * char_bits, 0.0, rng
        )
        chars = [c.to_int() for c in to_characters(stream, char_bits)]
        expected = textbook_lzw(
            chars, config.base_codes, config.dict_size, config.max_entry_chars
        )
        got = LZWEncoder(config).encode(stream)
        assert list(got.codes) == expected, f"trial {trial}"


class TestEdgeCases:
    def test_empty_stream(self):
        compressed = LZWEncoder(LZWConfig()).encode(TernaryVector())
        assert compressed.codes == ()
        assert compressed.original_bits == 0
        assert compressed.ratio == 0.0

    def test_single_character(self):
        config = LZWConfig(char_bits=2, dict_size=8, entry_bits=4)
        compressed = LZWEncoder(config).encode(TernaryVector("10"))
        assert len(compressed.codes) == 1
        assert compressed.codes[0] < config.base_codes

    def test_sub_character_stream_is_padded(self):
        config = LZWConfig(char_bits=4, dict_size=32, entry_bits=8)
        compressed = LZWEncoder(config).encode(TernaryVector("1"))
        assert len(compressed.codes) == 1
        assert decode(compressed) == TernaryVector("1")

    def test_all_x_stream(self):
        config = LZWConfig(char_bits=2, dict_size=8, entry_bits=8)
        stream = TernaryVector.xs(40)
        compressed = LZWEncoder(config).encode(stream)
        assert decode(compressed).covers(stream)
        # With total freedom the encoder should do very well: far fewer
        # codes than characters.
        assert len(compressed.codes) < 20

    def test_encoder_is_single_use(self):
        encoder = LZWEncoder(LZWConfig())
        encoder.encode(TernaryVector("01"))
        with pytest.raises(RuntimeError, match="single-use"):
            encoder.encode(TernaryVector("01"))

    def test_stats_require_encode(self):
        with pytest.raises(RuntimeError):
            LZWEncoder(LZWConfig()).stats()

    def test_degenerate_no_free_codes(self):
        """C_C=2 with N=4: no compress codes, one code per character."""
        config = LZWConfig(char_bits=2, dict_size=4, entry_bits=8)
        stream = TernaryVector("01101100")
        compressed = LZWEncoder(config).encode(stream)
        assert len(compressed.codes) == 4
        assert decode(compressed) == stream


class TestStats:
    def test_stats_fields(self):
        config = LZWConfig(char_bits=1, dict_size=8, entry_bits=3)
        encoder = LZWEncoder(config)
        compressed = encoder.encode(TernaryVector("01101101101"))
        stats = encoder.stats()
        assert stats.entries_allocated == 6
        assert stats.dictionary_full
        assert stats.longest_entry_chars == 3
        assert stats.total_chars == 11
        assert stats.longest_phrase_chars == max(compressed.expansion_chars)

    def test_expansions_match_dictionary_strings(self):
        config = LZWConfig(char_bits=2, dict_size=32, entry_bits=10)
        encoder = LZWEncoder(config)
        stream = TernaryVector("0110X11X0110011X10")
        compressed = encoder.encode(stream)
        for code, chars in zip(compressed.codes, compressed.expansion_chars):
            assert encoder.dictionary.nchars(code) == chars


class TestCompressedStream:
    def test_code_out_of_range_rejected(self):
        config = LZWConfig(char_bits=1, dict_size=8, entry_bits=3)
        with pytest.raises(ValueError, match="out of range"):
            CompressedStream((9,), config, 3)

    def test_invalid_codes_raise_through_vectorized_validation(self):
        """The min/max fast path must still reject every bad tuple.

        Construction validates with C-speed ``min``/``max`` and only
        falls back to the naming loop on failure — pin that a bad code
        buried among valid ones, and a negative code, both still raise
        and name the offender.
        """
        config = LZWConfig(char_bits=1, dict_size=8, entry_bits=3)
        with pytest.raises(ValueError, match="code 8 out of range"):
            CompressedStream((0, 3, 8, 1), config, 8)
        with pytest.raises(ValueError, match="code -1 out of range"):
            CompressedStream((0, -1, 1), config, 6)
        # The happy path stays loop-free and accepts boundary codes.
        cs = CompressedStream((0, 7), config, 6)
        assert cs.num_codes == 2

    def test_expansion_alignment_enforced(self):
        config = LZWConfig(char_bits=1, dict_size=8, entry_bits=3)
        with pytest.raises(ValueError, match="align"):
            CompressedStream((0, 1), config, 2, (1,))

    def test_from_bits_rejects_ragged(self):
        config = LZWConfig(char_bits=1, dict_size=8, entry_bits=3)
        with pytest.raises(ValueError, match="multiple"):
            CompressedStream.from_bits([0, 1], config, 2)

    def test_num_codes_and_bits(self):
        config = LZWConfig(char_bits=1, dict_size=8, entry_bits=3)
        cs = CompressedStream((0, 1, 2), config, 30)
        assert cs.num_codes == 3
        assert cs.compressed_bits == 9
        assert cs.ratio == pytest.approx(1 - 9 / 30)


class TestPolicies:
    def test_lookahead_at_least_as_good_on_structured_input(self):
        """On a repetitive high-X workload the lookahead policy should
        not lose to the naive first-child policy by any real margin."""
        rng = random.Random(11)
        template = TernaryVector.random(64, 0.0, rng)
        cubes = []
        for _ in range(60):
            relax = TernaryVector.from_masks(
                template.value_mask,
                template.care_mask & rng.getrandbits(64),
                64,
            )
            cubes.append(relax)
        stream = TernaryVector.concat_all(cubes)
        results = {}
        for policy in ("first", "lookahead"):
            config = LZWConfig(
                char_bits=4, dict_size=64, entry_bits=16, policy=policy
            )
            results[policy] = compress(stream, config).compressed_bits
        assert results["lookahead"] <= results["first"] * 1.05
