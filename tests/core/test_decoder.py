"""Unit tests for the software LZW decoder."""

import pytest

from repro.bitstream import TernaryVector
from repro.core import (
    LZWConfig,
    LZWDecodeError,
    LZWEncoder,
    decode,
    decode_codes,
)

CONFIG = LZWConfig(char_bits=1, dict_size=8, entry_bits=4)


class TestDecodeCodes:
    def test_empty(self):
        assert decode_codes([], CONFIG) == []

    def test_single_base_code(self):
        assert decode_codes([1], CONFIG) == [1]

    def test_classic_sequence(self):
        # 0,1 -> adds 2=(0,1); then 2 expands to 0,1.
        assert decode_codes([0, 1, 2], CONFIG) == [0, 1, 0, 1]

    def test_first_code_must_be_base(self):
        with pytest.raises(LZWDecodeError, match="base code"):
            decode_codes([2, 0], CONFIG)

    def test_future_code_rejected(self):
        # After [0, 1] the next free code is 3; 4 is undecodable.
        with pytest.raises(LZWDecodeError, match="not yet in dictionary"):
            decode_codes([0, 1, 4], CONFIG)

    def test_kwkwk_accepted(self):
        # 0, 2 where 2 is being created: expands to (0,0).
        assert decode_codes([0, 2], CONFIG) == [0, 0, 0]

    def test_kwkwk_rejected_when_add_impossible(self):
        # entry_bits=1 allows only 1-char entries: nothing is ever added,
        # so a KwKwK reference cannot exist.
        tight = LZWConfig(char_bits=1, dict_size=8, entry_bits=1)
        with pytest.raises(LZWDecodeError):
            decode_codes([0, 2], tight)

    def test_capacity_mirrors_encoder(self):
        # dict_size=2 means no allocations at all (2 base codes).
        tiny = LZWConfig(char_bits=1, dict_size=2, entry_bits=4)
        assert decode_codes([0, 1, 1, 0], tiny) == [0, 1, 1, 0]
        with pytest.raises(LZWDecodeError):
            decode_codes([0, 2], tiny)

    def test_entry_width_mirrors_encoder(self):
        """Decoder must stop allocating exactly when the encoder does."""
        config = LZWConfig(char_bits=1, dict_size=32, entry_bits=2)
        encoder = LZWEncoder(config)
        stream = TernaryVector("0000000000000000")
        compressed = encoder.encode(stream)
        assert decode(compressed) == stream


class TestDecode:
    def test_truncation_to_original_bits(self):
        config = LZWConfig(char_bits=4, dict_size=32, entry_bits=8)
        stream = TernaryVector("0110 110".replace(" ", ""))
        compressed = LZWEncoder(config).encode(stream)
        out = decode(compressed)
        assert len(out) == 7
        assert out.covers(stream)

    def test_declared_length_too_long(self):
        config = LZWConfig(char_bits=2, dict_size=8, entry_bits=4)
        compressed = LZWEncoder(config).encode(TernaryVector("01"))
        # Tamper with original_bits to exceed what the codes produce.
        from repro.core import CompressedStream

        bad = CompressedStream(
            compressed.codes, config, 100, compressed.expansion_chars
        )
        with pytest.raises(LZWDecodeError, match="expected"):
            decode(bad)

    def test_output_is_fully_specified(self):
        config = LZWConfig(char_bits=3, dict_size=16, entry_bits=9)
        stream = TernaryVector("X1X0XX1X0X1XX")
        compressed = LZWEncoder(config).encode(stream)
        out = decode(compressed)
        assert out.is_fully_specified
        assert out.covers(stream)
