"""Unit tests for multi-chain scan compression."""

import pytest

from repro.bitstream import TernaryVector
from repro.circuit import ScanChain, TestSet
from repro.core import (
    LZWConfig,
    chain_streams,
    compress_interleaved,
    compress_per_chain,
    deinterleave_stream,
    interleave_stream,
    partition_chains,
)

CONFIG = LZWConfig(char_bits=2, dict_size=16, entry_bits=8)


@pytest.fixture
def test_set():
    cubes = [
        TernaryVector("01X10X"),
        TernaryVector("X10X01"),
        TernaryVector("0101XX"),
    ]
    return TestSet([f"c{i}" for i in range(6)], cubes, name="mc")


class TestPartition:
    def test_balanced(self, test_set):
        chains = partition_chains(test_set, 3)
        assert [c.length for c in chains] == [2, 2, 2]
        assert chains[0].cells == ["c0", "c1"]
        assert chains[2].cells == ["c4", "c5"]

    def test_uneven(self, test_set):
        chains = partition_chains(test_set, 4)
        assert [c.length for c in chains] == [2, 2, 1, 1]
        assert sum(c.length for c in chains) == 6

    def test_single_chain(self, test_set):
        chains = partition_chains(test_set, 1)
        assert chains[0].cells == test_set.input_names

    def test_validation(self, test_set):
        with pytest.raises(ValueError):
            partition_chains(test_set, 0)
        with pytest.raises(ValueError):
            partition_chains(test_set, 7)


class TestStreams:
    def test_chain_streams_slice_vectors(self, test_set):
        chains = partition_chains(test_set, 2)
        streams = chain_streams(test_set, chains)
        assert str(streams[0]) == "01X" + "X10" + "010"
        assert str(streams[1]) == "10X" + "X01" + "1XX"

    def test_interleave_round_trips(self, test_set):
        for n in (1, 2, 3, 4):
            chains = partition_chains(test_set, n)
            stream = interleave_stream(test_set, chains)
            back = deinterleave_stream(stream, chains, len(test_set))
            assert back == test_set.cubes, f"{n} chains"

    def test_interleave_pads_short_chains_with_x(self, test_set):
        chains = partition_chains(test_set, 4)  # lengths 2,2,1,1
        stream = interleave_stream(test_set, chains)
        # 2 cycles x 4 slots per vector; cycle 1 has 2 idle slots.
        assert len(stream) == 3 * 2 * 4
        # Slots for chains 2,3 at cycle 1 are idle -> X.
        assert stream[6] is None and stream[7] is None

    def test_deinterleave_length_check(self, test_set):
        chains = partition_chains(test_set, 2)
        with pytest.raises(ValueError, match="geometry"):
            deinterleave_stream(TernaryVector("01"), chains, 3)

    def test_non_consecutive_chain_rejected(self, test_set):
        bad = [ScanChain("b", ["c0", "c2"]), ScanChain("r", ["c1", "c3", "c4", "c5"])]
        with pytest.raises(ValueError, match="consecutive"):
            chain_streams(test_set, bad)

    def test_partial_cover_rejected(self, test_set):
        partial = [ScanChain("p", ["c0", "c1"])]
        with pytest.raises(ValueError, match="cover"):
            chain_streams(test_set, partial)


class TestCompression:
    def test_per_chain_aggregate(self, test_set):
        chains = partition_chains(test_set, 2)
        result = compress_per_chain(test_set, chains, CONFIG)
        assert result.arrangement == "per_chain"
        assert len(result.results) == 2
        assert result.original_bits == 18
        assert result.compressed_bits == sum(
            r.compressed_bits for r in result.results
        )

    def test_interleaved_single_engine(self, test_set):
        chains = partition_chains(test_set, 3)
        result = compress_interleaved(test_set, chains, CONFIG)
        assert result.arrangement == "interleaved"
        assert len(result.results) == 1
        assert result.original_bits == 18

    def test_coverage_preserved_per_chain(self, test_set):
        chains = partition_chains(test_set, 2)
        result = compress_per_chain(test_set, chains, CONFIG)
        for stream, r in zip(chain_streams(test_set, chains), result.results):
            assert r.assigned_stream.covers(stream)

    def test_coverage_preserved_interleaved(self, test_set):
        chains = partition_chains(test_set, 2)
        result = compress_interleaved(test_set, chains, CONFIG)
        stream = interleave_stream(test_set, chains)
        assert result.results[0].assigned_stream.covers(stream)

    def test_ratio_percent(self, test_set):
        chains = partition_chains(test_set, 2)
        result = compress_per_chain(test_set, chains, CONFIG)
        assert result.ratio_percent == pytest.approx(100 * result.ratio)

    def test_ratio_delegates_to_metrics(self, test_set):
        from repro.core.metrics import compression_percent, compression_ratio

        chains = partition_chains(test_set, 2)
        for result in (
            compress_per_chain(test_set, chains, CONFIG),
            compress_interleaved(test_set, chains, CONFIG),
        ):
            assert result.ratio == compression_ratio(
                result.original_bits, result.compressed_bits
            )
            assert result.ratio_percent == compression_percent(
                result.original_bits, result.compressed_bits
            )

    def test_interleaved_original_bits_exclude_idle_slots(self, test_set):
        # 4 chains of lengths 2,2,1,1 pad to 2 cycles x 4 slots, but the
        # accounted test-data volume stays the true 18 bits.
        chains = partition_chains(test_set, 4)
        result = compress_interleaved(test_set, chains, CONFIG)
        assert result.original_bits == 18
        assert len(interleave_stream(test_set, chains)) == 24

    def test_repeated_runs_emit_identical_codes(self, test_set):
        chains = partition_chains(test_set, 2)
        runs = [compress_per_chain(test_set, chains, CONFIG) for _ in range(3)]
        code_sets = {
            tuple(r.compressed.codes for r in run.results) for run in runs
        }
        assert len(code_sets) == 1

    def test_single_chain_matches_plain_compress(self, test_set):
        from repro.core import compress

        chains = partition_chains(test_set, 1)
        multi = compress_per_chain(test_set, chains, CONFIG)
        plain = compress(test_set.to_stream(), CONFIG)
        assert multi.results[0].compressed.codes == plain.compressed.codes
        assert multi.ratio == pytest.approx(plain.ratio)
