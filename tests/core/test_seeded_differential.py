"""Seeded-state conformance: warm-dictionary encode/decode vs serial.

The warm-dictionary sharding design rests on one invariant: a
dictionary snapshot plus a link code fully determine the encoder's
future.  Concretely, for any stream and any split point ``k`` of its
serial code sequence, encoding the stream suffix from
``derive_final_snapshot(codes[:k])`` with ``link=codes[k-1]`` must emit
**exactly** ``codes[k:]`` — byte-identical, under both engines — and
the seeded decoder must reproduce exactly the characters the serial
decode produces past the split.  Anything less silently corrupts a
pipelined-wave shard plan.

These tests lock that contract with Hypothesis properties (every split
point of every generated example) and with exhaustive enumeration of
all ternary strings up to 6 characters under tight-dictionary and
reset-on-full configurations, where resets, KwKwK codes and capacity
edges all land within reach.
"""

import itertools
from dataclasses import replace

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.bitstream import TernaryVector
from repro.core import (
    DictionarySnapshot,
    LZWConfig,
    LZWDictionary,
    LZWEncoder,
    decode,
    decode_codes,
    derive_final_snapshot,
)
from repro.reliability.errors import SnapshotError

# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------


def _encode(config, stream, engine, seed=None, link=None):
    encoder = LZWEncoder(replace(config, engine=engine), seed=seed, link=link)
    return encoder.encode(stream)


def assert_split_identity(config, stream, engine):
    """Seeded continuation == uninterrupted serial, at every split point."""
    serial = _encode(config, stream, engine)
    codes, exps = serial.codes, serial.expansion_chars
    serial_chars = decode_codes(codes, config)
    for k in range(1, len(codes)):
        chars_before = sum(exps[:k])
        bit_pos = chars_before * config.char_bits
        seed = derive_final_snapshot(codes[:k], config)
        link = codes[k - 1]

        # Snapshot -> serialized bytes -> restore must be lossless.
        restored = DictionarySnapshot.from_bytes(seed.to_bytes())
        assert restored == seed
        assert restored.digest == seed.digest

        tail = _encode(config, stream[bit_pos:], engine, seed=seed, link=link)
        assert tail.codes == codes[k:], (
            f"seeded encode diverged at split {k} (engine={engine})"
        )
        assert tail.expansion_chars == exps[k:]

        # The seeded decoder must agree with the serial decode's tail.
        tail_chars = decode_codes(codes[k:], config, seed=seed, link=link)
        assert tail_chars == serial_chars[chars_before:]

        # Chain composition: the suffix's final state derived through
        # (seed, link) equals the serial stream's final state.
        assert derive_final_snapshot(
            codes[k:], config, seed=seed, link=link
        ) == derive_final_snapshot(codes, config)
    return serial


# ----------------------------------------------------------------------
# Hypothesis properties: random streams x random configs, both engines
# ----------------------------------------------------------------------

ternary_streams = st.text(alphabet="01X", min_size=1, max_size=220).map(
    TernaryVector
)

@st.composite
def _configs(draw):
    # Draw char_bits first so dict_size/entry_bits can stay valid by
    # construction (the dataclass validates in __post_init__).
    char_bits = draw(st.integers(min_value=1, max_value=4))
    base = 1 << char_bits
    dict_size = draw(st.sampled_from([base + 2, base * 2, base * 4, 64]))
    entry_bits = draw(st.integers(min_value=2 * char_bits, max_value=24))
    return LZWConfig(
        char_bits=char_bits,
        dict_size=dict_size,
        entry_bits=entry_bits,
        policy=draw(st.sampled_from(["first", "popular", "lookahead"])),
        lookahead=draw(st.integers(min_value=1, max_value=4)),
        lookahead_budget=draw(st.sampled_from([1, 3, 8, 64])),
        reset_on_full=draw(st.booleans()),
    )


configs = _configs()


@given(stream=ternary_streams, config=configs)
@settings(max_examples=200, deadline=None)
def test_seeded_encode_identity_reference(stream, config):
    """Reference engine: snapshot→restore→encode == serial (>=200 runs)."""
    assert_split_identity(config, stream, "reference")


@given(stream=ternary_streams, config=configs)
@settings(max_examples=200, deadline=None)
def test_seeded_encode_identity_fast(stream, config):
    """Fast engine: snapshot→restore→encode == serial (>=200 runs)."""
    assert_split_identity(config, stream, "fast")


@given(stream=ternary_streams, config=configs)
@settings(max_examples=200, deadline=None)
def test_seeded_engines_agree(stream, config):
    """Both engines seeded from the same snapshot emit identical bytes."""
    serial = _encode(config, stream, "reference")
    codes, exps = serial.codes, serial.expansion_chars
    for k in range(1, len(codes)):
        bit_pos = sum(exps[:k]) * config.char_bits
        seed = derive_final_snapshot(codes[:k], config)
        link = codes[k - 1]
        ref = _encode(config, stream[bit_pos:], "reference", seed=seed, link=link)
        fast = _encode(config, stream[bit_pos:], "fast", seed=seed, link=link)
        assert fast.codes == ref.codes
        assert fast.expansion_chars == ref.expansion_chars


@given(stream=ternary_streams, config=configs)
@settings(max_examples=100, deadline=None)
def test_snapshot_roundtrip_and_replay(stream, config):
    """to_bytes/from_bytes/restore reproduce the live dictionary exactly."""
    encoder = LZWEncoder(replace(config, engine="reference"))
    encoder.encode(stream)
    snap = encoder.dictionary.snapshot()
    wire = snap.to_bytes()
    parsed = DictionarySnapshot.from_bytes(wire)
    assert parsed == snap
    restored = LZWDictionary(config)
    restored.restore(parsed)
    original = encoder.dictionary
    assert restored._parent == original._parent
    assert restored._char == original._char
    assert restored._nchars == original._nchars
    assert restored._weight == original._weight
    assert restored._strings == original._strings
    # Children *insertion order* and the active-base insertion history
    # are part of the byte-identity contract, not just membership.
    assert [list(c.items()) for c in restored._children] == [
        list(c.items()) for c in original._children
    ]
    assert list(restored._active_bases) == list(original._active_bases)
    # The decoder-facing view matches the trie's allocated strings.
    n_base = config.base_codes
    assert parsed.strings() == original._strings[n_base:]


# ----------------------------------------------------------------------
# Exhaustive enumeration: every ternary string <= 6 chars, tight dicts
# ----------------------------------------------------------------------

#: Tiny capacities so resets, KwKwK and full-dictionary edges are all
#: reachable within six characters.
TIGHT_CONFIGS = {
    "tight": LZWConfig(char_bits=1, dict_size=4, entry_bits=4, lookahead=3),
    "tight-reset": LZWConfig(
        char_bits=1, dict_size=4, entry_bits=4, lookahead=3, reset_on_full=True
    ),
    "narrow-entry-reset": LZWConfig(
        char_bits=1, dict_size=8, entry_bits=2, reset_on_full=True
    ),
}


@pytest.mark.parametrize("config_name", sorted(TIGHT_CONFIGS))
@pytest.mark.parametrize("engine", ["reference", "fast"])
def test_exhaustive_ternary_strings(config_name, engine):
    """All 1092 ternary strings of length 1..6, every split point."""
    config = TIGHT_CONFIGS[config_name]
    for length in range(1, 7):
        for symbols in itertools.product("01X", repeat=length):
            assert_split_identity(config, TernaryVector("".join(symbols)), engine)


# ----------------------------------------------------------------------
# Forced shard cuts: pipelined-wave boundaries land mid-match
# ----------------------------------------------------------------------


def assert_forced_cut_roundtrip(config, stream, cut_chars, engine):
    """Chained continuation across an arbitrary character cut round-trips.

    Unlike ``assert_split_identity`` — which splits at *serial phrase
    boundaries* — a shard plan cuts the stream at arbitrary character
    positions, forcing the prefix encoder to end its final phrase
    mid-match.  The boundary pair ``(link, head)`` can then already be
    a dictionary child, which the encoders' ``add`` silently dedups;
    the seeded decoder and ``derive_final_snapshot`` must mirror that
    skip exactly or the dictionaries diverge one code later.
    """
    bit_pos = cut_chars * config.char_bits
    if not 0 < bit_pos < len(stream):
        return
    head_part, tail_part = stream[:bit_pos], stream[bit_pos:]
    enc0 = LZWEncoder(replace(config, engine=engine))
    c0 = enc0.encode(head_part)
    seed = enc0.dictionary.snapshot()
    link = c0.codes[-1]
    # The derived chain seed equals the prefix encoder's live state.
    assert derive_final_snapshot(c0.codes, config) == seed

    enc1 = LZWEncoder(replace(config, engine=engine), seed=seed, link=link)
    c1 = enc1.encode(tail_part)
    # Seeded decode reproduces the suffix (bit count and all cared bits).
    decoded = decode(c1, seed=seed, link=link)
    assert len(decoded) == len(tail_part)
    assert decoded.covers(tail_part)
    # Decoder-side dictionary evolution matches the encoder's exactly.
    assert (
        derive_final_snapshot(c1.codes, config, seed=seed, link=link)
        == enc1.dictionary.snapshot()
    )
    return c1


def test_duplicate_boundary_pair_regression():
    """A cut mid-match makes ``(link, head)`` an *existing* child.

    Minimal deterministic case: all-zero bits under ``char_bits=1``.
    The prefix ``00000`` encodes as ``[0, 2, 2]`` — the final phrase
    ``00`` matched entry 2 and was cut short by the shard boundary, so
    the trie already holds child ``(2, 0)``.  The suffix's boundary
    allocation is then a dedup no-op in the encoder; a decoder that
    appends a phantom entry instead mis-expands every later code that
    lands on the shifted codes (silent corruption caught only by bit
    counts).
    """
    config = LZWConfig(char_bits=1, dict_size=8, entry_bits=4)
    stream = TernaryVector("0" * 12)
    for engine in ("reference", "fast"):
        enc0 = LZWEncoder(replace(config, engine=engine))
        c0 = enc0.encode(stream[:5])
        assert c0.codes == (0, 2, 2)
        seed = enc0.dictionary.snapshot()
        link = c0.codes[-1]
        # The collision is real: (link=2, head=0) is already child 3.
        assert enc0.dictionary.lookup_child(link, 0) == 3
        c1 = assert_forced_cut_roundtrip(config, stream, 5, engine)
        assert c1 is not None


@given(
    stream=ternary_streams,
    config=configs,
    cut=st.integers(min_value=1, max_value=219),
)
@settings(max_examples=200, deadline=None)
def test_forced_cut_roundtrip_reference(stream, config, cut):
    """Reference engine: chained continuation at arbitrary cuts (>=200)."""
    assert_forced_cut_roundtrip(config, stream, cut, "reference")


@given(
    stream=ternary_streams,
    config=configs,
    cut=st.integers(min_value=1, max_value=219),
)
@settings(max_examples=200, deadline=None)
def test_forced_cut_roundtrip_fast(stream, config, cut):
    """Fast engine: chained continuation at arbitrary cuts (>=200)."""
    assert_forced_cut_roundtrip(config, stream, cut, "fast")


def test_exhaustive_forced_cuts():
    """All ternary strings <= 6 chars x every cut x tight configs."""
    for config in TIGHT_CONFIGS.values():
        for length in range(2, 7):
            for symbols in itertools.product("01X", repeat=length):
                stream = TernaryVector("".join(symbols))
                for cut in range(1, length):
                    for engine in ("reference", "fast"):
                        assert_forced_cut_roundtrip(config, stream, cut, engine)


# ----------------------------------------------------------------------
# Typed-failure edges: mismatches must never pass silently
# ----------------------------------------------------------------------


def test_snapshot_config_mismatch_is_typed():
    config = LZWConfig(char_bits=2, dict_size=16, entry_bits=8)
    encoder = LZWEncoder(config)
    encoder.encode(TernaryVector("01X0110X01"))
    snap = encoder.dictionary.snapshot()
    other = LZWConfig(char_bits=2, dict_size=32, entry_bits=8)
    with pytest.raises(SnapshotError):
        LZWEncoder(other, seed=snap)
    with pytest.raises(SnapshotError):
        decode_codes((0, 1), other, seed=snap)


def test_dead_link_is_typed():
    config = LZWConfig(char_bits=2, dict_size=16, entry_bits=8)
    with pytest.raises(SnapshotError):
        LZWEncoder(config, link=config.dict_size - 1)  # never allocated
