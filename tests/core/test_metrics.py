"""Unit tests for the metric helpers."""

import pytest

from repro.core import (
    compression_percent,
    compression_ratio,
    geometric_mean,
    x_density_percent,
)


class TestCompressionRatio:
    def test_halved(self):
        assert compression_ratio(100, 50) == pytest.approx(0.5)

    def test_expansion_is_negative(self):
        assert compression_ratio(10, 20) == pytest.approx(-1.0)

    def test_zero_original(self):
        assert compression_ratio(0, 0) == 0.0

    def test_percent(self):
        assert compression_percent(200, 50) == pytest.approx(75.0)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            compression_ratio(-1, 0)
        with pytest.raises(ValueError):
            compression_ratio(1, -1)


class TestXDensity:
    def test_basic(self):
        assert x_density_percent(care_bits=30, total_bits=100) == pytest.approx(70.0)

    def test_bounds(self):
        with pytest.raises(ValueError):
            x_density_percent(5, 0)
        with pytest.raises(ValueError):
            x_density_percent(11, 10)


class TestGeometricMean:
    def test_constant(self):
        assert geometric_mean([4.0, 4.0, 4.0]) == pytest.approx(4.0)

    def test_two_values(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
