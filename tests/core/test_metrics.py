"""Unit tests for the metric helpers."""

import pytest

from repro.bitstream import TernaryVector
from repro.core import (
    LZWConfig,
    compress,
    compression_percent,
    compression_ratio,
    geometric_mean,
    x_density_percent,
)


class TestCompressionRatio:
    def test_halved(self):
        assert compression_ratio(100, 50) == pytest.approx(0.5)

    def test_expansion_is_negative(self):
        assert compression_ratio(10, 20) == pytest.approx(-1.0)

    def test_zero_original(self):
        assert compression_ratio(0, 0) == 0.0

    def test_percent(self):
        assert compression_percent(200, 50) == pytest.approx(75.0)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            compression_ratio(-1, 0)
        with pytest.raises(ValueError):
            compression_ratio(1, -1)


class TestXDensity:
    def test_basic(self):
        assert x_density_percent(care_bits=30, total_bits=100) == pytest.approx(70.0)

    def test_bounds(self):
        with pytest.raises(ValueError):
            x_density_percent(5, 0)
        with pytest.raises(ValueError):
            x_density_percent(11, 10)


class TestRatioDelegation:
    """Every stats object defers to the one ratio definition here.

    This pins the duplication fix: before it, ``CompressedStream``,
    ``MultiChainResult`` and ``BaselineResult`` each re-derived
    ``1 - compressed/original`` locally and could drift apart.
    """

    def test_compressed_stream_delegates(self):
        stream = TernaryVector("01XX10XX" * 40)
        result = compress(stream, LZWConfig(char_bits=4, dict_size=64))
        cs = result.compressed
        assert cs.ratio == compression_ratio(cs.original_bits, cs.compressed_bits)
        assert cs.ratio_percent == compression_percent(
            cs.original_bits, cs.compressed_bits
        )

    def test_baseline_result_delegates(self):
        from repro.baselines import GolombCompressor

        stream = TernaryVector("0X" * 200)
        r = GolombCompressor().compress(stream)
        assert r.ratio == compression_ratio(r.original_bits, r.compressed_bits)
        assert r.ratio_percent == compression_percent(
            r.original_bits, r.compressed_bits
        )

    def test_batch_item_delegates(self):
        from repro.core import compress_batch

        stream = TernaryVector("01XX10XX" * 40)
        item = compress_batch(None, [stream], workers=1)[0]
        assert item.ratio == pytest.approx(
            compression_ratio(item.original_bits, item.compressed_bits)
        )


class TestPaperTable3Pins:
    """Formula orientation pinned against the paper's published rows.

    Table 3 reports ``1 - compressed/original`` in percent; if anyone
    flips the fraction (``compressed/original``) or the sign, these
    exact-value regressions break.
    """

    # (benchmark, vectors, width, paper compression %) from Table 3 /
    # repro.workloads.paper.BENCHMARKS.
    TABLE3 = [
        ("s13207f", 236, 700, 80.69),
        ("s15850f", 126, 611, 76.26),
        ("s38417f", 99, 1664, 70.60),
        ("s38584f", 136, 1464, 75.40),
        ("s9234f", 159, 247, 70.67),
    ]

    @pytest.mark.parametrize("name,vectors,width,paper_pct", TABLE3)
    def test_percent_orientation(self, name, vectors, width, paper_pct):
        total = vectors * width
        compressed = round(total * (1.0 - paper_pct / 100.0))
        assert compression_percent(total, compressed) == pytest.approx(
            paper_pct, abs=0.01
        )

    def test_pins_match_workload_registry(self):
        from repro.workloads.paper import BENCHMARKS

        for name, vectors, width, paper_pct in self.TABLE3:
            bench = BENCHMARKS[name]
            assert (bench.vectors, bench.width) == (vectors, width)
            assert bench.paper_lzw == paper_pct
            assert bench.total_bits == vectors * width

    def test_s13207f_exact_bit_budget(self):
        # The headline row: 165200 original bits and an 80.69% ratio
        # imply a 31903-or-31904-bit budget; both round to 80.69%.
        assert compression_percent(165200, 31904) == pytest.approx(80.69, abs=0.01)
        assert compression_ratio(165200, 31904) > 0.8


class TestGeometricMean:
    def test_constant(self):
        assert geometric_mean([4.0, 4.0, 4.0]) == pytest.approx(4.0)

    def test_two_values(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
