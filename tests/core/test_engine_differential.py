"""Differential conformance: the fast engine vs the reference oracle.

The paper's contract makes byte-identity non-negotiable: the emitted
codes *are* the X-assignment channel (no side information), so a fast
path that diverges in any tie-break silently changes the decompressed
test set.  These tests drive random and exhaustive inputs through both
engines and assert equality of everything observable — code sequences,
container bytes, expansion accounting, encoder stats and the metrics
counter/histogram snapshots.
"""

import itertools
from dataclasses import replace

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.bitstream import TernaryVector
from repro.core import LZWConfig, LZWEncoder
from repro.observability import CounterRecorder

# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------


def _run(config, stream, engine, cancel=None):
    """Encode ``stream`` with ``engine``; return (compressed, stats, rec)."""
    rec = CounterRecorder()
    encoder = LZWEncoder(replace(config, engine=engine), recorder=rec, cancel=cancel)
    compressed = encoder.encode(stream)
    return compressed, encoder.stats(), rec


def assert_engines_identical(config, stream):
    """Both engines must agree on every observable output."""
    ref, ref_stats, ref_rec = _run(config, stream, "reference")
    fast, fast_stats, fast_rec = _run(config, stream, "fast")
    assert fast.codes == ref.codes
    assert fast.expansion_chars == ref.expansion_chars
    assert fast.to_bits() == ref.to_bits()  # the container byte stream
    assert fast_stats == ref_stats
    assert fast_rec.counters == ref_rec.counters
    assert fast_rec.histograms == ref_rec.histograms
    return ref


# ----------------------------------------------------------------------
# Hypothesis properties: random streams x random configs
# ----------------------------------------------------------------------

ternary_streams = st.text(alphabet="01X", min_size=0, max_size=400).map(
    TernaryVector
)

configs = st.builds(
    LZWConfig,
    char_bits=st.integers(min_value=1, max_value=5),
    dict_size=st.sampled_from([32, 64, 256]),
    entry_bits=st.integers(min_value=5, max_value=40),
    policy=st.sampled_from(["first", "popular", "lookahead"]),
    lookahead=st.integers(min_value=1, max_value=5),
    lookahead_budget=st.sampled_from([1, 2, 3, 8, 32, 128]),
    reset_on_full=st.booleans(),
).filter(lambda c: c.dict_size >= c.base_codes and c.entry_bits >= c.char_bits)


@given(stream=ternary_streams, config=configs)
@settings(max_examples=200, deadline=None)
def test_engines_agree_on_random_streams(stream, config):
    """Codes, container bytes, stats and counters all match (>=200 runs)."""
    assert_engines_identical(config, stream)


@given(
    stream=st.text(alphabet="01X", min_size=1, max_size=200).map(TernaryVector),
    config=configs,
)
@settings(max_examples=60, deadline=None)
def test_engine_knob_never_changes_output(stream, config):
    """``auto`` resolves to fast and matches reference byte-for-byte."""
    auto, _, _ = _run(config, stream, "auto")
    ref, _, _ = _run(config, stream, "reference")
    assert auto.to_bits() == ref.to_bits()


# ----------------------------------------------------------------------
# Exhaustive small-alphabet enumeration: dict-full / reset / tie-breaks
# ----------------------------------------------------------------------

_EXHAUSTIVE_CONFIGS = [
    # Tight dictionary: hits the dict-full and C_MDATA truncation
    # boundaries within a handful of characters.
    LZWConfig(char_bits=1, dict_size=4, entry_bits=4, lookahead=3),
    # Adaptive variant: the reset trigger fires mid-enumeration.
    LZWConfig(
        char_bits=1, dict_size=8, entry_bits=6, lookahead=3, reset_on_full=True
    ),
    # Budget of 1: the lookahead search dies immediately, exercising the
    # spent-budget guards and the (weight, -code) tie-break everywhere.
    LZWConfig(
        char_bits=1, dict_size=8, entry_bits=8, lookahead=4, lookahead_budget=1
    ),
]


@pytest.mark.parametrize(
    "config", _EXHAUSTIVE_CONFIGS, ids=["tight-dict", "reset-on-full", "budget-1"]
)
def test_engines_agree_exhaustively_on_small_alphabet(config):
    """Every ternary string up to length 7 at C_C=1 — no sampling gaps."""
    for length in range(8):
        for symbols in itertools.product("01X", repeat=length):
            assert_engines_identical(config, TernaryVector("".join(symbols)))


# ----------------------------------------------------------------------
# Deadline semantics on the fast path
# ----------------------------------------------------------------------


class _CountingToken:
    """Duck-typed cancellation token: counts checks, optionally fires."""

    def __init__(self, fail_after=None):
        self.checks = 0
        self.fail_after = fail_after

    def check(self):
        self.checks += 1
        if self.fail_after is not None and self.checks > self.fail_after:
            raise TimeoutError("deadline exceeded")


def _long_stream(n_chars, char_bits=2):
    # Mixed specified/X content long enough to cross several 1024-char
    # checkpoints without ever terminating a phrase trivially.
    pattern = "01X10XX1" * ((n_chars * char_bits) // 8 + 1)
    return TernaryVector(pattern[: n_chars * char_bits])


@pytest.mark.parametrize("engine", ["reference", "fast"])
def test_live_token_cancels_within_checkpoint_budget(engine):
    """A firing token stops the encode at the *next* 1024-char check."""
    config = LZWConfig(char_bits=2, dict_size=32, entry_bits=16)
    stream = _long_stream(5000)
    token = _CountingToken(fail_after=1)  # pass the entry check only
    with pytest.raises(TimeoutError):
        _run(config, stream, engine, cancel=token)
    # Entry check + the first in-loop checkpoint (i == 1024) fired: the
    # cancellation latency never exceeds the 1024-symbol budget.
    assert token.checks == 2


@pytest.mark.parametrize("engine", ["reference", "fast"])
def test_checkpoint_cadence_is_identical(engine):
    """Both engines poll the token once per 1024 consumed characters."""
    config = LZWConfig(char_bits=2, dict_size=32, entry_bits=16)
    n_chars = 5000
    token = _CountingToken()
    _run(config, _long_stream(n_chars), engine, cancel=token)
    expected = 1 + (n_chars - 1) // 1024  # entry check + in-loop checks
    assert token.checks == expected


def test_non_firing_token_cannot_change_bytes():
    """With a token attached but silent, output is byte-identical."""
    config = LZWConfig(char_bits=2, dict_size=32, entry_bits=16)
    stream = _long_stream(3000)
    for engine in ("reference", "fast"):
        plain, _, _ = _run(config, stream, engine)
        tokened, _, _ = _run(config, stream, engine, cancel=_CountingToken())
        assert tokened.to_bits() == plain.to_bits()
        assert tokened.codes == plain.codes
