"""The paper's Figure 3/4 worked example.

Figure 3 compresses an 11-character 1-bit message, creating two-character
entries 2..4 and three-character entries 5..6; Figure 4 decompresses the
result, exercising the pass-through, dictionary-reference and
not-yet-created-entry (KwKwK) cases.  The stream below reproduces that
dictionary shape exactly and the whole trace is asserted step by step.
"""

import pytest

from repro.bitstream import TernaryVector
from repro.core import LZWConfig, LZWEncoder, decode, decode_codes
from repro.hardware import DecompressorModel


CONFIG = LZWConfig(char_bits=1, dict_size=8, entry_bits=3)
MESSAGE = TernaryVector("01101101101")


def test_figure3_compression_trace():
    encoder = LZWEncoder(CONFIG)
    compressed = encoder.encode(MESSAGE)
    # Hand-traced textbook LZW on the message (Figure 3 k's shape: the
    # emitted code sequence plus the buffer flush at the end).
    assert list(compressed.codes) == [0, 1, 1, 2, 4, 3, 2]
    # Dictionary entries exactly as the figure's table builds them:
    # two-character entries first (codes 2..4, starting "one greater
    # than the largest uncompressed representation"), then
    # three-character entries.
    entries = dict(encoder.dictionary.iter_entries())
    assert entries == {
        2: (0, 1),
        3: (1, 1),
        4: (1, 0),
        5: (0, 1, 1),
        6: (1, 0, 1),
        7: (1, 1, 0),
    }


def test_figure3_first_code_is_first_character():
    """Figure 3 a): the first message character initialises the buffer."""
    encoder = LZWEncoder(CONFIG)
    compressed = encoder.encode(MESSAGE)
    assert compressed.codes[0] == MESSAGE[0]


def test_figure4_decompression_trace():
    chars = decode_codes([0, 1, 1, 2, 4, 3, 2], CONFIG)
    assert chars == [0, 1, 1, 0, 1, 1, 0, 1, 1, 0, 1]


def test_figure4_full_stream():
    encoder = LZWEncoder(CONFIG)
    compressed = encoder.encode(MESSAGE)
    assert decode(compressed) == MESSAGE


def test_figure4f_kwkwk_case():
    """A code referencing the entry being created (Figure 4f).

    Compressing 00000 emits [0, 2, 2] where the first use of code 2
    happens while entry 2 is still being defined; the decoder must
    reconstruct it as buffer + first-character-of-buffer.
    """
    encoder = LZWEncoder(CONFIG)
    compressed = encoder.encode(TernaryVector("00000"))
    assert list(compressed.codes) == [0, 2, 2]
    assert decode(compressed) == TernaryVector("00000")


def test_hardware_model_reproduces_figure4():
    encoder = LZWEncoder(CONFIG)
    compressed = encoder.encode(MESSAGE)
    model = DecompressorModel(CONFIG, clock_ratio=4)
    run = model.run(compressed.to_bits(), len(MESSAGE))
    assert run.scan_stream == MESSAGE


def test_compression_ratio_of_the_example():
    """11 bits in, 7 codes of 3 bits out: the toy example expands, which
    the ratio must report honestly as a negative percentage."""
    encoder = LZWEncoder(CONFIG)
    compressed = encoder.encode(MESSAGE)
    assert compressed.compressed_bits == 21
    assert compressed.ratio_percent == pytest.approx(100 * (1 - 21 / 11))
