"""Incremental codec vs one-shot: the byte-identity contract.

``StreamEncoder`` must emit *exactly* the code sequence of the one-shot
``compress()`` for the same input and config, no matter how the input
is chunked — including the adversarial chunkings: one bit at a time,
a boundary splitting a phrase mid-match, an empty final chunk.  The
suite runs the comparison under both engines (the one-shot side picks
the engine; the streaming side is engine-agnostic by construction, so
agreement with both is the full conformance statement).
"""

import random

import pytest

from repro.bitstream import TernaryVector
from repro.core import LZWConfig, StreamDecoder, StreamEncoder, compress
from repro.core.decoder import derive_final_snapshot, iter_decode

CFG = LZWConfig(char_bits=4, dict_size=64, entry_bits=32)

ENGINES = ("reference", "fast")


def one_shot_codes(stream, config, engine):
    return list(compress(stream, LZWConfig(
        char_bits=config.char_bits,
        dict_size=config.dict_size,
        entry_bits=config.entry_bits,
        policy=config.policy,
        lookahead=config.lookahead,
        reset_on_full=config.reset_on_full,
        engine=engine,
    )).compressed.codes)


def stream_codes(stream, config, chunk_bits):
    enc = StreamEncoder(config)
    codes = []
    if chunk_bits == 0:
        chunks = [stream]
    else:
        chunks = [
            stream[i : i + chunk_bits] for i in range(0, len(stream), chunk_bits)
        ]
    for chunk in chunks:
        codes.extend(enc.feed(chunk))
    codes.extend(enc.finalize())
    assert enc.original_bits == len(stream)
    return codes


@pytest.mark.parametrize("engine", ENGINES)
def test_empty_input(engine):
    enc = StreamEncoder(CFG)
    assert enc.feed(TernaryVector.xs(0)) == []
    assert enc.finalize() == []
    assert enc.original_bits == 0
    assert one_shot_codes(TernaryVector.xs(0), CFG, engine) == []


@pytest.mark.parametrize("engine", ENGINES)
def test_input_smaller_than_one_chunk(engine):
    stream = TernaryVector("01X")
    assert stream_codes(stream, CFG, 4096) == one_shot_codes(
        stream, CFG, engine
    )


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("chunk_bits", [1, 2, 3, 7, 64, 0])
def test_chunk_boundary_splits_phrase_mid_match(engine, chunk_bits):
    # A highly repetitive stream grows long dictionary phrases, so any
    # small chunking is guaranteed to cut through matches in progress.
    stream = TernaryVector("0110X01X" * 40)
    assert stream_codes(stream, CFG, chunk_bits) == one_shot_codes(
        stream, CFG, engine
    )


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize(
    "policy,lookahead", [("first", 4), ("popular", 4), ("lookahead", 2),
                         ("lookahead", 4)]
)
def test_differential_random_streams(engine, policy, lookahead):
    rng = random.Random(hash((engine, policy, lookahead)) & 0xFFFF)
    for reset in (False, True):
        config = LZWConfig(
            char_bits=4,
            dict_size=48,
            entry_bits=32,
            policy=policy,
            lookahead=lookahead,
            reset_on_full=reset,
        )
        for _ in range(6):
            n = rng.randrange(0, 700)
            stream = TernaryVector.random(
                n, x_density=rng.choice([0.0, 0.25, 0.6]), rng=rng
            )
            chunk = rng.choice([1, 5, 37, 128, 0])
            assert stream_codes(stream, config, chunk) == one_shot_codes(
                stream, config, engine
            ), (n, chunk, reset)


def test_final_partial_character_padding():
    # A length that is not a multiple of char_bits exercises the
    # X-padded partial character on the finalize path.
    stream = TernaryVector("0110X01X0110X01X011")
    assert len(stream) % CFG.char_bits != 0
    for engine in ENGINES:
        assert stream_codes(stream, CFG, 3) == one_shot_codes(
            stream, CFG, engine
        )


def test_stream_decoder_matches_iter_decode():
    rng = random.Random(7)
    stream = TernaryVector.random(900, x_density=0.3, rng=rng)
    result = compress(stream, CFG)
    dec = StreamDecoder(CFG)
    pushed = []
    for code in result.compressed.codes:
        pushed.extend(dec.push(code))
    expected = []
    for _index, chars in iter_decode(result.compressed.codes, CFG):
        expected.extend(chars)
    assert pushed == expected


def test_stream_decoder_snapshot_equals_derived():
    rng = random.Random(8)
    stream = TernaryVector.random(600, x_density=0.2, rng=rng)
    codes = compress(stream, CFG).compressed.codes
    dec = StreamDecoder(CFG)
    for code in codes:
        dec.push(code)
    derived = derive_final_snapshot(codes, CFG)
    assert dec.snapshot().digest == derived.digest


def test_resume_from_boundary_is_byte_identical():
    """The crash-resume contract: seed+link from a code boundary, then
    refeed the remaining bits — the continuation emits exactly the codes
    the uninterrupted encode would have."""
    rng = random.Random(9)
    stream = TernaryVector.random(800, x_density=0.3, rng=rng)
    full = stream_codes(stream, CFG, 64)

    # Split the *code* sequence at an arbitrary prefix, derive the
    # boundary dictionary + link, and count the bits that prefix covers.
    cut = len(full) // 2
    prefix_codes = full[:cut]
    dec = StreamDecoder(CFG)
    chars = []
    for code in prefix_codes:
        chars.extend(dec.push(code))
    consumed_bits = len(chars) * CFG.char_bits
    snapshot = dec.snapshot()

    resumed = StreamEncoder(CFG, seed=snapshot, link=prefix_codes[-1])
    tail_codes = []
    remaining = stream[consumed_bits:]
    for i in range(0, len(remaining), 50):
        tail_codes.extend(resumed.feed(remaining[i : i + 50]))
    tail_codes.extend(resumed.finalize())
    assert prefix_codes + tail_codes == full


def test_encoder_retention_is_bounded():
    """Deterministic memory-flatness proxy: the encoder's retained
    character buffer must stay bounded by the longest dictionary entry
    plus the lookahead window plus one chunk, however long the input
    grows (the RSS assertion under setrlimit lives in the CI smoke)."""
    config = LZWConfig(char_bits=4, dict_size=64, entry_bits=32,
                       policy="lookahead", lookahead=4)
    enc = StreamEncoder(config)
    rng = random.Random(10)
    chunk_chars = 32
    bound = config.max_entry_chars + config.lookahead + chunk_chars + 2
    high_water = 0
    for _ in range(200):
        enc.feed(TernaryVector.random(
            chunk_chars * config.char_bits, x_density=0.3, rng=rng
        ))
        high_water = max(high_water, enc.buffered_chars)
    assert high_water <= bound, (high_water, bound)
