"""Unit tests for the adaptive (reset_on_full) dictionary variant."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.bitstream import TernaryVector
from repro.core import LZWConfig, LZWDictionary, LZWEncoder, compress, decode
from repro.hardware import DecompressorModel, analyze_download


class TestDictionaryReset:
    def test_reset_restores_base_state(self):
        config = LZWConfig(char_bits=2, dict_size=16, entry_bits=8)
        d = LZWDictionary(config)
        c1 = d.add(0, 1)
        d.add(c1, 2)
        d.reset()
        assert len(d) == config.base_codes
        assert d.allocated == 0
        assert d.longest_entry_chars() == 0
        assert d.compatible_children(0, TernaryVector.xs(2)) == []
        # The trie is usable again after the flush.
        assert d.add(0, 1) == config.base_codes


class TestRoundTrip:
    @pytest.fixture
    def config(self):
        # Tiny dictionary so the flush triggers many times.
        return LZWConfig(
            char_bits=1, dict_size=4, entry_bits=3, reset_on_full=True
        )

    def test_flush_triggers_and_decodes(self, config):
        stream = TernaryVector("01101100101101001011" * 4)
        encoder = LZWEncoder(config)
        compressed = encoder.encode(stream)
        # With N=4 and 2 base codes, a frozen dictionary would hold 2
        # entries; the flushing encoder keeps allocating code 2 forever.
        assert encoder.dictionary.allocated <= 1
        assert decode(compressed) == stream

    def test_hardware_model_mirrors_flush(self, config):
        stream = TernaryVector("0110110010" * 6)
        compressed = LZWEncoder(config).encode(stream)
        run = DecompressorModel(config, clock_ratio=3).run(
            compressed.to_bits(), len(stream)
        )
        assert run.scan_stream == decode(compressed)

    def test_timing_model_mirrors_flush(self, config):
        stream = TernaryVector("0110110010" * 6)
        compressed = LZWEncoder(config).encode(stream)
        run = DecompressorModel(config, clock_ratio=5).run(
            compressed.to_bits(), len(stream)
        )
        report = analyze_download(compressed, 5)
        assert report.tester_cycles == run.tester_cycles

    def test_default_config_never_flushes(self):
        frozen = LZWConfig(char_bits=1, dict_size=4, entry_bits=3)
        stream = TernaryVector("01101100101101001011")
        encoder = LZWEncoder(frozen)
        encoder.encode(stream)
        assert encoder.dictionary.is_full


@given(
    text=st.text(alphabet="01X", min_size=1, max_size=300),
    dict_size=st.sampled_from([4, 8, 16]),
)
@settings(max_examples=100, deadline=None)
def test_flush_preserves_coverage(text, dict_size):
    stream = TernaryVector(text)
    config = LZWConfig(
        char_bits=1, dict_size=dict_size, entry_bits=4, reset_on_full=True
    )
    result = compress(stream, config)
    assert result.verify(stream)
