"""Unit tests for the bounded-entry LZW dictionary."""

import pytest

from repro.bitstream import TernaryVector
from repro.core import LZWConfig, LZWDictionary


@pytest.fixture
def d():
    # 2-bit chars: base codes 0..3; up to 3 chars (7 bits) per entry.
    return LZWDictionary(LZWConfig(char_bits=2, dict_size=12, entry_bits=7))


class TestBaseCodes:
    def test_initial_population(self, d):
        assert len(d) == 4
        assert d.next_code == 4
        assert d.allocated == 0
        for c in range(4):
            assert d.string(c) == (c,)
            assert d.nchars(c) == 1
            assert d.weight(c) == 1

    def test_not_full_initially(self, d):
        assert not d.is_full


class TestAdd:
    def test_add_returns_new_code(self, d):
        assert d.add(0, 1) == 4
        assert d.string(4) == (0, 1)
        assert d.nchars(4) == 2
        assert d.string_bits(4) == 4

    def test_add_builds_trie(self, d):
        c1 = d.add(0, 1)
        c2 = d.add(c1, 2)
        assert d.string(c2) == (0, 1, 2)
        assert d.lookup_child(0, 1) == c1
        assert d.lookup_child(c1, 2) == c2

    def test_duplicate_child_rejected(self, d):
        assert d.add(0, 1) == 4
        assert d.add(0, 1) is None

    def test_entry_width_bound(self, d):
        c1 = d.add(0, 1)
        c2 = d.add(c1, 2)
        # 3 chars = 6 bits <= 7; a 4th char (8 bits) must not fit.
        assert not d.can_extend(c2)
        assert d.add(c2, 3) is None

    def test_capacity_bound(self, d):
        # 12 total codes - 4 base = 8 entries.
        for i in range(8):
            assert d.add(i % 4, (i + 1) % 4) is not None or True
        # Fill deterministically instead:
        d2 = LZWDictionary(LZWConfig(char_bits=2, dict_size=6, entry_bits=7))
        assert d2.add(0, 1) == 4
        assert d2.add(1, 2) == 5
        assert d2.is_full
        assert d2.add(2, 3) is None

    def test_weight_propagates_to_ancestors(self, d):
        c1 = d.add(0, 1)
        d.add(c1, 2)
        d.add(c1, 3)
        assert d.weight(c1) == 3  # itself + two children
        assert d.weight(0) == 4  # base + subtree


class TestMatching:
    def test_compatible_children_fully_specified(self, d):
        c1 = d.add(0, 1)
        d.add(0, 3)
        found = d.compatible_children(0, TernaryVector.from_int(1, 2))
        assert found == [(1, c1)]

    def test_compatible_children_with_x(self, d):
        c1 = d.add(0, 1)  # char 0b01
        c3 = d.add(0, 3)  # char 0b11
        d.add(0, 0)  # char 0b00
        # "X1" (bit0=1, bit1=X) matches chars 1 and 3 but not 0.
        tchar = TernaryVector.from_masks(value=0b01, care=0b01, length=2)
        found = sorted(d.compatible_children(0, tchar))
        assert found == [(1, c1), (3, c3)]

    def test_compatible_children_all_x(self, d):
        c1 = d.add(2, 1)
        found = d.compatible_children(2, TernaryVector.xs(2))
        assert found == [(1, c1)]

    def test_compatible_bases_includes_zero_fill(self, d):
        tchar = TernaryVector.xs(2)
        assert d.compatible_bases(tchar) == [0]

    def test_compatible_bases_prefers_active(self, d):
        d.add(3, 1)  # base 3 now has a child
        bases = d.compatible_bases(TernaryVector.xs(2))
        assert set(bases) == {0, 3}

    def test_compatible_bases_respects_care_bits(self, d):
        d.add(3, 1)
        # bit0 must be 0 -> base 3 (0b11) incompatible; zero-fill = 0b00.
        tchar = TernaryVector.from_masks(value=0, care=0b01, length=2)
        assert d.compatible_bases(tchar) == [0]


class TestCMDataBoundary:
    """Entries at exactly the C_MDATA memory-word limit."""

    def test_entry_at_exact_limit_is_allocated(self):
        # entry_bits=4, char_bits=2 -> max_entry_chars = 2.
        d = LZWDictionary(LZWConfig(char_bits=2, dict_size=32, entry_bits=4))
        c = d.add(0, 1)
        assert c is not None
        assert d.nchars(c) == 2
        assert d.string_bits(c) == 4  # exactly C_MDATA

    def test_entry_one_past_limit_rejected(self):
        d = LZWDictionary(LZWConfig(char_bits=2, dict_size=32, entry_bits=4))
        c = d.add(0, 1)
        assert not d.can_extend(c)
        assert d.add(c, 2) is None
        # The rejection allocates nothing and leaves the trie intact.
        assert d.allocated == 1
        assert d.children(c) == {}

    def test_can_extend_flips_exactly_at_boundary(self, d):
        # Fixture: entry_bits=7, char_bits=2 -> max 3 chars.
        c1 = d.add(0, 1)
        c2 = d.add(c1, 2)
        assert d.can_extend(0)  # 1 -> 2 chars ok
        assert d.can_extend(c1)  # 2 -> 3 chars ok
        assert not d.can_extend(c2)  # 3 -> 4 chars over C_MDATA

    def test_base_codes_unaffected_by_tiny_entry_bits(self):
        # max_entry_chars = 1: nothing beyond base codes can ever fit.
        d = LZWDictionary(LZWConfig(char_bits=2, dict_size=32, entry_bits=2))
        assert d.add(0, 1) is None
        assert d.allocated == 0


class TestFullBehavior:
    """Once all N codes exist the dictionary freezes but keeps matching."""

    @pytest.fixture
    def full(self):
        d = LZWDictionary(LZWConfig(char_bits=2, dict_size=6, entry_bits=8))
        assert d.add(0, 1) == 4
        assert d.add(0, 2) == 5
        return d

    def test_full_flag_and_counts(self, full):
        assert full.is_full
        assert full.next_code == 6
        assert full.allocated == 2

    def test_add_when_full_is_noop(self, full):
        assert full.add(1, 3) is None
        assert full.add(4, 3) is None
        assert len(full) == 6
        assert full.children(1) == {}

    def test_matching_still_works_when_full(self, full):
        found = full.compatible_children(0, TernaryVector.xs(2))
        assert sorted(found) == [(1, 4), (2, 5)]

    def test_weights_frozen_when_full(self, full):
        before = [full.weight(c) for c in range(len(full))]
        full.add(0, 3)
        assert [full.weight(c) for c in range(len(full))] == before


class TestReset:
    """The adaptive variant's flush must restore the pristine state."""

    def test_reset_restores_base_state(self, d):
        c1 = d.add(0, 1)
        d.add(c1, 2)
        d.reset()
        assert len(d) == 4
        assert d.allocated == 0
        assert not d.is_full
        for c in range(4):
            assert d.weight(c) == 1
            assert d.children(c) == {}

    def test_reset_clears_active_bases(self, d):
        d.add(3, 1)
        d.reset()
        # Only the zero-fill fallback remains a candidate.
        assert d.compatible_bases(TernaryVector.xs(2)) == [0]

    def test_allocation_after_reset_reuses_codes(self, d):
        first = d.add(0, 1)
        d.reset()
        again = d.add(2, 3)
        assert again == first == 4
        assert d.string(4) == (2, 3)

    def test_longest_entry_zero_after_reset(self, d):
        c1 = d.add(0, 1)
        d.add(c1, 2)
        d.reset()
        assert d.longest_entry_chars() == 0


class TestIntrospection:
    def test_iter_entries(self, d):
        c1 = d.add(0, 1)
        d.add(c1, 2)
        entries = list(d.iter_entries())
        assert entries == [(4, (0, 1)), (5, (0, 1, 2))]

    def test_longest_entry(self, d):
        assert d.longest_entry_chars() == 0
        assert d.longest_entry_bits() == 0
        c1 = d.add(0, 1)
        d.add(c1, 2)
        assert d.longest_entry_chars() == 3
        assert d.longest_entry_bits() == 6
