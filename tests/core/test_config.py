"""Unit tests for LZWConfig validation and derived parameters."""

import pytest

from repro.core import LZWConfig


class TestValidation:
    def test_defaults_are_the_paper_headline(self):
        c = LZWConfig()
        assert (c.char_bits, c.dict_size, c.entry_bits) == (7, 1024, 63)

    def test_char_bits_bounds(self):
        with pytest.raises(ValueError):
            LZWConfig(char_bits=0)
        with pytest.raises(ValueError):
            LZWConfig(char_bits=17)

    def test_dict_size_must_cover_base_codes(self):
        with pytest.raises(ValueError, match="base codes"):
            LZWConfig(char_bits=7, dict_size=100)
        # Exactly the base codes is legal (the paper's degenerate
        # C_C=10 / N=1024 point).
        LZWConfig(char_bits=10, dict_size=1024)

    def test_entry_bits_must_hold_a_character(self):
        with pytest.raises(ValueError, match="at least one character"):
            LZWConfig(char_bits=7, entry_bits=6)

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown policy"):
            LZWConfig(policy="greedy")

    def test_lookahead_bounds(self):
        with pytest.raises(ValueError):
            LZWConfig(lookahead=0)
        with pytest.raises(ValueError):
            LZWConfig(lookahead_budget=0)


class TestDerived:
    def test_code_bits(self):
        assert LZWConfig(dict_size=1024).code_bits == 10
        assert LZWConfig(dict_size=2048).code_bits == 11
        assert LZWConfig(char_bits=3, dict_size=9, entry_bits=3).code_bits == 4

    def test_base_codes(self):
        assert LZWConfig(char_bits=7).base_codes == 128
        assert LZWConfig(char_bits=1, dict_size=8, entry_bits=3).base_codes == 2

    def test_max_entry_chars(self):
        assert LZWConfig(char_bits=7, entry_bits=63).max_entry_chars == 9
        assert LZWConfig(char_bits=7, entry_bits=64).max_entry_chars == 9
        assert LZWConfig(char_bits=7, entry_bits=70).max_entry_chars == 10

    def test_free_codes(self):
        assert LZWConfig().free_codes == 1024 - 128
        assert LZWConfig(char_bits=10, dict_size=1024).free_codes == 0

    def test_describe_mentions_key_parameters(self):
        text = LZWConfig().describe()
        assert "C_C=7" in text
        assert "N=1024" in text
        assert "C_MDATA=63" in text

    def test_frozen(self):
        c = LZWConfig()
        with pytest.raises(AttributeError):
            c.char_bits = 8

    def test_hashable_for_caching(self):
        assert LZWConfig() == LZWConfig()
        assert hash(LZWConfig()) == hash(LZWConfig())
        assert LZWConfig() != LZWConfig(entry_bits=127)
