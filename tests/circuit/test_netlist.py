"""Unit tests for the netlist representation."""

import pytest

from repro.circuit import Circuit, CircuitError, Gate, GateType


def _simple():
    gates = [
        Gate("a", GateType.INPUT),
        Gate("b", GateType.INPUT),
        Gate("n1", GateType.AND, ("a", "b")),
        Gate("n2", GateType.NOT, ("n1",)),
    ]
    return Circuit("simple", gates, ["n2"])


class TestGate:
    def test_input_cannot_have_fanins(self):
        with pytest.raises(CircuitError):
            Gate("a", GateType.INPUT, ("b",))

    def test_unary_arity(self):
        with pytest.raises(CircuitError):
            Gate("n", GateType.NOT, ("a", "b"))
        with pytest.raises(CircuitError):
            Gate("n", GateType.DFF, ())

    def test_binary_arity(self):
        with pytest.raises(CircuitError):
            Gate("n", GateType.AND, ("a",))

    def test_unknown_type(self):
        with pytest.raises(CircuitError, match="unknown gate type"):
            Gate("n", "MAJORITY", ("a", "b"))


class TestCircuit:
    def test_basic_properties(self):
        c = _simple()
        assert c.inputs == ["a", "b"]
        assert c.flops == []
        assert not c.is_sequential
        assert c.gate_count() == 2
        assert c.outputs == ("n2",)

    def test_duplicate_driver_rejected(self):
        gates = [Gate("a", GateType.INPUT), Gate("a", GateType.INPUT)]
        with pytest.raises(CircuitError, match="driven twice"):
            Circuit("dup", gates, [])

    def test_undefined_fanin_rejected(self):
        gates = [Gate("n", GateType.NOT, ("ghost",))]
        with pytest.raises(CircuitError, match="undefined net"):
            Circuit("bad", gates, [])

    def test_undefined_output_rejected(self):
        gates = [Gate("a", GateType.INPUT)]
        with pytest.raises(CircuitError, match="undefined primary output"):
            Circuit("bad", gates, ["ghost"])

    def test_combinational_cycle_rejected(self):
        gates = [
            Gate("a", GateType.INPUT),
            Gate("x", GateType.AND, ("a", "y")),
            Gate("y", GateType.NOT, ("x",)),
        ]
        with pytest.raises(CircuitError, match="cycle"):
            Circuit("loop", gates, ["y"])

    def test_dff_breaks_cycles(self):
        gates = [
            Gate("a", GateType.INPUT),
            Gate("q", GateType.DFF, ("x",)),
            Gate("x", GateType.AND, ("a", "q")),
        ]
        c = Circuit("seq", gates, ["x"])
        assert c.is_sequential
        assert c.flops == ["q"]

    def test_topological_order(self):
        order = _simple().topological_order()
        assert order.index("n1") > order.index("a")
        assert order.index("n2") > order.index("n1")
        assert len(order) == 4

    def test_fanouts(self):
        fan = _simple().fanouts()
        assert fan["a"] == ["n1"]
        assert fan["n1"] == ["n2"]
        assert fan["n2"] == []

    def test_gate_count_with_flops(self):
        gates = [
            Gate("a", GateType.INPUT),
            Gate("q", GateType.DFF, ("n",)),
            Gate("n", GateType.NOT, ("a",)),
        ]
        c = Circuit("g", gates, ["n"])
        assert c.gate_count(combinational_only=True) == 1
        assert c.gate_count(combinational_only=False) == 2


class TestCombinationalView:
    def test_full_scan_mapping(self):
        gates = [
            Gate("pi", GateType.INPUT),
            Gate("q0", GateType.DFF, ("d0",)),
            Gate("d0", GateType.NOT, ("pi",)),
            Gate("po", GateType.AND, ("pi", "q0")),
        ]
        view = Circuit("v", gates, ["po"]).combinational_view()
        assert view.primary_inputs == ["pi"]
        assert view.pseudo_inputs == ["q0"]
        assert view.pseudo_outputs == ["d0"]
        assert view.test_inputs == ["pi", "q0"]
        assert view.test_outputs == ["po", "d0"]
        assert view.width == 2

    def test_combinational_circuit_view(self):
        view = _simple().combinational_view()
        assert view.pseudo_inputs == []
        assert view.test_inputs == ["a", "b"]
