"""Functional verification of the hand-crafted builtin netlists.

These circuits have known arithmetic/logic behaviour, so the simulator
can be checked against ground truth exhaustively — a much stronger
statement than structural parsing tests.
"""

import itertools

import pytest

from repro.atpg import generate_tests
from repro.circuit import evaluate, load_builtin


class TestCounter4:
    @pytest.fixture(scope="class")
    def counter(self):
        return load_builtin("counter4")

    @pytest.mark.parametrize("state", range(16))
    def test_increments_when_enabled(self, counter, state):
        assignment = {"en": 1}
        for i in range(4):
            assignment[f"q{i}"] = (state >> i) & 1
        values = evaluate(counter, assignment)
        next_state = sum(values[f"d{i}"] << i for i in range(4))
        assert next_state == (state + 1) % 16

    @pytest.mark.parametrize("state", range(16))
    def test_holds_when_disabled(self, counter, state):
        assignment = {"en": 0}
        for i in range(4):
            assignment[f"q{i}"] = (state >> i) & 1
        values = evaluate(counter, assignment)
        next_state = sum(values[f"d{i}"] << i for i in range(4))
        assert next_state == state

    def test_carry_out_at_wraparound(self, counter):
        assignment = {"en": 1, "q0": 1, "q1": 1, "q2": 1, "q3": 1}
        assert evaluate(counter, assignment)["co"] == 1


class TestMux41:
    @pytest.fixture(scope="class")
    def mux(self):
        return load_builtin("mux41")

    def test_exhaustive(self, mux):
        for bits in itertools.product((0, 1), repeat=6):
            a, b, c, d, s0, s1 = bits
            values = evaluate(
                mux, {"a": a, "b": b, "c": c, "d": d, "s0": s0, "s1": s1}
            )
            expected = [a, b, c, d][(s1 << 1) | s0]
            assert values["y"] == expected, bits

    def test_unselected_inputs_are_dont_care(self, mux):
        # With s=00 only input a matters; b/c/d may stay X.
        values = evaluate(mux, {"a": 1, "s0": 0, "s1": 0})
        assert values["y"] == 1


class TestParity8:
    @pytest.fixture(scope="class")
    def parity(self):
        return load_builtin("parity8")

    @pytest.mark.parametrize("value", [0, 1, 0x55, 0xAA, 0xFF, 0x80, 0x7F])
    def test_known_values(self, parity, value):
        assignment = {f"i{i}": (value >> i) & 1 for i in range(8)}
        expected = bin(value).count("1") % 2
        assert evaluate(parity, assignment)["p"] == expected

    def test_any_x_blocks_output(self, parity):
        assignment = {f"i{i}": 0 for i in range(7)}  # i7 left X
        assert evaluate(parity, assignment)["p"] is None


class TestAtpgOnBuiltins:
    @pytest.mark.parametrize("name", ["counter4", "mux41", "parity8"])
    def test_full_coverage(self, name):
        result = generate_tests(load_builtin(name))
        assert result.aborted == 0
        assert result.coverage_percent == 100.0
