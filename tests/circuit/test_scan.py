"""Unit tests for scan chains and test sets."""

import pytest

from repro.bitstream import TernaryVector
from repro.circuit import ScanChain, TestSet, load_builtin


class TestScanChain:
    def test_basic(self):
        chain = ScanChain("ch", ["s0", "s1", "s2"])
        assert chain.length == 3
        assert chain.shift_order() == ["s2", "s1", "s0"]

    def test_load(self):
        chain = ScanChain("ch", ["s0", "s1"])
        assert chain.load(TernaryVector("1X")) == {"s0": 1, "s1": None}

    def test_load_width_checked(self):
        with pytest.raises(ValueError):
            ScanChain("ch", ["s0"]).load(TernaryVector("10"))

    def test_validation(self):
        with pytest.raises(ValueError):
            ScanChain("ch", [])
        with pytest.raises(ValueError):
            ScanChain("ch", ["a", "a"])


class TestTestSet:
    def test_append_and_stats(self):
        ts = TestSet(["a", "b", "c", "d"])
        ts.append(TernaryVector("01XX"))
        ts.append(TernaryVector("XXXX"))
        assert len(ts) == 2
        assert ts.width == 4
        assert ts.total_bits == 8
        assert ts.x_density == pytest.approx(6 / 8)
        assert ts.x_density_percent == pytest.approx(75.0)

    def test_empty_density(self):
        assert TestSet(["a"]).x_density == 0.0

    def test_width_enforced(self):
        ts = TestSet(["a", "b"])
        with pytest.raises(ValueError, match="width"):
            ts.append(TernaryVector("0"))

    def test_stream_roundtrip(self):
        cubes = [TernaryVector("01X"), TernaryVector("X10")]
        ts = TestSet(["a", "b", "c"], cubes)
        stream = ts.to_stream()
        assert str(stream) == "01XX10"
        back = TestSet.from_stream(stream, ["a", "b", "c"])
        assert back.cubes == cubes

    def test_from_stream_validates(self):
        with pytest.raises(ValueError):
            TestSet.from_stream(TernaryVector("01X"), ["a", "b"])

    def test_assignment(self):
        ts = TestSet(["a", "b"], [TernaryVector("1X")])
        assert ts.assignment(0) == {"a": 1, "b": None}

    def test_for_view(self):
        view = load_builtin("s27").combinational_view()
        ts = TestSet.for_view(view)
        assert ts.input_names == view.test_inputs
        assert ts.width == 7

    def test_summary_mentions_the_key_numbers(self):
        ts = TestSet(["a", "b"], [TernaryVector("0X")], name="demo")
        s = ts.summary()
        assert "demo" in s and "1 vectors" in s and "2 bits" in s

    def test_iteration(self):
        cubes = [TernaryVector("0"), TernaryVector("1")]
        assert list(TestSet(["a"], cubes)) == cubes
