"""Unit tests for the fault universe and equivalence collapsing."""

from repro.circuit import (
    Circuit,
    Fault,
    Gate,
    GateType,
    collapse_faults,
    full_fault_list,
    load_builtin,
)


def _inverter_chain():
    gates = [
        Gate("a", GateType.INPUT),
        Gate("n1", GateType.NOT, ("a",)),
        Gate("n2", GateType.NOT, ("n1",)),
    ]
    return Circuit("chain", gates, ["n2"])


class TestFaultModel:
    def test_str_forms(self):
        assert str(Fault("a", 0)) == "a sa0"
        assert str(Fault("a", 1, branch=("g", 2))) == "a->g.2 sa1"

    def test_sort_key_orders_stems_before_branches(self):
        stem = Fault("a", 1)
        branch = Fault("a", 0, branch=("g", 0))
        assert stem.sort_key < branch.sort_key


class TestFullList:
    def test_stem_faults_for_every_net(self):
        faults = full_fault_list(_inverter_chain())
        stems = {(f.net, f.stuck) for f in faults if f.branch is None}
        assert stems == {(n, v) for n in ("a", "n1", "n2") for v in (0, 1)}

    def test_branch_faults_only_at_fanout(self):
        # No fanout > 1 here: no branch faults.
        faults = full_fault_list(_inverter_chain())
        assert all(f.branch is None for f in faults)

    def test_fanout_creates_branches(self):
        gates = [
            Gate("a", GateType.INPUT),
            Gate("y1", GateType.BUFF, ("a",)),
            Gate("y2", GateType.BUFF, ("a",)),
        ]
        c = Circuit("fan", gates, ["y1", "y2"])
        branches = [f for f in full_fault_list(c) if f.branch is not None]
        assert len(branches) == 4  # 2 pins x 2 polarities

    def test_dff_pins_carry_no_branch_faults(self):
        gates = [
            Gate("a", GateType.INPUT),
            Gate("q", GateType.DFF, ("n",)),
            Gate("n", GateType.NOT, ("a",)),
            Gate("m", GateType.BUFF, ("n",)),
        ]
        c = Circuit("seq", gates, ["m"])
        branches = [f for f in full_fault_list(c) if f.branch is not None]
        # n fans out to q (DFF) and m: only the m pin gets branch faults.
        assert {f.branch[0] for f in branches} == {"m"}


class TestCollapse:
    def test_inverter_chain_collapses_hard(self):
        # a sa0 = n1 sa1 = n2 sa0; a sa1 = n1 sa0 = n2 sa1 -> 2 classes.
        collapsed = collapse_faults(_inverter_chain())
        assert len(collapsed) == 2

    def test_and_gate_rules(self):
        gates = [
            Gate("a", GateType.INPUT),
            Gate("b", GateType.INPUT),
            Gate("y", GateType.AND, ("a", "b")),
        ]
        c = Circuit("and", gates, ["y"])
        # Universe: 6 stems. a sa0 = b sa0 = y sa0 -> 6 - 2 = 4 classes.
        collapsed = collapse_faults(c)
        assert len(collapsed) == 4

    def test_xor_collapses_nothing(self):
        gates = [
            Gate("a", GateType.INPUT),
            Gate("b", GateType.INPUT),
            Gate("y", GateType.XOR, ("a", "b")),
        ]
        collapsed = collapse_faults(Circuit("xor", gates, ["y"]))
        assert len(collapsed) == 6

    def test_c17_collapse_count(self):
        c17 = load_builtin("c17")
        assert len(full_fault_list(c17)) == 34
        assert len(collapse_faults(c17)) == 22

    def test_collapsed_is_subset_and_sorted(self):
        c = load_builtin("s27")
        full = set(full_fault_list(c))
        collapsed = collapse_faults(c)
        assert set(collapsed) <= full
        assert collapsed == sorted(collapsed, key=lambda f: f.sort_key)

    def test_deterministic(self):
        c = load_builtin("s27")
        assert collapse_faults(c) == collapse_faults(c)
