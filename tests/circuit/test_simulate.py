"""Unit tests for the 3-valued simulator and fault injection."""

import itertools

import pytest

from repro.bitstream import TernaryVector
from repro.circuit import (
    Circuit,
    Fault,
    Gate,
    GateType,
    evaluate,
    load_builtin,
    outputs_of,
    simulate_cube,
)


def _one_gate(gate_type, arity=2):
    names = ["a", "b", "c"][:arity]
    gates = [Gate(n, GateType.INPUT) for n in names]
    gates.append(Gate("y", gate_type, tuple(names)))
    return Circuit("g", gates, ["y"])


TRUTH = {
    GateType.AND: lambda vs: int(all(vs)),
    GateType.NAND: lambda vs: int(not all(vs)),
    GateType.OR: lambda vs: int(any(vs)),
    GateType.NOR: lambda vs: int(not any(vs)),
    GateType.XOR: lambda vs: vs[0] ^ vs[1],
    GateType.XNOR: lambda vs: 1 - (vs[0] ^ vs[1]),
}


@pytest.mark.parametrize("gate_type", sorted(TRUTH))
def test_binary_truth_tables(gate_type):
    c = _one_gate(gate_type)
    for a, b in itertools.product((0, 1), repeat=2):
        values = evaluate(c, {"a": a, "b": b})
        assert values["y"] == TRUTH[gate_type]([a, b]), (gate_type, a, b)


class TestXSemantics:
    def test_controlling_value_dominates_x(self):
        c = _one_gate(GateType.AND)
        assert evaluate(c, {"a": 0})["y"] == 0
        assert evaluate(c, {"a": 1})["y"] is None
        c = _one_gate(GateType.OR)
        assert evaluate(c, {"a": 1})["y"] == 1
        assert evaluate(c, {"a": 0})["y"] is None

    def test_nor_nand_with_x(self):
        assert evaluate(_one_gate(GateType.NAND), {"a": 0})["y"] == 1
        assert evaluate(_one_gate(GateType.NOR), {"a": 1})["y"] == 0

    def test_xor_is_pessimistic(self):
        c = _one_gate(GateType.XOR)
        assert evaluate(c, {"a": 1})["y"] is None

    def test_not_and_buff(self):
        gates = [
            Gate("a", GateType.INPUT),
            Gate("n", GateType.NOT, ("a",)),
            Gate("b", GateType.BUFF, ("n",)),
        ]
        c = Circuit("nb", gates, ["b"])
        assert evaluate(c, {"a": 0})["b"] == 1
        assert evaluate(c, {})["b"] is None

    def test_missing_sources_default_to_x(self):
        c = _one_gate(GateType.AND)
        assert evaluate(c, {})["y"] is None

    def test_three_input_gate(self):
        c = _one_gate(GateType.AND, arity=3)
        assert evaluate(c, {"a": 1, "b": 1, "c": 1})["y"] == 1
        assert evaluate(c, {"a": 1, "b": 1, "c": 0})["y"] == 0


class TestFaultInjection:
    def test_stem_fault_forces_net(self):
        c = _one_gate(GateType.AND)
        values = evaluate(c, {"a": 1, "b": 1}, Fault("y", 0))
        assert values["y"] == 0

    def test_stem_fault_on_input_propagates(self):
        c = _one_gate(GateType.AND)
        values = evaluate(c, {"a": 1, "b": 1}, Fault("a", 0))
        assert values["a"] == 0
        assert values["y"] == 0

    def test_branch_fault_affects_one_pin_only(self):
        gates = [
            Gate("a", GateType.INPUT),
            Gate("y1", GateType.BUFF, ("a",)),
            Gate("y2", GateType.BUFF, ("a",)),
        ]
        c = Circuit("fan", gates, ["y1", "y2"])
        values = evaluate(c, {"a": 1}, Fault("a", 0, branch=("y1", 0)))
        assert values["y1"] == 0
        assert values["y2"] == 1  # the stem and the other branch are healthy
        assert values["a"] == 1

    def test_fault_validation(self):
        with pytest.raises(ValueError):
            Fault("a", 2)


class TestC17Simulation:
    def test_known_vector(self):
        c17 = load_builtin("c17")
        view = c17.combinational_view()
        values = simulate_cube(view, TernaryVector("00000"))
        # All-NAND circuit with all-0 inputs: first level all 1.
        assert values["10"] == 1 and values["11"] == 1
        outs = outputs_of(view, values)
        assert set(outs) == {"22", "23"}

    def test_cube_width_checked(self):
        view = load_builtin("c17").combinational_view()
        with pytest.raises(ValueError, match="width"):
            simulate_cube(view, TernaryVector("000"))
