"""Unit tests for the synthetic circuit generator."""

import pytest

from repro.circuit import GateType, random_circuit


class TestGeneration:
    def test_deterministic(self):
        a = random_circuit("r", 8, 4, 50, seed=7)
        b = random_circuit("r", 8, 4, 50, seed=7)
        assert [
            (g.name, g.gate_type, g.fanins) for g in a.gates.values()
        ] == [(g.name, g.gate_type, g.fanins) for g in b.gates.values()]
        assert a.outputs == b.outputs

    def test_different_seeds_differ(self):
        a = random_circuit("r", 8, 4, 50, seed=1)
        b = random_circuit("r", 8, 4, 50, seed=2)
        assert [g.fanins for g in a.gates.values()] != [
            g.fanins for g in b.gates.values()
        ]

    def test_requested_sizes(self):
        c = random_circuit("r", 10, 6, 80, seed=0)
        assert len(c.inputs) == 10
        assert len(c.flops) == 6
        assert c.gate_count() == 80

    def test_acyclic_by_construction(self):
        # Circuit() raises on cycles; many seeds must construct fine.
        for seed in range(10):
            random_circuit("r", 6, 3, 40, seed=seed)

    def test_no_dead_logic(self):
        c = random_circuit("r", 8, 4, 60, seed=3)
        consumed = {f for g in c.gates.values() for f in g.fanins}
        observable = set(c.outputs) | consumed
        comb = [
            g.name
            for g in c.gates.values()
            if g.gate_type not in (GateType.INPUT, GateType.DFF)
        ]
        assert all(n in observable for n in comb)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_circuit("r", 0, 0, 10)
        with pytest.raises(ValueError):
            random_circuit("r", 4, -1, 10)
        with pytest.raises(ValueError):
            random_circuit("r", 4, 2, 10, uniform_fraction=1.5)

    def test_combinational_only(self):
        c = random_circuit("r", 5, 0, 30, seed=0)
        assert not c.is_sequential
        assert c.combinational_view().width == 5

    def test_explicit_output_count(self):
        c = random_circuit("r", 8, 4, 60, n_outputs=3, seed=0)
        # At least the requested outputs (dangling nets are promoted too).
        assert len(c.outputs) >= 3
