"""Unit tests for the .bench parser/writer."""

import pytest

from repro.circuit import (
    BUILTIN_CIRCUITS,
    CircuitError,
    GateType,
    load_builtin,
    parse_bench,
    write_bench,
)


class TestParse:
    def test_c17(self):
        c = load_builtin("c17")
        assert len(c.inputs) == 5
        assert len(c.outputs) == 2
        assert c.gate_count() == 6
        assert all(
            g.gate_type in (GateType.INPUT, GateType.NAND)
            for g in c.gates.values()
        )

    def test_s27(self):
        c = load_builtin("s27")
        assert len(c.inputs) == 4
        assert len(c.flops) == 3
        assert c.is_sequential
        view = c.combinational_view()
        assert view.width == 7

    def test_unknown_builtin(self):
        with pytest.raises(ValueError, match="unknown builtin"):
            load_builtin("c6288")

    def test_comments_and_blanks(self):
        text = """
        # a comment
        INPUT(a)

        OUTPUT(n)
        n = NOT(a)  # trailing comment
        """
        c = parse_bench(text)
        assert c.inputs == ["a"]

    def test_aliases(self):
        text = "INPUT(a)\nOUTPUT(n)\nm = INV(a)\nn = BUF(m)\n"
        c = parse_bench(text)
        assert c.gates["m"].gate_type == GateType.NOT
        assert c.gates["n"].gate_type == GateType.BUFF

    def test_single_input_and_becomes_buffer(self):
        text = "INPUT(a)\nOUTPUT(n)\nn = AND(a)\n"
        c = parse_bench(text)
        assert c.gates["n"].gate_type == GateType.BUFF

    def test_unparseable_line(self):
        with pytest.raises(CircuitError, match="unparseable"):
            parse_bench("INPUT(a)\nwhat is this\n")

    def test_unknown_gate(self):
        with pytest.raises(CircuitError, match="unknown gate type"):
            parse_bench("INPUT(a)\nINPUT(b)\nn = MUX21(a, b)\n")

    def test_line_numbers_in_errors(self):
        with pytest.raises(CircuitError, match=":3:"):
            parse_bench("INPUT(a)\n\n???\n", name="t")


class TestWrite:
    @pytest.mark.parametrize("name", BUILTIN_CIRCUITS)
    def test_roundtrip(self, name):
        original = load_builtin(name)
        text = write_bench(original)
        back = parse_bench(text, name=name)
        assert back.inputs == original.inputs
        assert list(back.outputs) == list(original.outputs)
        assert set(back.gates) == set(original.gates)
        for net, gate in original.gates.items():
            assert back.gates[net].gate_type == gate.gate_type
            assert back.gates[net].fanins == gate.fanins
