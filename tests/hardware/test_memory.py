"""Unit tests for the embedded-memory model."""

import pytest

from repro.core import LZWConfig
from repro.hardware import EmbeddedMemory, MemoryMode, MemoryRequirements


class TestRequirements:
    def test_paper_headline_geometry(self):
        req = MemoryRequirements.for_config(LZWConfig())
        assert req.words == 1024
        assert req.data_bits == 63
        assert req.mlen_bits == 6  # 63 needs 6 bits
        assert req.word_bits == 69
        assert req.geometry == "1024x69"
        assert req.total_bits == 1024 * 69

    def test_paper_sizing_example(self):
        """C_MDATA=483 needs a 9-bit length field -> 492-bit words."""
        config = LZWConfig(char_bits=7, dict_size=1024, entry_bits=483)
        req = MemoryRequirements.for_config(config)
        assert req.mlen_bits == 9
        assert req.word_bits == 492

    def test_2048_dictionary(self):
        config = LZWConfig(dict_size=2048)
        assert MemoryRequirements.for_config(config).words == 2048


class TestEmbeddedMemory:
    @pytest.fixture
    def mem(self):
        return EmbeddedMemory(MemoryRequirements(words=8, mlen_bits=4, data_bits=12))

    def test_starts_in_normal_mode(self, mem):
        assert mem.mode is MemoryMode.NORMAL
        with pytest.raises(PermissionError, match="mux"):
            mem.read(0)
        with pytest.raises(PermissionError):
            mem.write(0, 4, 0)

    def test_bist_mode_also_blocks_lzw_access(self, mem):
        mem.grant(MemoryMode.BIST)
        with pytest.raises(PermissionError):
            mem.read(0)

    def test_write_then_read(self, mem):
        mem.grant(MemoryMode.LZW)
        mem.write(3, 8, 0xAB)
        assert mem.read(3) == (8, 0xAB)
        assert mem.reads == 1
        assert mem.writes == 1

    def test_read_unwritten_word(self, mem):
        mem.grant(MemoryMode.LZW)
        with pytest.raises(ValueError, match="unwritten"):
            mem.read(0)

    def test_address_bounds(self, mem):
        mem.grant(MemoryMode.LZW)
        with pytest.raises(IndexError):
            mem.read(8)
        with pytest.raises(IndexError):
            mem.write(-1, 4, 0)

    def test_field_width_enforced(self, mem):
        mem.grant(MemoryMode.LZW)
        with pytest.raises(ValueError, match="exceeds C_MDATA"):
            mem.write(0, 13, 0)
        with pytest.raises(ValueError, match="wider than"):
            mem.write(0, 12, 1 << 12)

    def test_occupancy(self, mem):
        mem.grant(MemoryMode.LZW)
        assert mem.occupancy() == 0
        mem.write(0, 4, 1)
        mem.write(5, 4, 2)
        assert mem.occupancy() == 2
