"""Unit tests for the ATE economics model."""

import pytest

from repro.bitstream import TernaryVector
from repro.core import LZWConfig, LZWEncoder
from repro.hardware import ATEProfile, evaluate_economics

CONFIG = LZWConfig(char_bits=2, dict_size=16, entry_bits=8)


@pytest.fixture
def compressed(sparse_stream):
    return LZWEncoder(CONFIG).encode(sparse_stream)


class TestProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            ATEProfile(clock_hz=0)
        with pytest.raises(ValueError):
            ATEProfile(sites=0)
        with pytest.raises(ValueError):
            ATEProfile(vector_memory_bits=0)


class TestReport:
    def test_memory_saving_tracks_ratio(self, compressed):
        report = evaluate_economics(compressed)
        assert report.memory_saving_percent == pytest.approx(
            100.0 * compressed.ratio
        )

    def test_no_reloads_when_memory_fits(self, compressed):
        report = evaluate_economics(compressed)
        assert report.uncompressed_reloads == 0
        assert report.compressed_reloads == 0

    def test_reload_threshold(self, compressed):
        tiny = ATEProfile(vector_memory_bits=compressed.original_bits // 3)
        report = evaluate_economics(compressed, tiny)
        assert report.uncompressed_reloads >= 2
        assert report.compressed_reloads < report.uncompressed_reloads

    def test_reload_penalty_dominates_cost(self, compressed):
        tiny = ATEProfile(
            vector_memory_bits=compressed.compressed_bits + 1,
            reload_seconds=10.0,
        )
        report = evaluate_economics(compressed, tiny)
        assert report.compressed_reloads == 0
        assert report.uncompressed_reloads >= 1
        assert report.cost_saving_percent > 90.0

    def test_time_saving_sign_follows_download(self, compressed):
        fast = evaluate_economics(compressed, clock_ratio=10,
                                  double_buffered=True)
        assert fast.time_saving_percent > 0

    def test_multi_site_scales_cost_not_time(self, compressed):
        one = evaluate_economics(compressed, ATEProfile(sites=1))
        four = evaluate_economics(compressed, ATEProfile(sites=4))
        assert four.cost_compressed == pytest.approx(one.cost_compressed / 4)
        assert four.compressed_seconds == pytest.approx(one.compressed_seconds)

    def test_zero_original(self):
        compressed = LZWEncoder(CONFIG).encode(TernaryVector())
        report = evaluate_economics(compressed)
        assert report.memory_saving_percent == 0.0
        assert report.time_saving_percent == 0.0
