"""Unit tests for the area-overhead estimate."""

from repro.core import LZWConfig
from repro.hardware import AreaModel, estimate_area


def test_reused_memory_costs_no_dedicated_bits():
    report = estimate_area(LZWConfig(), memory_is_reused=True)
    assert report.dedicated_memory_bits == 0
    assert report.memory.total_bits > 0


def test_dedicated_memory_counted():
    report = estimate_area(LZWConfig(), memory_is_reused=False)
    assert report.dedicated_memory_bits == report.memory.total_bits


def test_datapath_scales_with_entry_width():
    small = estimate_area(LZWConfig(entry_bits=63)).datapath_ge
    large = estimate_area(LZWConfig(entry_bits=511)).datapath_ge
    assert large > small


def test_datapath_scales_with_dictionary():
    small = estimate_area(LZWConfig(dict_size=1024)).datapath_ge
    large = estimate_area(LZWConfig(dict_size=65536 // 16)).datapath_ge
    assert large >= small


def test_custom_technology_constants():
    expensive = AreaModel(flop_ge=100.0)
    cheap = AreaModel(flop_ge=1.0)
    config = LZWConfig()
    assert (
        estimate_area(config, expensive).datapath_ge
        > estimate_area(config, cheap).datapath_ge
    )


def test_magnitude_is_reasonable():
    """The paper's pitch: the engine is small (thousands of GE, not
    millions) because the dictionary reuses the core memory."""
    report = estimate_area(LZWConfig())
    assert 100 < report.datapath_ge < 20_000
