"""Unit tests for the LFSR/MISR response-compaction substrate."""

import pytest

from repro.bitstream import TernaryVector
from repro.hardware.misr import (
    LFSR,
    MISR,
    STANDARD_POLYNOMIALS,
    aliasing_probability,
    signature_of_responses,
)


class TestLFSR:
    def test_validation(self):
        with pytest.raises(ValueError):
            LFSR(0b10)  # missing x^0 term
        with pytest.raises(ValueError):
            LFSR(0b1)
        with pytest.raises(ValueError):
            LFSR(0b10011, seed=16)

    def test_width_from_polynomial(self):
        assert LFSR(0b10011).width == 4
        assert LFSR(STANDARD_POLYNOMIALS[8]).width == 8

    @pytest.mark.parametrize("width", [4, 8, 16])
    def test_standard_polynomials_are_maximal_length(self, width):
        lfsr = LFSR(STANDARD_POLYNOMIALS[width], seed=1)
        assert lfsr.period() == (1 << width) - 1

    def test_zero_state_locks_up(self):
        lfsr = LFSR(0b10011, seed=0)
        assert lfsr.period() == 1
        lfsr.step()
        assert lfsr.state == 0

    def test_sequence_is_deterministic(self):
        a = LFSR(0b10011, seed=5).sequence(40)
        b = LFSR(0b10011, seed=5).sequence(40)
        assert a == b
        assert set(a) == {0, 1}

    def test_feed_wider_than_register(self):
        with pytest.raises(ValueError):
            LFSR(0b10011).step(feed=16)


class TestMISR:
    def test_signature_depends_on_every_slice(self):
        a = MISR(0b10011)
        b = MISR(0b10011)
        for value in (3, 9, 12):
            a.absorb(value)
        for value in (3, 9, 13):
            b.absorb(value)
        assert a.signature() != b.signature()

    def test_linearity(self):
        """MISR is linear: sig(r1 xor r2) = sig(r1) xor sig(r2) from the
        zero seed — the property aliasing analysis rests on."""
        poly = STANDARD_POLYNOMIALS[8]
        r1 = [17, 250, 3, 96]
        r2 = [44, 1, 201, 7]
        def sig(values):
            m = MISR(poly, seed=0)
            for v in values:
                m.absorb(v)
            return m.signature()
        combined = [a ^ b for a, b in zip(r1, r2)]
        assert sig(combined) == sig(r1) ^ sig(r2)


class TestSignatureOfResponses:
    def test_deterministic_and_x_masked(self):
        slices = [TernaryVector("01X0"), TernaryVector("1XX1")]
        s0 = signature_of_responses(slices, x_fill=0)
        s0_again = signature_of_responses(slices, x_fill=0)
        s1 = signature_of_responses(slices, x_fill=1)
        assert s0 == s0_again
        assert s0 != s1  # the mask policy is part of the signature

    def test_single_bit_error_changes_signature(self):
        good = [TernaryVector("0101"), TernaryVector("0011")]
        bad = [TernaryVector("0111"), TernaryVector("0011")]
        assert signature_of_responses(good) != signature_of_responses(bad)

    def test_width_checks(self):
        with pytest.raises(ValueError, match="at least one"):
            signature_of_responses([])
        with pytest.raises(ValueError, match="share one width"):
            signature_of_responses(
                [TernaryVector("0101"), TernaryVector("011")]
            )
        with pytest.raises(ValueError, match="no standard polynomial"):
            signature_of_responses([TernaryVector("01110")])

    def test_explicit_polynomial(self):
        slices = [TernaryVector("011")]
        sig = signature_of_responses(slices, polynomial=0b10011)
        assert 0 <= sig < 16


def test_aliasing_probability():
    assert aliasing_probability(16) == pytest.approx(2.0**-16)
    with pytest.raises(ValueError):
        aliasing_probability(0)
