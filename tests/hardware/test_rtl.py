"""Unit tests for the Verilog generator.

No simulator is available offline, so these tests check the generated
text structurally: parameter arithmetic, port lists, state machine
completeness, begin/end balance, and that the testbench embeds exactly
the stimulus and expectations the Python encoder/decoder define.
"""

import re

import pytest

from repro.bitstream import TernaryVector
from repro.core import LZWConfig, LZWEncoder, decode
from repro.hardware import RTL_STATES, generate_decompressor, generate_testbench

CONFIG = LZWConfig(char_bits=3, dict_size=64, entry_bits=15)


@pytest.fixture(scope="module")
def rtl():
    return generate_decompressor(CONFIG)


@pytest.fixture(scope="module")
def compressed():
    return LZWEncoder(CONFIG).encode(TernaryVector("01X10X110X0XX10110"))


class TestDecompressorRTL:
    def test_module_declared(self, rtl):
        assert re.search(r"^module lzw_decompressor \(", rtl, re.M)
        assert rtl.rstrip().endswith("endmodule")

    def test_ports(self, rtl):
        for port in ("clk", "rst_n", "bit_in", "bit_valid", "scan_out",
                     "scan_valid", "ready", "error"):
            assert re.search(rf"\b{port}\b", rtl), port

    def test_parameters_match_config(self, rtl):
        assert "localparam integer CE        = 6;" in rtl
        assert "localparam integer CC        = 3;" in rtl
        assert "localparam integer N_BASE    = 8;" in rtl
        assert "localparam integer DICT_SIZE = 64;" in rtl
        assert "localparam integer DATA_W    = 15;" in rtl
        assert "localparam integer MAX_CHARS = 5;" in rtl

    def test_all_states_defined_and_used(self, rtl):
        for state in RTL_STATES:
            assert rtl.count(state) >= 2, state

    def test_memory_sized_by_dictionary(self, rtl):
        assert "dict_mem [0:DICT_SIZE-1]" in rtl

    def test_kwkwk_case_present(self, rtl):
        assert "kwkwk" in rtl
        assert "Figure 4f" in rtl

    def test_begin_end_balance(self, rtl):
        begins = len(re.findall(r"\bbegin\b", rtl))
        ends = len(re.findall(r"\bend\b", rtl))
        assert begins == ends

    def test_case_has_default(self, rtl):
        assert "default:" in rtl
        assert rtl.count("case (") == rtl.count("endcase")

    def test_custom_module_name(self):
        text = generate_decompressor(CONFIG, module_name="core0_lzw")
        assert "module core0_lzw (" in text


class TestTestbench:
    def test_embeds_exact_stimulus(self, compressed):
        tb = generate_testbench(compressed, clock_ratio=4)
        bits = compressed.to_bits()
        assert f"localparam integer N_STIM   = {len(bits)};" in tb
        for i, b in enumerate(bits):
            assert f"stim[{i}] = 1'b{b};" in tb

    def test_embeds_decoder_expectations(self, compressed):
        tb = generate_testbench(compressed)
        expected = decode(compressed)
        assert f"localparam integer N_EXPECT = {len(expected)};" in tb
        # Spot-check first and last expected bits.
        assert f"expect_bits[0] = 1'b{expected[0]};" in tb
        last = len(expected) - 1
        assert f"expect_bits[{last}] = 1'b{expected[last]};" in tb

    def test_clock_ratio_parameter(self, compressed):
        tb = generate_testbench(compressed, clock_ratio=7)
        assert "localparam integer RATIO    = 7;" in tb
        with pytest.raises(ValueError):
            generate_testbench(compressed, clock_ratio=0)

    def test_instantiates_dut(self, compressed):
        tb = generate_testbench(compressed, module_name="core0_lzw")
        assert "core0_lzw dut (" in tb

    def test_self_checking_scaffolding(self, compressed):
        tb = generate_testbench(compressed)
        assert "$display(\"PASS" in tb
        assert "$fatal" in tb
        assert "MISMATCH" in tb
