"""Unit tests for the analytic download-time model."""

import pytest

from repro.core import LZWConfig, compress
from repro.hardware import analyze_download, decode_cycles_per_code

CONFIG = LZWConfig(char_bits=2, dict_size=16, entry_bits=8)


@pytest.fixture
def result(sparse_stream):
    return compress(sparse_stream, CONFIG)


class TestDecodeCycles:
    def test_one_entry_per_code(self, result):
        cycles = decode_cycles_per_code(result.compressed)
        assert len(cycles) == result.compressed.num_codes

    def test_cost_structure(self, result):
        cycles = decode_cycles_per_code(
            result.compressed, lookup_cycles=0, write_cycles=0
        )
        expected = [
            chars * CONFIG.char_bits for chars in result.compressed.expansion_chars
        ]
        assert cycles == expected

    def test_write_charged_after_first_code(self, result):
        no_write = decode_cycles_per_code(result.compressed, write_cycles=0)
        with_write = decode_cycles_per_code(result.compressed, write_cycles=1)
        assert with_write[0] == no_write[0]  # first code allocates nothing
        diffs = [w - n for w, n in zip(with_write, no_write)]
        assert all(d in (0, 1) for d in diffs)

    def test_missing_expansions_rejected(self):
        from repro.core import CompressedStream

        cs = CompressedStream((0, 1), CONFIG, 4)
        with pytest.raises(ValueError, match="expansion_chars"):
            decode_cycles_per_code(cs)


class TestAnalyzeDownload:
    def test_report_fields(self, result):
        report = analyze_download(result.compressed, 10)
        assert report.original_bits == result.original_bits
        assert report.compressed_bits == result.compressed_bits
        assert report.clock_ratio == 10
        assert report.baseline_tester_cycles == result.original_bits
        assert report.memory.words == CONFIG.dict_size

    def test_improvement_definition(self, result):
        report = analyze_download(result.compressed, 10)
        expected = 1 - report.tester_cycles / report.original_bits
        assert report.improvement == pytest.approx(expected)
        assert report.improvement_percent == pytest.approx(100 * expected)

    def test_invalid_ratio(self, result):
        with pytest.raises(ValueError):
            analyze_download(result.compressed, 0)

    def test_serial_lower_bound(self, result):
        """Serial time is at least download + decode/k."""
        report = analyze_download(result.compressed, 4)
        per_code = decode_cycles_per_code(result.compressed)
        lower = result.compressed_bits + sum(per_code) / 4
        assert report.tester_cycles >= lower - 1

    def test_serial_improvement_tends_to_ratio_minus_1_over_k(self, result):
        """The Table 2 asymptotic: improvement = ratio - 1/k minus
        bounded per-code overheads (padding and tester-edge alignment)."""
        k = 10
        report = analyze_download(
            result.compressed, k, lookup_cycles=0, write_cycles=0
        )
        orig = result.original_bits
        codes = result.compressed.num_codes
        upper = result.ratio - 1 / k
        lower = upper - CONFIG.char_bits / (k * orig) - (codes + 1) / orig
        assert lower - 1e-9 <= report.improvement <= upper + 1e-9

    def test_buffered_beats_serial(self, result):
        for k in (2, 4, 10):
            serial = analyze_download(result.compressed, k).tester_cycles
            buffered = analyze_download(
                result.compressed, k, double_buffered=True
            ).tester_cycles
            assert buffered <= serial

    def test_empty_stream(self):
        from repro.core import CompressedStream

        cs = CompressedStream((), CONFIG, 0, ())
        report = analyze_download(cs, 4)
        assert report.tester_cycles == 0
        assert report.improvement == 0.0


class TestParallelChains:
    def _multichain(self, n_chains):
        from repro.core import compress_per_chain, partition_chains
        from repro.workloads import build_testset

        ts = build_testset("s9234f", scale=0.1)
        chains = partition_chains(ts, n_chains)
        return ts, compress_per_chain(ts, chains, CONFIG)

    def test_maximises_over_chains(self):
        from repro.hardware import analyze_download, analyze_parallel_chains

        _ts, mc = self._multichain(3)
        streams = [r.compressed for r in mc.results]
        report = analyze_parallel_chains(streams, 8)
        singles = [analyze_download(s, 8).tester_cycles for s in streams]
        assert report.tester_cycles == max(singles)
        assert report.baseline_tester_cycles == max(
            s.original_bits for s in streams
        )

    def test_parallel_baseline_shrinks_with_chains(self):
        from repro.hardware import analyze_parallel_chains

        _ts2, two = self._multichain(2)
        _ts4, four = self._multichain(4)
        rep2 = analyze_parallel_chains([r.compressed for r in two.results], 8)
        rep4 = analyze_parallel_chains([r.compressed for r in four.results], 8)
        assert rep4.baseline_tester_cycles < rep2.baseline_tester_cycles

    def test_memory_sums_over_engines(self):
        from repro.hardware import MemoryRequirements, analyze_parallel_chains

        _ts, mc = self._multichain(3)
        report = analyze_parallel_chains(
            [r.compressed for r in mc.results], 8
        )
        per_engine = MemoryRequirements.for_config(CONFIG).total_bits
        assert report.total_memory_bits == 3 * per_engine

    def test_empty(self):
        from repro.hardware import analyze_parallel_chains

        report = analyze_parallel_chains([], 8)
        assert report.tester_cycles == 0
        assert report.improvement == 0.0
