"""Unit tests for the cycle-accurate decompressor model."""

import pytest

from repro.bitstream import TernaryVector
from repro.core import LZWConfig, LZWEncoder, compress, decode
from repro.hardware import DecompressorModel, EmbeddedMemory, MemoryRequirements

CONFIG = LZWConfig(char_bits=2, dict_size=16, entry_bits=8)


def _compressed(stream):
    return LZWEncoder(CONFIG).encode(stream)


class TestBitExactness:
    def test_matches_software_decoder(self, sparse_stream):
        config = LZWConfig(char_bits=3, dict_size=64, entry_bits=15)
        result = compress(sparse_stream, config)
        run = DecompressorModel(config, clock_ratio=8).run(
            result.compressed.to_bits(), len(sparse_stream)
        )
        assert run.scan_stream == decode(result.compressed)

    def test_kwkwk_through_memory(self):
        compressed = _compressed(TernaryVector("00000000"))
        run = DecompressorModel(CONFIG, clock_ratio=2).run(
            compressed.to_bits(), compressed.original_bits
        )
        assert run.scan_stream == decode(compressed)

    def test_memory_populated_like_encoder(self):
        stream = TernaryVector("0110100111001011")
        encoder = LZWEncoder(CONFIG)
        compressed = encoder.encode(stream)
        mem = EmbeddedMemory(MemoryRequirements.for_config(CONFIG))
        model = DecompressorModel(CONFIG, clock_ratio=4, memory=mem)
        model.run(compressed.to_bits(), len(stream))
        assert mem.occupancy() == encoder.dictionary.allocated


class TestCycleAccounting:
    def test_codes_processed(self):
        compressed = _compressed(TernaryVector("01101001"))
        run = DecompressorModel(CONFIG, clock_ratio=4).run(
            compressed.to_bits(), 8
        )
        assert run.codes_processed == compressed.num_codes

    def test_serial_slower_or_equal_to_buffered(self):
        compressed = _compressed(TernaryVector("0110100101100110"))
        bits = compressed.to_bits()
        serial = DecompressorModel(CONFIG, clock_ratio=4).run(bits, 16)
        buffered = DecompressorModel(
            CONFIG, clock_ratio=4, double_buffered=True
        ).run(bits, 16)
        assert buffered.tester_cycles <= serial.tester_cycles

    def test_improvement_percent(self):
        compressed = _compressed(TernaryVector("01" * 32))
        run = DecompressorModel(CONFIG, clock_ratio=10).run(
            compressed.to_bits(), 64
        )
        improvement = run.improvement_percent(64)
        assert improvement == pytest.approx(
            100.0 * (1 - run.tester_cycles / 64)
        )
        with pytest.raises(ValueError):
            run.improvement_percent(0)

    def test_memory_traffic_counted(self):
        compressed = _compressed(TernaryVector("0110100101100110"))
        run = DecompressorModel(CONFIG, clock_ratio=4).run(
            compressed.to_bits(), 16
        )
        assert run.memory_writes > 0
        # Reads only happen for allocated-code references.
        assert run.memory_reads >= 0


class TestValidation:
    def test_bad_clock_ratio(self):
        with pytest.raises(ValueError):
            DecompressorModel(CONFIG, clock_ratio=0)

    def test_negative_cycle_costs(self):
        with pytest.raises(ValueError):
            DecompressorModel(CONFIG, lookup_cycles=-1)

    def test_ragged_bitstream_rejected(self):
        model = DecompressorModel(CONFIG, clock_ratio=2)
        with pytest.raises(ValueError, match="whole number"):
            model.run([0, 1, 0], 4)

    def test_undecodable_code_rejected(self):
        # Code 15 as the first code references nothing.
        bits = []
        for _ in range(CONFIG.code_bits):
            bits.append(1)
        model = DecompressorModel(CONFIG, clock_ratio=2)
        with pytest.raises(ValueError, match="not decodable"):
            model.run(bits, 2)

    def test_short_output_rejected(self):
        compressed = _compressed(TernaryVector("01"))
        model = DecompressorModel(CONFIG, clock_ratio=2)
        with pytest.raises(ValueError, match="scan bits"):
            model.run(compressed.to_bits(), 50)
