"""Unit tests for TernaryVector."""

import random

import pytest

from repro.bitstream import TernaryVector, X


class TestConstruction:
    def test_empty(self):
        v = TernaryVector()
        assert len(v) == 0
        assert str(v) == ""
        assert v.is_fully_specified  # vacuously

    def test_from_string(self):
        v = TernaryVector("01X")
        assert v[0] == 0
        assert v[1] == 1
        assert v[2] is X

    def test_from_string_aliases(self):
        assert TernaryVector("x-X") == TernaryVector("XXX")

    def test_from_iterable(self):
        v = TernaryVector([0, 1, None, 1])
        assert str(v) == "01X1"

    def test_invalid_character(self):
        with pytest.raises(ValueError, match="invalid ternary"):
            TernaryVector("012")

    def test_invalid_bit_value(self):
        with pytest.raises(ValueError, match="must be 0, 1 or X"):
            TernaryVector([0, 2])

    def test_from_masks_normalises_value(self):
        v = TernaryVector.from_masks(value=0b111, care=0b101, length=3)
        assert str(v) == "1X1"
        assert v.value_mask == 0b101

    def test_from_masks_truncates(self):
        v = TernaryVector.from_masks(value=0b1111, care=0b1111, length=2)
        assert len(v) == 2
        assert v.value_mask == 0b11

    def test_from_masks_negative_length(self):
        with pytest.raises(ValueError):
            TernaryVector.from_masks(0, 0, -1)

    def test_from_int(self):
        v = TernaryVector.from_int(0b101, 4)
        assert str(v) == "1010"  # LSB-first display order

    def test_from_int_too_small_width(self):
        with pytest.raises(ValueError, match="does not fit"):
            TernaryVector.from_int(8, 3)

    def test_from_int_negative(self):
        with pytest.raises(ValueError):
            TernaryVector.from_int(-1, 3)

    def test_zeros_and_xs(self):
        assert str(TernaryVector.zeros(3)) == "000"
        assert str(TernaryVector.xs(3)) == "XXX"

    def test_random_density(self):
        rng = random.Random(0)
        v = TernaryVector.random(5000, x_density=0.7, rng=rng)
        assert len(v) == 5000
        assert 0.65 < v.x_density < 0.75

    def test_random_extremes(self):
        rng = random.Random(0)
        assert TernaryVector.random(50, 0.0, rng).is_fully_specified
        assert TernaryVector.random(50, 1.0, rng).x_count == 50

    def test_random_invalid_density(self):
        with pytest.raises(ValueError):
            TernaryVector.random(10, 1.5)


class TestSequenceProtocol:
    def test_getitem_negative(self):
        v = TernaryVector("01X")
        assert v[-1] is X
        assert v[-3] == 0

    def test_getitem_out_of_range(self):
        with pytest.raises(IndexError):
            TernaryVector("01")[2]

    def test_slice_basic(self):
        v = TernaryVector("01X10")
        assert str(v[1:4]) == "1X1"

    def test_slice_step(self):
        v = TernaryVector("01X10")
        assert str(v[::2]) == "0X0"

    def test_slice_empty(self):
        assert len(TernaryVector("01")[2:]) == 0

    def test_iteration(self):
        assert list(TernaryVector("1X0")) == [1, None, 0]

    def test_concat(self):
        assert str(TernaryVector("01") + TernaryVector("X1")) == "01X1"

    def test_concat_all(self):
        parts = [TernaryVector("0"), TernaryVector("1X"), TernaryVector("")]
        assert str(TernaryVector.concat_all(parts)) == "01X"

    def test_add_non_vector(self):
        with pytest.raises(TypeError):
            TernaryVector("0") + "1"


class TestEquality:
    def test_eq_and_hash(self):
        a, b = TernaryVector("0X1"), TernaryVector("0X1")
        assert a == b
        assert hash(a) == hash(b)

    def test_x_and_zero_differ(self):
        assert TernaryVector("0") != TernaryVector("X")

    def test_length_matters(self):
        assert TernaryVector("0") != TernaryVector("00")

    def test_repr_truncates(self):
        long = TernaryVector.zeros(100)
        assert "..." in repr(long)
        assert "..." not in repr(TernaryVector("01X"))


class TestRelations:
    def test_compatible_basic(self):
        assert TernaryVector("0X1").compatible(TernaryVector("0X1"))
        assert TernaryVector("0X1").compatible(TernaryVector("001"))
        assert not TernaryVector("0X1").compatible(TernaryVector("1X1"))

    def test_compatible_different_lengths(self):
        assert not TernaryVector("0").compatible(TernaryVector("01"))

    def test_covers(self):
        full = TernaryVector("011")
        assert full.covers(TernaryVector("0X1"))
        assert full.covers(TernaryVector("XXX"))
        assert not full.covers(TernaryVector("001"))

    def test_covers_requires_superset_of_care(self):
        assert not TernaryVector("0XX").covers(TernaryVector("011"))

    def test_covers_different_lengths(self):
        assert not TernaryVector("01").covers(TernaryVector("0"))

    def test_merge(self):
        merged = TernaryVector("0XX").merge(TernaryVector("X1X"))
        assert str(merged) == "01X"

    def test_merge_incompatible(self):
        with pytest.raises(ValueError, match="incompatible"):
            TernaryVector("0").merge(TernaryVector("1"))


class TestFills:
    def test_fill_zero_one(self):
        v = TernaryVector("0X1X")
        assert str(v.fill(0)) == "0010"
        assert str(v.fill(1)) == "0111"

    def test_fill_invalid(self):
        with pytest.raises(ValueError):
            TernaryVector("X").fill(2)

    def test_fill_repeat_last(self):
        assert str(TernaryVector("1XX0X").fill_repeat_last()) == "11100"

    def test_fill_repeat_last_initial(self):
        assert str(TernaryVector("XX1").fill_repeat_last(initial=1)) == "111"
        assert str(TernaryVector("XX1").fill_repeat_last(initial=0)) == "001"

    def test_fill_random_deterministic(self):
        v = TernaryVector("X" * 64)
        a = v.fill_random(random.Random(7))
        b = v.fill_random(random.Random(7))
        assert a == b
        assert a.is_fully_specified

    def test_to_int(self):
        assert TernaryVector("101").to_int() == 0b101

    def test_to_int_with_x(self):
        with pytest.raises(ValueError, match="contains X"):
            TernaryVector("1X").to_int()


class TestStats:
    def test_densities(self):
        v = TernaryVector("0X1X")
        assert v.care_count == 2
        assert v.x_count == 2
        assert v.x_density == 0.5

    def test_empty_density(self):
        assert TernaryVector().x_density == 0.0

    def test_chunks_invalid_width(self):
        with pytest.raises(ValueError):
            TernaryVector("01").chunks(0)
