"""Unit tests for BitWriter / BitReader."""

import pytest

from repro.bitstream import BitReader, BitWriter


class TestBitWriter:
    def test_write_msb_first(self):
        w = BitWriter()
        w.write(0b1011, 4)
        assert w.getbits() == [1, 0, 1, 1]

    def test_write_zero_width(self):
        w = BitWriter()
        w.write(0, 0)
        assert w.bit_length == 0

    def test_write_value_too_wide(self):
        w = BitWriter()
        with pytest.raises(ValueError, match="does not fit"):
            w.write(4, 2)

    def test_write_negative(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write(-1, 4)
        with pytest.raises(ValueError):
            w.write(1, -1)

    def test_write_bit_validates(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_bit(2)

    def test_write_unary(self):
        w = BitWriter()
        w.write_unary(3, stop_bit=0)
        assert w.getbits() == [1, 1, 1, 0]

    def test_write_unary_inverted_stop(self):
        w = BitWriter()
        w.write_unary(2, stop_bit=1)
        assert w.getbits() == [0, 0, 1]

    def test_write_unary_negative(self):
        with pytest.raises(ValueError):
            BitWriter().write_unary(-1)

    def test_getbits_returns_copy(self):
        w = BitWriter()
        w.write_bit(1)
        bits = w.getbits()
        bits.append(0)
        assert w.bit_length == 1

    def test_to_bytes_pads_with_zeros(self):
        w = BitWriter()
        w.write(0b101, 3)
        assert w.to_bytes() == bytes([0b10100000])

    def test_to_bytes_exact_byte(self):
        w = BitWriter()
        w.write(0xAB, 8)
        assert w.to_bytes() == b"\xab"


class TestBitReader:
    def test_read_msb_first(self):
        r = BitReader([1, 0, 1, 1])
        assert r.read(4) == 0b1011

    def test_read_partial(self):
        r = BitReader([1, 0, 1])
        assert r.read(2) == 0b10
        assert r.remaining == 1
        assert not r.exhausted
        assert r.read_bit() == 1
        assert r.exhausted

    def test_read_past_end(self):
        r = BitReader([1])
        with pytest.raises(EOFError):
            r.read(2)

    def test_read_negative_width(self):
        with pytest.raises(ValueError):
            BitReader([1]).read(-1)

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            BitReader([0, 2])

    def test_read_unary(self):
        r = BitReader([1, 1, 0, 0])
        assert r.read_unary(stop_bit=0) == 2
        assert r.read_unary(stop_bit=0) == 0

    def test_from_bytes(self):
        r = BitReader.from_bytes(b"\xf0", 8)
        assert r.read(4) == 0xF
        assert r.read(4) == 0x0

    def test_from_bytes_partial(self):
        r = BitReader.from_bytes(b"\xa0", 3)
        assert r.read(3) == 0b101

    def test_from_bytes_too_long(self):
        with pytest.raises(ValueError):
            BitReader.from_bytes(b"\x00", 9)

    def test_zero_width_read(self):
        r = BitReader([])
        assert r.read(0) == 0
