"""Unit tests for stream-to-character chunking."""

import pytest

from repro.bitstream import (
    TernaryVector,
    from_characters,
    pad_length,
    to_characters,
)


def test_pad_length():
    assert pad_length(10, 5) == 0
    assert pad_length(11, 5) == 4
    assert pad_length(0, 7) == 0


def test_pad_length_invalid():
    with pytest.raises(ValueError):
        pad_length(10, 0)


def test_exact_multiple():
    chars = to_characters(TernaryVector("010111"), 3)
    assert [str(c) for c in chars] == ["010", "111"]


def test_padding_is_x():
    chars = to_characters(TernaryVector("0101"), 3)
    assert [str(c) for c in chars] == ["010", "1XX"]


def test_empty_stream():
    assert to_characters(TernaryVector(), 4) == []


def test_from_characters_inverse():
    stream = TernaryVector("01X10X1")
    chars = to_characters(stream, 4)
    joined = from_characters(chars)
    assert joined[: len(stream)] == stream
    assert len(joined) == 8


def test_single_wide_char():
    chars = to_characters(TernaryVector("01"), 8)
    assert len(chars) == 1
    assert str(chars[0]) == "01XXXXXX"
