"""Unit tests for the .lzwt container format."""

import pytest

from repro.bitstream import TernaryVector
from repro.container import (
    ContainerError,
    dump_bytes,
    dump_file,
    load_bytes,
    load_file,
)
from repro.core import LZWConfig, LZWEncoder, decode


@pytest.fixture
def compressed():
    config = LZWConfig(char_bits=3, dict_size=32, entry_bits=12)
    return LZWEncoder(config).encode(TernaryVector("01X10XX01101X0010X"))


class TestRoundTrip:
    def test_bytes(self, compressed):
        back = load_bytes(dump_bytes(compressed))
        assert back.codes == compressed.codes
        assert back.config == compressed.config
        assert back.original_bits == compressed.original_bits
        assert decode(back) == decode(compressed)

    def test_file(self, compressed, tmp_path):
        path = tmp_path / "t.lzwt"
        dump_file(compressed, path)
        assert load_file(path).codes == compressed.codes

    def test_empty_stream(self):
        config = LZWConfig(char_bits=2, dict_size=8, entry_bits=4)
        compressed = LZWEncoder(config).encode(TernaryVector())
        back = load_bytes(dump_bytes(compressed))
        assert back.codes == ()

    def test_expansions_not_required(self, compressed):
        # The container drops expansion_chars (decode-only metadata).
        back = load_bytes(dump_bytes(compressed))
        assert back.expansion_chars == ()


class TestCorruption:
    def test_truncated_header(self):
        with pytest.raises(ContainerError, match="truncated"):
            load_bytes(b"LZW")

    def test_bad_magic(self, compressed):
        data = bytearray(dump_bytes(compressed))
        data[0] = ord("X")
        with pytest.raises(ContainerError, match="magic"):
            load_bytes(bytes(data))

    def test_bad_version(self, compressed):
        data = bytearray(dump_bytes(compressed))
        data[4] = 99
        with pytest.raises(ContainerError, match="version"):
            load_bytes(bytes(data))

    def test_payload_bitflip_detected(self, compressed):
        data = bytearray(dump_bytes(compressed))
        data[-1] ^= 0x01
        with pytest.raises(ContainerError, match="CRC"):
            load_bytes(bytes(data))

    def test_header_config_validated(self, compressed):
        data = bytearray(dump_bytes(compressed))
        data[5] = 0  # char_bits = 0 is illegal
        with pytest.raises(ContainerError, match="configuration"):
            load_bytes(bytes(data))
