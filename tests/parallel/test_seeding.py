"""Warm-dictionary shard seeding: ratio, determinism, journal binding.

Sharding a stream cold costs compression ratio — every shard re-learns
the phrases its predecessors already knew.  The seed planner closes
that gap: ``preamble`` trains one snapshot on the leading bits and
shares it, ``wave`` chains each shard from its predecessor's final
dictionary state, recovering the serial ratio while the workload axis
still parallelises.  These tests pin the ratio recovery, byte-level
determinism across worker counts, and the checkpoint journal's seed
binding (a cold journal must never resume a warm batch — the bytes
would differ).
"""

import json
import random

import pytest

from repro.bitstream import TernaryVector
from repro.container import SEED_BLOB, SEED_CHAIN, SEED_COLD, container_version, load_seeded
from repro.core import LZWConfig
from repro.observability import CounterRecorder
from repro.observability import schema as ev
from repro.parallel import SeedPlan, compress_batch
from repro.reliability import ConfigError
from repro.reliability.chaos import ChaosPlan

CONFIG = LZWConfig(char_bits=4, dict_size=128, entry_bits=24)
SHARD_BITS = 700


@pytest.fixture(scope="module")
def stream():
    return TernaryVector.random(2800, x_density=0.75, rng=random.Random(42))


@pytest.fixture(scope="module")
def serial_ratio(stream):
    return compress_batch(CONFIG, [stream], workers=1, shard_bits=0)[0].ratio_percent


def warm_batch(stream, mode, **kw):
    return compress_batch(
        CONFIG, [stream], workers=1, shard_bits=SHARD_BITS, seed_plan=mode, **kw
    )[0]


class TestSeedPlans:
    @pytest.mark.parametrize("mode", ["preamble", "wave"])
    def test_warm_output_covers_and_marks_segments(self, stream, mode):
        item = warm_batch(stream, mode)
        assert item.verify(stream)
        assert container_version(item.container) == 4
        segments = load_seeded(item.container)
        assert len(segments) == item.num_shards == 4
        if mode == "preamble":
            assert all(s.seed_mode == SEED_BLOB for s in segments)
        else:
            assert segments[0].seed_mode == SEED_COLD
            assert all(s.seed_mode == SEED_CHAIN for s in segments[1:])

    def test_warm_sharding_recovers_the_serial_ratio(self, stream, serial_ratio):
        cold = warm_batch(stream, "cold").ratio_percent
        preamble = warm_batch(stream, "preamble").ratio_percent
        wave = warm_batch(stream, "wave").ratio_percent
        # Cold sharding pays for 4 empty dictionaries; both warm modes
        # must win it back and land within 3 points of serial.
        assert preamble > cold + 5
        assert wave > cold + 5
        assert serial_ratio - wave <= 3.0
        assert serial_ratio - preamble <= 3.0

    @pytest.mark.parametrize("mode", ["preamble", "wave"])
    def test_bytes_identical_for_any_worker_count(self, stream, mode):
        one = warm_batch(stream, mode).container
        three = compress_batch(
            CONFIG, [stream], workers=3, shard_bits=SHARD_BITS, seed_plan=mode
        )[0].container
        assert one == three

    def test_mode_string_matches_explicit_plan(self, stream):
        assert (
            warm_batch(stream, "wave").container
            == warm_batch(stream, SeedPlan(mode="wave")).container
        )

    def test_seeded_shard_counter(self, stream):
        recorder = CounterRecorder()
        item = warm_batch(stream, "wave", recorder=recorder)
        # Every shard after the first in the wave encodes seeded.
        assert recorder.counters[ev.BATCH_SEEDED_SHARDS] == item.num_shards - 1

    def test_wave_dependency_failure_skips_the_chain_tail(self, stream):
        items = compress_batch(
            CONFIG,
            [stream],
            workers=1,
            shard_bits=SHARD_BITS,
            seed_plan="wave",
            chaos=ChaosPlan("exception", rate=1.0, attempts=10),
            on_failure="skip",
        )
        item = items[0]
        assert not item.ok
        kinds = {error.kind for error in item.errors}
        # Shard 0 exhausts its retries; every successor is abandoned as
        # a dependency failure instead of encoding under a wrong seed.
        assert "dependency" in kinds
        assert len(item.errors) == 4


class TestJournalSeedBinding:
    def test_cold_journal_cannot_resume_a_warm_batch(self, stream, tmp_path):
        path = tmp_path / "ck.jsonl"
        compress_batch(
            CONFIG, [stream], workers=1, shard_bits=SHARD_BITS, checkpoint=path
        )
        with pytest.raises(ConfigError):
            compress_batch(
                CONFIG,
                [stream],
                workers=1,
                shard_bits=SHARD_BITS,
                seed_plan="wave",
                checkpoint=path,
                resume=True,
            )

    @pytest.mark.parametrize("mode", ["preamble", "wave"])
    def test_warm_resume_is_byte_identical(self, stream, tmp_path, mode):
        reference = warm_batch(stream, mode).container
        path = tmp_path / "ck.jsonl"
        warm_batch(stream, mode, checkpoint=path)
        resumed = warm_batch(stream, mode, checkpoint=path, resume=True)
        assert resumed.container == reference

    def test_lost_final_state_is_rederived_not_fatal(self, stream, tmp_path):
        reference = warm_batch(stream, "wave").container
        path = tmp_path / "ck.jsonl"
        warm_batch(stream, "wave", checkpoint=path)
        # Keep only shard 0's journal entry and strip its final-state
        # snapshot: the resumed wave must re-derive shard 1's seed from
        # shard 0's codes instead of failing (or silently going cold).
        lines = path.read_text().splitlines()
        kept = []
        for line in lines:
            record = json.loads(line)
            if record.get("kind") == "shard":
                if record["shard"] != 0:
                    continue
                record.pop("final_state", None)
            kept.append(json.dumps(record))
        path.write_text("\n".join(kept) + "\n")
        recorder = CounterRecorder()
        resumed = warm_batch(
            stream, "wave", checkpoint=path, resume=True, recorder=recorder
        )
        assert resumed.container == reference
        assert recorder.counters[ev.BATCH_SEED_REDERIVATIONS] >= 1
