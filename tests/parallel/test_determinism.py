"""The determinism contract: worker count never touches the bytes.

``compress_batch`` guarantees *same inputs + same shard plan ⇒
bit-identical containers* for any pool size and any completion order.
These tests run the same batch at workers 1, 2 and 8 (the workers=1
path is inline, so the pooled paths are compared against a
pool-free reference) and twice at workers=8 to catch completion-order
leakage.
"""

import random

import pytest

from repro.bitstream import TernaryVector
from repro.core import LZWConfig, compress_batch

CONFIG = LZWConfig(char_bits=4, dict_size=128, entry_bits=24)


@pytest.fixture(scope="module")
def batch_streams():
    rng = random.Random(20240806)
    return [
        TernaryVector.random(2000, x_density=0.8, rng=rng),
        TernaryVector.random(1200, x_density=0.6, rng=rng),
        TernaryVector.random(800, x_density=0.3, rng=rng),
    ]


def _containers(streams, workers):
    results = compress_batch(
        CONFIG, streams, workers=workers, shard_bits=500, pattern_bits=100
    )
    return [item.container for item in results]


@pytest.mark.parametrize("workers", [2, 8])
def test_worker_count_does_not_change_output(batch_streams, workers):
    assert _containers(batch_streams, workers) == _containers(batch_streams, 1)


def test_repeated_runs_are_identical(batch_streams):
    first = _containers(batch_streams, 8)
    second = _containers(batch_streams, 8)
    assert first == second


def test_shard_results_carry_stable_indices(batch_streams):
    results = compress_batch(
        CONFIG, batch_streams, workers=4, shard_bits=500, pattern_bits=100
    )
    for item in results:
        assert [shard.index for shard in item.shards] == list(
            range(item.num_shards)
        )
