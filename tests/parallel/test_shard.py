"""Unit tests for shard planning."""

import pytest

from repro.bitstream import TernaryVector
from repro.parallel import ShardPlan, plan_shards


class TestShardPlan:
    def test_trivial_plan_is_one_shard(self):
        plan = ShardPlan(100)
        assert plan.num_shards == 1
        assert plan.bounds == ((0, 100),)

    def test_bounds_cover_the_stream_exactly(self):
        plan = ShardPlan(100, (10, 40, 99))
        assert plan.bounds == ((0, 10), (10, 40), (40, 99), (99, 100))

    def test_split_roundtrips(self):
        stream = TernaryVector("01X" * 40)
        plan = ShardPlan(len(stream), (7, 60))
        parts = plan.split(stream)
        assert [len(p) for p in parts] == [7, 53, 60]
        assert TernaryVector.concat_all(parts) == stream

    def test_split_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            ShardPlan(10).split(TernaryVector("010"))

    @pytest.mark.parametrize("cuts", [(0,), (100,), (50, 50), (60, 40), (101,)])
    def test_invalid_cuts_rejected(self, cuts):
        with pytest.raises(ValueError):
            ShardPlan(100, cuts)

    def test_empty_stream_plan(self):
        plan = ShardPlan(0)
        assert plan.split(TernaryVector()) == [TernaryVector()]


class TestPlanShards:
    def test_zero_shard_bits_disables_sharding(self):
        assert plan_shards(1000, 0) == ShardPlan(1000)

    def test_shard_bits_larger_than_stream(self):
        assert plan_shards(1000, 5000) == ShardPlan(1000)

    def test_unaligned_plan(self):
        plan = plan_shards(1000, 300)
        assert plan.cuts == (300, 600, 900)

    def test_cuts_align_up_to_pattern_boundaries(self):
        plan = plan_shards(1000, 300, pattern_bits=250)
        # 300 rounds up to 500; the next target 800 rounds up to 1000,
        # which is the stream end and therefore not a cut.
        assert plan.cuts == (500,)
        assert all(cut % 250 == 0 for cut in plan.cuts)

    def test_tiny_shards_degenerate_to_one_pattern_each(self):
        plan = plan_shards(1000, 1, pattern_bits=250)
        assert plan.cuts == (250, 500, 750)

    def test_no_pattern_straddles_a_boundary(self):
        width = 97
        plan = plan_shards(width * 13, 300, pattern_bits=width)
        assert plan.cuts and all(cut % width == 0 for cut in plan.cuts)
