"""Unit tests of the fault-tolerant supervisor (inline execution paths).

The pooled paths (real spawn workers, SIGKILL, watchdog) are exercised
end-to-end in ``tests/reliability/test_chaos.py``; here the supervisor's
retry / policy / validation logic is pinned down with plain in-process
worker functions and an injected sleep.
"""

import time

import pytest

from repro.observability import (
    CompositeRecorder,
    CounterRecorder,
    SpanRecorder,
    metrics_snapshot,
)
from repro.observability import schema as ev
from repro.parallel import ON_FAILURE_POLICIES, RetryPolicy, run_supervised
from repro.reliability import ConfigError, ShardError

KEYS = [(0, 0), (0, 1), (1, 0)]

NO_BACKOFF = RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0)


def make_args(key, attempt):
    return (key, attempt)


def flaky_below(threshold):
    """A worker that fails while ``attempt < threshold``, then succeeds."""

    def worker(args):
        key, attempt = args
        if attempt < threshold:
            raise RuntimeError(f"transient failure on {key} attempt {attempt}")
        return ("ok", key, attempt)

    return worker


def no_sleep(_seconds):
    return None


def recording_sink():
    return CompositeRecorder([CounterRecorder(), SpanRecorder()])


def counters(rec):
    return metrics_snapshot(rec)["counters"]


class TestRetryPolicy:
    def test_defaults_valid(self):
        RetryPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_base": -0.1},
            {"backoff_factor": -1.0},
            {"backoff_max": -1.0},
            {"jitter": -0.5},
        ],
    )
    def test_invalid_values_raise_typed_config_error(self, kwargs):
        with pytest.raises(ConfigError):
            RetryPolicy(**kwargs)

    def test_delay_is_deterministic(self):
        policy = RetryPolicy(seed=7)
        first = [policy.delay((0, 3), n) for n in range(1, 5)]
        second = [policy.delay((0, 3), n) for n in range(1, 5)]
        assert first == second

    def test_delay_varies_by_key_and_attempt(self):
        policy = RetryPolicy(seed=7)
        assert policy.delay((0, 0), 1) != policy.delay((0, 1), 1)
        assert policy.delay((0, 0), 1) != policy.delay((0, 0), 2)

    def test_delay_bounded_by_backoff_max(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_max=0.5, jitter=0.0)
        assert policy.delay((0, 0), 10) == pytest.approx(0.5)

    def test_no_wall_clock_in_the_decision_path(self, monkeypatch):
        # The deterministic contract: the schedule may not read a clock.
        policy = RetryPolicy(seed=3)
        expected = policy.delay((1, 2), 2)
        monkeypatch.setattr(time, "time", lambda: 1e9)
        monkeypatch.setattr(time, "monotonic", lambda: 1e9)
        assert policy.delay((1, 2), 2) == expected


class TestRunSupervised:
    def test_all_succeed_first_attempt(self):
        results = run_supervised(flaky_below(0), KEYS, make_args, workers=1)
        assert set(results) == set(KEYS)
        assert all(results[k] == ("ok", k, 0) for k in KEYS)

    def test_transient_failures_healed_by_retry(self):
        rec = recording_sink()
        results = run_supervised(
            flaky_below(2),
            KEYS,
            make_args,
            workers=1,
            retry_policy=NO_BACKOFF,
            recorder=rec,
            sleep=no_sleep,
        )
        assert all(results[k] == ("ok", k, 2) for k in KEYS)
        assert counters(rec)[ev.BATCH_RETRIES] == 2 * len(KEYS)

    def test_fail_policy_raises_shard_error_with_diagnostics(self):
        with pytest.raises(ShardError) as excinfo:
            run_supervised(
                flaky_below(99),
                KEYS,
                make_args,
                workers=1,
                retry_policy=NO_BACKOFF,
                sleep=no_sleep,
            )
        error = excinfo.value
        assert error.exit_code == 5
        assert error.diagnostics["attempts"] == NO_BACKOFF.max_attempts
        assert error.diagnostics["kind"] == "error"
        assert (error.diagnostics["workload"], error.diagnostics["shard"]) in KEYS

    def test_skip_policy_stores_typed_errors_and_continues(self):
        rec = recording_sink()

        def worker(args):
            key, attempt = args
            if key == (0, 1):
                raise RuntimeError("persistent failure")
            return key

        results = run_supervised(
            worker,
            KEYS,
            make_args,
            workers=1,
            retry_policy=NO_BACKOFF,
            on_failure="skip",
            recorder=rec,
            sleep=no_sleep,
        )
        assert isinstance(results[(0, 1)], ShardError)
        assert results[(0, 0)] == (0, 0)
        assert results[(1, 0)] == (1, 0)
        assert counters(rec)[ev.BATCH_SKIPPED_SHARDS] == 1

    def test_degrade_policy_reruns_inline(self):
        rec = recording_sink()
        # Fails every pooled attempt; the degrade fallback runs attempt
        # number == max_attempts, which this worker finally accepts.
        results = run_supervised(
            flaky_below(NO_BACKOFF.max_attempts),
            KEYS[:1],
            make_args,
            workers=1,
            retry_policy=NO_BACKOFF,
            on_failure="degrade",
            recorder=rec,
            sleep=no_sleep,
        )
        assert results[KEYS[0]] == ("ok", KEYS[0], NO_BACKOFF.max_attempts)
        assert counters(rec)[ev.BATCH_DEGRADED_SHARDS] == 1

    def test_degrade_fallback_failure_raises_shard_error(self):
        with pytest.raises(ShardError):
            run_supervised(
                flaky_below(99),
                KEYS[:1],
                make_args,
                workers=1,
                retry_policy=NO_BACKOFF,
                on_failure="degrade",
                sleep=no_sleep,
            )

    def test_validate_hook_turns_bad_results_into_retries(self):
        def worker(args):
            key, attempt = args
            return "bad" if attempt == 0 else "good"

        def validate(key, result):
            return None if result == "good" else f"{key} returned {result}"

        rec = recording_sink()
        results = run_supervised(
            worker,
            KEYS,
            make_args,
            workers=1,
            retry_policy=NO_BACKOFF,
            validate=validate,
            recorder=rec,
            sleep=no_sleep,
        )
        assert all(results[k] == "good" for k in KEYS)
        assert counters(rec)[ev.BATCH_RETRIES] == len(KEYS)

    def test_validate_exhaustion_reports_invalid_kind(self):
        with pytest.raises(ShardError) as excinfo:
            run_supervised(
                lambda args: "bad",
                KEYS[:1],
                make_args,
                workers=1,
                retry_policy=NO_BACKOFF,
                validate=lambda key, result: "always wrong",
                sleep=no_sleep,
            )
        assert excinfo.value.diagnostics["kind"] == "invalid"

    def test_shard_timeout_inline_retries_hung_attempt(self):
        def worker(args):
            key, attempt = args
            if attempt == 0:
                time.sleep(30.0)
            return ("ok", key, attempt)

        rec = recording_sink()
        results = run_supervised(
            worker,
            KEYS[:1],
            make_args,
            workers=1,
            retry_policy=NO_BACKOFF,
            shard_timeout=0.2,
            recorder=rec,
            sleep=no_sleep,
        )
        assert results[KEYS[0]] == ("ok", KEYS[0], 1)
        assert counters(rec)[ev.BATCH_TIMEOUTS] == 1

    def test_on_result_fires_per_accepted_shard(self):
        seen = []
        run_supervised(
            flaky_below(0),
            KEYS,
            make_args,
            workers=1,
            on_result=lambda key, result: seen.append(key),
        )
        assert sorted(seen) == sorted(KEYS)

    def test_on_result_not_fired_for_skipped_shards(self):
        seen = []
        run_supervised(
            flaky_below(99),
            KEYS[:1],
            make_args,
            workers=1,
            retry_policy=NO_BACKOFF,
            on_failure="skip",
            sleep=no_sleep,
            on_result=lambda key, result: seen.append(key),
        )
        assert seen == []

    def test_backoff_sleeps_are_the_policy_delays(self):
        slept = []
        policy = RetryPolicy(max_attempts=3, backoff_base=0.1, jitter=0.5, seed=11)
        run_supervised(
            flaky_below(2),
            KEYS[:1],
            make_args,
            workers=1,
            retry_policy=policy,
            sleep=slept.append,
        )
        assert slept == [policy.delay(KEYS[0], 1), policy.delay(KEYS[0], 2)]

    def test_invalid_on_failure_rejected(self):
        assert "fail" in ON_FAILURE_POLICIES
        with pytest.raises(ConfigError):
            run_supervised(
                flaky_below(0), KEYS, make_args, workers=1, on_failure="retry"
            )

    def test_non_positive_timeout_rejected(self):
        with pytest.raises(ConfigError):
            run_supervised(
                flaky_below(0), KEYS, make_args, workers=1, shard_timeout=0.0
            )


class TestTimeoutDegradation:
    """The SIGALRM in-worker timeout must degrade, never crash.

    ``signal.signal`` only works on the main thread (and SIGALRM only
    exists on POSIX); a supervised run driven from a service worker
    thread — exactly what ``repro serve`` does — must fall back to an
    un-alarmed call and leave the hang to the parent wave watchdog.
    """

    def test_call_with_timeout_works_off_the_main_thread(self):
        import threading

        from repro.parallel.supervisor import _call_with_timeout

        outcome = []

        def run():
            outcome.append(_call_with_timeout(lambda x: x + 1, 41, timeout=5.0))

        thread = threading.Thread(target=run)
        thread.start()
        thread.join(timeout=10)
        assert outcome == [42]

    def test_supervised_run_with_timeout_off_the_main_thread(self):
        import threading

        results = {}

        def run():
            results.update(
                run_supervised(
                    flaky_below(1),
                    KEYS[:1],
                    make_args,
                    workers=1,
                    retry_policy=NO_BACKOFF,
                    shard_timeout=5.0,
                    sleep=no_sleep,
                )
            )

        thread = threading.Thread(target=run)
        thread.start()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert results[KEYS[0]] == ("ok", KEYS[0], 1)

    def test_unarmable_timer_falls_back_and_restores_handler(self, monkeypatch):
        import signal as signal_module

        from repro.parallel.supervisor import _call_with_timeout

        before = signal_module.getsignal(signal_module.SIGALRM)

        def refuse(which, seconds):
            raise OSError("timer unavailable")

        monkeypatch.setattr(signal_module, "setitimer", refuse)
        assert _call_with_timeout(lambda x: x * 2, 21, timeout=5.0) == 42
        assert signal_module.getsignal(signal_module.SIGALRM) is before

    def test_alarm_still_fires_on_the_main_thread(self):
        from repro.parallel.supervisor import _call_with_timeout, _WorkerTimeout

        def hang(_args):
            time.sleep(30.0)

        with pytest.raises(_WorkerTimeout):
            _call_with_timeout(hang, None, timeout=0.2)
