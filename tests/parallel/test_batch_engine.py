"""Behavioural tests of the batch engine (single process paths)."""

import pytest

from repro.bitstream import TernaryVector
from repro.container import container_version, load_segments
from repro.core import LZWConfig, compress, compress_batch
from repro.parallel import ShardPlan


@pytest.fixture
def streams(rng):
    return [
        TernaryVector.random(1500, x_density=0.8, rng=rng),
        TernaryVector.random(900, x_density=0.5, rng=rng),
        TernaryVector.random(400, x_density=0.0, rng=rng),
    ]


def test_one_result_per_stream_in_input_order(small_config, streams):
    results = compress_batch(small_config, streams, workers=1)
    assert [r.original_bits for r in results] == [len(s) for s in streams]


def test_unsharded_batch_matches_serial_container(small_config, streams):
    from repro.container import dump_bytes

    results = compress_batch(small_config, streams, workers=1)
    for stream, item in zip(streams, results):
        assert item.num_shards == 1
        serial = compress(stream, small_config)
        assert item.container == dump_bytes(
            serial.compressed, serial.assigned_stream
        )
        assert container_version(item.container) == 2


def test_sharded_batch_produces_v3_container(small_config, streams):
    results = compress_batch(small_config, streams, workers=1, shard_bits=300)
    for stream, item in zip(streams, results):
        assert item.num_shards > 1
        assert container_version(item.container) == 3
        assert len(load_segments(item.container)) == item.num_shards
        assert item.verify(stream)


def test_each_shard_is_bit_identical_to_serial_compress(small_config, streams):
    results = compress_batch(small_config, streams, workers=1, shard_bits=300)
    for stream, item in zip(streams, results):
        for part, shard in zip(item.plan.split(stream), item.shards):
            serial = compress(part, small_config)
            assert shard.compressed.codes == serial.compressed.codes
            assert shard.assigned_stream == serial.assigned_stream


def test_per_stream_configs(streams):
    configs = [
        LZWConfig(char_bits=3, dict_size=32, entry_bits=12),
        LZWConfig(char_bits=4, dict_size=64, entry_bits=20),
        None,  # defaults
    ]
    results = compress_batch(configs, streams, workers=1)
    assert results[0].shards[0].compressed.config.char_bits == 3
    assert results[1].shards[0].compressed.config.char_bits == 4
    assert results[2].shards[0].compressed.config == LZWConfig()


def test_explicit_plans_override_shard_bits(small_config, streams):
    plans = [ShardPlan(len(s), (len(s) // 2,)) for s in streams]
    results = compress_batch(
        small_config, streams, workers=1, shard_bits=100, plans=plans
    )
    assert all(item.num_shards == 2 for item in results)


def test_mismatched_lengths_rejected(small_config, streams):
    with pytest.raises(ValueError):
        compress_batch([small_config], streams, workers=1)
    with pytest.raises(ValueError):
        compress_batch(
            small_config, streams, workers=1, plans=[ShardPlan(len(streams[0]))]
        )


def test_mismatched_lengths_raise_typed_config_error(small_config, streams):
    # The errors double as ValueError (above) for API compatibility, but
    # must be the typed ConfigError so the CLI maps them to exit 2.
    from repro.reliability import ConfigError

    with pytest.raises(ConfigError):
        compress_batch([small_config], streams, workers=1)
    with pytest.raises(ConfigError):
        compress_batch(
            small_config, streams, workers=1, plans=[ShardPlan(len(streams[0]))]
        )


def test_empty_batch(small_config):
    assert compress_batch(small_config, [], workers=1) == []


def test_empty_batch_with_supervision_options(small_config, tmp_path):
    # No streams is a clean no-op even with the full fault-tolerance
    # machinery switched on — not an error.
    assert (
        compress_batch(
            small_config,
            [],
            workers=1,
            on_failure="degrade",
            shard_timeout=1.0,
            checkpoint=tmp_path / "ck.jsonl",
        )
        == []
    )


def test_empty_batch_still_validates_policies(small_config):
    # ...but a genuinely invalid knob is typed ConfigError even when
    # there is no work to do.
    from repro.reliability import ConfigError

    with pytest.raises(ConfigError):
        compress_batch(small_config, [], workers=1, on_failure="explode")
    with pytest.raises(ConfigError):
        compress_batch(small_config, [], workers=1, shard_timeout=-1.0)


def test_empty_stream_roundtrips(small_config):
    item = compress_batch(small_config, [TernaryVector()], workers=1)[0]
    assert item.original_bits == 0
    assert item.ratio == 0.0
    assert item.verify(TernaryVector())


def test_empty_stream_with_retries_and_checkpoint(small_config, tmp_path):
    from repro.parallel import RetryPolicy

    item = compress_batch(
        small_config,
        [TernaryVector()],
        workers=1,
        retry_policy=RetryPolicy(max_attempts=2),
        checkpoint=tmp_path / "ck.jsonl",
    )[0]
    assert item.ok
    assert item.original_bits == 0
    assert item.verify(TernaryVector())


def test_pattern_alignment_keeps_vectors_whole(small_config, rng):
    width = 60
    stream = TernaryVector.random(width * 20, x_density=0.7, rng=rng)
    item = compress_batch(
        small_config, [stream], workers=1, shard_bits=500, pattern_bits=width
    )[0]
    assert item.num_shards > 1
    assert all(start % width == 0 for start, _stop in item.plan.bounds)


def test_ratio_aggregates_over_shards(small_config, streams):
    item = compress_batch(small_config, streams[:1], workers=1, shard_bits=300)[0]
    assert item.compressed_bits == sum(
        s.compressed.compressed_bits for s in item.shards
    )
    assert item.ratio == pytest.approx(
        1.0 - item.compressed_bits / item.original_bits
    )
