"""Checkpoint journal: fingerprint binding, replay, corruption handling.

The journal is a *cache* of completed shards: every failure mode (torn
line, corrupted entry, wrong batch) must degrade to recomputation or a
typed error — never to wrong bytes.
"""

import json

import pytest

from repro.bitstream import TernaryVector
from repro.core import LZWConfig
from repro.observability import (
    CompositeRecorder,
    CounterRecorder,
    SpanRecorder,
    metrics_snapshot,
)
from repro.observability import schema as ev
from repro.parallel import (
    ShardJournal,
    batch_fingerprint,
    compress_batch,
    plan_shards,
)
from repro.reliability import ConfigError

CONFIG = LZWConfig(char_bits=3, dict_size=32, entry_bits=12)


@pytest.fixture
def streams(rng):
    return [
        TernaryVector.random(900, x_density=0.7, rng=rng),
        TernaryVector.random(500, x_density=0.4, rng=rng),
    ]


@pytest.fixture
def reference(streams):
    return compress_batch(CONFIG, streams, workers=1, shard_bits=300)


def containers(items):
    return [item.container for item in items]


class TestFingerprint:
    def test_stable_for_identical_batches(self, streams):
        plans = [plan_shards(len(s), 300, 0) for s in streams]
        a = batch_fingerprint([CONFIG] * 2, streams, plans)
        b = batch_fingerprint([CONFIG] * 2, streams, plans)
        assert a == b

    def test_changes_with_stream_bits(self, streams):
        plans = [plan_shards(len(s), 300, 0) for s in streams]
        a = batch_fingerprint([CONFIG] * 2, streams, plans)
        flipped = TernaryVector.from_int(1, 1) + streams[0][1:]
        b = batch_fingerprint([CONFIG] * 2, [flipped, streams[1]], plans)
        assert a != b

    def test_changes_with_config(self, streams):
        plans = [plan_shards(len(s), 300, 0) for s in streams]
        other = LZWConfig(char_bits=4, dict_size=64, entry_bits=20)
        a = batch_fingerprint([CONFIG] * 2, streams, plans)
        b = batch_fingerprint([CONFIG, other], streams, plans)
        assert a != b

    def test_changes_with_shard_plan(self, streams):
        a = batch_fingerprint(
            [CONFIG] * 2, streams, [plan_shards(len(s), 300, 0) for s in streams]
        )
        b = batch_fingerprint(
            [CONFIG] * 2, streams, [plan_shards(len(s), 200, 0) for s in streams]
        )
        assert a != b


class TestJournalFile:
    def test_fresh_journal_writes_header(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with ShardJournal.open(path, "abc123"):
            pass
        header = json.loads(path.read_text().splitlines()[0])
        assert header["kind"] == "header"
        assert header["fingerprint"] == "abc123"

    def test_resume_missing_file_starts_fresh(self, tmp_path):
        with ShardJournal.open(tmp_path / "new.jsonl", "abc", resume=True) as j:
            assert j.completed == {}

    def test_resume_fingerprint_mismatch_raises(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with ShardJournal.open(path, "fingerprint-one"):
            pass
        with pytest.raises(ConfigError):
            ShardJournal.open(path, "fingerprint-two", resume=True)

    def test_resume_non_journal_file_raises(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        path.write_text("this is not json\n")
        with pytest.raises(ConfigError):
            ShardJournal.open(path, "abc", resume=True)

    def test_open_without_resume_truncates(self, tmp_path, streams):
        path = tmp_path / "ck.jsonl"
        compress_batch(CONFIG, streams, workers=1, shard_bits=300, checkpoint=path)
        assert len(path.read_text().splitlines()) > 1
        with ShardJournal.open(path, "different", resume=False) as j:
            assert j.completed == {}
        assert len(path.read_text().splitlines()) == 1


class TestCheckpointResume:
    def test_resumed_batch_replays_and_matches(self, tmp_path, streams, reference):
        path = tmp_path / "ck.jsonl"
        first = compress_batch(
            CONFIG, streams, workers=1, shard_bits=300, checkpoint=path
        )
        assert containers(first) == containers(reference)
        rec = CompositeRecorder([CounterRecorder(), SpanRecorder()])
        resumed = compress_batch(
            CONFIG,
            streams,
            workers=1,
            shard_bits=300,
            checkpoint=path,
            resume=True,
            recorder=rec,
        )
        assert containers(resumed) == containers(reference)
        total_shards = sum(item.num_shards for item in reference)
        snap = metrics_snapshot(rec)["counters"]
        assert snap[ev.BATCH_JOURNAL_HITS] == total_shards

    def test_partial_journal_resumes_remaining_work(
        self, tmp_path, streams, reference
    ):
        # Simulate a run killed partway: keep the header and the first
        # completed-shard entry only, then resume.
        path = tmp_path / "ck.jsonl"
        compress_batch(CONFIG, streams, workers=1, shard_bits=300, checkpoint=path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:2]) + "\n")
        resumed = compress_batch(
            CONFIG, streams, workers=1, shard_bits=300, checkpoint=path, resume=True
        )
        assert containers(resumed) == containers(reference)

    def test_torn_last_line_is_discarded(self, tmp_path, streams, reference):
        path = tmp_path / "ck.jsonl"
        compress_batch(CONFIG, streams, workers=1, shard_bits=300, checkpoint=path)
        text = path.read_text()
        path.write_text(text[: len(text) - 40])  # tear the final entry
        resumed = compress_batch(
            CONFIG, streams, workers=1, shard_bits=300, checkpoint=path, resume=True
        )
        assert containers(resumed) == containers(reference)

    def test_corrupted_entry_is_recomputed_not_trusted(
        self, tmp_path, streams, reference
    ):
        path = tmp_path / "ck.jsonl"
        compress_batch(CONFIG, streams, workers=1, shard_bits=300, checkpoint=path)
        lines = path.read_text().splitlines()
        entry = json.loads(lines[1])
        entry["crc"] ^= 0xFFFF  # entry no longer matches its container
        lines[1] = json.dumps(entry, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        resumed = compress_batch(
            CONFIG, streams, workers=1, shard_bits=300, checkpoint=path, resume=True
        )
        assert containers(resumed) == containers(reference)

    def test_resume_against_changed_inputs_raises(self, tmp_path, streams):
        path = tmp_path / "ck.jsonl"
        compress_batch(CONFIG, streams, workers=1, shard_bits=300, checkpoint=path)
        with pytest.raises(ConfigError):
            compress_batch(
                CONFIG,
                list(reversed(streams)),
                workers=1,
                shard_bits=300,
                checkpoint=path,
                resume=True,
            )

    def test_resume_without_checkpoint_raises(self, streams):
        with pytest.raises(ConfigError):
            compress_batch(CONFIG, streams, workers=1, resume=True)

    def test_journal_roundtrips_metrics_snapshots(self, tmp_path, streams):
        path = tmp_path / "ck.jsonl"
        rec = CompositeRecorder([CounterRecorder(), SpanRecorder()])
        compress_batch(
            CONFIG, streams, workers=1, shard_bits=300, checkpoint=path, recorder=rec
        )
        rec2 = CompositeRecorder([CounterRecorder(), SpanRecorder()])
        compress_batch(
            CONFIG,
            streams,
            workers=1,
            shard_bits=300,
            checkpoint=path,
            resume=True,
            recorder=rec2,
        )
        first = metrics_snapshot(rec)["counters"]
        replayed = metrics_snapshot(rec2)["counters"]
        # The replayed run merges the same per-shard counters; only the
        # journal-hit counter differs (and planning counters repeat).
        for name, value in first.items():
            if name.startswith(("encode.", "decode.", "assign.")):
                assert replayed[name] == value
