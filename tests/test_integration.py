"""End-to-end integration tests.

The system-level contract of the whole paper: running ATPG, compressing
the cube stream, shipping it through the (modelled) hardware
decompressor, and applying the reconstructed vectors to the scan chain
must detect every fault the original cubes detected — while the
download got cheaper whenever the test set is big enough to amortise
the dictionary.
"""

import pytest

from repro.atpg import fault_simulate, generate_tests, parallel_fault_simulate
from repro.baselines import (
    GolombCompressor,
    LZ77Compressor,
    LZWCompressorAdapter,
)
from repro.circuit import TestSet, load_builtin, random_circuit
from repro.circuit.faults import collapse_faults
from repro.core import LZWConfig, compress
from repro.hardware import DecompressorModel, analyze_download
from repro.workloads import build_testset


@pytest.fixture(scope="module")
def flow():
    """ATPG on a mid-size synthetic circuit: the paper's Figure 1 box."""
    circuit = random_circuit("soc_core", 16, 24, 220, seed=13)
    atpg = generate_tests(circuit)
    return circuit, atpg


class TestAtpgToHardwareFlow:
    def test_coverage_preserved_through_compression(self, flow):
        circuit, atpg = flow
        view = circuit.combinational_view()
        stream = atpg.test_set.to_stream()
        config = LZWConfig(char_bits=7, dict_size=512, entry_bits=63)
        result = compress(stream, config)

        # Ship through the cycle-accurate hardware model.
        hw = DecompressorModel(config, clock_ratio=10)
        run = hw.run(result.compressed.to_bits(), len(stream))
        assert run.scan_stream.covers(stream)

        # Re-vectorise the scan stream and fault-simulate.
        reconstructed = TestSet.from_stream(
            run.scan_stream, atpg.test_set.input_names
        )
        faults = collapse_faults(circuit)
        before = fault_simulate(view, list(atpg.test_set), faults)
        after = parallel_fault_simulate(view, list(reconstructed), faults)
        assert set(before.detected) <= set(after.detected)

    def test_compression_beneficial_on_real_cubes(self, flow):
        """Genuine ATPG cubes compress, provided the configuration is
        sized to the (small) test set — a 9-bit-code dictionary cannot
        amortise over two kilobits, which is itself the Table 3 lesson
        that the dictionary size must track the test size."""
        _circuit, atpg = flow
        stream = atpg.test_set.to_stream()
        config = LZWConfig(char_bits=5, dict_size=128, entry_bits=40)
        result = compress(stream, config)
        assert result.ratio > 0.1
        report = analyze_download(
            result.compressed, 10, double_buffered=True
        )
        assert report.improvement > 0.0

    def test_builtin_s27_flow(self):
        circuit = load_builtin("s27")
        atpg = generate_tests(circuit)
        stream = atpg.test_set.to_stream()
        config = LZWConfig(char_bits=2, dict_size=16, entry_bits=8)
        result = compress(stream, config)
        assert result.verify(stream)


class TestBaselineShootout:
    def test_all_schemes_cover_on_matched_workload(self):
        stream = build_testset("s9234f", scale=0.15).to_stream()
        config = LZWConfig(char_bits=7, dict_size=1024, entry_bits=63)
        for comp in (
            LZWCompressorAdapter(config),
            LZ77Compressor(),
            GolombCompressor(),
        ):
            result = comp.compress(stream)
            assert result.verify(stream), result.scheme

    def test_lzw_wins_at_full_amortisation(self):
        """Table 1's headline on the highest-X circuit, small scale: LZW
        must beat the Golomb RLE baseline."""
        stream = build_testset("s13207f", scale=0.3).to_stream()
        config = LZWConfig(char_bits=7, dict_size=1024, entry_bits=63)
        lzw = LZWCompressorAdapter(config).compress(stream)
        rle = GolombCompressor().compress(stream)
        assert lzw.ratio > 0.6
        assert rle.ratio > 0.5
