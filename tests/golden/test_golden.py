"""Golden-file regression suite: the compressed artefacts are frozen.

For a small fixed corpus (three tiny synthetic workloads × three LZW
configurations) this locks down, per case:

* the serial path — compressed bit count, code count, ratio and the
  SHA-256 of the v2 container bytes;
* the batch path — segment count and the SHA-256 of the multi-segment
  container produced by a fixed pattern-aligned shard plan;
* the recorder-counter snapshot of the serial encode+assign pass — the
  per-decision event counts (dictionary allocations, C_MDATA
  truncations, X bits resolved, ...) that byte digests cannot localise:
  a digest mismatch says *something* changed, the counter diff says
  *which decision site*.

Every case runs under *both* encoder engines against the same frozen
entry: the fast path must reproduce the reference's artefacts exactly
(codes imply the X assignments — a divergent tie-break is silent
corruption), so an engine-specific digest would be a bug, not a reason
to regenerate.

Any change to the encoder, the don't-care heuristics, the shard
planner or the container framings shows up here as a digest mismatch.
If (and only if) the change is an intentional format or algorithm
change, regenerate the goldens with::

    PYTHONPATH=src python -m pytest tests/golden --update-golden

and commit the updated ``golden.json`` alongside the code change.
"""

import functools
import hashlib
import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.container import dump_bytes
from repro.core import LZWConfig, LZWEncoder, compress, compress_batch
from repro.observability import CounterRecorder
from repro.parallel import plan_shards
from repro.workloads import build_testset

GOLDEN_PATH = Path(__file__).parent / "golden.json"

REGENERATE_HINT = (
    "If this change is intentional, regenerate the golden file with:\n"
    "  PYTHONPATH=src python -m pytest tests/golden --update-golden\n"
    "and commit tests/golden/golden.json with your change."
)

#: (workload name, scale) — tiny slices of the paper's benchmarks.
WORKLOADS = (
    ("s5378f", 0.12),
    ("s9234f", 0.08),
    ("s35932f", 0.25),
)

#: Named LZW configurations covering the interesting regimes.
CONFIGS = {
    "small": LZWConfig(char_bits=3, dict_size=32, entry_bits=12),
    "paper": LZWConfig(char_bits=7, dict_size=1024, entry_bits=63),
    "adaptive": LZWConfig(
        char_bits=5, dict_size=256, entry_bits=30, reset_on_full=True
    ),
}

CASES = [
    (workload, scale, config_name)
    for workload, scale in WORKLOADS
    for config_name in CONFIGS
]

#: Warm-dictionary batch cases: the same corpus compressed through the
#: seed planner.  ``preamble`` trains a shared snapshot on the leading
#: bits; ``wave`` chains each shard from its predecessor's final trie.
#: Frozen separately from the cold cases (`<workload>/<config>/<mode>`
#: keys) so adding them churned no existing digest.
WARM_MODES = ("preamble", "wave")

WARM_CASES = [
    (workload, scale, config_name, mode)
    for workload, scale in WORKLOADS
    for config_name in CONFIGS
    for mode in WARM_MODES
]


def _case_key(workload: str, config_name: str) -> str:
    return f"{workload}/{config_name}"


@functools.lru_cache(maxsize=None)
def _testset(workload: str, scale: float):
    return build_testset(workload, scale=scale)


def _compute_case(
    workload: str, scale: float, config_name: str, engine: str = "reference"
) -> dict:
    """Everything the golden file freezes for one (workload, config).

    ``engine`` selects the encoder implementation; both must reproduce
    the *same* frozen artefacts (the fast path is locked byte-identical
    to the reference), so the golden file stores one entry per case and
    the comparison runs once per engine with zero digest churn.
    """
    test_set = _testset(workload, scale)
    stream = test_set.to_stream()
    config = replace(CONFIGS[config_name], engine=engine)

    recorder = CounterRecorder()
    result = compress(stream, config, recorder=recorder)
    container = dump_bytes(result.compressed, result.assigned_stream)

    plan = plan_shards(len(stream), max(1, len(stream) // 3), test_set.width)
    item = compress_batch(config, [stream], workers=1, plans=[plan])[0]
    assert item.verify(stream)

    return {
        "original_bits": result.original_bits,
        "num_codes": result.compressed.num_codes,
        "compressed_bits": result.compressed_bits,
        "ratio_percent": round(result.ratio_percent, 6),
        "container_sha256": hashlib.sha256(container).hexdigest(),
        "batch_segments": item.num_shards,
        "batch_compressed_bits": item.compressed_bits,
        "batch_container_sha256": hashlib.sha256(item.container).hexdigest(),
        # Deterministic recorder snapshot of the serial pass (counters
        # and histograms only — spans carry timings and are excluded).
        "counters": recorder.snapshot()["counters"],
        "histograms": recorder.snapshot()["histograms"],
    }


def _compute_warm_case(
    workload: str,
    scale: float,
    config_name: str,
    mode: str,
    engine: str = "reference",
) -> dict:
    """The frozen artefacts of one warm-seeded batch case.

    The v4 container digest pins the snapshot serialization, the blob
    table layout and the seeded code streams all at once; the counter
    snapshot localises a mismatch to the decision site (seeded encodes
    shift dictionary-allocation and X-resolution counts relative to
    cold).  Both engines must reproduce the same entry.
    """
    test_set = _testset(workload, scale)
    stream = test_set.to_stream()
    config = replace(CONFIGS[config_name], engine=engine)
    plan = plan_shards(len(stream), max(1, len(stream) // 3), test_set.width)
    recorder = CounterRecorder()
    item = compress_batch(
        config, [stream], workers=1, plans=[plan], seed_plan=mode, recorder=recorder
    )[0]
    assert item.verify(stream)
    return {
        "segments": item.num_shards,
        "compressed_bits": item.compressed_bits,
        "ratio_percent": round(item.ratio_percent, 6),
        "container_sha256": hashlib.sha256(item.container).hexdigest(),
        "counters": recorder.snapshot()["counters"],
        "histograms": recorder.snapshot()["histograms"],
    }


def test_update_golden(request):
    """With ``--update-golden``: rewrite the golden file; otherwise skip."""
    if not request.config.getoption("--update-golden"):
        pytest.skip("comparison mode (pass --update-golden to regenerate)")
    data = {
        _case_key(workload, config_name): _compute_case(workload, scale, config_name)
        for workload, scale, config_name in CASES
    }
    data.update(
        {
            f"{_case_key(workload, config_name)}/{mode}": _compute_warm_case(
                workload, scale, config_name, mode
            )
            for workload, scale, config_name, mode in WARM_CASES
        }
    )
    GOLDEN_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


@pytest.mark.parametrize("engine", ["reference", "fast"])
@pytest.mark.parametrize(
    "workload,scale,config_name",
    CASES,
    ids=[_case_key(w, c) for w, _s, c in CASES],
)
def test_golden_case(request, workload, scale, config_name, engine):
    if request.config.getoption("--update-golden"):
        pytest.skip("regenerating golden file")
    if not GOLDEN_PATH.exists():
        pytest.fail(f"{GOLDEN_PATH} is missing.\n{REGENERATE_HINT}")
    golden = json.loads(GOLDEN_PATH.read_text())
    key = _case_key(workload, config_name)
    if key not in golden:
        pytest.fail(f"golden file has no entry for {key}.\n{REGENERATE_HINT}")
    actual = _compute_case(workload, scale, config_name, engine)
    expected = golden[key]
    mismatches = {
        field: (expected.get(field), actual[field])
        for field in actual
        if actual[field] != expected.get(field)
    }
    assert not mismatches, (
        f"golden mismatch for {key} (engine={engine}): "
        + ", ".join(
            f"{field} expected {want!r} got {got!r}"
            for field, (want, got) in sorted(mismatches.items())
        )
        + f"\n{REGENERATE_HINT}"
    )


@pytest.mark.parametrize("engine", ["reference", "fast"])
@pytest.mark.parametrize(
    "workload,scale,config_name,mode",
    WARM_CASES,
    ids=[f"{_case_key(w, c)}/{m}" for w, _s, c, m in WARM_CASES],
)
def test_golden_warm_case(request, workload, scale, config_name, mode, engine):
    if request.config.getoption("--update-golden"):
        pytest.skip("regenerating golden file")
    if not GOLDEN_PATH.exists():
        pytest.fail(f"{GOLDEN_PATH} is missing.\n{REGENERATE_HINT}")
    golden = json.loads(GOLDEN_PATH.read_text())
    key = f"{_case_key(workload, config_name)}/{mode}"
    if key not in golden:
        pytest.fail(f"golden file has no entry for {key}.\n{REGENERATE_HINT}")
    actual = _compute_warm_case(workload, scale, config_name, mode, engine)
    expected = golden[key]
    mismatches = {
        field: (expected.get(field), actual[field])
        for field in actual
        if actual[field] != expected.get(field)
    }
    assert not mismatches, (
        f"golden mismatch for {key} (engine={engine}): "
        + ", ".join(
            f"{field} expected {want!r} got {got!r}"
            for field, (want, got) in sorted(mismatches.items())
        )
        + f"\n{REGENERATE_HINT}"
    )


def test_table3_ratio_pin_through_fast_path():
    """Paper Table 3 headline, full scale, via ``engine=fast``.

    s13207f at the paper configuration (C_C=7, N=1024, C_MDATA=63) must
    reproduce the repo's frozen ratio exactly *and* meet the paper's
    reported 80.69% — run through the fast engine so the ratio pin and
    the speedup path are the same code.  Only the fast engine makes a
    full-scale pin cheap enough for tier-1.
    """
    from repro.workloads import BENCHMARKS, build_testset

    config = LZWConfig(char_bits=7, dict_size=1024, entry_bits=63, engine="fast")
    stream = build_testset("s13207f", scale=1.0).to_stream()
    compressed = LZWEncoder(config).encode(stream)
    assert compressed.original_bits == 165200
    assert compressed.num_codes == 2933  # frozen code count
    assert compressed.ratio_percent == pytest.approx(82.245763, abs=1e-4)
    assert compressed.ratio_percent >= BENCHMARKS["s13207f"].paper_lzw  # 80.69
