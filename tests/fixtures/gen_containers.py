"""Regenerate the committed container fixtures in ``containers/``.

Run from the repo root::

    PYTHONPATH=src python tests/fixtures/gen_containers.py

Every fixture is a fully-deterministic artefact of the codec (fixed
seeds, no timestamps), so regeneration is byte-identical until the
container format itself changes — which is exactly what the fixtures
exist to catch: ``repro fsck`` must classify each one ``clean`` and a
``--repair`` pass must not churn a byte (see
``tests/reliability/test_fsck.py``).

``v1.lzwt`` is hand-packed: the v1 format is read-only legacy, so the
generator wraps a modern payload in the historical 34-byte header.
"""

import random
import struct
import sys
import zlib
from pathlib import Path

from repro.bitstream import TernaryVector
from repro.container import (
    COLD_SEED,
    SEED_BLOB,
    SegmentSeed,
    dump_bytes,
    dump_segments,
)
from repro.core import LZWConfig, compress
from repro.core.decoder import derive_final_snapshot
from repro.core.stream import StreamEncoder
from repro.streamio import StreamContainerWriter

CONFIG = LZWConfig(char_bits=4, dict_size=64, entry_bits=20)
_HEADER_V1 = struct.Struct(">4sBBIIQQI")


def v1_bytes(v2: bytes) -> bytes:
    """Wrap a v2 container's payload in the legacy v1 header."""
    magic, _version, char_bits, dict_size, entry_bits, original_bits, \
        payload_bits, payload_crc, _stream_crc, _header_crc = struct.unpack_from(
            ">4sBBIIQQIII", v2
        )
    payload = v2[struct.calcsize(">4sBBIIQQIII"):]
    assert payload_crc == zlib.crc32(payload)
    return _HEADER_V1.pack(
        magic, 1, char_bits, dict_size, entry_bits,
        original_bits, payload_bits, payload_crc,
    ) + payload


def main() -> int:
    out = Path(__file__).parent / "containers"
    out.mkdir(exist_ok=True)

    rng = random.Random(20030309)
    stream_a = TernaryVector.random(480, x_density=0.6, rng=rng)
    stream_b = TernaryVector.random(320, x_density=0.4, rng=rng)

    result_a = compress(stream_a, CONFIG)
    result_b = compress(stream_b, CONFIG)

    v2 = dump_bytes(result_a.compressed, result_a.assigned_stream)
    v3 = dump_segments(
        [result_a.compressed, result_b.compressed],
        streams=[result_a.assigned_stream, result_b.assigned_stream],
    )

    snapshot = derive_final_snapshot(result_a.compressed.codes, CONFIG)
    seeded = compress(stream_b, CONFIG, seed=snapshot)
    v4 = dump_segments(
        [result_a.compressed, seeded.compressed],
        streams=[result_a.assigned_stream, seeded.assigned_stream],
        seeds=[COLD_SEED, SegmentSeed(SEED_BLOB, snapshot, None)],
    )

    import io

    encoder = StreamEncoder(CONFIG)
    sink = io.BytesIO()
    writer = StreamContainerWriter(CONFIG, sink, codes_per_frame=16)
    writer.write_codes(encoder.feed(stream_a))
    writer.finalize(encoder.finalize(), encoder.original_bits)
    v5 = sink.getvalue()

    fixtures = {
        "v1.lzwt": v1_bytes(v2),
        "v2.lzwt": v2,
        "v3.lzwt": v3,
        "v4.lzwt": v4,
        "v5.lzwt": v5,
        "dict.lzws": snapshot.to_bytes(),
    }
    for name, data in fixtures.items():
        path = out / name
        changed = not path.exists() or path.read_bytes() != data
        path.write_bytes(data)
        print(f"{'wrote' if changed else 'kept '} {path} ({len(data)} bytes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
