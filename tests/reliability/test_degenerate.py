"""Degenerate inputs: empty and all-X streams through the full stack."""

import pytest

from repro.bitstream import TernaryVector
from repro.container import dump_bytes, load_bytes
from repro.core import CompressedStream, LZWConfig, compress, decode, decompress
from repro.reliability.errors import DecodeError


@pytest.mark.parametrize(
    "config",
    [
        LZWConfig(char_bits=3, dict_size=32, entry_bits=12),
        LZWConfig(),  # the paper's configuration
    ],
    ids=["small", "paper"],
)
class TestDegenerateStreams:
    def test_empty_round_trip(self, config):
        result = compress(TernaryVector(), config)
        assert result.compressed.codes == ()
        assert result.compressed.original_bits == 0
        decoded = decode(result.compressed)
        assert len(decoded) == 0
        assert decoded.covers(TernaryVector())

    def test_all_x_round_trip(self, config):
        for length in (1, 20, 700):
            original = TernaryVector.xs(length)
            result = compress(original, config)
            decoded = decode(result.compressed)
            assert len(decoded) == length
            assert decoded.covers(original)

    def test_single_care_bit(self, config):
        original = TernaryVector("1")
        result = compress(original, config)
        assert decode(result.compressed).covers(original)

    def test_empty_container_round_trip(self, config):
        result = compress(TernaryVector(), config)
        back = load_bytes(dump_bytes(result.compressed))
        assert back.codes == ()
        assert len(decompress(back)) == 0


class TestDecodeEdgeCases:
    def test_empty_codes_zero_bits(self):
        config = LZWConfig(char_bits=3, dict_size=32, entry_bits=12)
        decoded = decode(CompressedStream((), config, 0))
        assert decoded == TernaryVector()

    def test_empty_codes_nonzero_bits_rejected(self):
        config = LZWConfig(char_bits=3, dict_size=32, entry_bits=12)
        with pytest.raises(DecodeError) as info:
            decode(CompressedStream((), config, 5))
        assert info.value.decoded_bits == 0
        assert info.value.expected_bits == 5

    def test_chars_to_stream_empty(self):
        from repro.core.decoder import _chars_to_stream

        config = LZWConfig(char_bits=3, dict_size=32, entry_bits=12)
        assert _chars_to_stream([], config, None) == TernaryVector()
        assert _chars_to_stream([], config, 0) == TernaryVector()
