"""Fault-injection coverage of the multi-segment (v3) framing.

Extends the reliability campaign to sharded containers: every injector
class — including the two v3-specific ones that corrupt a single
shard's payload or tamper with its segment-table entry under a
re-signed header CRC — must be detected with a typed error, never
silent corruption, and ``repro verify`` must report the failing
segment's index with exit code 4.
"""

import random

import pytest

from repro.bitstream import TernaryVector
from repro.container import (
    SEGMENT_ENTRY_SIZE,
    V3_SEGMENT_TABLE_OFFSET,
    load_segments,
)
from repro.core import LZWConfig, compress_batch
from repro.reliability.campaign import TrialOutcome, run_campaign
from repro.reliability.errors import ContainerError
from repro.reliability.inject import INJECTORS, MULTI_INJECTORS, inject
from repro.reliability.verify import verify_container

CONFIG = LZWConfig(char_bits=4, dict_size=128, entry_bits=24)


@pytest.fixture(scope="module")
def original():
    return TernaryVector.random(2400, x_density=0.75, rng=random.Random(99))


@pytest.fixture(scope="module")
def container(original):
    item = compress_batch(CONFIG, [original], workers=1, shard_bits=700)[0]
    assert item.num_shards >= 3  # the campaign needs a real multi-segment file
    return item.container


class TestMultiSegmentCampaign:
    def test_no_silent_corruption_across_all_injectors(self, container, original):
        names = tuple(sorted(INJECTORS)) + tuple(sorted(MULTI_INJECTORS))
        result = run_campaign(container, original, injectors=names, seeds=range(50))
        assert result.ok, result.summary()
        counts = result.counts
        assert counts[TrialOutcome.SILENT] == 0
        assert counts[TrialOutcome.ESCAPED] == 0
        assert counts[TrialOutcome.DETECTED] > 0

    @pytest.mark.parametrize("injector", sorted(MULTI_INJECTORS))
    def test_segment_injectors_are_deterministic(self, container, injector):
        assert inject(container, injector, 7) == inject(container, injector, 7)
        assert inject(container, injector, 7) != inject(container, injector, 8)

    @pytest.mark.parametrize("injector", sorted(MULTI_INJECTORS))
    def test_segment_injectors_require_v3(self, injector):
        with pytest.raises(ValueError):
            inject(b"LZWT\x02" + bytes(60), injector, 0)


class TestVerifyReportsSegmentIndex:
    def test_corrupt_segment_payload_names_the_segment(self, container, original):
        # Flip a bit in the *last* segment's payload: the final bytes of
        # the container belong to it.
        corrupted = bytearray(container)
        corrupted[-2] ^= 0x10
        report = verify_container(bytes(corrupted), original)
        assert not report.ok
        assert report.exit_code == 4
        failing = [c for c in report.checks if not c.ok]
        assert failing
        last = report.segments - 1
        assert any(f"segment[{last}]" in check.name for check in failing)

    def test_tampered_entry_is_reported_by_index(self, container, original):
        corrupted = inject(container, "segment_entry_tamper", seed=3)
        report = verify_container(corrupted, original)
        assert not report.ok
        assert report.exit_code == 4
        assert any(
            "segment[" in check.name or "header" in check.name
            for check in report.checks
            if not check.ok
        )

    def test_every_segment_index_appears_in_a_clean_report(self, container):
        report = verify_container(container)
        assert report.ok and report.exit_code == 0
        for index in range(report.segments):
            assert any(
                check.name.startswith(f"segment[{index}]")
                for check in report.checks
            )

    def test_load_segments_raises_with_segment_diagnostic(self, container):
        corrupted = bytearray(container)
        corrupted[-2] ^= 0x10
        with pytest.raises(ContainerError) as excinfo:
            load_segments(bytes(corrupted))
        assert hasattr(excinfo.value, "segment")

    def test_first_segment_payload_corruption(self, container, original):
        # Corrupt the first payload byte right after the segment table.
        segments = load_segments(container)
        table_end = V3_SEGMENT_TABLE_OFFSET + len(segments) * SEGMENT_ENTRY_SIZE
        corrupted = bytearray(container)
        corrupted[table_end] ^= 0xFF
        report = verify_container(bytes(corrupted), original)
        assert not report.ok
        assert report.exit_code == 4
        assert any(
            check.name.startswith("segment[0]")
            for check in report.checks
            if not check.ok
        )
