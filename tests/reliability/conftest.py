"""Shared fixtures for the reliability suite."""

import random

import pytest

from repro.bitstream import TernaryVector
from repro.container import dump_bytes
from repro.core import LZWConfig, compress


@pytest.fixture
def campaign_config():
    """A small configuration so thousands of trials stay fast."""
    return LZWConfig(char_bits=4, dict_size=64, entry_bits=20)


@pytest.fixture
def campaign_original(campaign_config):
    """A deterministic 600-bit cube stream at 70% X."""
    rng = random.Random(20030307)
    return TernaryVector.random(600, x_density=0.7, rng=rng)


@pytest.fixture
def campaign_container(campaign_config, campaign_original):
    """A known-good v2 container for the campaign stream."""
    result = compress(campaign_original, campaign_config)
    return dump_bytes(result.compressed, result.assigned_stream)
