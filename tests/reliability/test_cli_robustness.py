"""CLI hardening: no tracebacks, documented exit codes at main()."""

import pytest

from repro.cli import main
from repro.container import dump_file
from repro.core import LZWConfig, LZWEncoder
from repro.bitstream import TernaryVector


@pytest.fixture
def container_file(tmp_path):
    config = LZWConfig(char_bits=3, dict_size=32, entry_bits=12)
    compressed = LZWEncoder(config).encode(TernaryVector("01X10XX01101X0010X"))
    path = tmp_path / "t.lzwt"
    dump_file(compressed, path)
    return path


class TestMissingFiles:
    def test_compress_missing_file(self, tmp_path, capsys):
        assert main(["compress", str(tmp_path / "nope.test")]) == 3
        err = capsys.readouterr().err
        assert err.startswith("repro:")
        assert "Traceback" not in err

    def test_decompress_missing_file(self, tmp_path, capsys):
        out = tmp_path / "out.test"
        assert main(["decompress", str(tmp_path / "nope.lzwt"), "-o", str(out)]) == 3
        assert "repro:" in capsys.readouterr().err

    def test_stats_missing_file(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.test")]) == 3
        assert "repro:" in capsys.readouterr().err


class TestMalformedInput:
    def test_compress_malformed_test_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.test"
        bad.write_text("01X\n01Z\n")
        assert main(["compress", str(bad)]) == 3
        err = capsys.readouterr().err
        assert "TestFileError" in err
        assert len(err.strip().splitlines()) == 1

    def test_stats_empty_test_file(self, tmp_path, capsys):
        empty = tmp_path / "empty.test"
        empty.write_text("# nothing here\n")
        assert main(["stats", str(empty)]) == 3
        assert "no test vectors" in capsys.readouterr().err

    def test_compress_bad_config_exit_2(self, tmp_path, capsys):
        cubes = tmp_path / "ok.test"
        cubes.write_text("01X0\n")
        rc = main(["compress", str(cubes), "--char-bits", "4",
                   "--dict-size", "4"])
        assert rc == 2
        assert "ConfigError" in capsys.readouterr().err


class TestCorruptContainers:
    def test_decompress_corrupt_container_exit_4(
        self, container_file, tmp_path, capsys
    ):
        data = bytearray(container_file.read_bytes())
        data[-1] ^= 0x01
        container_file.write_bytes(bytes(data))
        out = tmp_path / "out.txt"
        assert main(["decompress", str(container_file), "-o", str(out)]) == 4
        err = capsys.readouterr().err
        assert "ContainerError" in err
        assert "Traceback" not in err

    def test_decompress_not_a_container_exit_4(self, tmp_path, capsys):
        fake = tmp_path / "fake.lzwt"
        fake.write_bytes(b"this is not a container at all")
        out = tmp_path / "out.txt"
        assert main(["decompress", str(fake), "-o", str(out)]) == 4
        assert "repro:" in capsys.readouterr().err

    def test_decompress_good_container_still_works(
        self, container_file, tmp_path, capsys
    ):
        out = tmp_path / "out.txt"
        assert main(["decompress", str(container_file), "-o", str(out)]) == 0
        assert out.exists()


@pytest.fixture
def cube_files(tmp_path):
    contents = {
        "a": ["01X0X1X0", "X1X00X10", "0XX1X010", "10X0XX01"],
        "b": ["11XX0010", "0X01X0X1", "X010X10X", "01XX100X"],
    }
    paths = []
    for name, rows in contents.items():
        path = tmp_path / f"{name}.test"
        path.write_text("\n".join(rows) + "\n")
        paths.append(str(path))
    return paths


BATCH_OPTS = ["--char-bits", "3", "--dict-size", "32", "--entry-bits", "12",
              "--workers", "1"]


class TestBatchSupervision:
    def test_batch_with_supervision_flags_succeeds(
        self, cube_files, tmp_path, capsys
    ):
        out_dir = tmp_path / "out"
        rc = main(
            ["batch", *cube_files, *BATCH_OPTS, "-o", str(out_dir),
             "--max-retries", "1", "--shard-timeout", "30",
             "--on-failure", "degrade"]
        )
        assert rc == 0
        assert sorted(p.name for p in out_dir.iterdir()) == ["a.lzwt", "b.lzwt"]

    def test_resume_without_checkpoint_exit_2(self, cube_files, capsys):
        assert main(["batch", *cube_files, *BATCH_OPTS, "--resume"]) == 2
        err = capsys.readouterr().err
        assert "ConfigError" in err
        assert "Traceback" not in err

    def test_negative_max_retries_exit_2(self, cube_files, capsys):
        rc = main(["batch", *cube_files, *BATCH_OPTS, "--max-retries", "-1"])
        assert rc == 2
        assert "ConfigError" in capsys.readouterr().err

    def test_unknown_on_failure_rejected_by_parser(self, cube_files, capsys):
        with pytest.raises(SystemExit):
            main(["batch", *cube_files, *BATCH_OPTS, "--on-failure", "panic"])

    def test_checkpoint_then_resume_reproduces_containers(
        self, cube_files, tmp_path, capsys
    ):
        journal = tmp_path / "ck.jsonl"
        first_dir = tmp_path / "first"
        rc = main(
            ["batch", *cube_files, *BATCH_OPTS, "-o", str(first_dir),
             "--checkpoint", str(journal)]
        )
        assert rc == 0
        assert journal.exists()
        resumed_dir = tmp_path / "resumed"
        rc = main(
            ["batch", *cube_files, *BATCH_OPTS, "-o", str(resumed_dir),
             "--checkpoint", str(journal), "--resume"]
        )
        assert rc == 0
        for name in ("a.lzwt", "b.lzwt"):
            assert (resumed_dir / name).read_bytes() == (
                first_dir / name
            ).read_bytes()

    def test_checkpoint_for_different_inputs_exit_2(
        self, cube_files, tmp_path, capsys
    ):
        journal = tmp_path / "ck.jsonl"
        assert main(
            ["batch", cube_files[0], *BATCH_OPTS, "--checkpoint", str(journal)]
        ) == 0
        rc = main(
            ["batch", cube_files[1], *BATCH_OPTS,
             "--checkpoint", str(journal), "--resume"]
        )
        assert rc == 2
        assert "ConfigError" in capsys.readouterr().err
