"""CLI hardening: no tracebacks, documented exit codes at main()."""

import pytest

from repro.cli import main
from repro.container import dump_file
from repro.core import LZWConfig, LZWEncoder
from repro.bitstream import TernaryVector


@pytest.fixture
def container_file(tmp_path):
    config = LZWConfig(char_bits=3, dict_size=32, entry_bits=12)
    compressed = LZWEncoder(config).encode(TernaryVector("01X10XX01101X0010X"))
    path = tmp_path / "t.lzwt"
    dump_file(compressed, path)
    return path


class TestMissingFiles:
    def test_compress_missing_file(self, tmp_path, capsys):
        assert main(["compress", str(tmp_path / "nope.test")]) == 3
        err = capsys.readouterr().err
        assert err.startswith("repro:")
        assert "Traceback" not in err

    def test_decompress_missing_file(self, tmp_path, capsys):
        out = tmp_path / "out.test"
        assert main(["decompress", str(tmp_path / "nope.lzwt"), "-o", str(out)]) == 3
        assert "repro:" in capsys.readouterr().err

    def test_stats_missing_file(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.test")]) == 3
        assert "repro:" in capsys.readouterr().err


class TestMalformedInput:
    def test_compress_malformed_test_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.test"
        bad.write_text("01X\n01Z\n")
        assert main(["compress", str(bad)]) == 3
        err = capsys.readouterr().err
        assert "TestFileError" in err
        assert len(err.strip().splitlines()) == 1

    def test_stats_empty_test_file(self, tmp_path, capsys):
        empty = tmp_path / "empty.test"
        empty.write_text("# nothing here\n")
        assert main(["stats", str(empty)]) == 3
        assert "no test vectors" in capsys.readouterr().err

    def test_compress_bad_config_exit_2(self, tmp_path, capsys):
        cubes = tmp_path / "ok.test"
        cubes.write_text("01X0\n")
        rc = main(["compress", str(cubes), "--char-bits", "4",
                   "--dict-size", "4"])
        assert rc == 2
        assert "ConfigError" in capsys.readouterr().err


class TestCorruptContainers:
    def test_decompress_corrupt_container_exit_4(
        self, container_file, tmp_path, capsys
    ):
        data = bytearray(container_file.read_bytes())
        data[-1] ^= 0x01
        container_file.write_bytes(bytes(data))
        out = tmp_path / "out.txt"
        assert main(["decompress", str(container_file), "-o", str(out)]) == 4
        err = capsys.readouterr().err
        assert "ContainerError" in err
        assert "Traceback" not in err

    def test_decompress_not_a_container_exit_4(self, tmp_path, capsys):
        fake = tmp_path / "fake.lzwt"
        fake.write_bytes(b"this is not a container at all")
        out = tmp_path / "out.txt"
        assert main(["decompress", str(fake), "-o", str(out)]) == 4
        assert "repro:" in capsys.readouterr().err

    def test_decompress_good_container_still_works(
        self, container_file, tmp_path, capsys
    ):
        out = tmp_path / "out.txt"
        assert main(["decompress", str(container_file), "-o", str(out)]) == 0
        assert out.exists()
