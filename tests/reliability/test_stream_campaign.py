"""Fault-injection campaign + salvage for the v5 streaming journal.

The streaming journal's whole reason to exist is crash tolerance, so
its corruption story is held to the same bar as the one-shot container:
every injected fault is *detected* (typed error) — zero silent
corruption — and salvage recovers exactly the complete-frame prefix,
byte-correct against the uncorrupted decode.
"""

import io
import random

import pytest

from repro.bitstream import TernaryVector
from repro.core import LZWConfig, StreamEncoder, compress
from repro.reliability.campaign import TrialOutcome, run_campaign
from repro.reliability.inject import STREAM_INJECTORS, inject
from repro.reliability.salvage import salvage_container
from repro.reliability.verify import verify_container
from repro.streamio import StreamContainerWriter, decode_stream_bytes, scan_stream

SEEDS = range(40)

CFG = LZWConfig(char_bits=4, dict_size=64, entry_bits=20)


@pytest.fixture(scope="module")
def stream_original():
    rng = random.Random(20030308)
    return TernaryVector.random(2400, x_density=0.6, rng=rng)


@pytest.fixture(scope="module")
def stream_container(stream_original):
    enc = StreamEncoder(CFG)
    sink = io.BytesIO()
    writer = StreamContainerWriter(CFG, sink, codes_per_frame=24)
    for i in range(0, len(stream_original), 300):
        writer.write_codes(enc.feed(stream_original[i : i + 300]))
    writer.finalize(enc.finalize(), enc.original_bits)
    data = sink.getvalue()
    assert len(scan_stream(data).frames) >= 4, "campaign needs several frames"
    return data


class TestStreamCampaign:
    def test_no_silent_corruption_full_grid(
        self, stream_container, stream_original
    ):
        result = run_campaign(
            stream_container,
            stream_original,
            injectors=sorted(STREAM_INJECTORS),
            seeds=SEEDS,
        )
        assert len(result.trials) == len(STREAM_INJECTORS) * len(SEEDS)
        assert result.ok, result.summary()
        assert result.counts[TrialOutcome.SILENT] == 0
        assert result.counts[TrialOutcome.ESCAPED] == 0

    @pytest.mark.parametrize("name", sorted(STREAM_INJECTORS))
    def test_per_injector_detection(
        self, stream_container, stream_original, name
    ):
        result = run_campaign(
            stream_container, stream_original, injectors=[name], seeds=SEEDS
        )
        assert result.ok, result.summary()
        assert result.counts[TrialOutcome.DETECTED] >= len(SEEDS) * 0.8

    def test_generic_injectors_also_detected(
        self, stream_container, stream_original
    ):
        # The byte-level injectors written for v1-v4 know nothing about
        # frames; the v5 reader must catch them all the same.
        result = run_campaign(
            stream_container,
            stream_original,
            injectors=["bit_flip", "truncate", "header_corrupt"],
            seeds=SEEDS,
        )
        assert result.ok, result.summary()
        assert result.counts[TrialOutcome.SILENT] == 0
        assert result.counts[TrialOutcome.ESCAPED] == 0


class TestStreamSalvage:
    def test_salvage_prefix_is_byte_correct(self, stream_container):
        clean = decode_stream_bytes(stream_container)
        for name in sorted(STREAM_INJECTORS):
            for seed in range(12):
                corrupted = inject(stream_container, name, seed)
                result = salvage_container(corrupted)
                prefix = result.stream
                assert len(prefix) <= len(clean), (name, seed)
                assert prefix == clean[: len(prefix)], (name, seed)

    def test_mid_stream_truncate_recovers_all_complete_frames(
        self, stream_container
    ):
        scan = scan_stream(stream_container)
        for seed in range(12):
            corrupted = inject(stream_container, "mid_stream_truncate", seed)
            surviving = scan_stream(corrupted).frames
            result = salvage_container(corrupted)
            # Every frame that survived intact must be in the salvage.
            kept_bits = sum(f.num_codes for f in surviving)
            assert result.codes_decoded >= kept_bits, seed
            assert not result.complete
            assert result.error is not None
            assert result.notes, "salvage must explain what it tolerated"

    def test_salvage_of_clean_stream_is_complete(
        self, stream_container, stream_original
    ):
        result = salvage_container(stream_container)
        assert result.complete
        assert result.error is None
        assert result.stream.covers(stream_original)


class TestStreamVerify:
    def test_clean_container_passes_with_frame_stages(self, stream_container):
        report = verify_container(stream_container)
        assert report.ok
        names = [c.name for c in report.checks]
        assert any(n.startswith("frame[") for n in names)
        assert "terminal" in names

    @pytest.mark.parametrize("name", sorted(STREAM_INJECTORS))
    def test_corrupted_container_fails(self, stream_container, name):
        for seed in range(8):
            corrupted = inject(stream_container, name, seed)
            report = verify_container(corrupted)
            assert not report.ok, (name, seed)

    def test_coverage_stage_runs_on_streams(
        self, stream_container, stream_original
    ):
        report = verify_container(stream_container, original=stream_original)
        assert report.ok
        assert any(c.name == "coverage" for c in report.checks)
