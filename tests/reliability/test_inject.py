"""Unit tests for the seeded fault injectors."""

import zlib

import pytest

from repro.container import (
    HEADER_CRC_OFFSET,
    HEADER_SIZE,
    PAYLOAD_CRC_OFFSET,
)
from repro.reliability.inject import INJECTORS, inject


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(INJECTORS))
    def test_same_seed_same_corruption(self, campaign_container, name):
        a = inject(campaign_container, name, seed=3)
        b = inject(campaign_container, name, seed=3)
        assert a == b

    @pytest.mark.parametrize("name", sorted(INJECTORS))
    def test_seeds_vary_the_corruption(self, campaign_container, name):
        outputs = {inject(campaign_container, name, seed=s) for s in range(20)}
        assert len(outputs) > 1

    @pytest.mark.parametrize("name", sorted(INJECTORS))
    def test_always_differs_from_original(self, campaign_container, name):
        for seed in range(20):
            assert inject(campaign_container, name, seed) != campaign_container


class TestShapes:
    def test_bit_flip_preserves_length(self, campaign_container):
        corrupted = inject(campaign_container, "bit_flip", 0)
        assert len(corrupted) == len(campaign_container)
        diff = [i for i, (a, b) in enumerate(zip(corrupted, campaign_container))
                if a != b]
        assert len(diff) == 1

    def test_byte_drop_shrinks_by_one(self, campaign_container):
        assert len(inject(campaign_container, "byte_drop", 0)) == (
            len(campaign_container) - 1
        )

    def test_truncate_shortens(self, campaign_container):
        corrupted = inject(campaign_container, "truncate", 0)
        assert len(corrupted) < len(campaign_container)
        assert campaign_container.startswith(corrupted)

    def test_header_corrupt_stays_in_header(self, campaign_container):
        for seed in range(20):
            corrupted = inject(campaign_container, "header_corrupt", seed)
            assert corrupted[HEADER_SIZE:] == campaign_container[HEADER_SIZE:]

    def test_crc_tamper_keeps_checksums_consistent(self, campaign_container):
        corrupted = inject(campaign_container, "crc_tamper", 0)
        # Payload differs but both CRCs have been fixed up to match.
        assert corrupted[HEADER_SIZE:] != campaign_container[HEADER_SIZE:]
        payload_crc = int.from_bytes(
            corrupted[PAYLOAD_CRC_OFFSET : PAYLOAD_CRC_OFFSET + 4], "big"
        )
        assert payload_crc == zlib.crc32(corrupted[HEADER_SIZE:])
        header_crc = int.from_bytes(
            corrupted[HEADER_CRC_OFFSET : HEADER_CRC_OFFSET + 4], "big"
        )
        assert header_crc == zlib.crc32(corrupted[:HEADER_CRC_OFFSET])


class TestValidation:
    def test_unknown_injector(self, campaign_container):
        with pytest.raises(ValueError, match="unknown injector"):
            inject(campaign_container, "gamma_ray", 0)

    def test_empty_data(self):
        with pytest.raises(ValueError, match="empty"):
            inject(b"", "bit_flip", 0)

    def test_crc_tamper_needs_payload(self):
        with pytest.raises(ValueError, match="payload"):
            inject(b"\x00" * HEADER_SIZE, "crc_tamper", 0)

    def test_registry_has_all_five_classes(self):
        assert set(INJECTORS) == {
            "bit_flip",
            "byte_drop",
            "truncate",
            "header_corrupt",
            "crc_tamper",
        }
