"""The fault-injection campaign: the repo's no-silent-corruption proof.

Every injector class is run for at least 50 seeds against a known-good
container.  Each corrupted container must either be rejected with a
typed ``ReproError`` subclass or decode to a stream that still covers
the original cubes — zero silent corruptions, zero escaped exceptions.
"""

import pytest

from repro.reliability.campaign import (
    CampaignResult,
    Trial,
    TrialOutcome,
    run_campaign,
    run_trial,
)
from repro.reliability.inject import INJECTORS

SEEDS = range(50)


class TestCampaign:
    def test_no_silent_corruption_full_grid(
        self, campaign_container, campaign_original
    ):
        result = run_campaign(campaign_container, campaign_original, seeds=SEEDS)
        assert len(result.trials) == len(INJECTORS) * len(SEEDS)
        assert result.ok, result.summary()
        assert result.counts[TrialOutcome.SILENT] == 0
        assert result.counts[TrialOutcome.ESCAPED] == 0

    @pytest.mark.parametrize("name", sorted(INJECTORS))
    def test_per_injector_detection(
        self, campaign_container, campaign_original, name
    ):
        result = run_campaign(
            campaign_container, campaign_original, injectors=[name], seeds=SEEDS
        )
        assert result.ok, result.summary()
        # Overwhelmingly these corruptions must be *detected*, not lucky.
        assert result.counts[TrialOutcome.DETECTED] >= len(SEEDS) * 0.8

    def test_crc_tamper_relies_on_stream_digest(
        self, campaign_container, campaign_original
    ):
        # The adversarial injector defeats both CRCs; every trial must
        # still come back detected or provably-correct.
        result = run_campaign(
            campaign_container,
            campaign_original,
            injectors=["crc_tamper"],
            seeds=SEEDS,
        )
        assert result.ok, result.summary()
        assert result.counts[TrialOutcome.DETECTED] > 0


class TestTrialClassification:
    def test_detected_trial(self, campaign_container, campaign_original):
        trial = run_trial(campaign_container, campaign_original, "truncate", 0)
        assert trial.outcome is TrialOutcome.DETECTED
        assert trial.error is not None
        assert "truncate" in trial.describe()

    def test_uncorrupted_container_is_correct(
        self, campaign_container, campaign_original
    ):
        # Bypass the injector: classification of a clean decode.
        from repro.container import load_bytes
        from repro.core import decode

        stream = decode(load_bytes(campaign_container))
        assert stream.covers(campaign_original)

    def test_result_summary_mentions_counts(
        self, campaign_container, campaign_original
    ):
        result = run_campaign(
            campaign_container, campaign_original, injectors=["bit_flip"],
            seeds=range(5),
        )
        assert "detected=" in result.summary()

    def test_failures_surface_in_summary(self):
        bad = Trial("fake", 1, TrialOutcome.SILENT)
        result = CampaignResult((bad,))
        assert not result.ok
        assert result.failures == (bad,)
        assert "fake/seed=1" in result.summary()
