"""Unit tests for the salvage (partial-recovery) decoder."""

import pytest

from repro.container import HEADER_SIZE, dump_bytes
from repro.core import CompressedStream, LZWConfig, LZWEncoder, decode
from repro.bitstream import TernaryVector
from repro.reliability.errors import ContainerError, DecodeError
from repro.reliability.salvage import decode_partial, salvage_container


@pytest.fixture
def good(campaign_config, campaign_original):
    return LZWEncoder(campaign_config).encode(campaign_original)


class TestDecodePartial:
    def test_clean_stream_is_complete(self, good):
        result = decode_partial(good)
        assert result.complete
        assert result.error is None
        assert result.codes_decoded == result.total_codes == good.num_codes
        assert result.stream == decode(good)
        assert "complete" in result.describe()

    def test_bad_code_midstream(self, good):
        # Replace a code past the midpoint with one no decoder state can
        # reach: the dictionary can never have grown past dict_size.
        codes = list(good.codes)
        victim = (len(codes) // 2) + 1
        codes[victim] = good.config.dict_size - 1
        broken = CompressedStream(tuple(codes), good.config, good.original_bits)
        result = decode_partial(broken)
        assert not result.complete
        assert result.codes_decoded == victim
        assert result.recovered_bits > 0
        assert isinstance(result.error, DecodeError)
        assert result.failed_code_index == victim
        assert result.failed_bit_offset == victim * good.config.code_bits
        # The salvaged prefix is exactly what the strict decoder agreed to.
        full = decode(good)
        assert full[: result.recovered_bits].covers(result.stream)

    def test_bad_first_code(self, campaign_config):
        broken = CompressedStream(
            (campaign_config.base_codes,), campaign_config, original_bits=4
        )
        result = decode_partial(broken)
        assert not result.complete
        assert result.codes_decoded == 0
        assert result.recovered_bits == 0
        assert result.failed_code_index == 0

    def test_short_stream_reports_length_error(self, campaign_config):
        # Codes decode fine but produce fewer bits than original_bits.
        broken = CompressedStream((1,), campaign_config, original_bits=10_000)
        result = decode_partial(broken)
        assert not result.complete
        assert result.failed_code_index is None
        assert result.recovered_bits == campaign_config.char_bits

    def test_empty_stream(self, campaign_config):
        result = decode_partial(CompressedStream((), campaign_config, 0))
        assert result.complete
        assert result.total_codes == 0
        assert len(result.stream) == 0


class TestSalvageContainer:
    def test_corruption_past_midpoint_recovers_prefix(self, campaign_container):
        # Acceptance criterion: corrupt past the midpoint, get a nonzero
        # prefix plus the failing code index and bit offset.
        from repro.container import load_bytes
        from repro.core.decoder import iter_decode

        clean = load_bytes(campaign_container)
        corrupted = bytearray(campaign_container)
        corrupt_start = (len(corrupted) - HEADER_SIZE) // 2 + 1
        for offset in range(HEADER_SIZE + corrupt_start, len(corrupted)):
            corrupted[offset] = 0xFF  # all-ones codes: out of range for N=64
        result = salvage_container(bytes(corrupted))
        assert "payload CRC mismatch (tolerated)" in result.notes
        assert not result.complete
        assert result.failed_code_index is not None
        assert result.failed_bit_offset is not None
        assert result.failed_bit_offset == (
            result.failed_code_index * clean.config.code_bits
        )
        # Codes wholly before the corrupted bytes decode exactly as in the
        # clean container; the salvaged prefix must reproduce them.
        idx_clean = corrupt_start * 8 // clean.config.code_bits
        assert result.failed_code_index >= idx_clean > 0
        clean_chars = sum(
            len(expansion)
            for index, expansion in iter_decode(clean.codes, clean.config)
            if index < idx_clean
        )
        clean_bits = clean_chars * clean.config.char_bits
        assert result.recovered_bits >= clean_bits > 0
        assert result.stream[:clean_bits] == decode(clean)[:clean_bits]

    def test_clean_container_is_complete(
        self, campaign_container, campaign_original
    ):
        result = salvage_container(campaign_container)
        assert result.complete
        assert result.notes == ()
        assert result.stream.covers(campaign_original)

    def test_truncated_payload_clamped(self, campaign_container):
        cut = campaign_container[: HEADER_SIZE + 10]
        result = salvage_container(cut)
        assert any("clamped" in note or "partial code" in note
                   for note in result.notes)
        assert result.recovered_bits > 0

    def test_unusable_header_still_raises(self, campaign_container):
        with pytest.raises(ContainerError, match="magic"):
            salvage_container(b"JUNK" + campaign_container[4:])
        with pytest.raises(ContainerError, match="truncated"):
            salvage_container(campaign_container[:3])

    def test_v1_container_salvageable(self, good):
        # Build a v1 container by hand (no digests) and salvage it.
        import struct
        import zlib

        from repro.bitstream import BitWriter

        writer = BitWriter()
        for code in good.codes:
            writer.write(code, good.config.code_bits)
        payload = writer.to_bytes()
        header = struct.Struct(">4sBBIIQQI").pack(
            b"LZWT", 1, good.config.char_bits, good.config.dict_size,
            good.config.entry_bits, good.original_bits, writer.bit_length,
            zlib.crc32(payload),
        )
        result = salvage_container(header + payload)
        assert result.complete
        assert result.stream == decode(good)
