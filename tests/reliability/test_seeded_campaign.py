"""Fault-injection coverage of the seeded (v4) framing.

Extends the reliability campaign to warm-dictionary containers: every
generic injector plus the two v4-specific ones — ``snapshot_tamper``
(a seed-blob bit flip hidden behind three re-signed CRCs) and
``seed_mismatch`` (a structurally valid lie about a segment's seed
mode) — must end in a typed error or a provably-correct decode, never
silent corruption.  ``repro verify`` must stage the seed resolution
per segment and per blob, and the salvage decoder must refuse to
fabricate output for a segment whose seed it cannot trust.
"""

import random

import pytest

from repro.bitstream import TernaryVector
from repro.container import SEED_BLOB, SEED_CHAIN, load_seeded
from repro.core import LZWConfig
from repro.parallel import SeedPlan, compress_batch
from repro.reliability.campaign import TrialOutcome, run_campaign
from repro.reliability.errors import ContainerError
from repro.reliability.inject import INJECTORS, SEEDED_INJECTORS, inject
from repro.reliability.salvage import salvage_container
from repro.reliability.verify import verify_container

CONFIG = LZWConfig(char_bits=4, dict_size=128, entry_bits=24)


@pytest.fixture(scope="module")
def original():
    return TernaryVector.random(2400, x_density=0.75, rng=random.Random(99))


@pytest.fixture(scope="module")
def preamble_container(original):
    item = compress_batch(
        CONFIG, [original], workers=1, shard_bits=700,
        seed_plan=SeedPlan(mode="preamble"),
    )[0]
    assert item.num_shards >= 3
    segments = load_seeded(item.container)
    assert all(s.seed_mode == SEED_BLOB for s in segments)
    return item.container


@pytest.fixture(scope="module")
def wave_container(original):
    item = compress_batch(
        CONFIG, [original], workers=1, shard_bits=700,
        seed_plan=SeedPlan(mode="wave"),
    )[0]
    assert item.num_shards >= 3
    segments = load_seeded(item.container)
    assert all(s.seed_mode == SEED_CHAIN for s in segments[1:])
    return item.container


class TestSeededCampaign:
    def test_preamble_no_silent_corruption(self, preamble_container, original):
        names = tuple(sorted(INJECTORS)) + tuple(sorted(SEEDED_INJECTORS))
        result = run_campaign(
            preamble_container, original, injectors=names, seeds=range(50)
        )
        assert result.ok, result.summary()
        counts = result.counts
        assert counts[TrialOutcome.SILENT] == 0
        assert counts[TrialOutcome.ESCAPED] == 0
        assert counts[TrialOutcome.DETECTED] > 0

    def test_wave_no_silent_corruption(self, wave_container, original):
        # A wave container stores no blobs (chain seeds are derived at
        # load), so snapshot_tamper has nothing to bite on.
        names = tuple(sorted(INJECTORS)) + ("seed_mismatch",)
        result = run_campaign(
            wave_container, original, injectors=names, seeds=range(50)
        )
        assert result.ok, result.summary()
        assert result.counts[TrialOutcome.DETECTED] > 0

    @pytest.mark.parametrize("injector", sorted(SEEDED_INJECTORS))
    def test_seeded_injectors_are_deterministic(
        self, preamble_container, injector
    ):
        assert inject(preamble_container, injector, 7) == inject(
            preamble_container, injector, 7
        )
        assert inject(preamble_container, injector, 7) != inject(
            preamble_container, injector, 8
        )

    @pytest.mark.parametrize("injector", sorted(SEEDED_INJECTORS))
    def test_seeded_injectors_require_v4(self, injector):
        with pytest.raises(ValueError):
            inject(b"LZWT\x02" + bytes(60), injector, 0)

    def test_snapshot_tamper_needs_blobs(self, wave_container):
        with pytest.raises(ValueError):
            inject(wave_container, "snapshot_tamper", 0)


class TestVerifyStagesSeeds:
    def test_clean_preamble_report_stages_blobs_and_seeds(
        self, preamble_container, original
    ):
        report = verify_container(preamble_container, original)
        assert report.ok and report.exit_code == 0
        assert report.version == 4
        names = [check.name for check in report.checks]
        assert any(name.startswith("blob[0]") for name in names)
        for index in range(report.segments):
            assert f"segment[{index}] seed" in names
        assert "coverage" in names

    def test_clean_wave_report_chains_seeds(self, wave_container, original):
        report = verify_container(wave_container, original)
        assert report.ok and report.exit_code == 0
        chained = [
            check
            for check in report.checks
            if check.name.endswith("seed") and "chained" in check.detail
        ]
        assert len(chained) == report.segments - 1

    def test_snapshot_tamper_is_staged(self, preamble_container, original):
        corrupted = inject(preamble_container, "snapshot_tamper", seed=11)
        report = verify_container(corrupted, original)
        assert not report.ok
        assert report.exit_code == 4
        failing = [check.name for check in report.checks if not check.ok]
        assert failing
        # All transport CRCs were re-signed: the failure must surface in
        # the snapshot parse/replay or in the seeded decode stages.
        assert all("crc" not in name or "blob" in name for name in failing)

    def test_seed_mismatch_is_detected_or_correct(
        self, preamble_container, original
    ):
        for seed in range(20):
            corrupted = inject(preamble_container, "seed_mismatch", seed)
            try:
                segments = load_seeded(corrupted)
            except ContainerError:
                continue  # typed rejection: the lie was caught
            # The lie survived the digest only if the bytes decode
            # identically (seed did not influence the stream).
            from repro.core import decode

            decoded = TernaryVector.concat_all(
                [
                    decode(s.compressed, seed=s.seed, link=s.link)
                    for s in segments
                ]
            )
            assert decoded.covers(original)

    def test_chain_successor_reports_failed_predecessor(self, wave_container):
        # Corrupt segment 0's payload: its own decode fails AND every
        # chained successor must report an unresolvable seed instead of
        # decoding under a fabricated dictionary.
        segments = load_seeded(wave_container)
        corrupted = bytearray(wave_container)
        corrupted[-len(corrupted) // 4] ^= 0xFF  # land inside the payload area
        report = verify_container(bytes(corrupted))
        if report.ok:  # the flip landed in dead padding; nothing to assert
            pytest.skip("corruption landed in padding")
        failing = [check.name for check in report.checks if not check.ok]
        assert failing


class TestSeededSalvage:
    def test_intact_containers_salvage_completely(
        self, preamble_container, wave_container, original
    ):
        for data in (preamble_container, wave_container):
            result = salvage_container(data)
            assert result.complete, result.describe()
            assert result.stream.covers(original)

    def test_unreadable_blob_stops_blob_seeded_segments(
        self, preamble_container
    ):
        corrupted = inject(preamble_container, "snapshot_tamper", seed=3)
        result = salvage_container(corrupted)
        # Either the tampered snapshot fails replay (segments seeded
        # from it are not attempted) or it replays into a different
        # trie and some segment fails to decode under it.  Both must
        # surface as an incomplete, diagnosed salvage — or, rarely, the
        # flip hits a bit the decode never consults and everything
        # still decodes.
        if not result.complete:
            assert result.failed_segment is not None
            assert result.error is not None

    def test_wave_predecessor_failure_stops_the_chain(self, wave_container):
        segments = load_seeded(wave_container)
        assert len(segments) >= 3
        # Truncate into the first segment's payload: successors chain
        # from it and must not be attempted.
        header_and_tables = len(wave_container) - sum(
            (len(s.compressed.codes) * CONFIG.code_bits + 7) // 8
            for s in segments
        )
        cut = header_and_tables + 1
        result = salvage_container(wave_container[:cut] )
        assert not result.complete
        assert result.failed_segment == 0
        assert any("not attempted" in note for note in result.notes)
