"""Atomic artefact writes: tmp+fsync+replace, typed env failures."""

import errno
import os

import pytest

from repro.container import dump_file, load_file
from repro.core import LZWConfig, compress
from repro.bitstream import TernaryVector
from repro.reliability.atomic import atomic_write_bytes, atomic_write_text
from repro.reliability.errors import ContainerError


def test_writes_bytes_and_replaces_existing(tmp_path):
    target = tmp_path / "artefact.bin"
    atomic_write_bytes(target, b"one")
    assert target.read_bytes() == b"one"
    atomic_write_bytes(target, b"two")
    assert target.read_bytes() == b"two"


def test_text_wrapper_encodes(tmp_path):
    target = tmp_path / "report.json"
    atomic_write_text(target, '{"ratio": 12.5}\n')
    assert target.read_text() == '{"ratio": 12.5}\n'


def test_no_temp_file_survives_a_successful_write(tmp_path):
    atomic_write_bytes(tmp_path / "a.bin", b"data")
    assert [p.name for p in tmp_path.iterdir()] == ["a.bin"]


def test_enospc_maps_to_typed_container_error(tmp_path, monkeypatch):
    def explode(fd):
        raise OSError(errno.ENOSPC, "No space left on device")

    monkeypatch.setattr(os, "fsync", explode)
    with pytest.raises(ContainerError) as info:
        atomic_write_bytes(tmp_path / "full.bin", b"x")
    assert info.value.errno == "ENOSPC"
    assert "full.bin" in info.value.path
    # Failure leaves neither the target nor a temp file behind.
    assert list(tmp_path.iterdir()) == []


def test_eacces_maps_to_typed_container_error(tmp_path, monkeypatch):
    def denied(src, dst):
        raise OSError(errno.EACCES, "Permission denied")

    monkeypatch.setattr(os, "replace", denied)
    with pytest.raises(ContainerError) as info:
        atomic_write_bytes(tmp_path / "locked.bin", b"x")
    assert info.value.errno == "EACCES"
    assert list(tmp_path.iterdir()) == []


def test_unrelated_oserror_propagates_untyped(tmp_path, monkeypatch):
    def weird(fd):
        raise OSError(errno.EIO, "I/O error")

    monkeypatch.setattr(os, "fsync", weird)
    with pytest.raises(OSError) as info:
        atomic_write_bytes(tmp_path / "io.bin", b"x")
    assert not isinstance(info.value, ContainerError)


def test_failed_write_leaves_previous_version_intact(tmp_path, monkeypatch):
    target = tmp_path / "stable.bin"
    atomic_write_bytes(target, b"good version")

    def explode(src, dst):
        raise OSError(errno.ENOSPC, "No space left on device")

    monkeypatch.setattr(os, "replace", explode)
    with pytest.raises(ContainerError):
        atomic_write_bytes(target, b"torn new version")
    monkeypatch.undo()
    # Readers still see the complete previous artefact.
    assert target.read_bytes() == b"good version"


def test_container_dump_file_goes_through_atomic_path(tmp_path, monkeypatch):
    result = compress(TernaryVector("01X0XX10" * 8), LZWConfig())
    target = tmp_path / "out.lzwt"
    dump_file(result.compressed, target, result.assigned_stream)
    loaded = load_file(target)
    assert loaded.codes == result.compressed.codes

    def explode(fd):
        raise OSError(errno.ENOSPC, "No space left on device")

    monkeypatch.setattr(os, "fsync", explode)
    with pytest.raises(ContainerError):
        dump_file(result.compressed, tmp_path / "fail.lzwt", result.assigned_stream)
    assert not (tmp_path / "fail.lzwt").exists()
