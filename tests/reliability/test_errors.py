"""Unit tests for the unified exception taxonomy."""

import pytest

from repro.reliability.errors import (
    ConfigError,
    ContainerError,
    DecodeError,
    ReproError,
    StreamError,
    TestFileError,
)


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for cls in (StreamError, DecodeError, ContainerError, ConfigError,
                    TestFileError):
            assert issubclass(cls, ReproError)

    def test_builtin_compatibility(self):
        # Pre-taxonomy except clauses must keep working.
        assert issubclass(StreamError, EOFError)
        for cls in (DecodeError, ContainerError, ConfigError, TestFileError):
            assert issubclass(cls, ValueError)

    def test_exit_codes(self):
        assert ConfigError.exit_code == 2
        assert TestFileError.exit_code == 3
        assert StreamError.exit_code == 4
        assert DecodeError.exit_code == 4
        assert ContainerError.exit_code == 4


class TestDiagnostics:
    def test_kwargs_become_attributes(self):
        exc = DecodeError("bad code", code_index=7, code=99, bit_offset=42)
        assert exc.code_index == 7
        assert exc.code == 99
        assert exc.bit_offset == 42
        assert exc.diagnostics == {"code_index": 7, "code": 99, "bit_offset": 42}

    def test_none_values_dropped(self):
        exc = StreamError("eof", bit_offset=3, requested_bits=None)
        assert exc.diagnostics == {"bit_offset": 3}
        assert not hasattr(exc, "requested_bits")

    def test_str_includes_diagnostics(self):
        exc = ContainerError("mismatch", byte_offset=30)
        assert "mismatch" in str(exc)
        assert "byte_offset=30" in str(exc)

    def test_str_without_diagnostics_is_plain(self):
        assert str(ReproError("plain message")) == "plain message"

    def test_message_attribute(self):
        exc = ContainerError("mismatch", byte_offset=30)
        assert exc.message == "mismatch"


class TestLibraryIntegration:
    def test_decoder_alias(self):
        from repro.core import LZWDecodeError

        assert LZWDecodeError is DecodeError

    def test_container_reexport(self):
        from repro.container import ContainerError as reexported

        assert reexported is ContainerError

    def test_config_error_raised(self):
        from repro.core import LZWConfig

        with pytest.raises(ConfigError) as info:
            LZWConfig(char_bits=0)
        assert info.value.field == "char_bits"

    def test_testfile_error_raised(self):
        from repro.testfile import parse_test_text

        with pytest.raises(TestFileError) as info:
            parse_test_text("01X\n01Z\n", name="bad")
        assert info.value.line == 2

    def test_stream_error_has_position(self):
        from repro.bitstream import BitReader

        reader = BitReader([1, 0])
        reader.read(1)
        with pytest.raises(StreamError) as info:
            reader.read(8)
        assert info.value.bit_offset == 1
        assert info.value.requested_bits == 8
        assert info.value.available_bits == 1

    def test_unterminated_unary_is_stream_error(self):
        from repro.bitstream import BitReader

        reader = BitReader([1, 1, 1])
        with pytest.raises(StreamError) as info:
            reader.read_unary()
        assert info.value.bit_offset == 0
        assert info.value.run_length == 3
