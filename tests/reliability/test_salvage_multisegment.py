"""Salvage decoding of multi-segment (v3) containers.

A corrupted segment ``i`` must salvage every segment before it in full
and report the failing table index — matching the ``segment[i]``
diagnostics ``repro verify`` reports with exit code 4.
"""

import random
import struct

import pytest

from repro.bitstream import TernaryVector
from repro.container import (
    SEGMENT_ENTRY_SIZE,
    V3_HEADER_CRC_OFFSET,
    V3_SEGMENT_TABLE_OFFSET,
    load_segments,
)
from repro.core import LZWConfig, compress_batch
from repro.reliability.salvage import salvage_container
from repro.reliability.verify import verify_container

CONFIG = LZWConfig(char_bits=4, dict_size=128, entry_bits=24)

_ENTRY = struct.Struct(">QQQIII")


@pytest.fixture(scope="module")
def original():
    rng = random.Random(99)
    return TernaryVector.random(2400, x_density=0.75, rng=rng)


@pytest.fixture(scope="module")
def container(original):
    item = compress_batch(CONFIG, [original], workers=1, shard_bits=700)[0]
    assert item.num_shards >= 4  # the tests below index segments 0..2
    return item.container


def _entries(container):
    count = len(load_segments(container))
    return [
        _ENTRY.unpack_from(
            container, V3_SEGMENT_TABLE_OFFSET + i * SEGMENT_ENTRY_SIZE
        )
        for i in range(count)
    ]


def _segment_bounds(container, index):
    """(start, end) byte range of segment ``index``'s payload in the file."""
    entries = _entries(container)
    table_end = V3_SEGMENT_TABLE_OFFSET + len(entries) * SEGMENT_ENTRY_SIZE
    offset, _orig, payload_bits, _codes, _pcrc, _scrc = entries[index]
    start = table_end + offset
    return start, start + (payload_bits + 7) // 8


def _clobber_segment(container, index):
    """Overwrite segment ``index``'s payload with codes that cannot decode."""
    start, end = _segment_bounds(container, index)
    return container[:start] + b"\xff" * (end - start) + container[end:]


def test_intact_container_salvages_completely(container, original):
    result = salvage_container(container)
    assert result.complete
    assert result.failed_segment is None
    assert result.stream.covers(original)


@pytest.mark.parametrize("bad_segment", [0, 1, 2])
def test_corrupt_segment_recovers_everything_before_it(
    container, original, bad_segment
):
    corrupted = _clobber_segment(container, bad_segment)
    result = salvage_container(corrupted)
    assert not result.complete
    assert result.failed_segment == bad_segment
    # Every earlier segment is recovered in full: the salvaged prefix
    # covers the original stream up to the failing segment's start.
    prefix_bits = sum(e[1] for e in _entries(container)[:bad_segment])
    assert result.recovered_bits >= prefix_bits
    assert result.stream[:prefix_bits].covers(original[:prefix_bits])


def test_corruption_notes_name_the_failing_segment(container):
    result = salvage_container(_clobber_segment(container, 1))
    assert any("segment 1" in note for note in result.notes)
    assert "segment 1" in result.describe()


def test_failing_index_matches_verify_diagnostics(container, original):
    # The salvage report and `repro verify`'s exit-code-4 report must
    # name the same segment, so an operator can cross-reference them.
    corrupted = _clobber_segment(container, 2)
    salvage = salvage_container(corrupted)
    report = verify_container(corrupted, original)
    assert report.exit_code == 4
    failing = [check.name for check in report.checks if not check.ok]
    assert failing
    assert all(name.startswith(f"segment[{salvage.failed_segment}]") for name in failing)


def test_header_crc_mismatch_tolerated_with_note(container, original):
    # Flip a bit inside the stored v3 header CRC itself: the table still
    # parses, so salvage proceeds and only notes the mismatch.
    bad = bytearray(container)
    bad[V3_HEADER_CRC_OFFSET] ^= 0x01
    result = salvage_container(bytes(bad))
    assert result.complete
    assert result.stream.covers(original)
    assert any("header CRC mismatch" in note for note in result.notes)


def test_partial_decode_counts_cover_all_segments(container):
    corrupted = _clobber_segment(container, 1)
    result = salvage_container(corrupted)
    total_codes = sum(e[3] for e in _entries(container))
    assert result.total_codes == total_codes
    assert result.codes_decoded < total_codes
