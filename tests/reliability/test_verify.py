"""Unit tests for staged container verification and `repro verify`."""

import pytest

from repro.container import HEADER_SIZE
from repro.reliability.inject import inject
from repro.reliability.verify import verify_container


class TestVerifyContainer:
    def test_good_container_passes(self, campaign_container, campaign_original):
        report = verify_container(campaign_container, campaign_original)
        assert report.ok
        assert report.exit_code == 0
        assert report.recognised
        names = [check.name for check in report.checks]
        assert names == [
            "header",
            "header-crc",
            "payload-crc",
            "decode",
            "stream-digest",
            "coverage",
        ]
        assert "PASS" in report.describe()

    def test_coverage_stage_optional(self, campaign_container):
        report = verify_container(campaign_container)
        assert report.ok
        assert all(check.name != "coverage" for check in report.checks)

    def test_bad_magic_not_recognised(self, campaign_container):
        report = verify_container(b"JUNK" + campaign_container[4:])
        assert not report.ok
        assert not report.recognised
        assert report.exit_code == 3

    def test_truncated_header_not_recognised(self, campaign_container):
        report = verify_container(campaign_container[:3])
        assert report.exit_code == 3

    def test_payload_bitflip_fails_integrity(self, campaign_container):
        corrupted = bytearray(campaign_container)
        corrupted[-1] ^= 0x01
        report = verify_container(bytes(corrupted))
        assert not report.ok
        assert report.exit_code == 4
        failed = {check.name for check in report.checks if not check.ok}
        assert "payload-crc" in failed

    def test_header_bitflip_fails_header_crc(self, campaign_container):
        corrupted = bytearray(campaign_container)
        corrupted[14] ^= 0x40  # original_bits field
        report = verify_container(bytes(corrupted))
        assert report.exit_code == 4
        failed = {check.name for check in report.checks if not check.ok}
        assert "header-crc" in failed

    def test_crc_tamper_fails_stream_digest(
        self, campaign_container, campaign_original
    ):
        for seed in range(10):
            corrupted = inject(campaign_container, "crc_tamper", seed)
            report = verify_container(corrupted, campaign_original)
            assert not report.ok, f"seed {seed} slipped through"
            assert report.exit_code == 4
            failed = {check.name for check in report.checks if not check.ok}
            # Either the decode chokes on the tampered codes or the
            # digest/coverage stages catch the altered content.
            assert failed & {"decode", "stream-digest", "coverage"}

    def test_wrong_reference_fails_coverage(self, campaign_container):
        from repro.bitstream import TernaryVector

        wrong = TernaryVector("1" * 600)
        report = verify_container(campaign_container, wrong)
        failed = {check.name for check in report.checks if not check.ok}
        assert failed == {"coverage"}
        assert report.exit_code == 4

    def test_truncated_payload_fails_integrity(self, campaign_container):
        report = verify_container(campaign_container[: HEADER_SIZE + 5])
        assert report.recognised
        assert report.exit_code == 4


class TestVerifyCli:
    @pytest.fixture
    def container_file(self, tmp_path, campaign_container):
        path = tmp_path / "good.lzwt"
        path.write_bytes(campaign_container)
        return path

    def test_good_container_exit_0(self, container_file, capsys):
        from repro.cli import main

        assert main(["verify", str(container_file)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_missing_file_exit_3(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["verify", str(tmp_path / "nope.lzwt")]) == 3
        assert "repro:" in capsys.readouterr().err

    def test_bad_magic_exit_3(self, tmp_path, campaign_container, capsys):
        from repro.cli import main

        path = tmp_path / "junk.lzwt"
        path.write_bytes(b"JUNK" + campaign_container[4:])
        assert main(["verify", str(path)]) == 3
        assert "FAIL" in capsys.readouterr().out

    def test_bitflip_exit_4(self, tmp_path, campaign_container, capsys):
        from repro.cli import main

        corrupted = bytearray(campaign_container)
        corrupted[-1] ^= 0x01
        path = tmp_path / "flip.lzwt"
        path.write_bytes(bytes(corrupted))
        assert main(["verify", str(path)]) == 4
        assert "FAIL" in capsys.readouterr().out

    def test_truncated_exit_4(self, tmp_path, campaign_container):
        from repro.cli import main

        path = tmp_path / "cut.lzwt"
        path.write_bytes(campaign_container[: HEADER_SIZE + 5])
        assert main(["verify", str(path)]) == 4

    def test_against_reference(
        self, container_file, tmp_path, campaign_original, capsys
    ):
        from repro.cli import main

        cubes = tmp_path / "cubes.test"
        cubes.write_text(str(campaign_original) + "\n")
        assert main(["verify", str(container_file), "--against", str(cubes)]) == 0
        assert "coverage" in capsys.readouterr().out

    def test_against_wrong_reference_exit_4(
        self, container_file, tmp_path, capsys
    ):
        from repro.cli import main

        cubes = tmp_path / "wrong.test"
        cubes.write_text("1" * 600 + "\n")
        assert main(["verify", str(container_file), "--against", str(cubes)]) == 4
