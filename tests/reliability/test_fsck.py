"""The unified deep-scan/repair tool, `repro fsck`.

Covers artefact-kind detection, the clean path (byte-neutrality — fsck
must never churn a healthy artefact), every repair policy (v5 frame
rebuild, journal tail trim, tmp sweep, cache scrub/quarantine), typed
refusals for the unrepairable, and the CLI surface with its exit-code
contract (0 clean/repaired, 3 only-unknowns, 4 faults remain).
"""

import io
import json
import zlib

import pytest

from repro.container import dump_bytes
from repro.core import compress
from repro.core.stream import StreamEncoder
from repro.fleet.cache import ResultCache
from repro.parallel.engine import ShardResult
from repro.parallel.journal import ShardJournal
from repro.reliability.fsck import FsckReport, detect_kind, fsck_paths
from repro.reliability.verify import verify_container
from repro.streamio import StreamContainerWriter, decode_stream_bytes

FIXDIR = "tests/fixtures/containers"
FIXTURES = ["v1.lzwt", "v2.lzwt", "v3.lzwt", "v4.lzwt", "v5.lzwt", "dict.lzws"]


def v5_bytes(config, original, codes_per_frame=8):
    encoder = StreamEncoder(config)
    sink = io.BytesIO()
    writer = StreamContainerWriter(config, sink, codes_per_frame=codes_per_frame)
    writer.write_codes(encoder.feed(original))
    writer.finalize(encoder.finalize(), encoder.original_bits)
    return sink.getvalue()


class TestDetectKind:
    def test_containers_by_version_byte(self, tmp_path, campaign_container):
        assert detect_kind(tmp_path / "a.lzwt", campaign_container) == "container-v2"

    def test_snapshot_tmp_entry_and_quarantine(self, tmp_path):
        assert detect_kind(tmp_path / "d.lzws", b"LZWSxxxx") == "snapshot"
        assert detect_kind(tmp_path / "a.lzwt.tmp.12.0", b"LZWT") == "tmp"
        assert detect_kind(tmp_path / "ab.entry", b"{}") == "cache-entry"
        assert (
            detect_kind(tmp_path / "x.lzwt.quarantine", b"LZWT") == "quarantine"
        )

    def test_journal_and_report(self, tmp_path):
        header = json.dumps({"kind": "header", "version": 2, "fingerprint": "ab"})
        assert detect_kind(tmp_path / "b.ckpt", header.encode() + b"\n") == "journal"
        assert detect_kind(tmp_path / "m.json", b'{"a": 1}') == "report"

    def test_garbage_is_unknown(self, tmp_path):
        assert detect_kind(tmp_path / "x", b"\x00\x01") == "unknown"
        assert detect_kind(tmp_path / "x", b"") == "unknown"


class TestCleanPath:
    def test_committed_fixtures_classify_clean(self):
        report = fsck_paths([f"{FIXDIR}/{name}" for name in FIXTURES])
        assert report.ok
        assert report.exit_code == 0
        assert all(item.status == "clean" for item in report.items)

    def test_repair_is_byte_neutral_on_clean_artefacts(self, tmp_path):
        import shutil

        for name in FIXTURES:
            shutil.copy(f"{FIXDIR}/{name}", tmp_path / name)
        before = {name: (tmp_path / name).read_bytes() for name in FIXTURES}
        report = fsck_paths([tmp_path], repair=True)
        assert report.ok
        assert all(item.churned == 0 for item in report.items)
        after = {name: (tmp_path / name).read_bytes() for name in FIXTURES}
        assert before == after

    def test_clean_journal(self, tmp_path, campaign_config, campaign_original):
        result = compress(campaign_original, campaign_config)
        journal = ShardJournal.open(tmp_path / "b.ckpt", "fp-1")
        journal.record(
            0,
            0,
            ShardResult(
                index=0,
                compressed=result.compressed,
                assigned_stream=result.assigned_stream,
                stats=result.stats,
            ),
        )
        journal.close()
        report = fsck_paths([tmp_path / "b.ckpt"])
        assert report.ok and report.items[0].status == "clean"


class TestV5Repair:
    def test_torn_tail_is_salvageable_then_repaired(
        self, tmp_path, campaign_config, campaign_original
    ):
        full = v5_bytes(campaign_config, campaign_original)
        torn = full[: int(len(full) * 0.6)]
        target = tmp_path / "stream.lzwt"
        target.write_bytes(torn)

        dry = fsck_paths([target])
        assert dry.exit_code == 4
        assert dry.items[0].status == "salvageable"
        assert target.read_bytes() == torn  # dry run never mutates

        wet = fsck_paths([target], repair=True)
        assert wet.exit_code == 0
        assert wet.items[0].status == "repaired"
        repaired = target.read_bytes()
        assert verify_container(repaired).ok
        prefix = decode_stream_bytes(repaired)
        reference = decode_stream_bytes(full)[: len(prefix)]
        assert prefix.value_mask == reference.value_mask
        assert prefix.care_mask == reference.care_mask
        # The damaged original is kept for forensics.
        assert (tmp_path / "stream.lzwt.quarantine").read_bytes() == torn

    def test_repaired_artefact_rescans_clean(
        self, tmp_path, campaign_config, campaign_original
    ):
        full = v5_bytes(campaign_config, campaign_original)
        target = tmp_path / "stream.lzwt"
        target.write_bytes(full[:-10])
        fsck_paths([target], repair=True)
        again = fsck_paths([target])
        assert again.ok and again.items[0].status == "clean"

    def test_unparseable_stub_quarantined_under_repair(self, tmp_path):
        target = tmp_path / "stub.lzwt"
        target.write_bytes(b"LZWT\x05\x00\x00\x00\x01")  # 9-byte torn header
        dry = fsck_paths([target])
        assert dry.items[0].status in ("corrupt", "refused")
        wet = fsck_paths([target], repair=True)
        assert wet.exit_code == 0
        assert not target.exists()
        assert (tmp_path / "stub.lzwt.quarantine").exists()


class TestRefusals:
    def test_corrupt_v2_is_a_typed_refusal(self, tmp_path, campaign_container):
        # Flip payload bytes: v2 has no redundancy, fsck must refuse
        # to fabricate data (and must not touch the file).
        damaged = bytearray(campaign_container)
        damaged[-4] ^= 0xFF
        target = tmp_path / "bad.lzwt"
        target.write_bytes(bytes(damaged))
        report = fsck_paths([target], repair=True)
        assert report.exit_code == 4
        item = report.items[0]
        assert item.status == "refused"
        assert "salvage" in item.detail
        assert target.read_bytes() == bytes(damaged)


class TestJournalRepair:
    def _journal(self, tmp_path, campaign_config, campaign_original):
        result = compress(campaign_original, campaign_config)
        journal = ShardJournal.open(tmp_path / "b.ckpt", "fp-1")
        for shard in range(2):
            journal.record(
                0,
                shard,
                ShardResult(
                    index=shard,
                    compressed=result.compressed,
                    assigned_stream=result.assigned_stream,
                    stats=result.stats,
                ),
            )
        journal.close()
        return tmp_path / "b.ckpt"

    def test_torn_tail_trimmed(self, tmp_path, campaign_config, campaign_original):
        path = self._journal(tmp_path, campaign_config, campaign_original)
        data = path.read_bytes()
        path.write_bytes(data[:-7])  # tear the last entry mid-line
        report = fsck_paths([path], repair=True)
        assert report.items[0].status == "repaired"
        # The trimmed journal resumes and replays the surviving entry.
        journal = ShardJournal.open(path, "fp-1", resume=True)
        assert len(journal.completed) == 1
        journal.close()


class TestCacheScrub:
    def _cache(self, tmp_path, campaign_config, campaign_original):
        result = compress(campaign_original, campaign_config)
        container = dump_bytes(result.compressed, result.assigned_stream)
        cache = ResultCache(tmp_path / "cache")
        for fp_seed in ("00aa", "11bb", "22cc"):
            fp = fp_seed * 16
            cache.put(fp, {"op": "compress"}, container)
        return cache

    def test_scrub_counts_clean(self, tmp_path, campaign_config, campaign_original):
        cache = self._cache(tmp_path, campaign_config, campaign_original)
        stats = cache.scrub()
        assert stats == {
            "scanned": 3, "clean": 3, "corrupt": 0,
            "quarantined": 0, "stale_tmp": 0,
        }

    def test_scrub_quarantines_corrupt_entry(
        self, tmp_path, campaign_config, campaign_original
    ):
        cache = self._cache(tmp_path, campaign_config, campaign_original)
        victim = sorted((tmp_path / "cache").glob("*/*.entry"))[0]
        victim.write_bytes(victim.read_bytes()[:-5])

        dry = cache.scrub()
        assert dry["corrupt"] == 1 and dry["quarantined"] == 0
        assert victim.exists()  # dry run never mutates

        wet = cache.scrub(repair=True)
        assert wet["quarantined"] == 1
        assert not victim.exists()
        assert victim.with_name(victim.name + ".quarantine").exists()
        # The quarantined entry is invisible to get(): a miss, never
        # corrupt bytes.
        fingerprint = victim.name[: -len(".entry")]
        assert cache.get(fingerprint) is None

    def test_scrub_sweeps_stale_tmp(
        self, tmp_path, campaign_config, campaign_original
    ):
        cache = self._cache(tmp_path, campaign_config, campaign_original)
        stale = tmp_path / "cache" / "00" / "x.entry.tmp.999.0"
        stale.write_bytes(b"half-written")
        stats = cache.scrub(repair=True)
        assert stats["stale_tmp"] == 1
        assert not stale.exists()

    def test_fsck_scrub_flag_routes_to_cache(
        self, tmp_path, campaign_config, campaign_original
    ):
        self._cache(tmp_path, campaign_config, campaign_original)
        report = fsck_paths([tmp_path / "cache"], scrub=True)
        assert report.ok
        stats = next(iter(report.scrub_stats.values()))
        assert stats["scanned"] == 3


class TestTmpSweep:
    def test_stale_tmp_swept_only_under_repair(self, tmp_path, campaign_container):
        (tmp_path / "art.lzwt").write_bytes(campaign_container)
        stale = tmp_path / "art.lzwt.tmp.4242.7"
        stale.write_bytes(campaign_container[:11])

        dry = fsck_paths([tmp_path])
        assert dry.exit_code == 4
        assert any(item.status == "stale_tmp" for item in dry.items)
        assert stale.exists()

        wet = fsck_paths([tmp_path], repair=True)
        assert wet.exit_code == 0
        assert any(item.status == "swept" for item in wet.items)
        assert not stale.exists()


class TestReportAndCli:
    def test_json_report_shape(self, tmp_path, campaign_container):
        (tmp_path / "art.lzwt").write_bytes(campaign_container)
        report = fsck_paths([tmp_path])
        payload = report.to_json()
        assert payload["schema"] == "repro.fsck/1"
        assert payload["ok"] is True
        assert payload["exit_code"] == 0
        assert payload["items"][0]["kind"] == "container-v2"

    def test_missing_path_is_unreadable(self, tmp_path):
        report = fsck_paths([tmp_path / "nope.lzwt"])
        assert report.items[0].status == "unreadable"
        assert report.exit_code == 3

    def test_cli_exit_codes(self, tmp_path, campaign_container, capsys):
        from repro.cli import main

        clean = tmp_path / "art.lzwt"
        clean.write_bytes(campaign_container)
        assert main(["fsck", str(clean)]) == 0

        stale = tmp_path / "art.lzwt.tmp.1.2"
        stale.write_bytes(b"junk")
        assert main(["fsck", str(tmp_path)]) == 4
        assert main(["fsck", str(tmp_path), "--repair"]) == 0
        assert not stale.exists()
        capsys.readouterr()

    def test_cli_json_report(self, tmp_path, campaign_container, capsys):
        from repro.cli import main

        target = tmp_path / "art.lzwt"
        target.write_bytes(campaign_container)
        out = tmp_path / "FSCK_report.json"
        assert main(["fsck", str(target), "--json", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro.fsck/1"
        capsys.readouterr()
