"""Chaos drills: injected process faults against the supervised batch.

The contract under test is the engine's zero-silent-corruption
guarantee: under worker exceptions, SIGKILL, hangs and corrupt results,
a batch either completes with containers **byte-identical to the
unfaulted serial run** (the retry / degrade paths healed it) or fails
loudly with a typed :class:`ShardError` — never silently different
bytes.  Faults are deterministic functions of ``(fault, seed)`` so any
failure here reproduces exactly.
"""

import random

import pytest

from repro.bitstream import TernaryVector
from repro.core import LZWConfig
from repro.observability import (
    CompositeRecorder,
    CounterRecorder,
    SpanRecorder,
    metrics_snapshot,
)
from repro.observability import schema as ev
from repro.parallel import RetryPolicy, compress_batch
from repro.reliability import ShardError
from repro.reliability.campaign import (
    TrialOutcome,
    run_process_campaign,
    run_process_trial,
)
from repro.reliability.chaos import PROCESS_FAULTS, ChaosPlan, InjectedWorkerError

CONFIG = LZWConfig(char_bits=4, dict_size=64, entry_bits=20)

#: Retries with no real waiting, so drills stay fast.
FAST_RETRIES = RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0)


@pytest.fixture(scope="module")
def streams():
    rng = random.Random(20030306)
    return [
        TernaryVector.random(500, x_density=0.7, rng=rng),
        TernaryVector.random(350, x_density=0.4, rng=rng),
    ]


@pytest.fixture(scope="module")
def reference(streams):
    """The unfaulted serial run — the byte oracle for every drill."""
    return [
        item.container
        for item in compress_batch(CONFIG, streams, workers=1, shard_bits=150)
    ]


def counters(rec):
    return metrics_snapshot(rec)["counters"]


class TestChaosPlan:
    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError):
            ChaosPlan("meteor")

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ChaosPlan("exception", rate=1.5)

    def test_targeting_is_deterministic(self):
        plan = ChaosPlan("exception", seed=3, rate=0.5)
        first = [plan.targets(w, s) for w in range(4) for s in range(4)]
        second = [plan.targets(w, s) for w in range(4) for s in range(4)]
        assert first == second
        assert any(first) and not all(first)

    def test_fault_clears_after_attempts(self, streams):
        plan = ChaosPlan("exception", seed=0, rate=1.0, attempts=1)
        with pytest.raises(InjectedWorkerError):
            plan.apply(0, 0, 0, streams[0])
        assert plan.apply(0, 0, 1, streams[0]) == streams[0]

    def test_corrupt_flips_exactly_one_care_bit(self, streams):
        plan = ChaosPlan("corrupt", seed=5, rate=1.0)
        stream = streams[0]
        corrupted = plan.apply(0, 0, 0, stream)
        diffs = [
            i
            for i in range(len(stream))
            if stream[i] is not None and corrupted[i] != stream[i]
        ]
        assert len(diffs) == 1
        assert len(corrupted) == len(stream)
        # Deterministic: same (fault, seed, key) -> same corruption.
        assert plan.apply(0, 0, 0, stream) == corrupted

    def test_corrupt_leaves_all_x_stream_alone(self):
        all_x = TernaryVector("X" * 32)
        plan = ChaosPlan("corrupt", seed=1, rate=1.0)
        assert plan.apply(0, 0, 0, all_x) == all_x


class TestInlineFaultRecovery:
    def test_worker_exception_healed_by_retry(self, streams, reference):
        rec = CompositeRecorder([CounterRecorder(), SpanRecorder()])
        items = compress_batch(
            CONFIG,
            streams,
            workers=1,
            shard_bits=150,
            chaos=ChaosPlan("exception", seed=1, rate=1.0),
            retry_policy=FAST_RETRIES,
            recorder=rec,
        )
        assert [item.container for item in items] == reference
        assert counters(rec)[ev.BATCH_RETRIES] > 0

    def test_corrupt_result_caught_by_validation_and_healed(
        self, streams, reference
    ):
        # The poisoned result is well-formed; only the supervisor's
        # covers-the-input validation can notice.  It must, and the
        # clean retry must win.
        rec = CompositeRecorder([CounterRecorder(), SpanRecorder()])
        items = compress_batch(
            CONFIG,
            streams,
            workers=1,
            shard_bits=150,
            chaos=ChaosPlan("corrupt", seed=2, rate=1.0),
            retry_policy=FAST_RETRIES,
            recorder=rec,
        )
        assert [item.container for item in items] == reference
        assert counters(rec)[ev.BATCH_RETRIES] > 0

    def test_hang_healed_by_shard_timeout(self, streams, reference):
        rec = CompositeRecorder([CounterRecorder(), SpanRecorder()])
        items = compress_batch(
            CONFIG,
            streams,
            workers=1,
            shard_bits=150,
            chaos=ChaosPlan("hang", seed=3, rate=0.4, hang_seconds=30.0),
            retry_policy=FAST_RETRIES,
            shard_timeout=0.5,
            recorder=rec,
        )
        assert [item.container for item in items] == reference
        assert counters(rec)[ev.BATCH_TIMEOUTS] > 0

    def test_persistent_fault_fail_policy_raises_typed(self, streams):
        with pytest.raises(ShardError) as excinfo:
            compress_batch(
                CONFIG,
                streams,
                workers=1,
                shard_bits=150,
                chaos=ChaosPlan("exception", seed=4, rate=1.0, attempts=99),
                retry_policy=RetryPolicy(
                    max_attempts=2, backoff_base=0.0, jitter=0.0
                ),
            )
        assert excinfo.value.exit_code == 5

    def test_persistent_fault_skip_policy_surfaces_errors(self, streams):
        items = compress_batch(
            CONFIG,
            streams,
            workers=1,
            shard_bits=150,
            chaos=ChaosPlan("exception", seed=4, rate=1.0, attempts=99),
            retry_policy=RetryPolicy(max_attempts=2, backoff_base=0.0, jitter=0.0),
            on_failure="skip",
        )
        for item in items:
            assert not item.ok
            assert item.container is None
            assert all(isinstance(e, ShardError) for e in item.errors)

    def test_skip_policy_keeps_untargeted_workloads_intact(
        self, streams, reference
    ):
        # Find a seed whose 40% targeting rate hits some shards of one
        # workload but none of the other — deterministic scan, no clock.
        plan = None
        for seed in range(64):
            candidate = ChaosPlan("exception", seed=seed, rate=0.4, attempts=99)
            hit = [
                any(candidate.targets(w, s) for s in range(4)) for w in range(2)
            ]
            if hit == [True, False]:
                plan = candidate
                break
        assert plan is not None, "no seed with the needed targeting in 64 tries"
        items = compress_batch(
            CONFIG,
            streams,
            workers=1,
            shard_bits=150,
            chaos=plan,
            retry_policy=RetryPolicy(max_attempts=2, backoff_base=0.0, jitter=0.0),
            on_failure="skip",
        )
        assert not items[0].ok
        assert items[1].ok
        assert items[1].container == reference[1]

    def test_persistent_corrupt_never_silent(self, streams):
        # Even when every retry is poisoned, the result must be a typed
        # failure — a corrupted container must never be returned as ok.
        items = compress_batch(
            CONFIG,
            streams,
            workers=1,
            shard_bits=150,
            chaos=ChaosPlan("corrupt", seed=6, rate=1.0, attempts=99),
            retry_policy=RetryPolicy(max_attempts=2, backoff_base=0.0, jitter=0.0),
            on_failure="skip",
        )
        for item in items:
            assert not item.ok
            assert item.container is None
            assert all(e.diagnostics.get("kind") == "invalid" for e in item.errors)


class TestPooledFaultRecovery:
    def test_sigkill_healed_by_pool_respawn(self, streams, reference):
        rec = CompositeRecorder([CounterRecorder(), SpanRecorder()])
        items = compress_batch(
            CONFIG,
            streams,
            workers=2,
            shard_bits=150,
            chaos=ChaosPlan("kill", seed=5, rate=0.5),
            retry_policy=FAST_RETRIES,
            recorder=rec,
        )
        assert [item.container for item in items] == reference
        assert counters(rec)[ev.BATCH_WORKER_CRASHES] >= 1

    def test_pooled_hang_healed_by_worker_alarm(self, streams, reference):
        rec = CompositeRecorder([CounterRecorder(), SpanRecorder()])
        items = compress_batch(
            CONFIG,
            streams,
            workers=2,
            shard_bits=150,
            chaos=ChaosPlan("hang", seed=6, rate=0.4, hang_seconds=30.0),
            retry_policy=FAST_RETRIES,
            shard_timeout=1.0,
            recorder=rec,
        )
        assert [item.container for item in items] == reference
        assert counters(rec)[ev.BATCH_TIMEOUTS] > 0


class TestCheckpointUnderFaults:
    def test_aborted_batch_resumes_to_identical_bytes(
        self, tmp_path, streams, reference
    ):
        # A persistent fault aborts the run partway; completed shards
        # are already journaled.  The resumed clean run must reproduce
        # the uninterrupted run's bytes exactly.
        path = tmp_path / "ck.jsonl"
        plan = None
        for seed in range(64):
            candidate = ChaosPlan("exception", seed=seed, rate=0.3, attempts=99)
            hits = [
                candidate.targets(w, s) for w in range(2) for s in range(3)
            ]
            if any(hits) and not hits[0]:
                plan = candidate
                break
        assert plan is not None
        with pytest.raises(ShardError):
            compress_batch(
                CONFIG,
                streams,
                workers=1,
                shard_bits=150,
                chaos=plan,
                retry_policy=RetryPolicy(
                    max_attempts=1, backoff_base=0.0, jitter=0.0
                ),
                checkpoint=path,
            )
        journaled = len(path.read_text().splitlines()) - 1  # minus header
        assert journaled >= 1
        rec = CompositeRecorder([CounterRecorder(), SpanRecorder()])
        items = compress_batch(
            CONFIG,
            streams,
            workers=1,
            shard_bits=150,
            checkpoint=path,
            resume=True,
            recorder=rec,
        )
        assert [item.container for item in items] == reference
        assert counters(rec)[ev.BATCH_JOURNAL_HITS] == journaled

    def test_kill_run_with_checkpoint_then_resume(
        self, tmp_path, streams, reference
    ):
        path = tmp_path / "ck.jsonl"
        items = compress_batch(
            CONFIG,
            streams,
            workers=2,
            shard_bits=150,
            chaos=ChaosPlan("kill", seed=7, rate=0.5),
            retry_policy=FAST_RETRIES,
            checkpoint=path,
        )
        assert [item.container for item in items] == reference
        resumed = compress_batch(
            CONFIG,
            streams,
            workers=1,
            shard_bits=150,
            checkpoint=path,
            resume=True,
        )
        assert [item.container for item in resumed] == reference


class TestProcessCampaign:
    def test_inline_faults_all_heal(self, streams):
        result = run_process_campaign(
            CONFIG,
            streams,
            faults=("exception", "corrupt"),
            seeds=range(3),
            shard_bits=150,
            retry_policy=FAST_RETRIES,
        )
        assert result.ok, result.summary()
        assert all(t.outcome is TrialOutcome.CORRECT for t in result.trials)

    def test_exhausted_retries_classified_detected(self, streams, reference):
        trial = run_process_trial(
            CONFIG,
            streams,
            reference,
            "exception",
            0,
            shard_bits=150,
            rate=1.0,
            retry_policy=RetryPolicy(max_attempts=1, backoff_base=0.0, jitter=0.0),
            on_failure="skip",
        )
        assert trial.outcome is TrialOutcome.DETECTED

    def test_fail_policy_abort_classified_detected(self, streams, reference):
        trial = run_process_trial(
            CONFIG,
            streams,
            reference,
            "exception",
            0,
            shard_bits=150,
            rate=1.0,
            retry_policy=RetryPolicy(max_attempts=1, backoff_base=0.0, jitter=0.0),
            on_failure="fail",
        )
        assert trial.outcome is TrialOutcome.DETECTED

    def test_report_is_json_serializable(self, streams):
        import json

        result = run_process_campaign(
            CONFIG,
            streams,
            faults=("exception",),
            seeds=range(2),
            shard_bits=150,
            retry_policy=FAST_RETRIES,
        )
        report = json.loads(json.dumps(result.to_json()))
        assert report["ok"] is True
        assert len(report["trials"]) == 2

    def test_all_fault_classes_registered(self):
        assert PROCESS_FAULTS == ("exception", "kill", "hang", "corrupt")
