"""The crash-point injection harness, tested against itself.

Two kinds of coverage live here: the simulator's own semantics (what a
power cut at each boundary leaves durable under every survival ×
metadata combination), and the campaign runner's classification of
writers against their contracts — including an intentionally broken
writer that the harness must catch, proving the campaign can fail.
"""

import errno
import os

import pytest

from repro.reliability.atomic import (
    DurableAppendFile,
    atomic_write_bytes,
    current_backend,
    use_backend,
)
from repro.reliability.crashsim import (
    BAD_OUTCOMES,
    CrashFS,
    CrashWriterSpec,
    SimulatedCrash,
    campaign_report,
    run_crash_campaign,
)
from repro.reliability.errors import ContainerError, ReproError


# -- simulator semantics ----------------------------------------------


def write_all(fs, path, data, mode="wb"):
    handle = fs.open(path, mode)
    handle.write(data)
    handle.flush()
    fs.fsync(handle)
    handle.close()


class TestCrashFS:
    def test_completed_write_is_durable_after_dir_sync(self, tmp_path):
        fs = CrashFS()
        target = str(tmp_path / "a.bin")
        write_all(fs, target, b"hello")
        fs.fsync_dir(str(tmp_path))
        state = fs.materialize("none", "lost")
        assert state == {target: b"hello"}

    def test_unsynced_bytes_lost_without_fsync(self, tmp_path):
        fs = CrashFS()
        target = str(tmp_path / "a.bin")
        handle = fs.open(target, "wb")
        handle.write(b"hello")
        handle.flush()  # page cache, not disk
        fs.fsync_dir(str(tmp_path))
        assert fs.materialize("none", "kept")[target] == b""
        assert fs.materialize("half", "kept")[target] == b"he"
        assert fs.materialize("all", "kept")[target] == b"hello"

    def test_file_fsync_does_not_persist_directory_entry(self, tmp_path):
        # Strict POSIX: fsync(file) makes the *bytes* durable, but a
        # freshly-created name needs fsync(dir) or it can vanish.
        fs = CrashFS()
        target = str(tmp_path / "a.bin")
        write_all(fs, target, b"hello")
        assert fs.materialize("none", "lost") == {}
        assert fs.materialize("none", "kept") == {target: b"hello"}

    def test_rename_lost_restores_old_destination(self, tmp_path):
        fs = CrashFS()
        old = str(tmp_path / "art")
        tmp = str(tmp_path / "art.tmp.1")
        fs_state = {old: b"old"}
        fs = CrashFS(initial=fs_state)
        write_all(fs, tmp, b"new")
        fs.replace(tmp, old)
        lost = fs.materialize("none", "lost")
        assert lost[old] == b"old"
        kept = fs.materialize("none", "kept")
        assert kept[old] == b"new"
        assert tmp not in kept

    def test_crash_after_freezes_the_simulation(self, tmp_path):
        fs = CrashFS(crash_after=2)
        target = str(tmp_path / "a.bin")
        handle = fs.open(target, "wb")
        handle.write(b"x")
        with pytest.raises(SimulatedCrash):
            handle.write(b"y")
        # Post-crash the simulated machine is off: every op raises.
        with pytest.raises(SimulatedCrash):
            fs.open(str(tmp_path / "b.bin"), "wb")

    def test_fail_at_raises_errno_once(self, tmp_path):
        fs = CrashFS(fail_at=1, fail_errno=errno.ENOSPC)
        target = str(tmp_path / "a.bin")
        handle = fs.open(target, "wb")
        with pytest.raises(OSError) as excinfo:
            handle.write(b"x")
        assert excinfo.value.errno == errno.ENOSPC
        handle.write(b"x")  # the device recovered; only op 1 fails

    def test_backend_seam_round_trip(self, tmp_path):
        # atomic_write_bytes runs entirely inside the simulator: the
        # real filesystem never sees the file.
        fs = CrashFS()
        target = tmp_path / "real.bin"
        with use_backend(fs):
            atomic_write_bytes(target, b"payload")
        assert not target.exists()
        state = fs.materialize("none", "lost")
        assert state[str(target)] == b"payload"
        assert current_backend() is not fs


# -- campaign classification ------------------------------------------


def atomic_spec(tmp_path, payload=b"new-bytes", old=None):
    def setup(root):
        return {} if old is None else {"art.bin": old}

    def write(root):
        atomic_write_bytes(root / "art.bin", payload)

    def recover(root):
        target = root / "art.bin"
        if not target.exists():
            return "silent:lost" if old is not None else "absent"
        data = target.read_bytes()
        if data == payload:
            return "new"
        if old is not None and data == old:
            return "old"
        return "silent:torn"

    return CrashWriterSpec(
        name="atomic", write=write, recover=recover, setup=setup
    )


class TestRunCrashCampaign:
    def test_atomic_writer_is_old_or_new(self, tmp_path):
        result = run_crash_campaign(
            atomic_spec(tmp_path, old=b"old-bytes"), tmp_path
        )
        assert result.ok, result.failures()
        counts = result.outcome_counts
        assert counts.get("new") and counts.get("old")
        assert "silent" not in counts and "escaped" not in counts

    def test_torn_writer_is_caught(self, tmp_path):
        # A writer that skips the tmp+rename dance MUST produce torn
        # states the harness flags — this is the campaign's own smoke
        # detector.
        def write(root):
            fs = current_backend()
            handle = fs.open(str(root / "art.bin"), "wb")
            handle.write(b"0" * 64)
            handle.write(b"1" * 64)
            handle.close()
            fs.fsync_dir(str(root))

        def recover(root):
            target = root / "art.bin"
            if not target.exists():
                return "absent"
            data = target.read_bytes()
            if data in (b"", b"0" * 64 + b"1" * 64):
                return "empty-or-new"
            return "silent:torn"

        result = run_crash_campaign(
            CrashWriterSpec(name="torn", write=write, recover=recover),
            tmp_path,
        )
        assert not result.ok
        assert any(
            trial.outcome.startswith("silent") for trial in result.failures()
        )

    def test_untyped_enospc_is_escaped(self, tmp_path):
        # A writer that lets the raw OSError out of the ENOSPC arm is
        # flagged: callers were promised typed errors.
        def write(root):
            fs = current_backend()
            handle = fs.open(str(root / "art.bin"), "wb")
            handle.write(b"payload")  # no try/except: OSError escapes
            handle.close()

        def recover(root):
            return "any"

        result = run_crash_campaign(
            CrashWriterSpec(name="untyped", write=write, recover=recover),
            tmp_path,
        )
        assert any(
            trial.outcome.startswith("escaped") for trial in result.trials
        )
        assert not result.ok

    def test_recovery_exceptions_are_escaped_not_fatal(self, tmp_path):
        def recover(root):
            raise RuntimeError("recovery is broken")

        spec = atomic_spec(tmp_path)
        broken = CrashWriterSpec(
            name="broken-recovery", write=spec.write, recover=recover
        )
        result = run_crash_campaign(broken, tmp_path)
        assert not result.ok
        assert all(
            trial.outcome.startswith("escaped") for trial in result.trials
        )

    def test_states_are_deduplicated(self, tmp_path):
        result = run_crash_campaign(atomic_spec(tmp_path), tmp_path)
        # 45 crash points collapse to ~11 distinct durable states;
        # recovery ran once per state, not once per point.
        assert result.unique_states < result.points_enumerated / 2

    def test_report_shape(self, tmp_path):
        result = run_crash_campaign(atomic_spec(tmp_path), tmp_path)
        report = campaign_report([result])
        assert report["schema"] == "repro.durability/1"
        assert report["ok"] is True
        assert report["totals"]["points"] == result.points_enumerated
        writer = report["writers"][0]
        assert writer["writer"] == "atomic"
        assert writer["failures"] == []


# -- satellite: DurableAppendFile.close never leaks the handle --------


class TestDurableCloseNoLeak:
    def test_close_failure_still_closes_handle(self, tmp_path):
        # Arrange an ENOSPC exactly at the close-time fsync: close()
        # must re-raise typed AND still release the handle.
        fs = CrashFS()
        target = tmp_path / "journal.bin"
        with use_backend(fs):
            sink = DurableAppendFile(target)
            sink.write(b"frame")
            ops_so_far = len(fs.trace)
        fs.fail_at = ops_so_far + 1  # open succeeded; fail the next fsync
        with use_backend(fs):
            with pytest.raises(ReproError):
                sink.close(sync=True)
        handle_closes = [op for op in fs.trace if op.startswith("close:")]
        assert handle_closes, "close() leaked the file handle"

    def test_typed_error_carries_path(self, tmp_path):
        fs = CrashFS(fail_at=3, fail_errno=errno.ENOSPC)
        target = tmp_path / "art.bin"
        with use_backend(fs):
            with pytest.raises(ContainerError) as excinfo:
                atomic_write_bytes(target, b"payload")
        assert str(target) in str(excinfo.value)
