"""Admission queue shed/close semantics and the token-bucket limiter."""

import threading

import pytest

from repro.reliability.errors import ConfigError, OverloadError
from repro.service.admission import AdmissionQueue, RateLimiter


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def test_queue_rejects_bad_capacity():
    with pytest.raises(ConfigError):
        AdmissionQueue(0)


def test_fifo_order_preserved():
    queue = AdmissionQueue(4)
    for item in ("a", "b", "c"):
        queue.submit(item)
    assert [queue.take(0) for _ in range(3)] == ["a", "b", "c"]


def test_full_queue_sheds_with_typed_error():
    queue = AdmissionQueue(2)
    queue.submit(1)
    queue.submit(2)
    with pytest.raises(OverloadError) as info:
        queue.submit(3)
    assert info.value.reason == "queue_full"
    assert info.value.depth == 2
    assert info.value.capacity == 2
    # Shedding never blocks and never loses the queued work.
    assert queue.depth == 2


def test_take_times_out_with_none():
    queue = AdmissionQueue(1)
    assert queue.take(timeout=0.01) is None


def test_closed_queue_rejects_with_draining_reason():
    queue = AdmissionQueue(2)
    queue.close()
    with pytest.raises(OverloadError) as info:
        queue.submit(1)
    assert info.value.reason == "draining"


def test_close_flushes_pending_items_for_shed_replies():
    queue = AdmissionQueue(4)
    queue.submit("x")
    queue.submit("y")
    pending = queue.close()
    assert pending == ["x", "y"]
    assert queue.depth == 0
    assert queue.take(0.01) is None  # closed and empty


def test_close_wakes_blocked_consumer():
    queue = AdmissionQueue(1)
    seen = []

    def consume():
        seen.append(queue.take(timeout=5.0))

    thread = threading.Thread(target=consume)
    thread.start()
    queue.close()
    thread.join(timeout=5.0)
    assert not thread.is_alive()
    assert seen == [None]


def test_rate_limiter_disabled_when_rate_none():
    limiter = RateLimiter(None)
    assert all(limiter.try_acquire("c") for _ in range(1000))


def test_rate_limiter_enforces_burst_then_refills():
    clock = FakeClock()
    limiter = RateLimiter(rate=1.0, burst=2, clock=clock)
    assert limiter.try_acquire("c")
    assert limiter.try_acquire("c")
    assert not limiter.try_acquire("c")  # burst spent
    clock.now += 1.0
    assert limiter.try_acquire("c")  # one token refilled
    assert not limiter.try_acquire("c")


def test_rate_limiter_isolates_clients():
    clock = FakeClock()
    limiter = RateLimiter(rate=1.0, burst=1, clock=clock)
    assert limiter.try_acquire("a")
    assert not limiter.try_acquire("a")
    assert limiter.try_acquire("b")  # b has its own bucket


def test_rate_limiter_prunes_idle_buckets():
    clock = FakeClock()
    limiter = RateLimiter(rate=100.0, burst=1, clock=clock)
    from repro.service import admission

    for i in range(admission._PRUNE_THRESHOLD + 10):
        limiter.try_acquire(f"client-{i}")
        clock.now += 1.0  # every earlier bucket fully refills
    assert len(limiter._buckets) <= admission._PRUNE_THRESHOLD + 10
    # The table must have shrunk below the number of clients seen.
    assert len(limiter._buckets) < admission._PRUNE_THRESHOLD
