"""Wire-protocol framing, limits and the error-to-code reply map."""

import json
import socket
import threading

import pytest

from repro.reliability.errors import (
    ConfigError,
    ContainerError,
    DeadlineError,
    OverloadError,
    ProtocolError,
    ShardError,
    TestFileError,
)
from repro.service.protocol import (
    CODE_BAD_REQUEST,
    CODE_DEADLINE,
    CODE_INTERNAL,
    CODE_PAYLOAD_TOO_LARGE,
    CODE_SHED,
    CODE_UNAVAILABLE,
    CODE_UNPROCESSABLE,
    MessageStream,
    encode_message,
    error_code,
    error_reply,
    ok_reply,
    parse_address,
)


def pair():
    """A connected socketpair wrapped as (writer socket, reader stream)."""
    a, b = socket.socketpair()
    return a, MessageStream(b)


def test_round_trip_header_and_payload():
    sender, stream = pair()
    sender.sendall(encode_message({"op": "compress", "id": 7}, b"01X0"))
    header, payload = stream.recv_message()
    assert header["op"] == "compress"
    assert header["id"] == 7
    assert header["payload_len"] == 4
    assert payload == b"01X0"


def test_messages_arrive_back_to_back():
    sender, stream = pair()
    sender.sendall(
        encode_message({"op": "ping", "id": 1})
        + encode_message({"op": "ping", "id": 2}, b"xy")
    )
    assert stream.recv_message()[0]["id"] == 1
    header, payload = stream.recv_message()
    assert header["id"] == 2
    assert payload == b"xy"


def test_clean_eof_returns_none():
    sender, stream = pair()
    sender.close()
    assert stream.recv_message() is None


def test_mid_payload_disconnect_returns_none():
    sender, stream = pair()
    message = encode_message({"op": "compress"}, b"x" * 100)
    sender.sendall(message[:-40])  # 40 payload bytes short
    sender.close()
    assert stream.recv_message() is None


def test_garbage_header_raises_bad_header():
    sender, stream = pair()
    sender.sendall(b"\x00\xffnot json at all\n")
    with pytest.raises(ProtocolError) as info:
        stream.recv_message()
    assert info.value.reason == "bad_header"


def test_non_object_header_raises_bad_header():
    sender, stream = pair()
    sender.sendall(b"[1, 2, 3]\n")
    with pytest.raises(ProtocolError) as info:
        stream.recv_message()
    assert info.value.reason == "bad_header"


def test_oversized_declared_payload_rejected_from_header_alone():
    a, b = socket.socketpair()
    stream = MessageStream(b, max_payload=1024)
    a.sendall(b'{"op": "compress", "payload_len": 1048576}\n')
    with pytest.raises(ProtocolError) as info:
        stream.recv_message()
    assert info.value.reason == "oversized"
    assert info.value.limit == 1024


def test_negative_payload_len_rejected():
    sender, stream = pair()
    sender.sendall(b'{"op": "x", "payload_len": -1}\n')
    with pytest.raises(ProtocolError) as info:
        stream.recv_message()
    assert info.value.reason == "bad_header"


def test_unterminated_header_over_limit_rejected():
    a, b = socket.socketpair()
    stream = MessageStream(b, max_header=256)
    a.sendall(b"x" * 300)  # no newline, past the cap
    with pytest.raises(ProtocolError) as info:
        stream.recv_message()
    assert info.value.reason == "bad_header"


def test_slow_loris_hits_io_timeout():
    a, b = socket.socketpair()
    stream = MessageStream(b, io_timeout=0.3)

    def dribble():
        try:
            a.sendall(b"{")
        except OSError:
            pass

    thread = threading.Thread(target=dribble)
    thread.start()
    with pytest.raises(ProtocolError) as info:
        stream.recv_message()
    assert info.value.reason == "timeout"
    thread.join()


def test_stop_callable_interrupts_idle_wait():
    a, b = socket.socketpair()
    calls = []

    def stop():
        calls.append(1)
        return len(calls) > 2

    stream = MessageStream(b, stop=stop)
    assert stream.recv_message() is None
    a.close()


def test_parse_address_forms():
    assert parse_address("unix:/tmp/x.sock") == ("unix", "/tmp/x.sock")
    assert parse_address("127.0.0.1:7878") == ("tcp", "127.0.0.1", 7878)
    with pytest.raises(ConfigError):
        parse_address("no-port-here")


@pytest.mark.parametrize(
    "exc, code",
    [
        (OverloadError("x", reason="queue_full"), CODE_SHED),
        (OverloadError("x", reason="rate_limited"), CODE_SHED),
        (OverloadError("x", reason="breaker_open"), CODE_UNAVAILABLE),
        (OverloadError("x", reason="draining"), CODE_UNAVAILABLE),
        (DeadlineError("x", reason="deadline"), CODE_DEADLINE),
        (ProtocolError("x", reason="bad_header"), CODE_BAD_REQUEST),
        (ProtocolError("x", reason="oversized"), CODE_PAYLOAD_TOO_LARGE),
        (ConfigError("x"), CODE_BAD_REQUEST),
        (TestFileError("x"), CODE_UNPROCESSABLE),
        (ContainerError("x"), CODE_UNPROCESSABLE),
        (ShardError("x"), CODE_INTERNAL),
        (RuntimeError("x"), CODE_INTERNAL),
    ],
)
def test_error_code_map(exc, code):
    assert error_code(exc) == code


def test_error_reply_is_structured_and_json_safe():
    reply = error_reply(
        42, OverloadError("queue full", reason="queue_full", depth=6, extra=object())
    )
    assert reply["id"] == 42
    assert reply["ok"] is False
    assert reply["code"] == CODE_SHED
    assert reply["error"]["type"] == "OverloadError"
    assert reply["error"]["diagnostics"]["depth"] == 6
    json.dumps(reply)  # exotic diagnostic values were stringified


def test_ok_reply_carries_fields():
    reply = ok_reply(3, ratio_percent=12.5)
    assert reply["ok"] is True and reply["code"] == 0
    assert reply["ratio_percent"] == 12.5
