"""Graceful-drain semantics (the SIGTERM contract).

Three behaviours, each pinned by a test:

* an in-flight request *finishes* during drain and its reply arrives;
* a queued-but-unstarted request gets a typed shed reply (503,
  reason ``draining``) instead of silently vanishing;
* a second SIGTERM skips the drain and forces an immediate nonzero
  exit with the documented status.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.observability import schema as ev
from repro.service import (
    CompressionServer,
    FORCED_EXIT_CODE,
    ServiceClient,
    ServiceConfig,
)

SRC = str(Path(__file__).resolve().parents[2] / "src")


def spawn_request(address, op, collected, **fields):
    """Fire one request from a thread, collecting (header, payload)."""

    def run():
        try:
            with ServiceClient(address, timeout=30.0) as client:
                collected.append(client.request(op, **fields))
        except Exception:  # noqa: BLE001 - killed-server runs expect this
            collected.append(None)

    thread = threading.Thread(target=run)
    thread.start()
    return thread


def test_in_flight_request_completes_during_drain():
    srv = CompressionServer(
        ServiceConfig(workers=1, drain_grace=10.0, debug_ops=True)
    )
    srv.start()
    replies = []
    thread = spawn_request(srv.address, "sleep", replies, seconds=0.6)
    time.sleep(0.2)  # request is now in flight on the worker
    assert srv.drain() == 0
    thread.join(timeout=10)
    assert len(replies) == 1
    header, _ = replies[0]
    assert header["ok"], f"in-flight work must finish during drain: {header}"
    assert header["slept"] == 0.6


def test_queued_unstarted_request_gets_typed_shed_reply():
    srv = CompressionServer(
        ServiceConfig(workers=1, queue_depth=4, drain_grace=10.0, debug_ops=True)
    )
    srv.start()
    in_flight, queued = [], []
    t1 = spawn_request(srv.address, "sleep", in_flight, seconds=0.8)
    time.sleep(0.3)  # occupies the single worker
    t2 = spawn_request(srv.address, "sleep", queued, seconds=0.0)
    time.sleep(0.2)  # sits queued behind it
    assert srv.drain() == 0
    t1.join(timeout=10)
    t2.join(timeout=10)
    assert in_flight[0][0]["ok"]
    header, _ = queued[0]
    assert not header["ok"]
    assert header["code"] == 503
    assert header["error"]["type"] == "OverloadError"
    assert header["error"]["diagnostics"]["reason"] == "draining"
    counters = srv.recorder.snapshot()["counters"]
    assert counters[ev.SERVICE_DRAINED] == 1


def test_drain_grace_expiry_cancels_in_flight_with_408():
    srv = CompressionServer(
        ServiceConfig(workers=1, drain_grace=0.2, debug_ops=True)
    )
    srv.start()
    replies = []
    thread = spawn_request(srv.address, "sleep", replies, seconds=30.0)
    time.sleep(0.2)
    started = time.monotonic()
    assert srv.drain() == 0  # must not wait the full 30s
    assert time.monotonic() - started < 10.0
    thread.join(timeout=10)
    header, _ = replies[0]
    assert header["code"] == 408
    assert header["error"]["type"] == "DeadlineError"


def test_new_request_during_drain_is_shed_as_draining():
    srv = CompressionServer(
        ServiceConfig(workers=1, drain_grace=5.0, debug_ops=True)
    )
    srv.start()
    blocker = []
    # Long enough that drain is still waiting on it (connections stay
    # open) when the late request goes out, even on a loaded machine.
    spawn_request(srv.address, "sleep", blocker, seconds=3.0)
    time.sleep(0.3)
    late = []
    with ServiceClient(srv.address) as client:  # connect before drain
        # A round-trip proves the connection was *accepted and served*
        # pre-drain; a bare connect can still sit in the listen backlog
        # when the drain closes the listener, which rightly refuses it.
        assert client.ping()["ok"]
        drainer = threading.Thread(target=srv.drain)
        drainer.start()
        time.sleep(0.2)  # drain is now waiting on the in-flight sleep
        header, _ = client.request("sleep", seconds=0.0)
        late.append(header)
        drainer.join(timeout=15)
    assert late[0]["code"] == 503
    assert late[0]["error"]["diagnostics"]["reason"] == "draining"


def _spawn_serve(tmp_path, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    metrics = tmp_path / "final_metrics.json"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0", "--debug-ops",
            "--metrics-json", str(metrics), *extra,
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    banner = proc.stdout.readline()
    assert "serving on" in banner, banner
    return proc, banner.split()[2], metrics


def test_sigterm_drains_to_exit_zero_with_final_metrics(tmp_path):
    proc, address, metrics = _spawn_serve(tmp_path)
    with ServiceClient(address) as client:
        header, _ = client.compress("01X0\n1XX1\n")
        assert header["ok"]
    proc.send_signal(signal.SIGTERM)
    out, _ = proc.communicate(timeout=20)
    assert proc.returncode == 0, out
    snapshot = json.loads(metrics.read_text())
    assert snapshot["schema"] == "repro.metrics/1"
    assert "partial" not in snapshot  # the drain snapshot is complete
    assert snapshot["counters"][ev.SERVICE_COMPLETED] == 1


def test_second_sigterm_forces_immediate_nonzero_exit(tmp_path):
    proc, address, _ = _spawn_serve(tmp_path, "--drain-grace", "30")
    replies = []
    # A long in-flight request keeps the drain waiting on its grace.
    thread = spawn_request(address, "sleep", replies, seconds=25.0)
    time.sleep(0.4)
    proc.send_signal(signal.SIGTERM)  # starts the (blocked) drain
    time.sleep(0.4)
    proc.send_signal(signal.SIGTERM)  # operator means *now*
    proc.communicate(timeout=10)
    assert proc.returncode == FORCED_EXIT_CODE
    thread.join(timeout=10)
