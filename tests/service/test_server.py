"""In-process server behaviour: admission, deadlines, breaker, replies."""

import socket
import time

import pytest

from repro.container import dump_bytes
from repro.core import LZWConfig, compress
from repro.observability import schema as ev
from repro.service import (
    CompressionServer,
    ServiceClient,
    ServiceConfig,
    encode_message,
)
from repro.service.protocol import MessageStream
from repro.testfile import parse_test_text

TEXT = "01X0\n1XX1\nX01X\n0110\nXXXX\n"


def serial_container(text=TEXT, config=None):
    result = compress(parse_test_text(text).to_stream(), config or LZWConfig())
    return dump_bytes(result.compressed, result.assigned_stream)


@pytest.fixture
def server():
    srv = CompressionServer(
        ServiceConfig(workers=2, queue_depth=8, debug_ops=True)
    )
    srv.start()
    yield srv
    if srv.state != "stopped":
        srv.drain()


@pytest.fixture
def client(server):
    with ServiceClient(server.address) as c:
        yield c


def test_compress_is_byte_identical_to_serial(server, client):
    header, payload = client.compress(TEXT)
    assert header["ok"] and header["code"] == 0
    assert payload == serial_container()
    assert header["original_bits"] == 20
    assert header["num_codes"] * 10 == header["compressed_bits"]


def test_compress_honours_request_config(client):
    config = {"char_bits": 3, "dict_size": 32, "entry_bits": 12}
    header, payload = client.compress(TEXT, config=config)
    assert header["ok"]
    assert payload == serial_container(config=LZWConfig(**config))
    assert payload != serial_container()


def test_round_trip_through_decompress_and_verify(client):
    _, container = client.compress(TEXT)
    header, decoded = client.decompress(container)
    assert header["ok"]
    original = parse_test_text(TEXT).to_stream()
    assert len(decoded.decode("ascii")) == len(original)
    header, _ = client.verify(container)
    assert header["verify_exit_code"] == 0


def test_unknown_op_gets_400(client):
    header, _ = client.request("transmogrify")
    assert header["code"] == 400
    assert header["error"]["type"] == "ProtocolError"


def test_bad_config_key_gets_400(client):
    header, _ = client.compress(TEXT, config={"dict_sizes": 64})
    assert header["code"] == 400
    assert header["error"]["type"] == "ConfigError"


def test_bad_config_value_gets_400(client):
    header, _ = client.compress(TEXT, config={"char_bits": -1})
    assert header["code"] == 400
    assert header["error"]["type"] == "ConfigError"


def test_malformed_cube_text_gets_422(client):
    header, _ = client.compress("01X0\n01Q0\n")
    assert header["code"] == 422
    assert header["error"]["type"] == "TestFileError"


def test_corrupt_container_gets_422(client):
    header, _ = client.decompress(b"not a container")
    assert header["code"] == 422
    assert header["error"]["type"] == "ContainerError"


def test_deadline_exceeded_gets_408(server, client):
    header, _ = client.request("sleep", deadline_ms=40, seconds=5.0)
    assert header["code"] == 408
    assert header["error"]["type"] == "DeadlineError"
    counters = server.recorder.snapshot()["counters"]
    assert counters[ev.SERVICE_DEADLINE_EXCEEDED] == 1


def test_worker_failure_gets_500_after_supervised_retries(server, client):
    header, _ = client.request("fail")
    assert header["code"] == 500
    assert header["error"]["type"] == "ShardError"
    # The supervisor burned its full retry budget before giving up.
    assert header["error"]["diagnostics"]["attempts"] == 2


def test_empty_compress_payload_gets_422(client):
    header, _ = client.request("compress", b"")
    assert header["code"] == 422


def test_ping_reports_state(client):
    header = client.ping()
    assert header["ok"]
    assert header["state"] == "running"
    assert header["breaker"] == "closed"


def test_metrics_op_returns_valid_envelope(client):
    client.compress(TEXT)
    snapshot = client.metrics()
    assert snapshot["schema"] == "repro.metrics/1"
    assert snapshot["counters"][ev.SERVICE_COMPLETED] >= 1


def test_rate_limit_sheds_with_429():
    srv = CompressionServer(
        ServiceConfig(rate_limit=0.001, rate_burst=1, debug_ops=True)
    )
    srv.start()
    try:
        with ServiceClient(srv.address) as c:
            first, _ = c.compress(TEXT)
            assert first["ok"]
            second, _ = c.compress(TEXT)
            assert second["code"] == 429
            assert second["error"]["type"] == "OverloadError"
            assert second["error"]["diagnostics"]["reason"] == "rate_limited"
    finally:
        srv.drain()


def test_full_queue_sheds_with_429_queue_full():
    srv = CompressionServer(
        ServiceConfig(workers=1, queue_depth=1, debug_ops=True)
    )
    srv.start()
    try:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.connect(srv.address[1:])
        # Pipeline: one slow op occupies the single worker, one fills
        # the queue, the rest must shed immediately with queue_full.
        sock.sendall(encode_message({"op": "sleep", "id": 0, "seconds": 0.8}))
        time.sleep(0.3)  # let the worker pick it up off the queue
        for i in range(1, 4):
            sock.sendall(encode_message({"op": "sleep", "id": i, "seconds": 0.0}))
        stream = MessageStream(sock, io_timeout=10.0)
        replies = {}
        while len(replies) < 4:
            header, _ = stream.recv_message()
            replies[header["id"]] = header
        assert replies[0]["ok"]
        shed = [h for h in replies.values() if not h.get("ok")]
        assert shed, "expected at least one queue_full shed"
        for header in shed:
            assert header["code"] == 429
            assert header["error"]["diagnostics"]["reason"] == "queue_full"
        sock.close()
    finally:
        srv.drain()


def test_breaker_opens_after_consecutive_failures_and_recovers():
    srv = CompressionServer(
        ServiceConfig(
            workers=1,
            breaker_threshold=2,
            breaker_cooldown=0.3,
            retry_attempts=1,
            debug_ops=True,
        )
    )
    srv.start()
    try:
        with ServiceClient(srv.address) as c:
            for _ in range(2):
                header, _ = c.request("fail")
                assert header["code"] == 500
            # Breaker is now open: work is rejected without running.
            header, _ = c.compress(TEXT)
            assert header["code"] == 503
            assert header["error"]["diagnostics"]["reason"] == "breaker_open"
            # After the cooldown the half-open probe runs real work and
            # its success closes the breaker again.
            time.sleep(0.35)
            header, payload = c.compress(TEXT)
            assert header["ok"]
            assert payload == serial_container()
            assert srv.breaker.state == "closed"
        counters = srv.recorder.snapshot()["counters"]
        assert counters[ev.SERVICE_BREAKER_OPEN] >= 1
    finally:
        srv.drain()


def test_client_errors_do_not_trip_the_breaker():
    srv = CompressionServer(
        ServiceConfig(breaker_threshold=2, retry_attempts=1, debug_ops=True)
    )
    srv.start()
    try:
        with ServiceClient(srv.address) as c:
            for _ in range(5):
                header, _ = c.compress("bad Q text\n")
                assert header["code"] == 422
            header, _ = c.compress(TEXT)
            assert header["ok"], "bad traffic must not open the breaker"
    finally:
        srv.drain()


def test_mid_request_disconnect_leaves_server_serving(server):
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.connect(server.address[1:])
    sock.sendall(b'{"op": "compress", "payload_len": 1000}\n' + b"x" * 10)
    sock.close()  # vanish mid-payload
    time.sleep(0.2)
    with ServiceClient(server.address) as c:
        header, _ = c.compress(TEXT)
        assert header["ok"]


def test_oversized_payload_gets_typed_reply_and_close(server):
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.connect(server.address[1:])
    sock.sendall(b'{"op": "compress", "id": 1, "payload_len": 999999999}\n')
    stream = MessageStream(sock, io_timeout=5.0)
    header, _ = stream.recv_message()
    assert header["code"] == 413
    assert stream.recv_message() is None  # server closed the connection
    sock.close()


def test_unix_socket_transport(tmp_path):
    path = str(tmp_path / "repro.sock")
    srv = CompressionServer(ServiceConfig(socket_path=path))
    srv.start()
    try:
        assert srv.address_str == f"unix:{path}"
        with ServiceClient(("unix", path)) as c:
            header, payload = c.compress(TEXT)
            assert header["ok"]
            assert payload == serial_container()
    finally:
        srv.drain()
    import os

    assert not os.path.exists(path)  # drain unlinks the socket
