"""The ``compress_stream`` service op: chunked encode, deadlines, errors."""

import io

import pytest

from repro.bitstream import TernaryVector
from repro.core import LZWConfig, StreamEncoder
from repro.service import CompressionServer, ServiceClient, ServiceConfig
from repro.streamio import StreamContainerWriter, decode_stream_bytes

PAYLOAD = (b"the quick brown fox jumps over the lazy dog. " * 40)[:1600]


def local_stream_container(data, config=None, codes_per_frame=4096):
    """Reference container: one-shot feed through the same writer."""
    config = config or LZWConfig()
    enc = StreamEncoder(config)
    sink = io.BytesIO()
    writer = StreamContainerWriter(config, sink, codes_per_frame=codes_per_frame)
    chunk = TernaryVector.from_int(
        int.from_bytes(data, "little"), len(data) * 8
    )
    writer.write_codes(enc.feed(chunk))
    writer.finalize(enc.finalize(), enc.original_bits)
    return sink.getvalue()


@pytest.fixture
def server():
    srv = CompressionServer(
        ServiceConfig(workers=2, queue_depth=8, debug_ops=True)
    )
    srv.start()
    yield srv
    if srv.state != "stopped":
        srv.drain()


@pytest.fixture
def client(server):
    with ServiceClient(server.address) as c:
        yield c


def test_container_is_chunking_independent(client):
    # The server feeds 64 bytes at a time; the local reference feeds
    # everything at once.  Byte-identical output is the streaming
    # codec's core contract.
    header, payload = client.compress_stream(PAYLOAD, chunk_bytes=64)
    assert header["ok"] and header["code"] == 0
    assert payload == local_stream_container(PAYLOAD)
    assert header["chunks"] == (len(PAYLOAD) + 63) // 64
    assert header["original_bits"] == len(PAYLOAD) * 8
    assert header["frames"] >= 1


def test_round_trip_restores_payload_bytes(client):
    header, payload = client.compress_stream(PAYLOAD, chunk_bytes=100)
    assert header["ok"]
    stream = decode_stream_bytes(payload)
    assert stream.value_mask.to_bytes(len(PAYLOAD), "little") == PAYLOAD


def test_codes_per_frame_changes_framing_only(client):
    _, dense = client.compress_stream(PAYLOAD, codes_per_frame=8)
    _, default = client.compress_stream(PAYLOAD)
    assert dense != default  # more frame headers
    assert decode_stream_bytes(dense) == decode_stream_bytes(default)
    assert dense == local_stream_container(PAYLOAD, codes_per_frame=8)


def test_honours_request_config(client):
    config = {"char_bits": 8, "dict_size": 512, "entry_bits": 40}
    header, payload = client.compress_stream(PAYLOAD, config=config)
    assert header["ok"]
    assert payload == local_stream_container(
        PAYLOAD, config=LZWConfig(**config)
    )


def test_deadline_mid_stream_replies_408(client):
    # A deadline that cannot cover the encode: the per-chunk checkpoint
    # must convert it into a typed 408, never a half-written reply.
    header, payload = client.compress_stream(
        PAYLOAD * 64, deadline_ms=1, chunk_bytes=64
    )
    assert not header["ok"]
    assert header["code"] == 408
    assert payload == b""


@pytest.mark.parametrize("field,value", [
    ("chunk_bytes", 0),
    ("chunk_bytes", "sixty-four"),
    ("codes_per_frame", -1),
    ("codes_per_frame", "lots"),
])
def test_bad_streaming_fields_reply_400(client, field, value):
    header, _ = client.request("compress_stream", PAYLOAD, **{field: value})
    assert not header["ok"]
    assert header["code"] == 400
    assert header["error"]["diagnostics"]["reason"] == "bad_field"


def test_empty_payload_is_valid(client):
    header, payload = client.compress_stream(b"")
    assert header["ok"]
    assert header["original_bits"] == 0
    assert len(decode_stream_bytes(payload)) == 0
