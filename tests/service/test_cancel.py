"""Cancellation token semantics and the encoder's cooperative checks."""

import pytest

from repro.bitstream import TernaryVector
from repro.core import LZWConfig, compress
from repro.reliability.errors import DeadlineError
from repro.service.cancel import CHECK_INTERVAL, CancellationToken


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def test_unexpired_token_checks_clean():
    clock = FakeClock()
    token = CancellationToken.after(5.0, clock=clock)
    token.check()
    assert not token.expired
    assert not token.cancelled
    assert token.remaining() == pytest.approx(5.0)


def test_deadline_expiry_raises_typed_error():
    clock = FakeClock()
    token = CancellationToken.after(2.0, clock=clock)
    clock.now = 2.5
    assert token.expired
    with pytest.raises(DeadlineError) as info:
        token.check()
    assert info.value.reason == "deadline"
    assert info.value.deadline_s == 2.0
    assert token.remaining() == 0.0


def test_explicit_cancel_raises_with_cancelled_reason():
    token = CancellationToken.after(3600.0)
    token.cancel()
    with pytest.raises(DeadlineError) as info:
        token.check()
    assert info.value.reason == "cancelled"


def test_unbounded_token_never_expires():
    token = CancellationToken.after(None)
    token.check()
    assert not token.expired
    assert token.remaining() is None


def test_compress_with_expired_token_raises_before_work():
    clock = FakeClock()
    token = CancellationToken.after(1.0, clock=clock)
    clock.now = 2.0
    with pytest.raises(DeadlineError):
        compress(TernaryVector("01X0" * 50), LZWConfig(), cancel=token)


def test_encoder_loop_observes_mid_stream_expiry():
    """The symbol loop itself checks the token, not just stage borders.

    The clock expires after the first check interval, so a stream much
    longer than CHECK_INTERVAL must abort from *inside* the encode loop.
    """

    class ExpireAfterFirstCheck:
        calls = 0

        def __call__(self):
            ExpireAfterFirstCheck.calls += 1
            return 0.0 if ExpireAfterFirstCheck.calls < 3 else 10.0

    token = CancellationToken.after(1.0, clock=ExpireAfterFirstCheck())
    config = LZWConfig(char_bits=3, dict_size=32, entry_bits=12)
    stream = TernaryVector("01X" * (CHECK_INTERVAL * 4))
    with pytest.raises(DeadlineError):
        compress(stream, config, cancel=token)


def test_compress_result_unaffected_by_live_token():
    """A token that never fires must not change the output bytes."""
    stream = TernaryVector("01X0XX10" * 40)
    config = LZWConfig(char_bits=3, dict_size=64, entry_bits=15)
    plain = compress(stream, config)
    guarded = compress(
        stream, config, cancel=CancellationToken.after(3600.0)
    )
    assert plain.compressed.codes == guarded.compressed.codes
    assert str(plain.assigned_stream) == str(guarded.assigned_stream)
