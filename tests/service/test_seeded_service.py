"""Warm-dictionary compression over the wire.

A client that has trained a dictionary locally (or received one from a
planner) can ship it as the base64 ``seed`` request field; the server
compresses under that snapshot and replies with a single-segment
seeded (v4) container that carries it, so the reply is self-contained
and round-trips through ``decompress``/``verify`` like any other.
"""

import base64

import pytest

from repro.container import SEED_BLOB, container_version, load_seeded
from repro.core import LZWConfig, compress, decode, derive_final_snapshot
from repro.service import CompressionServer, ServiceClient, ServiceConfig
from repro.testfile import parse_test_text

TRAIN = "01X0\n1XX1\nX01X\n0110\nXXXX\n" * 4
TEXT = "01X0\n1XX1\nX01X\n0110\n1001\n" * 4


def trained_snapshot(config=None):
    config = config or LZWConfig()
    result = compress(parse_test_text(TRAIN).to_stream(), config)
    return derive_final_snapshot(result.compressed.codes, config)


@pytest.fixture
def server():
    srv = CompressionServer(ServiceConfig(workers=2, queue_depth=8))
    srv.start()
    yield srv
    if srv.state != "stopped":
        srv.drain()


@pytest.fixture
def client(server):
    with ServiceClient(server.address) as c:
        yield c


def test_seeded_compress_round_trips(client):
    seed = trained_snapshot()
    header, container = client.compress(TEXT, seed=seed.to_bytes())
    assert header["ok"] and header["code"] == 0
    assert header["seed_digest"] == seed.digest
    assert container_version(container) == 4
    (segment,) = load_seeded(container)
    assert segment.seed_mode == SEED_BLOB
    assert segment.seed == seed
    decoded = decode(segment.compressed, seed=segment.seed)
    assert decoded.covers(parse_test_text(TEXT).to_stream())

    # The self-contained reply decompresses server-side too.
    header, text = client.decompress(container)
    assert header["ok"]
    header, _ = client.verify(container)
    assert header["verify_exit_code"] == 0


def test_seeded_compress_matches_local_library_call(client):
    seed = trained_snapshot()
    header, _ = client.compress(TEXT, seed=seed.to_bytes())
    local = compress(parse_test_text(TEXT).to_stream(), LZWConfig(), seed=seed)
    assert header["compressed_bits"] == local.compressed_bits
    assert header["num_codes"] == local.compressed.num_codes


def test_seed_accepts_pre_encoded_base64(client):
    seed = trained_snapshot()
    encoded = base64.b64encode(seed.to_bytes()).decode("ascii")
    header, container = client.compress(TEXT, seed=encoded)
    assert header["ok"]
    assert header["seed_digest"] == seed.digest


def test_invalid_base64_seed_is_a_client_error(client):
    header, _ = client.request("compress", TEXT.encode(), seed="@@not-base64@@")
    assert not header["ok"]
    assert header["error"]["type"] == "ProtocolError"
    assert "seed" in header["error"]["message"]


def test_corrupt_snapshot_seed_is_a_client_error(client):
    blob = bytearray(trained_snapshot().to_bytes())
    blob[10] ^= 0x40
    header, _ = client.compress(TEXT, seed=bytes(blob))
    assert not header["ok"]
    assert header["error"]["type"] == "SnapshotError"


def test_config_mismatched_seed_is_a_client_error(client):
    seed = trained_snapshot()  # trained under the default config
    header, _ = client.compress(
        TEXT,
        config={"char_bits": 3, "dict_size": 32, "entry_bits": 12},
        seed=seed.to_bytes(),
    )
    assert not header["ok"]
    assert header["error"]["type"] == "SnapshotError"


def test_cold_requests_are_unchanged(client):
    from repro.container import dump_bytes

    header, payload = client.compress(TEXT)
    assert header["ok"]
    assert "seed_digest" not in header
    local = compress(parse_test_text(TEXT).to_stream(), LZWConfig())
    assert payload == dump_bytes(local.compressed, local.assigned_stream)
