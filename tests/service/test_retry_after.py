"""Overload replies carry an honest ``retry_after_ms`` back-off hint."""

import threading
import time

import pytest

from repro.observability import schema as ev  # noqa: F401 - parity with peers
from repro.reliability.errors import OverloadError
from repro.service import CompressionServer, ServiceClient, ServiceConfig
from repro.service.admission import AdmissionQueue, RateLimiter
from repro.service.protocol import error_reply

TEXT = "01X0\n1XX1\nX01X\n0110\nXXXX\n"


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


# -- unit level ----------------------------------------------------------


def test_error_reply_lifts_retry_after_into_the_header():
    reply = error_reply(1, OverloadError("x", reason="queue_full", retry_after=0.25))
    assert reply["retry_after_ms"] == 250


def test_error_reply_rounds_tiny_hints_up_to_one_ms():
    reply = error_reply(1, OverloadError("x", reason="queue_full", retry_after=1e-6))
    assert reply["retry_after_ms"] == 1


def test_error_reply_omits_the_hint_when_there_is_none():
    reply = error_reply(1, OverloadError("x", reason="queue_full"))
    assert "retry_after_ms" not in reply


def test_queue_full_shed_carries_a_retry_hint():
    queue = AdmissionQueue(1)
    queue.submit(object())
    with pytest.raises(OverloadError) as info:
        queue.submit(object())
    assert info.value.reason == "queue_full"
    assert info.value.retry_after > 0


def test_draining_shed_carries_a_retry_hint():
    queue = AdmissionQueue(1)
    queue.close()
    with pytest.raises(OverloadError) as info:
        queue.submit(object())
    assert info.value.reason == "draining"
    assert info.value.retry_after > 0


def test_rate_limiter_reports_seconds_until_token():
    clock = FakeClock()
    limiter = RateLimiter(rate=2.0, burst=1, clock=clock)
    assert limiter.seconds_until_token("c") == 0.0  # untouched bucket
    assert limiter.try_acquire("c")
    assert limiter.seconds_until_token("c") == pytest.approx(0.5)
    clock.now += 0.25
    assert limiter.seconds_until_token("c") == pytest.approx(0.25)
    clock.now += 0.25
    assert limiter.seconds_until_token("c") == 0.0


def test_disabled_rate_limiter_never_asks_for_a_wait():
    assert RateLimiter(rate=None).seconds_until_token("c") == 0.0


# -- end to end ----------------------------------------------------------


def test_rate_limited_reply_hints_the_refill_time():
    srv = CompressionServer(
        ServiceConfig(rate_limit=2.0, rate_burst=1, debug_ops=True)
    )
    srv.start()
    try:
        with ServiceClient(srv.address) as client:
            assert client.compress(TEXT)[0]["ok"]
            header, _ = client.compress(TEXT)
        assert header["code"] == 429
        assert header["error"]["diagnostics"]["reason"] == "rate_limited"
        # One token refills in <= 0.5s at rate 2/s.
        assert 1 <= header["retry_after_ms"] <= 600
    finally:
        srv.drain()


def test_breaker_open_reply_hints_the_cooldown_remainder():
    srv = CompressionServer(
        ServiceConfig(
            workers=1,
            breaker_threshold=1,
            breaker_cooldown=30.0,
            retry_attempts=1,
            debug_ops=True,
        )
    )
    srv.start()
    try:
        with ServiceClient(srv.address) as client:
            assert client.request("fail")[0]["code"] == 500  # opens the breaker
            header, _ = client.compress(TEXT)
        assert header["code"] == 503
        assert header["error"]["diagnostics"]["reason"] == "breaker_open"
        assert 1 <= header["retry_after_ms"] <= 30_000
    finally:
        srv.drain()


def test_draining_reply_hints_the_drain_grace():
    srv = CompressionServer(
        ServiceConfig(workers=1, queue_depth=4, drain_grace=7.0, debug_ops=True)
    )
    srv.start()
    replies = []

    def queued_request():
        with ServiceClient(srv.address, timeout=30.0) as client:
            replies.append(client.request("sleep", seconds=0.0))

    with ServiceClient(srv.address, timeout=30.0) as blocker_client:
        blocker = threading.Thread(
            target=lambda: replies.append(
                blocker_client.request("sleep", seconds=0.8)
            )
        )
        blocker.start()
        time.sleep(0.3)  # the sleep now occupies the single worker
        queued = threading.Thread(target=queued_request)
        queued.start()
        time.sleep(0.2)  # and this one sits in the queue behind it
        assert srv.drain() == 0
        blocker.join(timeout=10)
        queued.join(timeout=10)
    shed = [h for h, _ in replies if not h["ok"]]
    assert len(shed) == 1
    assert shed[0]["code"] == 503
    assert shed[0]["error"]["diagnostics"]["reason"] == "draining"
    assert shed[0]["retry_after_ms"] == 7_000
