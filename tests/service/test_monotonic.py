"""Deadline/limiter/breaker timing must never read the wall clock.

Wall-clock time (``time.time``) jumps under NTP corrections and
timezone games; a deadline or cooldown computed from it can fire years
early or never.  Every timing decision in the serving and fleet layers
is required to use ``time.monotonic`` — this audit pins that, so a
future edit reintroducing the wall clock fails loudly.
"""

from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Packages whose timing paths the audit covers.
PACKAGES = ("service", "fleet")


def test_no_wall_clock_reads_in_service_or_fleet_sources():
    offenders = []
    for package in PACKAGES:
        for path in sorted((SRC / package).rglob("*.py")):
            for number, line in enumerate(
                path.read_text().splitlines(), start=1
            ):
                if "time.time(" in line.split("#")[0]:
                    offenders.append(f"{path}:{number}: {line.strip()}")
    assert not offenders, "wall-clock reads in timing-sensitive code:\n" + "\n".join(
        offenders
    )


def test_the_audit_actually_detects_an_offender(tmp_path):
    # Guard the guard: the scan must trip on a real wall-clock read.
    sample = tmp_path / "offender.py"
    sample.write_text("import time\ndeadline = time.time() + 5\n")
    hits = [
        line
        for line in sample.read_text().splitlines()
        if "time.time(" in line.split("#")[0]
    ]
    assert hits
