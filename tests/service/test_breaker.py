"""Circuit breaker state machine: closed -> open -> half-open -> ..."""

import threading

import pytest

from repro.reliability.errors import ConfigError
from repro.service.breaker import CircuitBreaker


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def make(threshold=3, cooldown=10.0):
    clock = FakeClock()
    return CircuitBreaker(threshold, cooldown, clock=clock), clock


def test_validates_configuration():
    with pytest.raises(ConfigError):
        CircuitBreaker(threshold=0)
    with pytest.raises(ConfigError):
        CircuitBreaker(cooldown=-1.0)


def test_stays_closed_below_threshold():
    breaker, _ = make(threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.CLOSED
    assert breaker.allow()


def test_success_resets_consecutive_count():
    breaker, _ = make(threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.CLOSED  # never 3 in a row


def test_opens_at_threshold_and_rejects():
    breaker, _ = make(threshold=3)
    for _ in range(3):
        breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    assert not breaker.allow()
    assert not breaker.allow()


def test_half_open_after_cooldown_grants_single_probe():
    breaker, clock = make(threshold=2, cooldown=5.0)
    breaker.record_failure()
    breaker.record_failure()
    clock.now += 5.0
    assert breaker.state == CircuitBreaker.HALF_OPEN
    assert breaker.allow()  # the probe
    assert not breaker.allow()  # everyone else keeps waiting
    assert not breaker.allow()


def test_probe_success_closes():
    breaker, clock = make(threshold=2, cooldown=5.0)
    breaker.record_failure()
    breaker.record_failure()
    clock.now += 5.0
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == CircuitBreaker.CLOSED
    assert breaker.allow()
    assert breaker.consecutive_failures == 0


def test_probe_failure_reopens_for_another_cooldown():
    breaker, clock = make(threshold=2, cooldown=5.0)
    breaker.record_failure()
    breaker.record_failure()
    clock.now += 5.0
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    assert not breaker.allow()
    clock.now += 5.0
    assert breaker.allow()  # next probe after the second cooldown


def test_retry_after_counts_down_while_open_and_zero_otherwise():
    breaker, clock = make(threshold=1, cooldown=10.0)
    assert breaker.retry_after() == 0.0  # closed
    breaker.record_failure()
    assert breaker.retry_after() == 10.0
    clock.now += 4.0
    assert breaker.retry_after() == 6.0
    clock.now += 6.0
    assert breaker.retry_after() == 0.0  # half-open: a probe may go now


def test_half_open_losers_wait_for_the_probes_success():
    breaker, clock = make(threshold=1, cooldown=1.0)
    breaker.record_failure()
    clock.now += 1.0
    assert breaker.allow()  # the probe
    assert not breaker.allow()  # raced the probe slot, lost
    breaker.record_success()
    assert breaker.state == CircuitBreaker.CLOSED
    assert breaker.allow()  # the loser's retry now sails through


def test_half_open_probe_failure_restarts_the_cooldown_for_everyone():
    breaker, clock = make(threshold=1, cooldown=1.0)
    breaker.record_failure()
    clock.now += 1.0
    assert breaker.allow()
    breaker.record_failure()  # the probe itself failed
    assert not breaker.allow()
    clock.now += 0.5
    assert not breaker.allow()  # still cooling down again
    assert breaker.retry_after() == pytest.approx(0.5)
    clock.now += 0.5
    assert breaker.allow()  # exactly one fresh probe
    assert not breaker.allow()


def test_concurrent_half_open_race_with_failing_probe():
    # 8 threads race the half-open slot; the winner's probe *fails*.
    # Exactly one thread may have probed, and the failure must leave
    # the breaker open for every later arrival.
    breaker, clock = make(threshold=1, cooldown=1.0)
    breaker.record_failure()
    clock.now += 1.0
    outcomes = []
    barrier = threading.Barrier(8)

    def contend():
        barrier.wait()
        if breaker.allow():
            breaker.record_failure()
            outcomes.append("probed")
        else:
            outcomes.append("rejected")

    threads = [threading.Thread(target=contend) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert outcomes.count("probed") == 1
    assert breaker.state == CircuitBreaker.OPEN
    assert not breaker.allow()


def test_concurrent_allow_grants_exactly_one_probe():
    breaker, clock = make(threshold=1, cooldown=1.0)
    breaker.record_failure()
    clock.now += 1.0
    grants = []
    barrier = threading.Barrier(8)

    def contend():
        barrier.wait()
        grants.append(breaker.allow())

    threads = [threading.Thread(target=contend) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert grants.count(True) == 1
