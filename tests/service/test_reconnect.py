"""ServiceClient resilience: reconnects, reply timeouts, overload retries."""

import time

import pytest

from repro.container import dump_bytes
from repro.core import LZWConfig, compress
from repro.reliability.errors import ProtocolError
from repro.service import CompressionServer, ServiceClient, ServiceConfig
from repro.testfile import parse_test_text

TEXT = "01X0\n1XX1\nX01X\n0110\nXXXX\n"


def serial_container():
    result = compress(parse_test_text(TEXT).to_stream(), LZWConfig())
    return dump_bytes(result.compressed, result.assigned_stream)


def test_auto_reconnect_rides_out_a_backend_restart(tmp_path):
    # A unix socket keeps the address stable across the restart.
    path = str(tmp_path / "repro.sock")
    first = CompressionServer(ServiceConfig(socket_path=path))
    first.start()
    client = ServiceClient(("unix", path), auto_reconnect=True)
    try:
        assert client.compress(TEXT)[0]["ok"]
        first.drain()  # the backend goes away mid-session
        second = CompressionServer(ServiceConfig(socket_path=path))
        second.start()
        try:
            header, payload = client.compress(TEXT)
            assert header["ok"], "one reconnect+resend must recover"
            assert payload == serial_container()
        finally:
            second.drain()
    finally:
        client.close()
        if first.state != "stopped":
            first.drain()


def test_plain_client_surfaces_the_restart_as_a_transport_error(tmp_path):
    path = str(tmp_path / "repro.sock")
    first = CompressionServer(ServiceConfig(socket_path=path))
    first.start()
    client = ServiceClient(("unix", path))  # auto_reconnect off
    try:
        assert client.compress(TEXT)[0]["ok"]
        first.drain()
        with pytest.raises((ProtocolError, OSError)):
            client.compress(TEXT)
    finally:
        client.close()
        if first.state != "stopped":
            first.drain()


def test_reconnect_budget_is_one_not_a_loop(tmp_path):
    # With the server gone for good, auto_reconnect must fail after its
    # single retry, not spin forever.
    path = str(tmp_path / "repro.sock")
    srv = CompressionServer(ServiceConfig(socket_path=path))
    srv.start()
    client = ServiceClient(("unix", path), auto_reconnect=True)
    try:
        assert client.compress(TEXT)[0]["ok"]
        srv.drain()
        with pytest.raises((ProtocolError, OSError)):
            client.compress(TEXT)
    finally:
        client.close()
        if srv.state != "stopped":
            srv.drain()


def test_reply_timeout_raises_typed_and_is_never_retried():
    srv = CompressionServer(ServiceConfig(workers=1, debug_ops=True))
    srv.start()
    client = ServiceClient(srv.address, auto_reconnect=True, reply_timeout=0.3)
    started = time.monotonic()
    try:
        with pytest.raises(ProtocolError) as info:
            client.request("sleep", seconds=1.5)
        assert info.value.reason == "timeout"
        # A timeout means the reply may still be in flight: retrying on
        # the same (or a fresh) connection risks mis-pairing replies, so
        # the client must give up immediately despite auto_reconnect.
        assert time.monotonic() - started < 1.4
    finally:
        client.close()
        srv.drain()


def test_retry_overloads_honours_the_servers_hint():
    srv = CompressionServer(
        ServiceConfig(rate_limit=5.0, rate_burst=1, debug_ops=True)
    )
    srv.start()
    try:
        with ServiceClient(srv.address, retry_overloads=3) as client:
            assert client.compress(TEXT)[0]["ok"]  # burns the only token
            started = time.monotonic()
            header, payload = client.compress(TEXT)
            elapsed = time.monotonic() - started
        assert header["ok"], "the client should wait out the hint and win"
        assert payload == serial_container()
        assert elapsed >= 0.1, "success came without honouring the back-off"
    finally:
        srv.drain()


def test_zero_budget_returns_the_overload_reply_as_a_value():
    srv = CompressionServer(
        ServiceConfig(rate_limit=5.0, rate_burst=1, debug_ops=True)
    )
    srv.start()
    try:
        with ServiceClient(srv.address) as client:  # retry_overloads=0
            assert client.compress(TEXT)[0]["ok"]
            header, _ = client.compress(TEXT)
        assert header["code"] == 429
        assert isinstance(header["retry_after_ms"], int)
    finally:
        srv.drain()
