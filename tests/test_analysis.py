"""Unit tests for the test-set analysis module."""

import pytest

from repro.analysis import (
    entropy_lower_bound,
    power_report,
    testset_profile,
    weighted_transition_count,
)
from repro.bitstream import TernaryVector
from repro.circuit import TestSet


@pytest.fixture
def test_set():
    cubes = [TernaryVector("01XX10"), TernaryVector("X11X00")]
    return TestSet([f"c{i}" for i in range(6)], cubes, name="an")


class TestProfile:
    def test_counts(self, test_set):
        profile = testset_profile(test_set)
        assert profile.vectors == 2
        assert profile.width == 6
        assert profile.total_bits == 12
        assert profile.care_bits == 8
        assert profile.x_percent == pytest.approx(100 * 4 / 12)
        assert profile.ones_percent_of_care == pytest.approx(100 * 4 / 8)

    def test_per_cell_care(self, test_set):
        profile = testset_profile(test_set)
        assert profile.per_cell_care["c0"] == 1  # only the first cube
        assert profile.per_cell_care["c1"] == 2
        assert profile.per_cell_care["c3"] == 0

    def test_hottest_cells_ranked(self, test_set):
        profile = testset_profile(test_set)
        assert profile.hottest_cells[0] in ("c1", "c4", "c5")

    def test_adjacency_of_solid_block(self):
        ts = TestSet(["a", "b", "c"], [TernaryVector("111")])
        profile = testset_profile(ts)
        assert profile.care_adjacency == pytest.approx(2 / 3)

    def test_empty_set(self):
        ts = TestSet(["a"])
        profile = testset_profile(ts)
        assert profile.x_percent == 0.0
        assert profile.care_adjacency == 0.0


class TestEntropy:
    def test_uniform_blocks_cost_full_width(self):
        # 256 distinct byte values once each: entropy = 8 bits/block.
        stream_bits = []
        for value in range(256):
            for b in range(8):
                stream_bits.append((value >> b) & 1)
        cubes = [TernaryVector(stream_bits)]
        ts = TestSet([f"c{i}" for i in range(2048)], cubes)
        bound = entropy_lower_bound(ts, block_bits=8)
        assert bound == pytest.approx(2048.0)

    def test_constant_stream_is_free(self):
        ts = TestSet([f"c{i}" for i in range(64)], [TernaryVector("0" * 64)])
        assert entropy_lower_bound(ts, block_bits=8) == pytest.approx(0.0)

    def test_block_bits_validated(self, test_set):
        with pytest.raises(ValueError):
            entropy_lower_bound(test_set, block_bits=0)

    def test_bound_below_total(self, test_set):
        bound = entropy_lower_bound(test_set, block_bits=4)
        assert 0.0 <= bound <= test_set.total_bits


class TestWTM:
    def test_no_transitions(self):
        assert weighted_transition_count(TernaryVector("0000")) == 0

    def test_single_transition_weight(self):
        # Transition between positions 0 and 1 in a 4-bit chain: weight 3.
        assert weighted_transition_count(TernaryVector("1000")) == 3
        # Between positions 2 and 3: weight 1.
        assert weighted_transition_count(TernaryVector("0001")) == 1

    def test_alternating_is_maximal(self):
        n = 8
        wtm = weighted_transition_count(TernaryVector("01" * (n // 2)))
        assert wtm == sum(range(1, n))

    def test_requires_fully_specified(self):
        with pytest.raises(ValueError):
            weighted_transition_count(TernaryVector("0X1"))


class TestPowerReport:
    def test_standard_fills_present(self, test_set):
        report = power_report(test_set)
        assert set(report.wtm) == {"zero", "one", "repeat"}

    def test_repeat_fill_never_worse_than_alternating(self):
        cubes = [TernaryVector("1XXXXXX0")] * 4
        ts = TestSet([f"c{i}" for i in range(8)], cubes)
        report = power_report(ts)
        # repeat-fill bridges the gap with constant runs.
        assert report.wtm["repeat"] <= report.wtm["zero"]

    def test_custom_assignment(self, test_set):
        assigned = test_set.to_stream().fill(0)
        report = power_report(test_set, {"custom": assigned})
        assert report.wtm["custom"] == report.wtm["zero"]
        assert report.overhead_percent("custom", baseline="zero") == 0.0

    def test_assignment_width_checked(self, test_set):
        with pytest.raises(ValueError, match="bits"):
            power_report(test_set, {"bad": TernaryVector("01")})

    def test_overhead_zero_baseline(self):
        ts = TestSet(["a"], [TernaryVector("0")])
        report = power_report(ts)
        assert report.overhead_percent("zero", baseline="repeat") == 0.0
