"""Unit tests for serial fault simulation."""

import pytest

from repro.atpg import fault_simulate, simulate_fault
from repro.bitstream import TernaryVector
from repro.circuit import Fault, load_builtin
from repro.circuit.faults import collapse_faults
from repro.circuit.simulate import evaluate


@pytest.fixture(scope="module")
def c17():
    circuit = load_builtin("c17")
    return circuit, circuit.combinational_view()


class TestSimulateFault:
    def test_known_detection(self, c17):
        circuit, view = c17
        # 22 sa0 is detected by any vector producing 22 == 1.
        assignment = {"1": 1, "2": 1, "3": 1, "6": 1, "7": 1}
        good = evaluate(circuit, assignment)
        assert good["22"] == 1
        assert simulate_fault(view, assignment, good, Fault("22", 0))
        assert not simulate_fault(view, assignment, good, Fault("22", 1))

    def test_x_blocks_detection(self, c17):
        circuit, view = c17
        assignment = {}
        good = evaluate(circuit, assignment)
        assert not simulate_fault(view, assignment, good, Fault("22", 0))


class TestFaultSimulate:
    def test_coverage_and_dropping(self, c17):
        circuit, view = c17
        faults = collapse_faults(circuit)
        cubes = [
            TernaryVector("00000"),
            TernaryVector("11111"),
            TernaryVector("01010"),
            TernaryVector("10101"),
        ]
        report = fault_simulate(view, cubes, faults)
        assert 0.0 < report.coverage < 1.0 or report.coverage == 1.0
        assert len(report.detected) + len(report.undetected) == len(faults)
        # First-detection indices must be valid cube positions.
        assert all(0 <= i < len(cubes) for i in report.detected.values())

    def test_first_detection_index_is_minimal(self, c17):
        circuit, view = c17
        fault = Fault("22", 0)
        detecting = TernaryVector("11111")  # 22 == 1
        report = fault_simulate(view, [detecting, detecting], [fault])
        assert report.detected[fault] == 0

    def test_empty_cubes(self, c17):
        circuit, view = c17
        faults = collapse_faults(circuit)
        report = fault_simulate(view, [], faults)
        assert report.coverage == 0.0
        assert report.undetected == faults

    def test_empty_faults(self, c17):
        _circuit, view = c17
        report = fault_simulate(view, [TernaryVector("00000")], [])
        assert report.coverage == 0.0
        assert report.coverage_percent == 0.0

    def test_more_cubes_never_reduce_coverage(self, c17):
        circuit, view = c17
        faults = collapse_faults(circuit)
        one = fault_simulate(view, [TernaryVector("00000")], faults)
        two = fault_simulate(
            view, [TernaryVector("00000"), TernaryVector("11111")], faults
        )
        assert len(two.detected) >= len(one.detected)
