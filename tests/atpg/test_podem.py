"""Unit tests for PODEM: hand-checkable cases, brute-force soundness."""

import itertools

import pytest

from repro.atpg import PodemEngine
from repro.atpg.fastsim import X2, CompiledView
from repro.circuit import Fault, load_builtin, random_circuit
from repro.circuit.faults import collapse_faults
from repro.circuit.simulate import evaluate


def _brute_force_detectable(cv, packed):
    n = len(cv.input_indices)
    for bits in itertools.product((0, 1), repeat=n):
        seed = [X2] * cv.n_nets
        for idx, b in zip(cv.input_indices, bits):
            seed[idx] = b
        good = cv.evaluate(list(seed))
        if cv.detects(good, seed, packed):
            return True
    return False


class TestC17:
    @pytest.fixture(scope="class")
    def engine(self):
        return PodemEngine(load_builtin("c17").combinational_view())

    def test_detects_every_collapsed_fault(self, engine):
        c17 = load_builtin("c17")
        for fault in collapse_faults(c17):
            result = engine.generate(fault)
            assert result.detected, f"{fault} should be testable in c17"

    def test_cube_actually_detects(self, engine):
        c17 = load_builtin("c17")
        view = c17.combinational_view()
        for fault in collapse_faults(c17):
            result = engine.generate(fault)
            assignment = dict(zip(view.test_inputs, result.cube))
            good = evaluate(c17, assignment)
            faulty = evaluate(c17, assignment, fault)
            assert any(
                good[o] is not None
                and faulty[o] is not None
                and good[o] != faulty[o]
                for o in view.test_outputs
            ), str(fault)

    def test_cubes_leave_dont_cares(self, engine):
        # Output stem faults of c17 need few assignments.
        result = engine.generate(Fault("22", 0))
        assert result.detected
        assert result.cube.x_count >= 1


class TestSoundness:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_verdicts_match_brute_force(self, seed):
        circuit = random_circuit("p", 5, 3, 30, seed=seed)
        view = circuit.combinational_view()
        cv = CompiledView(view)
        engine = PodemEngine(view, backtrack_limit=5000, compiled=cv)
        for fault in collapse_faults(circuit):
            packed = cv.compile_fault(fault)
            truth = _brute_force_detectable(cv, packed)
            result = engine.generate(fault)
            if result.detected:
                assert truth, f"false detection claim for {fault}"
                seed_values = cv.cube_values(result.cube)
                good = cv.evaluate(list(seed_values))
                assert cv.detects(good, seed_values, packed)
            elif result.status == "untestable":
                assert not truth, f"false untestable verdict for {fault}"


class TestAbort:
    def test_abort_respects_limit(self):
        circuit = random_circuit("hard", 16, 10, 220, seed=5, locality=0.9,
                                 uniform_fraction=0.0)
        view = circuit.combinational_view()
        engine = PodemEngine(view, backtrack_limit=3)
        statuses = set()
        for fault in collapse_faults(circuit)[:60]:
            result = engine.generate(fault)
            statuses.add(result.status)
            assert result.backtracks <= 3
        # With such a tiny limit at least some faults must abort.
        assert "aborted" in statuses

    def test_invalid_limit(self):
        view = load_builtin("c17").combinational_view()
        with pytest.raises(ValueError):
            PodemEngine(view, backtrack_limit=0)


class TestS27:
    def test_full_scan_coverage(self):
        s27 = load_builtin("s27")
        engine = PodemEngine(s27.combinational_view(), backtrack_limit=1000)
        outcomes = [engine.generate(f) for f in collapse_faults(s27)]
        detected = sum(1 for r in outcomes if r.detected)
        aborted = sum(1 for r in outcomes if r.status == "aborted")
        assert aborted == 0
        assert detected >= len(outcomes) - 4  # s27 has a couple of redundancies
