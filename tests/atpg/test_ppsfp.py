"""Unit tests for parallel-pattern fault simulation."""

import random

import pytest

from repro.atpg import fault_simulate, parallel_fault_simulate
from repro.atpg.fastsim import CompiledView
from repro.atpg.ppsfp import pack_vectors
from repro.bitstream import TernaryVector
from repro.circuit import load_builtin, random_circuit
from repro.circuit.faults import collapse_faults


@pytest.fixture(scope="module")
def setup():
    circuit = random_circuit("pp", 8, 6, 70, seed=17)
    view = circuit.combinational_view()
    return circuit, view, CompiledView(view)


def _random_vectors(view, count, seed):
    rng = random.Random(seed)
    return [TernaryVector.random(view.width, 0.0, rng) for _ in range(count)]


class TestPacking:
    def test_bit_positions(self, setup):
        _c, view, cv = setup
        v0 = TernaryVector.zeros(view.width)
        v1 = TernaryVector.from_int((1 << view.width) - 1, view.width)
        words = pack_vectors(cv, [v0, v1])
        for net in cv.input_indices:
            assert words[net] == 0b10  # vector 1 drives ones

    def test_rejects_x(self, setup):
        _c, view, cv = setup
        with pytest.raises(ValueError, match="fully specified"):
            pack_vectors(cv, [TernaryVector.xs(view.width)])

    def test_rejects_wrong_width(self, setup):
        _c, _view, cv = setup
        with pytest.raises(ValueError, match="width"):
            pack_vectors(cv, [TernaryVector("01")])


class TestAgreementWithSerial:
    @pytest.mark.parametrize("batch_size", [1, 7, 64, 200])
    def test_matches_serial_engine(self, setup, batch_size):
        circuit, view, cv = setup
        vectors = _random_vectors(view, 40, seed=batch_size)
        faults = collapse_faults(circuit)
        serial = fault_simulate(view, vectors, faults)
        parallel = parallel_fault_simulate(
            view, vectors, faults, batch_size=batch_size, compiled=cv
        )
        assert parallel.detected == serial.detected
        assert parallel.undetected == serial.undetected

    def test_c17_full_coverage(self):
        c17 = load_builtin("c17")
        view = c17.combinational_view()
        vectors = _random_vectors(view, 32, seed=3)
        report = parallel_fault_simulate(view, vectors, collapse_faults(c17))
        assert report.coverage_percent == 100.0

    def test_first_detection_index(self, setup):
        circuit, view, _cv = setup
        vectors = _random_vectors(view, 20, seed=9)
        faults = collapse_faults(circuit)
        # Duplicate the list: indices must stay in the first copy.
        report = parallel_fault_simulate(view, vectors + vectors, faults)
        for fault, index in report.detected.items():
            assert index < 20, str(fault)


class TestEdges:
    def test_empty_vectors(self, setup):
        circuit, view, _cv = setup
        faults = collapse_faults(circuit)
        report = parallel_fault_simulate(view, [], faults)
        assert report.detected == {}
        assert report.undetected == faults

    def test_empty_faults(self, setup):
        _c, view, _cv = setup
        vectors = _random_vectors(view, 4, seed=1)
        report = parallel_fault_simulate(view, vectors, [])
        assert report.coverage == 0.0

    def test_batch_size_validated(self, setup):
        _c, view, _cv = setup
        with pytest.raises(ValueError):
            parallel_fault_simulate(view, [], [], batch_size=0)
