"""Unit tests for static cube compaction."""

from repro.atpg import compact_cubes
from repro.bitstream import TernaryVector


def test_empty():
    assert compact_cubes([]) == []


def test_compatible_pair_merges():
    cubes = [TernaryVector("0XX"), TernaryVector("X1X")]
    merged = compact_cubes(cubes)
    assert len(merged) == 1
    assert str(merged[0]) == "01X"


def test_incompatible_pair_stays():
    cubes = [TernaryVector("0X"), TernaryVector("1X")]
    assert len(compact_cubes(cubes)) == 2


def test_every_input_is_covered():
    cubes = [
        TernaryVector("0XX1"),
        TernaryVector("X0X1"),
        TernaryVector("1XXX"),
        TernaryVector("XXX0"),
    ]
    merged = compact_cubes(cubes)
    for cube in cubes:
        assert any(m.compatible(cube) and
                   (m.care_mask & cube.care_mask) == cube.care_mask
                   for m in merged), str(cube)


def test_chain_merging():
    # Pairwise-compatible chain collapses into one vector.
    cubes = [TernaryVector("1XXX"), TernaryVector("X1XX"),
             TernaryVector("XX1X"), TernaryVector("XXX1")]
    merged = compact_cubes(cubes)
    assert len(merged) == 1
    assert str(merged[0]) == "1111"


def test_dense_cubes_seed_first():
    # A fully specified cube plus two sparse compatible ones.
    cubes = [TernaryVector("XX1"), TernaryVector("011"), TernaryVector("0XX")]
    merged = compact_cubes(cubes)
    assert merged == [TernaryVector("011")]


def test_never_increases_count():
    cubes = [TernaryVector("01X"), TernaryVector("0X1"), TernaryVector("10X")]
    assert len(compact_cubes(cubes)) <= len(cubes)


def test_deterministic():
    cubes = [TernaryVector("0X"), TernaryVector("X1"), TernaryVector("1X")]
    assert compact_cubes(list(cubes)) == compact_cubes(list(cubes))
