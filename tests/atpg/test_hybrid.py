"""Unit tests for the hybrid pseudo-random + deterministic flow."""

import pytest

from repro.atpg import (
    fault_simulate,
    generate_tests,
    hybrid_generate,
    prpg_patterns,
)
from repro.atpg.hybrid import HybridConfig
from repro.circuit import load_builtin, random_circuit
from repro.circuit.faults import collapse_faults
from repro.hardware.misr import STANDARD_POLYNOMIALS


class TestPrpgPatterns:
    def test_shape_and_determinism(self):
        a = prpg_patterns(12, 5, STANDARD_POLYNOMIALS[16], seed=7)
        b = prpg_patterns(12, 5, STANDARD_POLYNOMIALS[16], seed=7)
        assert a == b
        assert len(a) == 5
        assert all(len(p) == 12 and p.is_fully_specified for p in a)

    def test_seed_changes_patterns(self):
        a = prpg_patterns(12, 5, STANDARD_POLYNOMIALS[16], seed=7)
        b = prpg_patterns(12, 5, STANDARD_POLYNOMIALS[16], seed=9)
        assert a != b

    def test_patterns_are_consecutive_windows(self):
        from repro.hardware.misr import LFSR

        width, count = 8, 3
        patterns = prpg_patterns(width, count, STANDARD_POLYNOMIALS[16], 7)
        bits = LFSR(STANDARD_POLYNOMIALS[16], seed=7).sequence(width * count)
        for p, pattern in enumerate(patterns):
            for i in range(width):
                assert pattern[i] == bits[p * width + i]

    def test_zero_patterns(self):
        assert prpg_patterns(8, 0, STANDARD_POLYNOMIALS[16], 7) == []


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            HybridConfig(random_patterns=-1)
        with pytest.raises(ValueError):
            HybridConfig(prpg_seed=0)


class TestHybridFlow:
    @pytest.fixture(scope="class")
    def circuit(self):
        return random_circuit("hy", 12, 12, 120, seed=6)

    @pytest.fixture(scope="class")
    def result(self, circuit):
        return hybrid_generate(circuit)

    def test_phases_partition_detection(self, result):
        assert result.detected == (
            result.random_detected + result.deterministic_detected
        )
        assert result.random_detected > 0

    def test_coverage_close_to_pure_deterministic(self, circuit, result):
        pure = generate_tests(circuit)
        assert result.coverage_percent >= pure.coverage_percent - 2.0

    def test_top_up_is_much_smaller(self, circuit, result):
        pure = generate_tests(circuit)
        assert len(result.top_up) < len(pure.test_set)

    def test_top_up_keeps_dont_cares(self, result):
        if len(result.top_up):
            assert result.top_up.x_density > 0.0

    def test_combined_patterns_reach_claimed_coverage(self, circuit, result):
        """Fault-simulating random patterns + top-up cubes together must
        re-detect everything the flow claims."""
        faults = collapse_faults(circuit)
        vectors = result.random_patterns + list(result.top_up)
        report = fault_simulate(circuit.combinational_view(), vectors, faults)
        assert len(report.detected) >= result.detected

    def test_no_random_phase_degenerates_to_podem(self, circuit):
        result = hybrid_generate(circuit, HybridConfig(random_patterns=0))
        assert result.random_detected == 0
        assert result.deterministic_detected > 0

    def test_c17_fully_covered_by_randoms(self):
        c17 = load_builtin("c17")
        result = hybrid_generate(c17, HybridConfig(random_patterns=64))
        assert result.coverage_percent == 100.0
        assert len(result.top_up) == 0
