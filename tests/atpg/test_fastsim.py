"""Unit tests for the compiled simulation kernel, cross-checked against
the readable reference simulator."""

import random

import pytest

from repro.atpg.fastsim import X2, CompiledView
from repro.bitstream import TernaryVector
from repro.circuit import Fault, random_circuit
from repro.circuit.faults import full_fault_list
from repro.circuit.simulate import evaluate


@pytest.fixture(scope="module")
def setup():
    circuit = random_circuit("fs", 8, 5, 70, seed=21)
    view = circuit.combinational_view()
    return circuit, view, CompiledView(view)


class TestCompilation:
    def test_indices_cover_all_nets(self, setup):
        circuit, _view, cv = setup
        assert cv.n_nets == len(circuit.gates)
        assert sorted(cv.net_index.values()) == list(range(cv.n_nets))

    def test_io_indices(self, setup):
        _c, view, cv = setup
        assert [cv.net_names[i] for i in cv.input_indices] == view.test_inputs
        assert [cv.net_names[i] for i in cv.output_indices] == view.test_outputs

    def test_ops_in_topological_order(self, setup):
        _c, _v, cv = setup
        seen = set(cv.input_indices)
        # DFF outputs are sources too.
        seen.update(
            i for i in range(cv.n_nets) if all(i != op[0] for op in cv.ops)
        )
        for out, _op, fanins in cv.ops:
            assert all(f in seen for f in fanins)
            seen.add(out)


class TestAgreementWithReference:
    def test_good_machine_agrees(self, setup):
        circuit, view, cv = setup
        rng = random.Random(5)
        for _ in range(60):
            assignment = {
                name: rng.choice([0, 1, None]) for name in view.test_inputs
            }
            ref = evaluate(circuit, assignment)
            fast = cv.evaluate(cv.assignment_values(assignment))
            for name, idx in cv.net_index.items():
                expected = X2 if ref[name] is None else ref[name]
                assert fast[idx] == expected

    def test_faulty_machine_agrees(self, setup):
        circuit, view, cv = setup
        rng = random.Random(9)
        faults = full_fault_list(circuit)
        for _ in range(60):
            assignment = {
                name: rng.choice([0, 1, None]) for name in view.test_inputs
            }
            fault = rng.choice(faults)
            ref = evaluate(circuit, assignment, fault)
            fast = cv.evaluate(
                cv.assignment_values(assignment), cv.compile_fault(fault)
            )
            for name, idx in cv.net_index.items():
                expected = X2 if ref[name] is None else ref[name]
                assert fast[idx] == expected, (fault, name)


class TestFaultPacking:
    def test_stem_fault(self, setup):
        _c, _v, cv = setup
        packed = cv.compile_fault(Fault("pi0", 1))
        assert packed == (cv.net_index["pi0"], 1, -1, -1)

    def test_branch_fault_names_op_and_pin(self, setup):
        circuit, _v, cv = setup
        branch = next(
            f for f in full_fault_list(circuit) if f.branch is not None
        )
        net, stuck, pos, pin = cv.compile_fault(branch)
        assert net == cv.net_index[branch.net]
        assert cv.ops[pos][0] == cv.net_index[branch.branch[0]]
        assert pin == branch.branch[1]


class TestCubeSeeding:
    def test_cube_values(self, setup):
        _c, view, cv = setup
        cube = TernaryVector("01X" + "X" * (view.width - 3))
        seed = cv.cube_values(cube)
        assert seed[cv.input_indices[0]] == 0
        assert seed[cv.input_indices[1]] == 1
        assert seed[cv.input_indices[2]] == X2

    def test_cube_width_checked(self, setup):
        _c, _v, cv = setup
        with pytest.raises(ValueError):
            cv.cube_values(TernaryVector("01"))
