"""Unit tests for the ATPG driver (full generation flow)."""

import pytest

from repro.atpg import ATPGConfig, fault_simulate, generate_tests
from repro.circuit import load_builtin, random_circuit
from repro.circuit.faults import collapse_faults


class TestBuiltins:
    @pytest.mark.parametrize("name,expect_full", [("c17", True), ("s27", False)])
    def test_generation(self, name, expect_full):
        circuit = load_builtin(name)
        result = generate_tests(circuit)
        assert result.aborted == 0
        if expect_full:
            assert result.coverage_percent == 100.0
        else:
            assert result.coverage_percent >= 95.0
        assert result.test_set.width == circuit.combinational_view().width

    def test_fault_sim_confirms_coverage(self):
        circuit = load_builtin("c17")
        result = generate_tests(circuit)
        report = fault_simulate(
            circuit.combinational_view(),
            list(result.test_set),
            collapse_faults(circuit),
        )
        testable = result.total_faults - result.untestable
        assert len(report.detected) >= result.detected or (
            len(report.detected) == testable
        )

    def test_compaction_reduces_or_keeps_vectors(self):
        circuit = load_builtin("s27")
        compacted = generate_tests(circuit, ATPGConfig(compact=True))
        raw = generate_tests(circuit, ATPGConfig(compact=False))
        assert len(compacted.test_set) <= len(raw.test_set)
        assert raw.cubes_before_compaction == len(raw.test_set)

    def test_no_drop_still_works(self):
        circuit = load_builtin("c17")
        result = generate_tests(circuit, ATPGConfig(drop_faults=False))
        assert result.coverage_percent == 100.0

    def test_statuses_cover_every_fault(self):
        circuit = load_builtin("s27")
        result = generate_tests(circuit)
        assert len(result.per_fault_status) == result.total_faults
        assert set(result.per_fault_status.values()) <= {
            "detected",
            "untestable",
            "aborted",
        }


class TestRandomCircuit:
    def test_small_random_flow(self):
        circuit = random_circuit("e", 10, 6, 60, seed=2)
        result = generate_tests(circuit)
        assert result.coverage_percent > 70.0
        assert result.test_set.x_density > 0.1
        # The cube stream is what the compression study consumes.
        stream = result.test_set.to_stream()
        assert len(stream) == result.test_set.total_bits
