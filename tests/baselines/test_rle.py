"""Unit tests for the fixed-width RLE baseline."""

import pytest

from repro.baselines import AlternatingRLECompressor, RLEConfig, decode_rle
from repro.baselines.rle import _runs, encode_rle
from repro.bitstream import TernaryVector


class TestRuns:
    def test_alternating(self):
        assert _runs(TernaryVector("00111 0".replace(" ", ""))) == [
            (0, 2),
            (1, 3),
            (0, 1),
        ]

    def test_empty(self):
        assert _runs(TernaryVector("")) == []

    def test_single_run(self):
        assert _runs(TernaryVector("1111")) == [(1, 4)]


class TestEncode:
    def test_token_layout(self):
        config = RLEConfig(length_bits=3)
        bits = encode_rle([(1, 3)], config)
        assert bits == [1, 0, 1, 0]  # value 1, length field 2 (=3-1)

    def test_long_run_splits(self):
        config = RLEConfig(length_bits=2)  # max 4 per token
        bits = encode_rle([(0, 9)], config)
        # 4 + 4 + 1 -> three tokens of 3 bits.
        assert len(bits) == 9

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            encode_rle([(0, 0)], RLEConfig())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RLEConfig(length_bits=0)


class TestCompressor:
    def test_repeat_fill_maximises_runs(self):
        result = AlternatingRLECompressor().compress(TernaryVector("1XX0XX"))
        assert str(result.assigned_stream) == "111000"

    def test_verify(self):
        stream = TernaryVector("0011XX00X1")
        result = AlternatingRLECompressor().compress(stream)
        assert result.verify(stream)

    def test_compresses_long_runs(self):
        stream = TernaryVector("0" * 200 + "1" * 56)
        result = AlternatingRLECompressor().compress(stream)
        assert result.ratio > 0.9


class TestDecode:
    def test_roundtrip(self):
        config = RLEConfig(length_bits=3)
        stream = TernaryVector("000111X0110000XXX1")
        result = AlternatingRLECompressor(config).compress(stream)
        bits = encode_rle(_runs(result.assigned_stream), config)
        assert decode_rle(bits, config, len(stream)) == result.assigned_stream

    def test_overflow_rejected(self):
        config = RLEConfig(length_bits=3)
        bits = encode_rle([(1, 6)], config)
        with pytest.raises(ValueError, match="overflows"):
            decode_rle(bits, config, 3)

    def test_empty(self):
        assert decode_rle([], RLEConfig(), 0) == TernaryVector("")
