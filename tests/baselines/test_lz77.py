"""Unit tests for the X-aware LZ77/LZSS baseline."""

import pytest

from repro.baselines import LZ77Compressor, LZ77Config, decode_lz77
from repro.baselines.lz77 import encode_tokens
from repro.bitstream import TernaryVector

SMALL = LZ77Config(offset_bits=4, length_bits=3)


class TestConfig:
    def test_derived(self):
        assert SMALL.window == 16
        assert SMALL.max_length == 8
        assert SMALL.match_token_bits == 8
        assert SMALL.effective_min_match == 9

    def test_explicit_min_match(self):
        config = LZ77Config(offset_bits=4, length_bits=3, min_match=4)
        assert config.effective_min_match == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            LZ77Config(offset_bits=0)
        with pytest.raises(ValueError):
            LZ77Config(search_budget=0)
        with pytest.raises(ValueError):
            LZ77Config(min_match=-1)


class TestTokenization:
    def test_all_literals_when_no_history(self):
        result = LZ77Compressor(SMALL).compress(TernaryVector("0101"))
        assert result.extra["matches"] == 0
        assert result.compressed_bits == 4 * 2  # flag + bit each

    def test_repetition_produces_matches(self):
        stream = TernaryVector("0110" * 16)
        result = LZ77Compressor(LZ77Config(offset_bits=4, length_bits=4)).compress(
            stream
        )
        assert result.extra["matches"] >= 1
        assert result.compressed_bits < 2 * len(stream)

    def test_x_matches_anything(self):
        # history 0101 then XXXX: the Xs copy the history.
        stream = TernaryVector("0101" + "X" * 12)
        config = LZ77Config(offset_bits=3, length_bits=4)
        result = LZ77Compressor(config).compress(stream)
        assert result.extra["matches"] >= 1
        assert result.verify(stream)

    def test_literal_x_defaults_to_zero(self):
        result = LZ77Compressor(SMALL).compress(TernaryVector("X1"))
        assert str(result.assigned_stream) == "01"

    def test_self_overlapping_match(self):
        # 0 then many 0s: a distance-1 match longer than the history.
        stream = TernaryVector("0" * 20)
        config = LZ77Config(offset_bits=4, length_bits=4, min_match=3)
        result = LZ77Compressor(config).compress(stream)
        assert result.verify(stream)
        assert result.extra["matches"] >= 1


class TestEncoding:
    def test_token_bits(self):
        bits = encode_tokens([("lit", 1), ("match", 3, 5)], SMALL)
        assert len(bits) == 2 + 8
        assert bits[:2] == [0, 1]
        assert bits[2] == 1  # match flag

    def test_encode_range_checks(self):
        with pytest.raises(ValueError, match="distance"):
            encode_tokens([("match", 17, 2)], SMALL)
        with pytest.raises(ValueError, match="length"):
            encode_tokens([("match", 1, 9)], SMALL)


class TestDecoding:
    def test_roundtrip(self):
        stream = TernaryVector("0110X01X10110XX10101")
        config = LZ77Config(offset_bits=4, length_bits=3)
        result = LZ77Compressor(config).compress(stream)
        bits = encode_tokens(result.extra["token_list"], config)
        assert decode_lz77(bits, config, len(stream)) == result.assigned_stream

    def test_bad_distance_rejected(self):
        bits = encode_tokens([("match", 5, 2)], SMALL)
        with pytest.raises(ValueError, match="before stream start"):
            decode_lz77(bits, SMALL, 2)

    def test_exact_length_required(self):
        bits = encode_tokens([("lit", 0)], SMALL)
        with pytest.raises(EOFError):
            decode_lz77(bits, SMALL, 5)


class TestBudget:
    def test_tiny_budget_still_correct(self):
        stream = TernaryVector("01X0" * 30)
        config = LZ77Config(offset_bits=5, length_bits=4, search_budget=2)
        result = LZ77Compressor(config).compress(stream)
        assert result.verify(stream)

    def test_larger_budget_never_worse(self):
        stream = TernaryVector("0110X10" * 40)
        small = LZ77Compressor(
            LZ77Config(offset_bits=6, length_bits=4, search_budget=8)
        ).compress(stream)
        large = LZ77Compressor(
            LZ77Config(offset_bits=6, length_bits=4, search_budget=10_000)
        ).compress(stream)
        assert large.compressed_bits <= small.compressed_bits
