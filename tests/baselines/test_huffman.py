"""Unit tests for the selective-Huffman baseline."""

import pytest

from repro.baselines import (
    HuffmanConfig,
    SelectiveHuffmanCompressor,
    build_huffman_codes,
    decode_selective_huffman,
)
from repro.bitstream import TernaryVector


class TestHuffmanCodes:
    def test_empty(self):
        assert build_huffman_codes({}) == {}

    def test_single_symbol_gets_one_bit(self):
        assert build_huffman_codes({7: 100}) == {7: (0, 1)}

    def test_two_symbols(self):
        codes = build_huffman_codes({0: 5, 1: 3})
        assert sorted(w for _c, w in codes.values()) == [1, 1]

    def test_prefix_free(self):
        codes = build_huffman_codes({i: 2**i for i in range(6)})
        entries = [(format(c, f"0{w}b")) for c, w in codes.values()]
        for a in entries:
            for b in entries:
                if a != b:
                    assert not b.startswith(a)

    def test_kraft_equality(self):
        codes = build_huffman_codes({i: i + 1 for i in range(9)})
        assert sum(2.0 ** -w for _c, w in codes.values()) == pytest.approx(1.0)

    def test_frequent_symbols_get_short_codes(self):
        codes = build_huffman_codes({0: 1000, 1: 1, 2: 1, 3: 1})
        assert codes[0][1] <= min(codes[s][1] for s in (1, 2, 3))

    def test_deterministic(self):
        freq = {3: 4, 1: 4, 2: 4, 0: 4}
        assert build_huffman_codes(freq) == build_huffman_codes(dict(freq))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            HuffmanConfig(block_bits=0)
        with pytest.raises(ValueError):
            HuffmanConfig(coded_patterns=0)


class TestCompressor:
    def test_repetitive_blocks_compress(self):
        stream = TernaryVector("10110100" * 40)
        config = HuffmanConfig(block_bits=8, coded_patterns=4)
        result = SelectiveHuffmanCompressor(config).compress(stream)
        assert result.ratio > 0.5
        assert result.verify(stream)

    def test_x_blocks_merge_onto_popular_patterns(self):
        # Specified blocks are all 1010; X blocks should collapse onto it.
        stream = TernaryVector(("1010" + "XXXX") * 20)
        config = HuffmanConfig(block_bits=4, coded_patterns=2)
        result = SelectiveHuffmanCompressor(config).compress(stream)
        assert result.extra["distinct_patterns"] == 1
        assert result.verify(stream)

    def test_uncoded_blocks_ship_raw(self):
        # 17 distinct blocks, only 1 coded: raw blocks cost 1 + b bits.
        config = HuffmanConfig(block_bits=8, coded_patterns=1)
        stream = TernaryVector.from_int(0, 8)
        for i in range(1, 17):
            stream = stream + TernaryVector.from_int(i, 8)
        result = SelectiveHuffmanCompressor(config).compress(stream)
        assert result.verify(stream)
        assert result.compressed_bits >= 16 * 9

    def test_decode_roundtrip(self):
        stream = TernaryVector("011X10X0" * 25)
        config = HuffmanConfig(block_bits=8, coded_patterns=4)
        result = SelectiveHuffmanCompressor(config).compress(stream)
        decoded = decode_selective_huffman(
            result.extra["bits"], result.extra["codes"], config, len(stream)
        )
        assert decoded == result.assigned_stream

    def test_table_bits_reported(self):
        stream = TernaryVector("0101" * 10)
        config = HuffmanConfig(block_bits=4, coded_patterns=8)
        result = SelectiveHuffmanCompressor(config).compress(stream)
        assert result.extra["decoder_table_bits"] == (
            result.extra["coded_patterns"] * 4
        )
