"""Unit tests for the shared baseline interface."""

import pytest

from repro.baselines import BaselineResult, LZWCompressorAdapter
from repro.bitstream import TernaryVector
from repro.core import LZWConfig


class TestBaselineResult:
    def test_ratio(self):
        result = BaselineResult("T", 100, 40, TernaryVector.zeros(100))
        assert result.ratio == pytest.approx(0.6)
        assert result.ratio_percent == pytest.approx(60.0)

    def test_zero_original(self):
        result = BaselineResult("T", 0, 0, TernaryVector())
        assert result.ratio == 0.0

    def test_verify(self):
        original = TernaryVector("0X1")
        good = BaselineResult("T", 3, 1, TernaryVector("001"))
        bad = BaselineResult("T", 3, 1, TernaryVector("101"))
        assert good.verify(original)
        assert not bad.verify(original)


class TestLZWAdapter:
    def test_name_and_extras(self):
        config = LZWConfig(char_bits=2, dict_size=16, entry_bits=8)
        adapter = LZWCompressorAdapter(config)
        stream = TernaryVector("01X10X1001")
        result = adapter.compress(stream)
        assert result.scheme == "LZW"
        assert result.extra["config"] == config
        assert result.extra["num_codes"] * config.code_bits == result.compressed_bits
        assert result.verify(stream)

    def test_default_config(self):
        assert LZWCompressorAdapter().config == LZWConfig()
