"""Unit tests for the Golomb run-length baseline."""

import pytest

from repro.baselines import GolombCompressor, GolombConfig
from repro.baselines.golomb import (
    _best_m,
    _zero_runs,
    decode_golomb,
    encode_golomb,
    golomb_size,
)
from repro.bitstream import TernaryVector


class TestConfig:
    def test_m_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            GolombConfig(m=3)
        with pytest.raises(ValueError):
            GolombConfig(m=1)
        GolombConfig(m=8)


class TestRuns:
    def test_zero_runs(self):
        assigned = TernaryVector("00100011")
        assert _zero_runs(assigned) == [2, 3, 0]

    def test_trailing_zeros_cost_nothing(self):
        with_tail = TernaryVector("0100000")
        without = TernaryVector("01")
        assert _zero_runs(with_tail) == _zero_runs(without)

    def test_all_zeros(self):
        assert _zero_runs(TernaryVector("0000")) == []


class TestSizes:
    def test_golomb_size_formula(self):
        # m=4 (k=2): run 7 -> q=1 unary (2 bits: "10") + 2 remainder bits.
        assert golomb_size([7], 4) == 2 + 2
        assert golomb_size([0], 4) == 1 + 2

    def test_size_matches_encoding(self):
        runs = [0, 3, 17, 64, 5]
        for m in (2, 4, 8, 16):
            assert len(encode_golomb(runs, m)) == golomb_size(runs, m)

    def test_best_m_is_argmin(self):
        runs = [40, 42, 39, 41]
        m, size = _best_m(runs)
        assert size == min(golomb_size(runs, mm) for mm in (2, 4, 8, 16, 32, 64, 128, 256, 512))
        assert golomb_size(runs, m) == size


class TestCompressor:
    def test_x_filled_with_zero(self):
        result = GolombCompressor().compress(TernaryVector("X1XX1X"))
        assert str(result.assigned_stream) == "010010"

    def test_verify(self):
        stream = TernaryVector("0X10X00X1")
        result = GolombCompressor().compress(stream)
        assert result.verify(stream)

    def test_all_x_costs_nothing(self):
        result = GolombCompressor().compress(TernaryVector.xs(64))
        assert result.compressed_bits == 0
        assert result.ratio == 1.0

    def test_fixed_m_respected(self):
        stream = TernaryVector("0001" * 16)
        result = GolombCompressor(GolombConfig(m=4)).compress(stream)
        assert result.extra["m"] == 4

    def test_ones_counted(self):
        result = GolombCompressor().compress(TernaryVector("0101X1"))
        assert result.extra["ones"] == 3


class TestDecode:
    def test_roundtrip(self):
        stream = TernaryVector("00010X1XX0010000")
        result = GolombCompressor().compress(stream)
        m = result.extra["m"]
        bits = encode_golomb(_zero_runs(result.assigned_stream), m)
        assert decode_golomb(bits, m, len(stream)) == result.assigned_stream

    def test_one_beyond_length_rejected(self):
        bits = encode_golomb([5], 4)
        with pytest.raises(ValueError, match="beyond"):
            decode_golomb(bits, 4, 5)

    def test_empty_stream(self):
        assert decode_golomb([], 4, 6) == TernaryVector("000000")
