"""Property-based tests of the observability subsystem.

The counter invariants hold for *any* ternary stream and legal config:

* round-trips still cover the original with a recorder attached (the
  hooks must never perturb the encoding);
* ``encode.codes`` equals the emitted code count, so the serialised
  stream carries exactly ``encode.codes * C_E`` bits;
* the phrase-length histogram partitions the (padded) input: its
  observation count is the code count and its weighted sum the
  character count;
* ``encode.xbits_assigned`` accounts for every don't-care the encoder
  resolved, final-character padding included;
* merged batch counters are a pure function of the inputs — identical
  at ``workers=1`` and ``workers=4``.
"""

import math

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.bitstream import TernaryVector
from repro.core import LZWConfig, compress, compress_batch, decode
from repro.observability import (
    CompositeRecorder,
    CounterRecorder,
    SpanRecorder,
    metrics_snapshot,
    strip_timing,
)
from repro.observability import schema as ev

ternary_streams = st.text(alphabet="01X", min_size=0, max_size=400).map(
    TernaryVector
)

configs = st.builds(
    LZWConfig,
    char_bits=st.integers(min_value=1, max_value=5),
    dict_size=st.sampled_from([32, 64, 256]),
    entry_bits=st.integers(min_value=5, max_value=40),
    policy=st.sampled_from(["first", "popular", "lookahead"]),
    lookahead=st.integers(min_value=1, max_value=4),
).filter(lambda c: c.dict_size >= c.base_codes and c.entry_bits >= c.char_bits)


@given(stream=ternary_streams, config=configs)
@settings(max_examples=200, deadline=None)
def test_counter_invariants(stream, config):
    """The CI acceptance property: 200 random (stream, config) pairs."""
    rec = CounterRecorder()
    result = compress(stream, config, recorder=rec)
    cs = result.compressed

    if len(stream) == 0:
        assert rec.counters == {}
        return

    total_chars = math.ceil(len(stream) / config.char_bits)
    assert rec.counters[ev.ENCODE_CHARS] == total_chars
    # codes_emitted == len(stream.to_bits()) events at width C_E.
    assert rec.counters[ev.ENCODE_CODES] == cs.num_codes
    assert len(cs.to_bits()) == rec.counters[ev.ENCODE_CODES] * config.code_bits
    assert rec.histograms[ev.HIST_CODES_PER_WIDTH] == {
        config.code_bits: cs.num_codes
    }

    # Phrase-length histogram partitions the padded input.
    assert rec.histogram_total(ev.HIST_PHRASE_LEN) == cs.num_codes
    assert rec.histogram_weighted_sum(ev.HIST_PHRASE_LEN) == total_chars

    # Every X (including final-char padding) is assigned exactly once.
    care_bits = len(stream) - stream.x_count
    assert rec.counters[ev.ENCODE_XBITS] == (
        total_chars * config.char_bits - care_bits
    )
    assert (
        rec.histogram_weighted_sum(ev.HIST_XBITS_PER_PHRASE)
        == rec.counters[ev.ENCODE_XBITS]
    )


@given(stream=ternary_streams, config=configs)
@settings(max_examples=100, deadline=None)
def test_recorder_never_perturbs_roundtrip(stream, config):
    rec = CounterRecorder()
    recorded = compress(stream, config, recorder=rec)
    plain = compress(stream, config)
    assert recorded.compressed.codes == plain.compressed.codes
    assert recorded.assigned_stream.covers(stream)
    assert recorded.assigned_stream.is_fully_specified


@given(stream=ternary_streams, config=configs)
@settings(max_examples=100, deadline=None)
def test_decode_mirrors_encode_counters(stream, config):
    enc = CounterRecorder()
    result = compress(stream, config, recorder=enc)
    dec = CounterRecorder()
    decode(result.compressed, recorder=dec)
    assert dec.counters.get(ev.DECODE_CODES, 0) == enc.counters.get(
        ev.ENCODE_CODES, 0
    )
    assert dec.counters.get(ev.DECODE_CHARS, 0) == enc.counters.get(
        ev.ENCODE_CHARS, 0
    )
    # Dictionary rebuild steps == encoder allocations.
    assert dec.counters.get(ev.DECODE_DICT_ENTRIES, 0) == enc.counters.get(
        ev.DICT_ALLOCS, 0
    )


@given(
    streams=st.lists(
        st.text(alphabet="01X", min_size=1, max_size=200).map(TernaryVector),
        min_size=1,
        max_size=3,
    ),
    config=configs,
)
@settings(max_examples=25, deadline=None)
def test_batch_counters_worker_count_independent(streams, config):
    """Pool-based, so fewer examples; the invariant is the tentpole's
    acceptance criterion: merged snapshots identical at 1 vs 4 workers
    modulo span timings."""

    def run(workers):
        rec = CompositeRecorder([CounterRecorder(), SpanRecorder()])
        items = compress_batch(
            config, streams, workers=workers, shard_bits=64, recorder=rec
        )
        return strip_timing(metrics_snapshot(rec)), [i.container for i in items]

    snap_one, bytes_one = run(1)
    snap_four, bytes_four = run(4)
    assert snap_one == snap_four
    assert bytes_one == bytes_four
    assert snap_one["counters"][ev.BATCH_WORKLOADS] == len(streams)
