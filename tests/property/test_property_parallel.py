"""Differential conformance: sharded output ≡ serial output, always.

For random ternary cube streams and *random shard plans*, the batch
engine must produce containers that

* decode — via strict :func:`decode` and incremental
  :func:`iter_decode` — to a stream covering the input, and
* are bit-identical to what the serial pipeline produces: every
  segment's codes equal ``compress`` on that shard's slice, and the
  whole container equals ``dump_segments`` over the per-shard serial
  results (the single-shard case collapses to the serial v2 container
  byte-for-byte).
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.bitstream import TernaryVector
from repro.container import (
    decode_container,
    dump_bytes,
    dump_segments,
    load_segments,
)
from repro.core import LZWConfig, compress, compress_batch, iter_decode
from repro.parallel import ShardPlan

_CONFIG = LZWConfig(char_bits=3, dict_size=32, entry_bits=12)


@st.composite
def stream_and_plan(draw):
    """A random ternary stream with a random valid shard plan over it."""
    text = draw(st.text(alphabet="01X", min_size=1, max_size=240))
    stream = TernaryVector(text)
    cuts = draw(
        st.lists(
            st.integers(min_value=1, max_value=max(1, len(stream) - 1)),
            max_size=6,
            unique=True,
        )
    )
    cuts = tuple(sorted(c for c in cuts if 0 < c < len(stream)))
    return stream, ShardPlan(len(stream), cuts)


@given(data=stream_and_plan())
@settings(max_examples=150, deadline=None)
def test_batch_decodes_and_matches_serial(data):
    stream, plan = data
    item = compress_batch(_CONFIG, [stream], workers=1, plans=[plan])[0]

    # Strict decode of every segment, concatenated, covers the input.
    segments = load_segments(item.container)
    assert len(segments) == plan.num_shards
    decoded = decode_container(item.container)
    assert decoded.covers(stream)
    assert len(decoded) == len(stream)

    # Incremental decode consumes every segment completely.
    for segment in segments:
        steps = list(iter_decode(segment.codes, segment.config))
        assert len(steps) == segment.num_codes

    # Differential: each segment is bit-identical to serial compress on
    # its slice of the stream, and so is the assembled container.
    serial = [compress(part, _CONFIG) for part in plan.split(stream)]
    for segment, reference in zip(segments, serial):
        assert segment.codes == reference.compressed.codes
        assert segment.original_bits == reference.compressed.original_bits
    assert item.container == dump_segments(
        [r.compressed for r in serial], [r.assigned_stream for r in serial]
    )

    # And the concatenated decode equals the concatenated serial decodes.
    assert decoded == TernaryVector.concat_all(
        [r.assigned_stream for r in serial]
    )


@given(text=st.text(alphabet="01X", min_size=0, max_size=200))
@settings(max_examples=100, deadline=None)
def test_single_shard_batch_equals_serial_container(text):
    stream = TernaryVector(text)
    item = compress_batch(
        _CONFIG, [stream], workers=1, plans=[ShardPlan(len(stream))]
    )[0]
    reference = compress(stream, _CONFIG)
    assert item.container == dump_bytes(
        reference.compressed, reference.assigned_stream
    )


@given(data=stream_and_plan())
@settings(max_examples=60, deadline=None)
def test_container_roundtrip_preserves_segment_structure(data):
    stream, plan = data
    item = compress_batch(_CONFIG, [stream], workers=1, plans=[plan])[0]
    segments = load_segments(item.container)
    assert [s.num_codes for s in segments] == [
        shard.compressed.num_codes for shard in item.shards
    ]
    assert sum(s.original_bits for s in segments) == len(stream)
