"""Property-based robustness: random mutations never corrupt silently.

For arbitrary byte-level mutations of a valid container, loading and
decoding must either raise a typed ``ReproError`` subclass or produce a
stream that still covers the original cubes.  Non-``ReproError``
exceptions (``struct.error``, ``EOFError``, ``IndexError``...) escaping
the public API are failures, as is any silently wrong decode.
"""

import random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.bitstream import TernaryVector
from repro.container import dump_bytes, load_bytes
from repro.core import LZWConfig, compress, decode
from repro.reliability.errors import ReproError

_CONFIG = LZWConfig(char_bits=4, dict_size=64, entry_bits=20)
_ORIGINAL = TernaryVector.random(400, x_density=0.6, rng=random.Random(42))
_RESULT = compress(_ORIGINAL, _CONFIG)
_CONTAINER = dump_bytes(_RESULT.compressed, _RESULT.assigned_stream)


def _decode_or_typed_error(data: bytes) -> None:
    """The invariant: typed rejection or a covering decode — nothing else."""
    try:
        stream = decode(load_bytes(data))
    except ReproError:
        return
    assert stream.covers(_ORIGINAL), "silent corruption"


@given(
    edits=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=len(_CONTAINER) - 1),
            st.integers(min_value=0, max_value=255),
        ),
        min_size=1,
        max_size=8,
    )
)
@settings(max_examples=200)
def test_byte_substitutions(edits):
    data = bytearray(_CONTAINER)
    for position, value in edits:
        data[position] = value
    _decode_or_typed_error(bytes(data))


@given(length=st.integers(min_value=0, max_value=len(_CONTAINER)))
def test_truncations(length):
    _decode_or_typed_error(_CONTAINER[:length])


@given(
    position=st.integers(min_value=0, max_value=len(_CONTAINER) - 1),
    chunk=st.binary(min_size=1, max_size=16),
)
@settings(max_examples=200)
def test_insertions(position, chunk):
    data = _CONTAINER[:position] + chunk + _CONTAINER[position:]
    _decode_or_typed_error(data)


@given(data=st.binary(max_size=200))
def test_arbitrary_bytes_never_escape_typed_errors(data):
    _decode_or_typed_error(data)


@given(
    position=st.integers(min_value=0, max_value=len(_CONTAINER) - 1),
    bit=st.integers(min_value=0, max_value=7),
)
@settings(max_examples=200)
def test_single_bit_flips(position, bit):
    data = bytearray(_CONTAINER)
    data[position] ^= 1 << bit
    _decode_or_typed_error(bytes(data))


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=100)
def test_salvage_never_raises_past_the_header(seed):
    """decode_partial tolerates anything load_bytes' header parse accepts."""
    from repro.reliability.errors import ContainerError
    from repro.reliability.salvage import salvage_container

    rng = random.Random(seed)
    data = bytearray(_CONTAINER)
    for _ in range(rng.randrange(1, 6)):
        data[rng.randrange(len(data))] = rng.randrange(256)
    try:
        result = salvage_container(bytes(data))
    except ContainerError:
        return  # header unusable: the documented fatal case
    assert result.recovered_bits >= 0
    if result.complete:
        assert result.error is None
    else:
        assert isinstance(result.error, ReproError)
