"""Property-based tests of the ternary-vector substrate."""

import hypothesis.strategies as st
from hypothesis import given

from repro.bitstream import BitReader, BitWriter, TernaryVector, to_characters

vectors = st.text(alphabet="01X", max_size=300).map(TernaryVector)
nonempty = st.text(alphabet="01X", min_size=1, max_size=300).map(TernaryVector)


@given(v=vectors)
def test_string_roundtrip(v):
    assert TernaryVector(str(v)) == v


@given(v=vectors)
def test_mask_roundtrip(v):
    back = TernaryVector.from_masks(v.value_mask, v.care_mask, len(v))
    assert back == v


@given(a=vectors, b=vectors)
def test_concat_lengths_and_slices(a, b):
    joined = a + b
    assert len(joined) == len(a) + len(b)
    assert joined[: len(a)] == a
    assert joined[len(a):] == b


@given(v=vectors, data=st.data())
def test_slice_concat_identity(v, data):
    cut = data.draw(st.integers(min_value=0, max_value=len(v)))
    assert v[:cut] + v[cut:] == v


@given(v=vectors)
def test_counts_are_consistent(v):
    assert v.care_count + v.x_count == len(v)
    assert v.care_count == sum(1 for b in v if b is not None)


@given(v=vectors)
def test_fill_covers_original(v):
    for filled in (v.fill(0), v.fill(1), v.fill_repeat_last(), v.fill_random()):
        assert filled.is_fully_specified
        assert filled.covers(v)
        assert filled.compatible(v)


@given(v=vectors)
def test_covers_is_reflexive_on_specified(v):
    filled = v.fill(0)
    assert filled.covers(filled)
    assert v.compatible(v)


@given(a=vectors, b=vectors)
def test_compatible_symmetric(a, b):
    assert a.compatible(b) == b.compatible(a)


@given(a=nonempty, data=st.data())
def test_merge_covers_both(a, data):
    # Build b compatible with a by relaxing/extending a's bits.
    bits = []
    for bit in a:
        choice = data.draw(st.integers(min_value=0, max_value=2))
        if bit is None:
            bits.append(None if choice == 0 else choice - 1)
        else:
            bits.append(None if choice == 0 else bit)
    b = TernaryVector(bits)
    assert a.compatible(b)
    m = a.merge(b)
    assert m.care_mask == (a.care_mask | b.care_mask)
    for filled in (m.fill(0), m.fill(1)):
        assert filled.covers(a)
        assert filled.covers(b)


@given(v=nonempty, width=st.integers(min_value=1, max_value=16))
def test_chunks_reassemble(v, width):
    chunks = v.chunks(width)
    assert TernaryVector.concat_all(chunks) == v
    assert all(len(c) == width for c in chunks[:-1])


@given(v=vectors, width=st.integers(min_value=1, max_value=16))
def test_to_characters_pads_with_x(v, width):
    chars = to_characters(v, width)
    assert all(len(c) == width for c in chars)
    total = sum(len(c) for c in chars)
    assert total >= len(v)
    assert total - len(v) < width
    # Padded bits are X: reassembly restricted to the original length
    # equals the original.
    joined = TernaryVector.concat_all(chars)
    assert joined[: len(v)] == v
    assert joined[len(v):].x_count == total - len(v)


@given(
    fields=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2**16 - 1),
            st.integers(min_value=16, max_value=20),
        ),
        max_size=50,
    )
)
def test_bitio_roundtrip(fields):
    writer = BitWriter()
    for value, width in fields:
        writer.write(value, width)
    reader = BitReader(writer.getbits())
    for value, width in fields:
        assert reader.read(width) == value
    assert reader.exhausted


@given(
    values=st.lists(st.integers(min_value=0, max_value=40), max_size=30),
    stop=st.integers(min_value=0, max_value=1),
)
def test_unary_roundtrip(values, stop):
    writer = BitWriter()
    for v in values:
        writer.write_unary(v, stop_bit=stop)
    reader = BitReader(writer.getbits())
    for v in values:
        assert reader.read_unary(stop_bit=stop) == v
    assert reader.exhausted


@given(fields=st.lists(st.integers(min_value=0, max_value=255), max_size=40))
def test_bytes_roundtrip(fields):
    writer = BitWriter()
    for value in fields:
        writer.write(value, 8)
    data = writer.to_bytes()
    reader = BitReader.from_bytes(data, writer.bit_length)
    for value in fields:
        assert reader.read(8) == value
