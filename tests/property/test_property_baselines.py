"""Property-based tests of the baseline compressors.

Every scheme shares one contract: the stream it reproduces must be fully
specified, cover the original cubes, and its reported size must match
its serialised bit stream.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.baselines import (
    AlternatingRLECompressor,
    GolombCompressor,
    LZ77Compressor,
    LZ77Config,
    RLEConfig,
    SelectiveHuffmanCompressor,
    decode_lz77,
    decode_rle,
    decode_selective_huffman,
)
from repro.baselines.golomb import _zero_runs, decode_golomb, encode_golomb
from repro.baselines.huffman import HuffmanConfig
from repro.baselines.lz77 import encode_tokens
from repro.baselines.rle import _runs, encode_rle
from repro.bitstream import TernaryVector

streams = st.text(alphabet="01X", min_size=1, max_size=300).map(TernaryVector)


@given(stream=streams)
@settings(max_examples=80, deadline=None)
def test_lz77_roundtrip_covers(stream):
    config = LZ77Config(offset_bits=6, length_bits=4)
    result = LZ77Compressor(config).compress(stream)
    assert result.assigned_stream.is_fully_specified
    assert result.verify(stream)
    bits = encode_tokens(result.extra["token_list"], config)
    assert len(bits) == result.compressed_bits
    decoded = decode_lz77(bits, config, len(stream))
    assert decoded == result.assigned_stream


@given(stream=streams)
@settings(max_examples=80, deadline=None)
def test_golomb_roundtrip_covers(stream):
    result = GolombCompressor().compress(stream)
    assert result.verify(stream)
    m = result.extra["m"]
    runs = _zero_runs(result.assigned_stream)
    bits = encode_golomb(runs, m)
    assert len(bits) == result.compressed_bits
    decoded = decode_golomb(bits, m, len(stream))
    assert decoded == result.assigned_stream


@given(stream=streams)
@settings(max_examples=80, deadline=None)
def test_rle_roundtrip_covers(stream):
    config = RLEConfig(length_bits=4)
    result = AlternatingRLECompressor(config).compress(stream)
    assert result.verify(stream)
    runs = _runs(result.assigned_stream)
    bits = encode_rle(runs, config)
    assert len(bits) == result.compressed_bits
    decoded = decode_rle(bits, config, len(stream))
    assert decoded == result.assigned_stream


@given(stream=streams)
@settings(max_examples=60, deadline=None)
def test_huffman_roundtrip_covers(stream):
    config = HuffmanConfig(block_bits=4, coded_patterns=6)
    result = SelectiveHuffmanCompressor(config).compress(stream)
    assert result.verify(stream)
    bits = result.extra["bits"]
    assert len(bits) == result.compressed_bits
    decoded = decode_selective_huffman(
        bits, result.extra["codes"], config, len(stream)
    )
    assert decoded == result.assigned_stream


@given(stream=streams)
@settings(max_examples=60, deadline=None)
def test_all_schemes_preserve_length(stream):
    for comp in (
        LZ77Compressor(LZ77Config(offset_bits=6, length_bits=4)),
        GolombCompressor(),
        AlternatingRLECompressor(RLEConfig(length_bits=4)),
        SelectiveHuffmanCompressor(HuffmanConfig(block_bits=4)),
    ):
        result = comp.compress(stream)
        assert len(result.assigned_stream) == len(stream)
        assert result.original_bits == len(stream)
