"""Property-based tests of the LZW core.

The central contract: for any ternary stream and any legal
configuration, encoding must produce codes within range, and decoding
must reproduce a fully specified stream that *covers* the original
(every specified bit preserved, every X resolved).
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.bitstream import TernaryVector
from repro.core import (
    CompressedStream,
    LZWConfig,
    LZWEncoder,
    compress,
    decode,
)

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
ternary_streams = st.text(alphabet="01X", min_size=0, max_size=400).map(
    TernaryVector
)

configs = st.builds(
    LZWConfig,
    char_bits=st.integers(min_value=1, max_value=5),
    dict_size=st.sampled_from([32, 64, 256]),
    entry_bits=st.integers(min_value=5, max_value=40),
    policy=st.sampled_from(["first", "popular", "lookahead"]),
    lookahead=st.integers(min_value=1, max_value=4),
).filter(lambda c: c.dict_size >= c.base_codes and c.entry_bits >= c.char_bits)


@given(stream=ternary_streams, config=configs)
@settings(max_examples=150, deadline=None)
def test_roundtrip_covers_original(stream, config):
    result = compress(stream, config)
    decoded = decode(result.compressed)
    assert len(decoded) == len(stream)
    assert decoded.is_fully_specified
    assert decoded.covers(stream)


@given(stream=ternary_streams, config=configs)
@settings(max_examples=100, deadline=None)
def test_codes_in_range_and_accounting(stream, config):
    result = compress(stream, config)
    cs = result.compressed
    assert all(0 <= code < config.dict_size for code in cs.codes)
    assert cs.compressed_bits == len(cs.codes) * config.code_bits
    if len(stream):
        expected = 1.0 - cs.compressed_bits / len(stream)
        assert abs(cs.ratio - expected) < 1e-12
    else:
        assert cs.codes == ()


@given(stream=ternary_streams, config=configs)
@settings(max_examples=100, deadline=None)
def test_expansions_sum_to_padded_length(stream, config):
    result = compress(stream, config)
    cs = result.compressed
    total_chars = -(-len(stream) // config.char_bits)
    assert sum(cs.expansion_chars) == total_chars


@given(stream=ternary_streams, config=configs)
@settings(max_examples=100, deadline=None)
def test_dictionary_respects_bounds(stream, config):
    encoder = LZWEncoder(config)
    encoder.encode(stream)
    d = encoder.dictionary
    assert len(d) <= config.dict_size
    for _code, chars in d.iter_entries():
        assert 2 <= len(chars) <= config.max_entry_chars
        assert all(0 <= c < config.base_codes for c in chars)


@given(stream=ternary_streams, config=configs)
@settings(max_examples=80, deadline=None)
def test_serialization_roundtrip(stream, config):
    result = compress(stream, config)
    bits = result.compressed.to_bits()
    back = CompressedStream.from_bits(bits, config, len(stream))
    assert back.codes == result.compressed.codes
    assert decode(back) == decode(result.compressed)


@given(stream=ternary_streams, config=configs)
@settings(max_examples=80, deadline=None)
def test_assigned_stream_matches_decode(stream, config):
    result = compress(stream, config)
    assert result.assigned_stream == decode(result.compressed)
    assert result.verify(stream)


@given(stream=ternary_streams, config=configs)
@settings(max_examples=60, deadline=None)
def test_determinism(stream, config):
    a = compress(stream, config)
    b = compress(stream, config)
    assert a.compressed.codes == b.compressed.codes


@given(
    data=st.text(alphabet="01", min_size=1, max_size=300),
    config=configs,
)
@settings(max_examples=80, deadline=None)
def test_fully_specified_streams_decode_exactly(data, config):
    """With no X bits there is no freedom: decode must equal the input."""
    stream = TernaryVector(data)
    result = compress(stream, config)
    assert decode(result.compressed) == stream
