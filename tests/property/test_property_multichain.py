"""Property-based tests for multi-chain arrangements and the container."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.bitstream import TernaryVector
from repro.circuit import TestSet
from repro.container import dump_bytes, load_bytes
from repro.core import (
    LZWConfig,
    LZWEncoder,
    chain_streams,
    compress_interleaved,
    compress_per_chain,
    decode,
    deinterleave_stream,
    interleave_stream,
    partition_chains,
)

CONFIG = LZWConfig(char_bits=2, dict_size=16, entry_bits=8)


@st.composite
def scan_sets(draw):
    width = draw(st.integers(min_value=2, max_value=20))
    vectors = draw(st.integers(min_value=1, max_value=8))
    cubes = [
        TernaryVector(draw(st.text(alphabet="01X", min_size=width, max_size=width)))
        for _ in range(vectors)
    ]
    return TestSet([f"c{i}" for i in range(width)], cubes)


@given(ts=scan_sets(), data=st.data())
@settings(max_examples=80, deadline=None)
def test_interleave_roundtrip(ts, data):
    n = data.draw(st.integers(min_value=1, max_value=ts.width))
    chains = partition_chains(ts, n)
    stream = interleave_stream(ts, chains)
    assert deinterleave_stream(stream, chains, len(ts)) == ts.cubes


@given(ts=scan_sets(), data=st.data())
@settings(max_examples=60, deadline=None)
def test_chain_streams_partition_all_bits(ts, data):
    n = data.draw(st.integers(min_value=1, max_value=ts.width))
    chains = partition_chains(ts, n)
    streams = chain_streams(ts, chains)
    assert sum(len(s) for s in streams) == ts.total_bits
    # Care bits are conserved across the partition.
    assert sum(s.care_count for s in streams) == sum(
        c.care_count for c in ts
    )


@given(ts=scan_sets(), data=st.data())
@settings(max_examples=40, deadline=None)
def test_both_arrangements_cover(ts, data):
    n = data.draw(st.integers(min_value=1, max_value=ts.width))
    chains = partition_chains(ts, n)
    # compress_* raise internally if coverage breaks; reaching the
    # ratio property means the invariant held.
    pc = compress_per_chain(ts, chains, CONFIG)
    il = compress_interleaved(ts, chains, CONFIG)
    assert pc.original_bits == il.original_bits == ts.total_bits


@given(stream=st.text(alphabet="01X", max_size=200).map(TernaryVector))
@settings(max_examples=80, deadline=None)
def test_container_roundtrip(stream):
    compressed = LZWEncoder(CONFIG).encode(stream)
    back = load_bytes(dump_bytes(compressed))
    assert back.codes == compressed.codes
    assert back.original_bits == compressed.original_bits
    assert decode(back) == decode(compressed)
