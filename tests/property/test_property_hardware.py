"""Property-based tests: the cycle-accurate hardware model must agree
with the software decoder bit-for-bit and with the analytic timing model
cycle-for-cycle, for any stream and configuration."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.bitstream import TernaryVector
from repro.core import LZWConfig, compress, decode
from repro.hardware import DecompressorModel, analyze_download

streams = st.text(alphabet="01X", min_size=1, max_size=250).map(TernaryVector)

configs = st.builds(
    LZWConfig,
    char_bits=st.integers(min_value=1, max_value=4),
    dict_size=st.sampled_from([16, 32, 64]),
    entry_bits=st.integers(min_value=4, max_value=24),
).filter(lambda c: c.dict_size >= c.base_codes and c.entry_bits >= c.char_bits)


@given(
    stream=streams,
    config=configs,
    clock_ratio=st.integers(min_value=1, max_value=12),
    double_buffered=st.booleans(),
)
@settings(max_examples=100, deadline=None)
def test_hardware_model_matches_software_and_timing(
    stream, config, clock_ratio, double_buffered
):
    result = compress(stream, config)
    bits = result.compressed.to_bits()
    model = DecompressorModel(
        config, clock_ratio=clock_ratio, double_buffered=double_buffered
    )
    run = model.run(bits, len(stream))
    assert run.scan_stream == decode(result.compressed)
    report = analyze_download(
        result.compressed, clock_ratio, double_buffered=double_buffered
    )
    assert run.tester_cycles == report.tester_cycles


@given(stream=streams, config=configs)
@settings(max_examples=60, deadline=None)
def test_faster_clock_never_hurts(stream, config):
    result = compress(stream, config)
    previous = None
    for k in (1, 2, 4, 8, 16):
        cycles = analyze_download(result.compressed, k).tester_cycles
        if previous is not None:
            assert cycles <= previous
        previous = cycles


@given(stream=streams, config=configs, k=st.integers(min_value=1, max_value=12))
@settings(max_examples=60, deadline=None)
def test_double_buffering_never_hurts(stream, config, k):
    result = compress(stream, config)
    serial = analyze_download(result.compressed, k).tester_cycles
    buffered = analyze_download(
        result.compressed, k, double_buffered=True
    ).tester_cycles
    assert buffered <= serial


@given(stream=streams, config=configs)
@settings(max_examples=40, deadline=None)
def test_improvement_approaches_ratio_with_buffering(stream, config):
    """At an extreme clock ratio the double-buffered engine is download-
    bound, so the improvement converges to the compression ratio."""
    result = compress(stream, config)
    report = analyze_download(
        result.compressed, 4096, double_buffered=True
    )
    # One pipeline-fill code of slack, plus rounding.
    slack_bits = config.code_bits + 1
    assert report.tester_cycles <= result.compressed_bits + slack_bits
