"""Property-based structural checks of the generated Verilog."""

import re

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.bitstream import TernaryVector
from repro.core import LZWConfig, LZWEncoder, decode
from repro.hardware import generate_decompressor, generate_testbench

@st.composite
def configs(draw):
    char_bits = draw(st.integers(min_value=1, max_value=8))
    dict_size = draw(
        st.sampled_from([n for n in (16, 64, 256, 1024) if n >= 1 << char_bits])
    )
    entry_bits = draw(st.integers(min_value=max(8, char_bits), max_value=127))
    return LZWConfig(
        char_bits=char_bits, dict_size=dict_size, entry_bits=entry_bits
    )


@given(config=configs())
@settings(max_examples=60, deadline=None)
def test_rtl_structure_for_any_config(config):
    rtl = generate_decompressor(config)
    # Balanced structure.
    assert len(re.findall(r"\bbegin\b", rtl)) == len(re.findall(r"\bend\b", rtl))
    assert rtl.count("case (") == rtl.count("endcase")
    assert rtl.count("module ") == rtl.count("endmodule")
    # Parameters always reflect the configuration.
    assert f"localparam integer CE        = {config.code_bits};" in rtl
    assert f"localparam integer CC        = {config.char_bits};" in rtl
    assert f"localparam integer DICT_SIZE = {config.dict_size};" in rtl
    assert f"localparam integer DATA_W    = {config.entry_bits};" in rtl
    assert (
        f"localparam integer MAX_CHARS = {config.max_entry_chars};" in rtl
    )


@given(
    text=st.text(alphabet="01X", min_size=1, max_size=60),
    clock_ratio=st.integers(min_value=1, max_value=12),
)
@settings(max_examples=40, deadline=None)
def test_testbench_embeds_consistent_data(text, clock_ratio):
    config = LZWConfig(char_bits=2, dict_size=16, entry_bits=8)
    compressed = LZWEncoder(config).encode(TernaryVector(text))
    tb = generate_testbench(compressed, clock_ratio=clock_ratio)
    bits = compressed.to_bits()
    expected = decode(compressed)
    assert f"localparam integer N_STIM   = {len(bits)};" in tb
    assert f"localparam integer N_EXPECT = {len(expected)};" in tb
    assert f"localparam integer RATIO    = {clock_ratio};" in tb
    # Every stimulus/expected bit appears exactly once in the initialiser.
    assert len(re.findall(r"stim\[\d+\] = 1'b[01];", tb)) == len(bits)
    assert len(
        re.findall(r"expect_bits\[\d+\] = 1'b[01];", tb)
    ) == len(expected)
