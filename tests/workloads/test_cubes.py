"""Unit tests for the synthetic cube generator."""

import pytest

from repro.workloads import CubeProfile, profile_for, synthesize


class TestProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            CubeProfile("p", vectors=0, width=10, x_density=0.5)
        with pytest.raises(ValueError):
            CubeProfile("p", vectors=1, width=10, x_density=1.0)
        with pytest.raises(ValueError):
            CubeProfile("p", vectors=1, width=10, x_density=0.5, zipf=-1)
        with pytest.raises(ValueError):
            CubeProfile("p", vectors=1, width=10, x_density=0.5, ones_bias=2)

    def test_derived(self):
        p = CubeProfile("p", vectors=10, width=100, x_density=0.8)
        assert p.total_bits == 1000
        assert p.target_care == 20

    def test_profile_for_stable_seed(self):
        a = profile_for("s9234f", 10, 100, 0.7)
        b = profile_for("s9234f", 10, 100, 0.7)
        c = profile_for("other", 10, 100, 0.7)
        assert a.seed == b.seed
        assert a.seed != c.seed

    def test_profile_for_overrides(self):
        p = profile_for("x", 10, 100, 0.7, pool_size=3, zipf=2.5)
        assert p.pool_size == 3
        assert p.zipf == 2.5


class TestSynthesize:
    def test_shape(self):
        ts = synthesize(CubeProfile("p", vectors=25, width=64, x_density=0.8))
        assert len(ts) == 25
        assert ts.width == 64
        assert ts.name == "p"

    def test_density_hits_target(self):
        for xd in (0.35, 0.7, 0.93):
            profile = CubeProfile("p", vectors=40, width=200, x_density=xd)
            ts = synthesize(profile)
            assert ts.x_density == pytest.approx(xd, abs=0.02)

    def test_deterministic(self):
        profile = CubeProfile("p", vectors=15, width=80, x_density=0.75, seed=9)
        assert synthesize(profile).cubes == synthesize(profile).cubes

    def test_seed_changes_output(self):
        a = synthesize(CubeProfile("p", 15, 80, 0.75, seed=1))
        b = synthesize(CubeProfile("p", 15, 80, 0.75, seed=2))
        assert a.cubes != b.cubes

    def test_template_reuse_creates_similarity(self):
        """Vectors drawn from the same pool must be largely compatible —
        the structural property the dictionary coder exploits."""
        profile = CubeProfile(
            "p", vectors=30, width=120, x_density=0.8, pool_size=2, zipf=3.0
        )
        cubes = synthesize(profile).cubes
        compatible_pairs = sum(
            1
            for i in range(len(cubes))
            for j in range(i + 1, len(cubes))
            if cubes[i].compatible(cubes[j])
        )
        total_pairs = len(cubes) * (len(cubes) - 1) // 2
        assert compatible_pairs > total_pairs * 0.3

    def test_care_bits_cluster(self):
        """Care bits must arrive in runs, not uniformly scattered."""
        profile = CubeProfile(
            "p", vectors=20, width=400, x_density=0.9, cluster_mean_len=15
        )
        ts = synthesize(profile)
        adjacent = 0
        care_total = 0
        for cube in ts:
            mask = cube.care_mask
            care_total += cube.care_count
            adjacent += bin(mask & (mask >> 1)).count("1")
        # Uniform scattering at 10% density would give ~10% adjacency;
        # clusters push it far higher.
        assert adjacent > 0.4 * care_total

    def test_tiny_width(self):
        ts = synthesize(CubeProfile("p", vectors=5, width=3, x_density=0.3))
        assert ts.width == 3
