"""Unit tests for workload validation."""

import pytest

from repro.bitstream import TernaryVector
from repro.circuit import TestSet
from repro.workloads import build_testset, validate_testset
from repro.workloads.cubes import CubeProfile, synthesize


class TestAgainstBenchmarks:
    @pytest.mark.parametrize("name", ["s9234f", "s5378f"])
    def test_matched_sets_validate(self, name):
        ts = build_testset(name, scale=0.3)
        report = validate_testset(ts, name)
        assert report.ok, report.failures()

    def test_wrong_benchmark_fails_geometry(self):
        ts = build_testset("s9234f", scale=0.3)
        report = validate_testset(ts, "s13207f")
        assert not report.checks["geometry"]
        assert "geometry" in report.failures()


class TestAgainstProfiles:
    def test_profile_roundtrip(self):
        profile = CubeProfile("p", vectors=30, width=120, x_density=0.8)
        report = validate_testset(synthesize(profile), profile)
        assert report.ok

    def test_density_mismatch_detected(self):
        profile = CubeProfile("p", vectors=30, width=120, x_density=0.8)
        ts = synthesize(profile)
        wrong = CubeProfile("p", vectors=30, width=120, x_density=0.5)
        report = validate_testset(ts, wrong)
        assert not report.checks["x_density"]
        assert report.messages


class TestStructureChecks:
    def test_uniform_random_fails_clustering(self):
        import random

        rng = random.Random(0)
        cubes = [TernaryVector.random(200, 0.9, rng) for _ in range(30)]
        ts = TestSet([f"c{i}" for i in range(200)], cubes)
        profile = CubeProfile("u", vectors=30, width=200, x_density=0.9)
        report = validate_testset(ts, profile)
        assert not report.checks["clustering"]

    def test_incompatible_vectors_fail_similarity(self):
        # Distinct fully specified random vectors: with 100 care bits a
        # pair agrees everywhere with probability 2^-100.
        import random

        rng = random.Random(1)
        cubes = [TernaryVector.random(100, 0.0, rng) for _ in range(20)]
        ts = TestSet([f"c{i}" for i in range(100)], cubes)
        profile = CubeProfile("d", vectors=20, width=100, x_density=0.01)
        report = validate_testset(ts, profile, density_tolerance=0.05)
        assert not report.checks["similarity"]
        assert report.measured["conflict_fraction"] > 0.3

    def test_single_vector_trivially_similar(self):
        ts = TestSet(["a", "b"], [TernaryVector("0X")])
        profile = CubeProfile("s", vectors=1, width=2, x_density=0.5)
        report = validate_testset(ts, profile, min_adjacency=0.0)
        assert report.checks["similarity"]
