"""Unit tests for the paper benchmark metadata."""

import pytest

from repro.workloads import (
    BENCHMARKS,
    TABLE1_CIRCUITS,
    TABLE3_CIRCUITS,
    get_benchmark,
)


def test_table_memberships():
    assert set(TABLE1_CIRCUITS) <= set(TABLE3_CIRCUITS)
    assert set(TABLE3_CIRCUITS) == set(BENCHMARKS)
    assert len(TABLE3_CIRCUITS) == 12


def test_mintest_sizes():
    """The well-known MinTest set sizes the literature quotes."""
    expected = {
        "s5378f": 23754,
        "s9234f": 39273,
        "s13207f": 165200,
        "s15850f": 76986,
        "s38417f": 164736,
        "s38584f": 199104,
    }
    for name, bits in expected.items():
        assert get_benchmark(name).total_bits == bits


def test_dict_sizes_are_powers_of_two():
    for bench in BENCHMARKS.values():
        n = bench.dict_size
        assert n >= 2 and (n & (n - 1)) == 0


def test_x_density_in_range():
    for bench in BENCHMARKS.values():
        assert 0.0 < bench.x_density < 1.0


def test_table1_rows_have_paper_numbers():
    for name in TABLE1_CIRCUITS:
        bench = get_benchmark(name)
        assert bench.paper_lzw is not None
        assert bench.paper_lz77 is not None
        assert bench.paper_rle is not None
        # In the paper LZW wins every Table 1 row.
        assert bench.paper_lzw >= bench.paper_lz77
        assert bench.paper_lzw >= bench.paper_rle


def test_paper_charsize_collapse_at_10_bits():
    """Table 4: at C_C=10 with N=1024 there are no free codes."""
    for name in TABLE1_CIRCUITS:
        assert get_benchmark(name).paper_charsize[10] == 0.0


def test_paper_entrysize_is_monotone_nondecreasing():
    """Table 5: compression rises then saturates with C_MDATA."""
    for name in TABLE1_CIRCUITS:
        values = get_benchmark(name).paper_entrysize
        ordered = [values[k] for k in sorted(values)]
        for a, b in zip(ordered, ordered[1:]):
            assert b >= a - 0.35  # saturation plateau tolerance


def test_estimated_flags():
    assert get_benchmark("b14").size_estimated
    assert not get_benchmark("s13207f").size_estimated


def test_unknown_benchmark_message():
    with pytest.raises(KeyError, match="known:"):
        get_benchmark("s99999")
