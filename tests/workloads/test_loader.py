"""Unit tests for the workload loader."""

import pytest

from repro.workloads import available_workloads, build_testset, get_benchmark


def test_available_lists_all():
    names = available_workloads()
    assert "s13207f" in names and "b14" in names
    assert names == sorted(names)


def test_build_matches_profile():
    bench = get_benchmark("s9234f")
    ts = build_testset("s9234f", scale=0.25)
    assert ts.width == bench.width
    assert len(ts) == round(bench.vectors * 0.25)
    assert ts.x_density == pytest.approx(bench.x_density, abs=0.02)


def test_scale_validation():
    with pytest.raises(ValueError):
        build_testset("s9234f", scale=0.0)
    with pytest.raises(ValueError):
        build_testset("s9234f", scale=1.5)


def test_benchmark_object_accepted():
    bench = get_benchmark("s5378f")
    ts = build_testset(bench, scale=0.2)
    assert ts.name == "s5378f"


def test_deterministic_by_default():
    a = build_testset("s5378f", scale=0.2)
    b = build_testset("s5378f", scale=0.2)
    assert a.cubes == b.cubes


def test_seed_override():
    a = build_testset("s5378f", scale=0.2, seed=1)
    b = build_testset("s5378f", scale=0.2, seed=2)
    assert a.cubes != b.cubes


def test_profile_overrides_apply():
    # The benchmark's calibrated overrides can be overridden again.
    ts = build_testset("s38417f", scale=0.1, pool_size=2)
    assert len(ts) == round(get_benchmark("s38417f").vectors * 0.1)
