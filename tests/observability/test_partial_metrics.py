"""Partial ``--metrics-json`` flushes on SIGINT/SIGTERM (satellite).

An interrupted ``repro compress``/``repro batch`` must still leave a
*valid* ``repro.metrics/1`` envelope on disk, marked ``"partial": true``
so consumers never mistake it for a complete run — and then die with
the conventional 128+signum status.
"""

import json
import os
import random
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.observability import CounterRecorder, metrics_snapshot, write_metrics_json

SRC = str(Path(__file__).resolve().parents[2] / "src")


def test_partial_envelope_marked_and_complete_one_unmarked(tmp_path):
    recorder = CounterRecorder()
    recorder.incr("encode.codes", 3)
    complete = metrics_snapshot(recorder)
    assert "partial" not in complete  # goldens/consumers see no new key
    flushed = write_metrics_json(recorder, tmp_path / "m.json", partial=True)
    assert flushed["partial"] is True
    on_disk = json.loads((tmp_path / "m.json").read_text())
    assert on_disk["partial"] is True
    assert on_disk["schema"] == "repro.metrics/1"
    assert on_disk["counters"]["encode.codes"] == 3


def _big_workload(tmp_path, lines=12000, width=64):
    rng = random.Random(7)
    path = tmp_path / "big.test"
    path.write_text(
        "\n".join(
            "".join(rng.choice("01X") for _ in range(width)) for _ in range(lines)
        )
        + "\n"
    )
    return path


def _run_and_interrupt(tmp_path, command, signum, sync):
    """Start a long CLI run, signal it mid-compress, reap it.

    ``sync`` is how we know the run is inside the guarded section:
    ``"readline"`` waits for the first output line (``compress`` prints
    the workload summary before encoding), ``float`` seconds sleep
    (``batch`` prints nothing until the work is done; the 12k-line
    workload encodes for ~3s, so a 1.5s delay lands mid-encode with
    a wide margin on both sides).
    """
    metrics = tmp_path / "metrics.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *command, "--metrics-json", str(metrics)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    if sync == "readline":
        # The summary line prints just *before* the guarded section; a
        # short pause after it puts the signal well inside the ~3s
        # encode rather than in the to_stream() gap ahead of the guard.
        proc.stdout.readline()
        time.sleep(0.8)
    else:
        time.sleep(sync)
    proc.send_signal(signum)
    proc.communicate(timeout=30)
    return proc.returncode, metrics


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
def test_interrupted_compress_flushes_partial_envelope(tmp_path, signum):
    workload = _big_workload(tmp_path)
    code, metrics = _run_and_interrupt(
        tmp_path, ["compress", str(workload)], signum, sync="readline"
    )
    assert code == -signum  # default disposition after the flush
    snapshot = json.loads(metrics.read_text())
    assert snapshot["partial"] is True
    assert snapshot["schema"] == "repro.metrics/1"


def test_interrupted_batch_flushes_partial_envelope(tmp_path):
    workload = _big_workload(tmp_path)
    code, metrics = _run_and_interrupt(
        tmp_path,
        ["batch", str(workload), "--workers", "1"],
        signal.SIGTERM,
        sync=1.5,
    )
    assert code == -signal.SIGTERM
    snapshot = json.loads(metrics.read_text())
    assert snapshot["partial"] is True
    assert snapshot["schema"] == "repro.metrics/1"
