"""Unit tests for the versioned metrics envelope."""

import json

from repro.observability import (
    SCHEMA_VERSION,
    CompositeRecorder,
    CounterRecorder,
    SpanRecorder,
    metrics_snapshot,
    strip_timing,
    write_metrics_json,
)


def _loaded_recorder():
    counters = CounterRecorder()
    spans = SpanRecorder()
    rec = CompositeRecorder([counters, spans])
    rec.incr("encode.codes", 3)
    rec.observe("encode.phrase_len_chars", 2, 3)
    with rec.span("encode"):
        pass
    return rec


class TestEnvelope:
    def test_four_keys_always_present(self):
        snap = metrics_snapshot(CounterRecorder())
        assert set(snap) == {"schema", "counters", "histograms", "spans"}
        assert snap["schema"] == SCHEMA_VERSION
        assert snap["spans"] == []

    def test_snapshot_content(self):
        snap = metrics_snapshot(_loaded_recorder())
        assert snap["counters"] == {"encode.codes": 3}
        assert snap["histograms"] == {"encode.phrase_len_chars": {"2": 3}}
        assert [s["name"] for s in snap["spans"]] == ["encode"]

    def test_json_round_trip(self):
        snap = metrics_snapshot(_loaded_recorder())
        assert json.loads(json.dumps(snap)) == snap


class TestStripTiming:
    def test_drops_seconds_keeps_names(self):
        snap = metrics_snapshot(_loaded_recorder())
        stripped = strip_timing(snap)
        assert stripped["spans"] == [{"name": "encode"}]
        assert stripped["counters"] == snap["counters"]
        assert stripped["histograms"] == snap["histograms"]

    def test_original_not_mutated(self):
        snap = metrics_snapshot(_loaded_recorder())
        strip_timing(snap)
        assert "seconds" in snap["spans"][0]

    def test_same_counters_different_timings_agree(self):
        a = strip_timing(metrics_snapshot(_loaded_recorder()))
        b = strip_timing(metrics_snapshot(_loaded_recorder()))
        assert a == b


class TestWriteMetricsJson:
    def test_writes_valid_envelope(self, tmp_path):
        path = tmp_path / "metrics.json"
        envelope = write_metrics_json(_loaded_recorder(), path)
        on_disk = json.loads(path.read_text())
        assert on_disk == envelope
        assert on_disk["schema"] == SCHEMA_VERSION

    def test_stable_key_order(self, tmp_path):
        path = tmp_path / "metrics.json"
        write_metrics_json(_loaded_recorder(), path)
        text = path.read_text()
        # sort_keys=True: "counters" before "histograms" before "schema".
        assert text.index('"counters"') < text.index('"histograms"')
        assert text.index('"histograms"') < text.index('"schema"')
        assert text.endswith("\n")
