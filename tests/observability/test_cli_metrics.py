"""CLI surface of the observability subsystem: --metrics-json and
``stats --encode``."""

import json

import pytest

from repro.cli import main
from repro.observability import SCHEMA_VERSION, strip_timing
from repro.testfile import write_test_file
from repro.workloads import build_testset


@pytest.fixture
def cube_file(tmp_path):
    ts = build_testset("s9234f", scale=0.1)
    path = tmp_path / "cubes.test"
    write_test_file(ts, path)
    return str(path)


def _read(path):
    return json.loads(path.read_text())


class TestCompressMetrics:
    def test_writes_envelope(self, cube_file, tmp_path, capsys):
        out = tmp_path / "m.json"
        rc = main(["compress", cube_file, "--metrics-json", str(out)])
        assert rc == 0
        snap = _read(out)
        assert snap["schema"] == SCHEMA_VERSION
        assert snap["counters"]["encode.codes"] > 0
        assert snap["counters"]["decode.codes"] == snap["counters"]["encode.codes"]
        assert [s["name"] for s in snap["spans"]][:2] == ["encode", "assign"]
        assert f"wrote {out}" in capsys.readouterr().out

    def test_container_write_counted(self, cube_file, tmp_path, capsys):
        out = tmp_path / "m.json"
        container = tmp_path / "c.lzwt"
        rc = main(
            [
                "compress",
                cube_file,
                "-o",
                str(container),
                "--metrics-json",
                str(out),
            ]
        )
        assert rc == 0
        snap = _read(out)
        assert snap["counters"]["container.bytes_written"] == (
            container.stat().st_size
        )

    def test_no_flag_no_file(self, cube_file, tmp_path, capsys):
        assert main(["compress", cube_file]) == 0
        assert not list(tmp_path.glob("*.json"))


class TestBatchMetrics:
    def _run(self, cube_file, tmp_path, workers):
        out = tmp_path / f"m{workers}.json"
        rc = main(
            [
                "batch",
                cube_file,
                "--workers",
                str(workers),
                "--shard-bits",
                "1024",
                "--metrics-json",
                str(out),
            ]
        )
        assert rc == 0
        return _read(out)

    def test_counters_identical_across_worker_counts(
        self, cube_file, tmp_path, capsys
    ):
        snaps = [
            strip_timing(self._run(cube_file, tmp_path, w)) for w in (1, 2, 8)
        ]
        assert snaps[0] == snaps[1] == snaps[2]

    def test_batch_counters_present(self, cube_file, tmp_path, capsys):
        snap = self._run(cube_file, tmp_path, 1)
        assert snap["counters"]["batch.workloads"] == 1
        assert snap["counters"]["batch.shards"] > 1
        assert any(s["name"].startswith("shard[") for s in snap["spans"])


class TestVerifyMetrics:
    def test_verify_emits_decode_counters(self, cube_file, tmp_path, capsys):
        container = tmp_path / "c.lzwt"
        assert main(["compress", cube_file, "-o", str(container)]) == 0
        out = tmp_path / "m.json"
        rc = main(
            [
                "verify",
                str(container),
                "--against",
                cube_file,
                "--metrics-json",
                str(out),
            ]
        )
        assert rc == 0
        snap = _read(out)
        assert snap["counters"]["decode.codes"] > 0
        names = [s["name"] for s in snap["spans"]]
        assert "verify.decode" in names and "verify.coverage" in names

    def test_corrupt_container_still_writes_metrics(
        self, cube_file, tmp_path, capsys
    ):
        container = tmp_path / "c.lzwt"
        assert main(["compress", cube_file, "-o", str(container)]) == 0
        blob = bytearray(container.read_bytes())
        blob[-1] ^= 0xFF
        container.write_bytes(bytes(blob))
        out = tmp_path / "m.json"
        rc = main(["verify", str(container), "--metrics-json", str(out)])
        assert rc == 4
        assert _read(out)["schema"] == SCHEMA_VERSION


class TestStatsEncode:
    def test_encode_prints_counters_and_spans(self, cube_file, capsys):
        rc = main(["stats", cube_file, "--encode"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "encode.codes:" in out
        assert "histogram encode.phrase_len_chars:" in out
        assert "spans:" in out

    def test_metrics_json_implies_encode(self, cube_file, tmp_path, capsys):
        out = tmp_path / "m.json"
        rc = main(["stats", cube_file, "--metrics-json", str(out)])
        assert rc == 0
        assert _read(out)["counters"]["encode.codes"] > 0

    def test_plain_stats_unchanged(self, cube_file, capsys):
        rc = main(["stats", cube_file])
        assert rc == 0
        out = capsys.readouterr().out
        assert "encode.codes" not in out
