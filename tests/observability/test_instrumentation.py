"""Instrumentation at the pipeline seams: the counters must mean what
the schema says they mean, and attaching a recorder must never change
any output."""

import math

import pytest

from repro.bitstream import TernaryVector
from repro.container import dump_bytes, load_bytes
from repro.core import LZWConfig, compress, compress_batch
from repro.core.decoder import decode
from repro.core.encoder import LZWEncoder
from repro.observability import (
    CompositeRecorder,
    CounterRecorder,
    SpanRecorder,
    metrics_snapshot,
    strip_timing,
)
from repro.observability import schema as ev
from repro.reliability.verify import verify_container

CONFIG = LZWConfig(char_bits=3, dict_size=64, entry_bits=18)
STREAM = TernaryVector("01XX10XXX1" * 60)


@pytest.fixture
def counted():
    rec = CounterRecorder()
    result = compress(STREAM, CONFIG, recorder=rec)
    return rec, result


class TestEncoderCounters:
    def test_chars_is_ceil_of_stream_length(self, counted):
        rec, _ = counted
        expected = math.ceil(len(STREAM) / CONFIG.char_bits)
        assert rec.counters[ev.ENCODE_CHARS] == expected

    def test_codes_matches_output(self, counted):
        rec, result = counted
        assert rec.counters[ev.ENCODE_CODES] == result.compressed.num_codes

    def test_phrase_length_histogram_sums_to_chars(self, counted):
        rec, _ = counted
        assert rec.histogram_total(ev.HIST_PHRASE_LEN) == rec.counters[
            ev.ENCODE_CODES
        ]
        assert rec.histogram_weighted_sum(ev.HIST_PHRASE_LEN) == rec.counters[
            ev.ENCODE_CHARS
        ]

    def test_xbits_account_for_every_dont_care(self, counted):
        rec, _ = counted
        total_chars = rec.counters[ev.ENCODE_CHARS]
        care_bits = len(STREAM) - STREAM.x_count
        # Padding of the final partial character counts as X bits.
        assert rec.counters[ev.ENCODE_XBITS] == (
            total_chars * CONFIG.char_bits - care_bits
        )
        assert rec.histogram_weighted_sum(ev.HIST_XBITS_PER_PHRASE) == (
            rec.counters[ev.ENCODE_XBITS]
        )

    def test_codes_per_width_single_bin(self, counted):
        rec, result = counted
        assert rec.histograms[ev.HIST_CODES_PER_WIDTH] == {
            CONFIG.code_bits: result.compressed.num_codes
        }

    def test_recorder_does_not_change_output(self):
        plain = LZWEncoder(CONFIG).encode(STREAM)
        recorded = LZWEncoder(CONFIG, recorder=CounterRecorder()).encode(STREAM)
        assert plain.codes == recorded.codes
        assert plain.expansion_chars == recorded.expansion_chars

    def test_empty_stream_emits_nothing(self):
        rec = CounterRecorder()
        LZWEncoder(CONFIG, recorder=rec).encode(TernaryVector(""))
        assert rec.counters == {}


class TestDecoderCounters:
    def test_decode_mirrors_encode(self, counted):
        enc_rec, result = counted
        dec_rec = CounterRecorder()
        decode(result.compressed, recorder=dec_rec)
        assert dec_rec.counters[ev.DECODE_CODES] == enc_rec.counters[
            ev.ENCODE_CODES
        ]
        assert dec_rec.counters[ev.DECODE_CHARS] == enc_rec.counters[
            ev.ENCODE_CHARS
        ]

    def test_dict_rebuild_matches_encoder_allocs(self, counted):
        enc_rec, result = counted
        dec_rec = CounterRecorder()
        decode(result.compressed, recorder=dec_rec)
        assert dec_rec.counters[ev.DECODE_DICT_ENTRIES] == enc_rec.counters[
            ev.DICT_ALLOCS
        ]

    def test_adaptive_resets_mirrored(self):
        config = LZWConfig(
            char_bits=1, dict_size=4, entry_bits=3, reset_on_full=True
        )
        enc_rec = CounterRecorder()
        result = compress(
            TernaryVector("01101100101101001011" * 4), config, recorder=enc_rec
        )
        assert enc_rec.counters.get(ev.DICT_RESETS, 0) > 0
        dec_rec = CounterRecorder()
        decode(result.compressed, recorder=dec_rec)
        assert dec_rec.counters.get(ev.DECODE_RESETS, 0) == enc_rec.counters[
            ev.DICT_RESETS
        ]


class TestDictionaryPressureCounters:
    def test_full_skips_once_dictionary_saturates(self):
        config = LZWConfig(char_bits=2, dict_size=8, entry_bits=16)
        rec = CounterRecorder()
        compress(TernaryVector("01" * 300), config, recorder=rec)
        assert rec.counters[ev.DICT_ALLOCS] == 8 - config.base_codes
        assert rec.counters.get(ev.DICT_FULL_SKIPS, 0) > 0

    def test_cmdata_truncations_on_tiny_entries(self):
        # max_entry_chars = 2: every 2-char entry is at the wall.
        config = LZWConfig(char_bits=2, dict_size=256, entry_bits=4)
        rec = CounterRecorder()
        compress(TernaryVector("0110" * 120), config, recorder=rec)
        assert rec.counters.get(ev.DICT_CMDATA_TRUNCATIONS, 0) > 0


class TestContainerCounters:
    def test_write_and_read_byte_accounting(self, counted):
        _, result = counted
        rec = CounterRecorder()
        blob = dump_bytes(result.compressed, result.assigned_stream, recorder=rec)
        assert rec.counters[ev.CONTAINER_BYTES_WRITTEN] == len(blob)
        assert rec.counters[ev.CONTAINER_SEGMENTS_WRITTEN] == 1
        load_bytes(blob, recorder=rec)
        assert rec.counters[ev.CONTAINER_BYTES_READ] == len(blob)
        assert rec.counters[ev.CONTAINER_SEGMENTS_READ] == 1

    def test_recorder_does_not_change_bytes(self, counted):
        _, result = counted
        plain = dump_bytes(result.compressed, result.assigned_stream)
        recorded = dump_bytes(
            result.compressed, result.assigned_stream, recorder=CounterRecorder()
        )
        assert plain == recorded


class TestPipelineSpans:
    def test_compress_records_encode_and_assign(self):
        spans = SpanRecorder()
        compress(STREAM, CONFIG, recorder=spans)
        assert [name for name, _ in spans.spans] == ["encode", "assign"]
        assert all(seconds >= 0 for _, seconds in spans.spans)


class TestBatchMerging:
    def _snapshot(self, workers):
        rec = CompositeRecorder([CounterRecorder(), SpanRecorder()])
        items = compress_batch(
            CONFIG,
            [STREAM, TernaryVector("1X0X" * 80)],
            workers=workers,
            shard_bits=256,
            pattern_bits=0,
            recorder=rec,
        )
        return strip_timing(metrics_snapshot(rec)), [i.container for i in items]

    def test_merged_counters_worker_count_independent(self):
        one, containers_one = self._snapshot(workers=1)
        four, containers_four = self._snapshot(workers=4)
        assert one == four
        assert containers_one == containers_four

    def test_batch_counters_present(self):
        snap, _ = self._snapshot(workers=1)
        assert snap["counters"][ev.BATCH_WORKLOADS] == 2
        assert snap["counters"][ev.BATCH_SHARDS] >= 2
        # Per-shard worker spans surface under the shard[i.j] label.
        assert any(s["name"].startswith("shard[") for s in snap["spans"])


class TestVerifyMetrics:
    def _container(self):
        result = compress(STREAM, CONFIG)
        return dump_bytes(result.compressed, result.assigned_stream)

    def test_report_carries_snapshot_on_pass(self):
        rec = CompositeRecorder([CounterRecorder(), SpanRecorder()])
        report = verify_container(self._container(), STREAM, recorder=rec)
        assert report.ok
        assert report.metrics is not None
        assert report.metrics["schema"] == "repro.metrics/1"
        assert ev.DECODE_CODES in report.metrics["counters"]
        assert any(
            s["name"].startswith("verify.") for s in report.metrics["spans"]
        )

    def test_report_carries_snapshot_on_failure(self):
        blob = bytearray(self._container())
        blob[-1] ^= 0xFF  # corrupt the payload tail
        rec = CompositeRecorder([CounterRecorder(), SpanRecorder()])
        report = verify_container(bytes(blob), recorder=rec)
        assert not report.ok
        assert report.metrics is not None
        assert report.metrics["spans"]  # stages that ran are on record

    def test_no_recorder_no_metrics(self):
        report = verify_container(self._container())
        assert report.metrics is None
