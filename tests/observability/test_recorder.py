"""Unit tests for the recorder sinks themselves."""

import pytest

from repro.observability import (
    NULL_RECORDER,
    CompositeRecorder,
    CounterRecorder,
    NullRecorder,
    Recorder,
    SpanRecorder,
)


class TestNullRecorder:
    def test_disabled(self):
        assert NullRecorder().enabled is False
        assert NULL_RECORDER.enabled is False

    def test_every_event_is_a_noop(self):
        rec = NullRecorder()
        rec.incr("a", 5)
        rec.observe("h", 3)
        with rec.span("stage"):
            pass
        rec.merge_child({"counters": {"a": 1}}, "child")
        assert rec.snapshot() == {}

    def test_base_recorder_defaults_enabled(self):
        # A custom subclass that overrides some events must be seen.
        assert Recorder.enabled is True


class TestCounterRecorder:
    def test_incr_accumulates(self):
        rec = CounterRecorder()
        rec.incr("encode.codes")
        rec.incr("encode.codes", 4)
        assert rec.counters == {"encode.codes": 5}

    def test_observe_bins(self):
        rec = CounterRecorder()
        rec.observe("h", 2)
        rec.observe("h", 2)
        rec.observe("h", 7, count=3)
        assert rec.histograms == {"h": {2: 2, 7: 3}}
        assert rec.histogram_total("h") == 5
        assert rec.histogram_weighted_sum("h") == 2 * 2 + 7 * 3

    def test_missing_histogram_helpers(self):
        rec = CounterRecorder()
        assert rec.histogram_total("nope") == 0
        assert rec.histogram_weighted_sum("nope") == 0

    def test_merge_child_sums(self):
        rec = CounterRecorder()
        rec.incr("a", 1)
        rec.observe("h", 2)
        child = {
            "counters": {"a": 2, "b": 7},
            "histograms": {"h": {"2": 1, "3": 4}},
        }
        rec.merge_child(child, "shard[0.0]")
        assert rec.counters == {"a": 3, "b": 7}
        assert rec.histograms == {"h": {2: 2, 3: 4}}

    def test_merge_child_ignores_none_and_empty(self):
        rec = CounterRecorder()
        rec.merge_child(None, "x")
        rec.merge_child({}, "x")
        assert rec.counters == {}

    def test_snapshot_sorted_and_stringified(self):
        rec = CounterRecorder()
        rec.incr("z")
        rec.incr("a")
        rec.observe("h", 10)
        rec.observe("h", 2)
        snap = rec.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        assert snap["histograms"] == {"h": {"2": 1, "10": 1}}

    def test_spans_absent_from_snapshot(self):
        assert "spans" not in CounterRecorder().snapshot()


class TestSpanRecorder:
    def test_span_records_positive_duration(self):
        rec = SpanRecorder()
        with rec.span("encode"):
            pass
        assert len(rec.spans) == 1
        name, seconds = rec.spans[0]
        assert name == "encode"
        assert seconds >= 0.0

    def test_seconds_sums_same_name(self):
        rec = SpanRecorder()
        rec._record("encode", 0.5)
        rec._record("encode", 0.25)
        rec._record("other", 1.0)
        assert rec.seconds("encode") == pytest.approx(0.75)
        assert rec.seconds("missing") == 0.0

    def test_merge_child_prefixes_names(self):
        rec = SpanRecorder()
        rec.merge_child(
            {"spans": [{"name": "encode", "seconds": 0.1}]}, "shard[1.2]"
        )
        assert rec.spans == [("shard[1.2].encode", 0.1)]

    def test_iter_named(self):
        rec = SpanRecorder()
        rec._record("shard[0.0].encode", 0.1)
        rec._record("plan", 0.2)
        rec._record("shard[0.1].assign", 0.3)
        assert list(rec.iter_named("shard[")) == [
            ("shard[0.0].encode", 0.1),
            ("shard[0.1].assign", 0.3),
        ]

    def test_snapshot_shape(self):
        rec = SpanRecorder()
        rec._record("encode", 0.5)
        assert rec.snapshot() == {"spans": [{"name": "encode", "seconds": 0.5}]}

    def test_nested_spans_record_inner_first(self):
        rec = SpanRecorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        assert [name for name, _ in rec.spans] == ["inner", "outer"]


class TestCompositeRecorder:
    def test_fans_out_to_all_children(self):
        counters = CounterRecorder()
        spans = SpanRecorder()
        rec = CompositeRecorder([counters, spans])
        rec.incr("a", 2)
        rec.observe("h", 1)
        with rec.span("stage"):
            pass
        assert counters.counters == {"a": 2}
        assert counters.histograms == {"h": {1: 1}}
        assert spans.seconds("stage") >= 0.0

    def test_snapshot_merges_sections(self):
        rec = CompositeRecorder([CounterRecorder(), SpanRecorder()])
        rec.incr("a")
        with rec.span("s"):
            pass
        snap = rec.snapshot()
        assert set(snap) == {"counters", "histograms", "spans"}

    def test_disabled_children_are_dropped(self):
        rec = CompositeRecorder([NullRecorder(), NullRecorder()])
        assert rec.enabled is False
        assert rec.children == []

    def test_empty_composite_disabled(self):
        assert CompositeRecorder([]).enabled is False

    def test_merge_child_reaches_every_sink(self):
        counters = CounterRecorder()
        spans = SpanRecorder()
        rec = CompositeRecorder([counters, spans])
        rec.merge_child(
            {
                "counters": {"a": 1},
                "spans": [{"name": "encode", "seconds": 0.2}],
            },
            "shard[0.0]",
        )
        assert counters.counters == {"a": 1}
        assert spans.spans == [("shard[0.0].encode", 0.2)]
