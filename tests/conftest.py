"""Shared fixtures for the test suite."""

import random

import pytest

from repro.bitstream import TernaryVector
from repro.core import LZWConfig


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate tests/golden/golden.json from the current code "
        "instead of comparing against it",
    )


@pytest.fixture
def rng():
    """Deterministic RNG for tests that sample."""
    return random.Random(12345)


@pytest.fixture
def small_config():
    """A small LZW configuration that exercises every bound quickly."""
    return LZWConfig(char_bits=3, dict_size=32, entry_bits=12)


@pytest.fixture
def paper_config():
    """The paper's headline configuration."""
    return LZWConfig(char_bits=7, dict_size=1024, entry_bits=63)


@pytest.fixture
def sparse_stream(rng):
    """A 2000-bit stream at 90% X, the regime the paper targets."""
    return TernaryVector.random(2000, x_density=0.9, rng=rng)


@pytest.fixture
def dense_stream(rng):
    """A fully specified 600-bit stream."""
    return TernaryVector.random(600, x_density=0.0, rng=rng)
