"""Unit tests for the test-vector file format."""

import pytest

from repro.bitstream import TernaryVector
from repro.circuit import TestSet
from repro.testfile import (
    format_test_text,
    parse_test_text,
    read_test_file,
    write_test_file,
)


class TestParse:
    def test_basic(self):
        ts = parse_test_text("01X\nX10\n")
        assert len(ts) == 2
        assert ts.width == 3
        assert ts.input_names == ["sc0", "sc1", "sc2"]

    def test_comments_and_blanks(self):
        ts = parse_test_text("# hi\n\n01X\n# mid\nX10\n")
        assert len(ts) == 2

    def test_inputs_header(self):
        ts = parse_test_text("# inputs: a b c\n01X\n")
        assert ts.input_names == ["a", "b", "c"]

    def test_inputs_header_width_mismatch(self):
        with pytest.raises(ValueError, match="wide"):
            parse_test_text("# inputs: a b\n01X\n")

    def test_dash_reads_as_x(self):
        ts = parse_test_text("0-1\n")
        assert ts.cubes[0] == TernaryVector("0X1")

    def test_ragged_vectors_rejected(self):
        with pytest.raises(ValueError, match="width"):
            parse_test_text("01\n010\n")

    def test_bad_character(self):
        with pytest.raises(ValueError, match=":2:"):
            parse_test_text("01\n02\n", name="f")

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no test vectors"):
            parse_test_text("# nothing\n")


class TestFormat:
    def test_roundtrip(self):
        ts = TestSet(["a", "b"], [TernaryVector("0X"), TernaryVector("11")])
        text = format_test_text(ts)
        back = parse_test_text(text)
        assert back.cubes == ts.cubes
        assert back.input_names == ["a", "b"]

    def test_no_header(self):
        ts = TestSet(["a"], [TernaryVector("1")])
        assert format_test_text(ts, header=False) == "1\n"


class TestFiles:
    def test_disk_roundtrip(self, tmp_path):
        ts = TestSet(["a", "b", "c"], [TernaryVector("01X")], name="demo")
        path = tmp_path / "demo.test"
        write_test_file(ts, path)
        back = read_test_file(path)
        assert back.cubes == ts.cubes
        assert back.name == "demo"
