"""CLI streaming surface: --stream round-trips, auto-detect, stats --raw."""

import io

import pytest

from repro.cli import main
from repro.reliability.errors import ConfigError
from repro.streamio import scan_stream

CORPUS = (
    b"A text corpus with some structure, repeated phrases, repeated "
    b"phrases, and enough length to span several chunks.\n" * 30
)


@pytest.fixture
def corpus_file(tmp_path):
    path = tmp_path / "corpus.txt"
    path.write_bytes(CORPUS)
    return str(path)


class TestStreamRoundTrip:
    def test_file_to_file(self, corpus_file, tmp_path, capsys):
        container = tmp_path / "out.lzwt"
        restored = tmp_path / "back.txt"
        rc = main([
            "compress", corpus_file, "--stream",
            "--chunk-bytes", "256", "-o", str(container),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "frame(s)" in out and "streamed" in out

        scan = scan_stream(container.read_bytes())
        assert scan.error is None
        assert scan.terminal.total_original_bits == len(CORPUS) * 8

        assert main(["decompress", str(container), "-o", str(restored)]) == 0
        assert restored.read_bytes() == CORPUS

    def test_chunk_size_does_not_change_container(
        self, corpus_file, tmp_path
    ):
        a, b = tmp_path / "a.lzwt", tmp_path / "b.lzwt"
        assert main([
            "compress", corpus_file, "--stream",
            "--chunk-bytes", "64", "-o", str(a),
        ]) == 0
        assert main([
            "compress", corpus_file, "--stream",
            "--chunk-bytes", "4096", "-o", str(b),
        ]) == 0
        assert a.read_bytes() == b.read_bytes()

    def test_codes_per_frame_changes_framing(self, corpus_file, tmp_path):
        a, b = tmp_path / "a.lzwt", tmp_path / "b.lzwt"
        assert main([
            "compress", corpus_file, "--stream",
            "--codes-per-frame", "32", "-o", str(a),
        ]) == 0
        assert main([
            "compress", corpus_file, "--stream", "-o", str(b),
        ]) == 0
        assert len(scan_stream(a.read_bytes()).frames) > len(
            scan_stream(b.read_bytes()).frames
        )

    def test_stdin_stdout_pipe(self, tmp_path, capsys, monkeypatch):
        # compress from stdin to stdout, then decompress the captured
        # bytes back — the report must ride on stderr, not the pipe.
        monkeypatch.setattr(
            "sys.stdin", io.TextIOWrapper(io.BytesIO(CORPUS))
        )
        capsysbinary = capsys  # alias for clarity

        class _BinaryOut(io.BytesIO):
            pass

        out = _BinaryOut()
        monkeypatch.setattr(
            "sys.stdout", io.TextIOWrapper(out)
        )
        rc = main([
            "compress", "-", "--stream", "--chunk-bytes", "128", "-o", "-",
        ])
        assert rc == 0
        import sys

        sys.stdout.flush()
        container = out.getvalue()
        assert scan_stream(container).error is None

        restored = tmp_path / "back.txt"
        monkeypatch.setattr(
            "sys.stdin", io.TextIOWrapper(io.BytesIO(container))
        )
        assert main(["decompress", "-", "-o", str(restored)]) == 0
        assert restored.read_bytes() == CORPUS


class TestErrors:
    def test_width_is_rejected_on_v5(self, corpus_file, tmp_path):
        container = tmp_path / "c.lzwt"
        assert main([
            "compress", corpus_file, "--stream", "-o", str(container),
        ]) == 0
        rc = main([
            "decompress", str(container),
            "-o", str(tmp_path / "x"), "--width", "8",
        ])
        assert rc == 2  # ConfigError exit code

    def test_stream_requires_output(self, corpus_file):
        rc = main(["compress", corpus_file, "--stream"])
        assert rc == 2

    def test_bad_chunk_bytes(self, corpus_file, tmp_path):
        rc = main([
            "compress", corpus_file, "--stream",
            "--chunk-bytes", "0", "-o", str(tmp_path / "c"),
        ])
        assert rc == 2

    def test_truncated_container_fails_typed(self, corpus_file, tmp_path):
        container = tmp_path / "c.lzwt"
        assert main([
            "compress", corpus_file, "--stream", "-o", str(container),
        ]) == 0
        data = container.read_bytes()
        container.write_bytes(data[: len(data) - 7])
        rc = main([
            "decompress", str(container), "-o", str(tmp_path / "x"),
        ])
        assert rc == 4  # ContainerError exit code


class TestStatsRaw:
    def test_reports_ratios_against_stdlib(self, corpus_file, capsys):
        rc = main(["stats", corpus_file, "--raw"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "zlib" in out and "lzma" in out
        assert "round-trip" in out.lower() or "ok" in out.lower()
