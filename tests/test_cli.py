"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.testfile import write_test_file
from repro.workloads import build_testset


@pytest.fixture
def cube_file(tmp_path):
    ts = build_testset("s9234f", scale=0.1)
    path = tmp_path / "cubes.test"
    write_test_file(ts, path)
    return str(path)


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "s13207f" in out and "table1" in out and "c17" in out


class TestCompress:
    def test_basic(self, cube_file, capsys):
        assert main(["compress", cube_file]) == 0
        out = capsys.readouterr().out
        assert "compression ratio" in out
        assert "memory requirement: 1024x69" in out

    def test_compare_and_ratios(self, cube_file, capsys):
        rc = main(
            ["compress", cube_file, "--compare", "--clock-ratio", "4", "8"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "baseline LZ77" in out and "baseline RLE" in out
        assert "at 4x clock" in out and "at 8x clock" in out

    def test_custom_config(self, cube_file, capsys):
        rc = main(
            [
                "compress",
                cube_file,
                "--char-bits",
                "4",
                "--dict-size",
                "256",
                "--entry-bits",
                "32",
                "--policy",
                "popular",
            ]
        )
        assert rc == 0
        assert "C_C=4 N=256" in capsys.readouterr().out


class TestAtpg:
    def test_builtin(self, tmp_path, capsys):
        out_file = tmp_path / "vectors.test"
        rc = main(["atpg", "--builtin", "c17", "-o", str(out_file)])
        assert rc == 0
        assert out_file.exists()
        assert "coverage 100.0%" in capsys.readouterr().out

    def test_missing_source(self, capsys):
        assert main(["atpg"]) == 2

    def test_bench_file(self, tmp_path, capsys):
        from repro.circuit import load_builtin, write_bench

        path = tmp_path / "c17.bench"
        path.write_text(write_bench(load_builtin("c17")))
        assert main(["atpg", str(path)]) == 0


class TestSynth:
    def test_writes_file(self, tmp_path, capsys):
        out_file = tmp_path / "s.test"
        rc = main(["synth", "s5378f", "--scale", "0.1", "-o", str(out_file)])
        assert rc == 0
        assert out_file.exists()
        assert "s5378f" in capsys.readouterr().out


class TestDecompress:
    def test_roundtrip_via_container(self, cube_file, tmp_path, capsys):
        container = tmp_path / "c.lzwt"
        assert main(["compress", cube_file, "-o", str(container)]) == 0
        out_file = tmp_path / "restored.test"
        rc = main(
            ["decompress", str(container), "-o", str(out_file), "--width", "247"]
        )
        assert rc == 0
        from repro.testfile import read_test_file

        original = read_test_file(cube_file)
        restored = read_test_file(out_file)
        assert len(restored) == len(original)
        for a, b in zip(restored, original):
            assert a.covers(b)

    def test_flat_bitstring_output(self, cube_file, tmp_path, capsys):
        container = tmp_path / "c.lzwt"
        main(["compress", cube_file, "-o", str(container)])
        out_file = tmp_path / "bits.txt"
        assert main(["decompress", str(container), "-o", str(out_file)]) == 0
        text = out_file.read_text().strip()
        assert set(text) <= {"0", "1"}

    def test_bad_width(self, cube_file, tmp_path, capsys):
        container = tmp_path / "c.lzwt"
        main(["compress", cube_file, "-o", str(container)])
        rc = main(
            ["decompress", str(container), "-o", str(tmp_path / "x"), "--width", "17"]
        )
        assert rc == 1


class TestStats:
    def test_reports_structure(self, cube_file, capsys):
        assert main(["stats", cube_file]) == 0
        out = capsys.readouterr().out
        assert "care adjacency" in out
        assert "entropy bound" in out
        assert "WTM" in out


class TestRtl:
    def test_generates_rtl(self, tmp_path, capsys):
        rc = main(["rtl", "-o", str(tmp_path / "rtl"), "--dict-size", "256"])
        assert rc == 0
        text = (tmp_path / "rtl" / "lzw_decompressor.v").read_text()
        assert "module lzw_decompressor" in text
        assert "DICT_SIZE = 256" in text

    def test_generates_testbench(self, cube_file, tmp_path, capsys):
        rc = main(
            [
                "rtl",
                "-o",
                str(tmp_path / "rtl"),
                "--testbench",
                cube_file,
                "--clock-ratio",
                "6",
            ]
        )
        assert rc == 0
        tb = (tmp_path / "rtl" / "tb_lzw_decompressor.v").read_text()
        assert "RATIO    = 6" in tb
        assert "PASS" in tb


class TestTable:
    def test_unknown_table(self, capsys):
        assert main(["table", "table99"]) == 2

    def test_small_table(self, capsys):
        rc = main(["table", "table2", "--scale", "0.05"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Download performance" in out
        assert "s13207f" in out
