"""The verified result cache: hits must be trustworthy or become misses."""

import json
import zlib

from repro.container import dump_bytes
from repro.core import LZWConfig, compress
from repro.fleet.cache import ResultCache, _SUFFIX
from repro.fleet.router import workload_fingerprint
from repro.observability import CounterRecorder
from repro.observability import schema as ev
from repro.testfile import parse_test_text

TEXT = "01X0\n1XX1\nX01X\n0110\nXXXX\n"


def container_for(text=TEXT):
    result = compress(parse_test_text(text).to_stream(), LZWConfig())
    return dump_bytes(result.compressed, result.assigned_stream)


def make_cache(tmp_path, **kw):
    recorder = CounterRecorder()
    return ResultCache(tmp_path / "cache", recorder=recorder, **kw), recorder


def counters(recorder):
    return recorder.snapshot().get("counters", {})


def test_roundtrip_returns_fields_and_container(tmp_path):
    cache, _ = make_cache(tmp_path)
    fp = workload_fingerprint("compress", None, TEXT.encode())
    container = container_for()
    cache.put(fp, {"ratio_percent": 12.5, "num_codes": 7}, container)
    fields, stored = cache.get(fp)
    assert stored == container
    assert fields == {"ratio_percent": 12.5, "num_codes": 7}


def test_framing_keys_are_stripped_on_put(tmp_path):
    cache, _ = make_cache(tmp_path)
    fp = workload_fingerprint("compress", None, TEXT.encode())
    cache.put(
        fp,
        {"id": 9, "ok": True, "code": 0, "payload_len": 4, "ratio_percent": 1.0},
        container_for(),
    )
    fields, _ = cache.get(fp)
    assert fields == {"ratio_percent": 1.0}


def test_missing_entry_is_a_plain_miss(tmp_path):
    cache, recorder = make_cache(tmp_path)
    assert cache.get("0" * 64) is None
    assert ev.FLEET_CACHE_CORRUPT not in counters(recorder)


def test_flipped_byte_is_quarantined_not_served(tmp_path):
    cache, recorder = make_cache(tmp_path)
    fp = workload_fingerprint("compress", None, TEXT.encode())
    cache.put(fp, {"ratio_percent": 1.0}, container_for())
    (entry,) = list((tmp_path / "cache").glob(f"*/*{_SUFFIX}"))
    data = bytearray(entry.read_bytes())
    data[-1] ^= 0x40  # bit rot in the container bytes
    entry.write_bytes(bytes(data))
    assert cache.get(fp) is None
    assert counters(recorder)[ev.FLEET_CACHE_CORRUPT] == 1
    assert not entry.exists()  # quarantined, gone for good
    assert cache.get(fp) is None  # and stays a (clean) miss


def test_truncated_metadata_is_quarantined(tmp_path):
    cache, recorder = make_cache(tmp_path)
    fp = workload_fingerprint("compress", None, TEXT.encode())
    cache.put(fp, {}, container_for())
    (entry,) = list((tmp_path / "cache").glob(f"*/*{_SUFFIX}"))
    entry.write_bytes(entry.read_bytes()[:10])  # torn entry, no newline
    assert cache.get(fp) is None
    assert counters(recorder)[ev.FLEET_CACHE_CORRUPT] == 1


def test_entry_under_the_wrong_fingerprint_is_rejected(tmp_path):
    cache, recorder = make_cache(tmp_path)
    fp = workload_fingerprint("compress", None, TEXT.encode())
    other = workload_fingerprint("compress", None, b"0101\n1010\n")
    cache.put(fp, {}, container_for())
    source = cache._path_for(fp)
    target = cache._path_for(other)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_bytes(source.read_bytes())  # misplaced/renamed entry
    assert cache.get(other) is None
    assert counters(recorder)[ev.FLEET_CACHE_CORRUPT] == 1


def test_crc_matching_garbage_still_fails_container_checks(tmp_path):
    # An attacker (or a confused writer) can fix up the entry CRC; the
    # container's own header checks must still refuse to parse it.
    cache, recorder = make_cache(tmp_path)
    fp = workload_fingerprint("compress", None, TEXT.encode())
    junk = b"not a container at all"
    meta = {"fingerprint": fp, "crc": zlib.crc32(junk), "fields": {}}
    path = cache._path_for(fp)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(json.dumps(meta).encode() + b"\n" + junk)
    assert cache.get(fp) is None
    assert counters(recorder)[ev.FLEET_CACHE_CORRUPT] == 1


def test_deep_verify_catches_payload_tampering(tmp_path):
    cache, recorder = make_cache(tmp_path, deep_verify=True)
    fp = workload_fingerprint("compress", None, TEXT.encode())
    cache.put(fp, {}, container_for())
    assert cache.get(fp) is not None  # clean entry passes the decode
    assert ev.FLEET_CACHE_CORRUPT not in counters(recorder)


def test_eviction_keeps_the_entry_bound(tmp_path):
    cache, recorder = make_cache(tmp_path, max_entries=2)
    texts = ["0101\n", "0110\n", "1001\n", "1010\n"]
    for text in texts:
        fp = workload_fingerprint("compress", None, text.encode())
        cache.put(fp, {}, container_for(text))
    assert len(cache) <= 2
    assert counters(recorder)[ev.FLEET_CACHE_EVICTIONS] >= 2
