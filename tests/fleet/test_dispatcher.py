"""Dispatcher behaviour over live in-process backends."""

import pytest

from repro.container import dump_bytes
from repro.core import LZWConfig, compress
from repro.fleet import FleetConfig, FleetDispatcher
from repro.observability import schema as ev
from repro.reliability.errors import ConfigError
from repro.service import CompressionServer, ServiceClient, ServiceConfig
from repro.testfile import parse_test_text

TEXT = "01X0\n1XX1\nX01X\n0110\nXXXX\n"


def serial_container(text=TEXT, config=None):
    result = compress(parse_test_text(text).to_stream(), config or LZWConfig())
    return dump_bytes(result.compressed, result.assigned_stream)


@pytest.fixture
def backends():
    servers = [
        CompressionServer(ServiceConfig(workers=2, queue_depth=8, debug_ops=True))
        for _ in range(2)
    ]
    for server in servers:
        server.start()
    yield servers
    for server in servers:
        if server.state != "stopped":
            server.drain()


def fleet_config(backends, tmp_path, **overrides):
    settings = dict(
        port=0,
        workers=2,
        queue_depth=16,
        debug_ops=True,
        backends=tuple(server.address_str for server in backends),
        probe_interval=0.5,
        probe_timeout=1.0,
        backend_timeout=5.0,
        backend_connect_timeout=2.0,
        backend_breaker_threshold=2,
        backend_breaker_cooldown=0.3,
        cache_dir=str(tmp_path / "cache"),
    )
    settings.update(overrides)
    return FleetConfig(**settings)


@pytest.fixture
def fleet(backends, tmp_path):
    dispatcher = FleetDispatcher(fleet_config(backends, tmp_path))
    dispatcher.start()
    yield dispatcher
    if dispatcher.state != "stopped":
        dispatcher.drain()


@pytest.fixture
def client(fleet):
    with ServiceClient(fleet.address) as c:
        yield c


def test_compress_through_fleet_is_byte_identical(fleet, client):
    header, payload = client.compress(TEXT)
    assert header["ok"] and header["code"] == 0
    assert payload == serial_container()
    counters = fleet.recorder.snapshot()["counters"]
    assert counters[ev.FLEET_REQUESTS] == 1
    assert counters[ev.FLEET_CACHE_MISSES] == 1


def test_request_config_is_relayed(client):
    config = {"char_bits": 3, "dict_size": 32, "entry_bits": 12}
    header, payload = client.compress(TEXT, config=config)
    assert header["ok"]
    assert payload == serial_container(config=LZWConfig(**config))


def test_roundtrip_decompress_and_verify_through_fleet(client):
    _, container = client.compress(TEXT)
    header, decoded = client.decompress(container)
    assert header["ok"]
    assert len(decoded.decode("ascii")) == len(parse_test_text(TEXT).to_stream())
    header, _ = client.verify(container)
    assert header["verify_exit_code"] == 0


def test_repeat_compress_hits_the_cache(fleet, client):
    first_header, first = client.compress(TEXT)
    assert "cache" not in first_header
    second_header, second = client.compress(TEXT)
    assert second_header["ok"]
    assert second_header["cache"] == "hit"
    assert second == first == serial_container()
    counters = fleet.recorder.snapshot()["counters"]
    assert counters[ev.FLEET_CACHE_HITS] == 1
    assert counters[ev.FLEET_CACHE_MISSES] == 1


def test_client_errors_are_relayed_as_values(fleet, client):
    cases = [
        (client.compress(TEXT, config={"dict_sizes": 64}), 400, "ConfigError"),
        (client.compress("01Q0\n"), 422, "TestFileError"),
        (client.decompress(b"not a container"), 422, "ContainerError"),
    ]
    for (header, _), code, error_type in cases:
        assert header["code"] == code
        assert header["error"]["type"] == error_type
    # Error replies prove the backend is alive: no breaker moved, no
    # failover happened, nothing was cached.
    for backend in fleet.backends.values():
        assert backend.breaker.state == "closed"
    counters = fleet.recorder.snapshot()["counters"]
    assert ev.FLEET_FAILOVERS not in counters
    assert len(fleet.cache) == 0


def test_error_replies_are_never_cached(fleet, client):
    bad = "01Q0\n"
    first, _ = client.compress(bad)
    second, _ = client.compress(bad)
    assert first["code"] == second["code"] == 422
    assert "cache" not in second
    assert ev.FLEET_CACHE_HITS not in fleet.recorder.snapshot()["counters"]


def test_deadline_expiry_is_a_relayed_408(client):
    header, _ = client.request("sleep", deadline_ms=40, seconds=5.0)
    assert header["code"] == 408
    assert header["error"]["type"] == "DeadlineError"


def test_ping_reports_per_backend_breaker_state(fleet, client):
    header = client.ping()
    assert header["ok"]
    assert header["state"] == "running"
    assert header["backends"] == {
        address: "closed" for address in fleet.backends
    }


def test_metrics_op_exposes_fleet_counters(client):
    client.compress(TEXT)
    snapshot = client.metrics()
    assert snapshot["schema"] == "repro.metrics/1"
    assert snapshot["counters"][ev.FLEET_REQUESTS] >= 1


def test_drain_contract_holds_for_the_dispatcher(backends, tmp_path):
    dispatcher = FleetDispatcher(fleet_config(backends, tmp_path))
    dispatcher.start()
    with ServiceClient(dispatcher.address) as c:
        assert c.compress(TEXT)[0]["ok"]
    assert dispatcher.drain() == 0
    assert dispatcher.state == "stopped"
    assert not dispatcher.prober.is_alive()


def test_fleet_config_validation():
    with pytest.raises(ConfigError):
        FleetConfig(port=0, backends=())
    with pytest.raises(ConfigError):
        FleetConfig(port=0, backends=("a:1", "a:1"))
    with pytest.raises(ConfigError):
        FleetConfig(port=0, backends=("a:1",), failover_attempts=-1)
    with pytest.raises(ConfigError):
        FleetConfig(port=0, backends=("a:1",), hedge_after_ms=0)
    with pytest.raises(ConfigError):
        FleetConfig(port=0, backends=("a:1",), probe_interval=0.0)
