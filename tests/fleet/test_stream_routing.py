"""Streaming-aware fleet behaviour: fingerprints and passthrough."""

import io

import pytest

from repro.bitstream import TernaryVector
from repro.core import LZWConfig, StreamEncoder
from repro.fleet import FleetConfig, FleetDispatcher
from repro.fleet.router import workload_fingerprint
from repro.observability import schema as ev
from repro.service import CompressionServer, ServiceClient, ServiceConfig
from repro.streamio import DEFAULT_CODES_PER_FRAME, StreamContainerWriter

PAYLOAD = b"compressible compressible compressible bytes " * 20


class TestStreamingFingerprint:
    def test_codes_per_frame_is_result_affecting(self):
        base = workload_fingerprint("compress_stream", None, PAYLOAD)
        framed = workload_fingerprint(
            "compress_stream", None, PAYLOAD, codes_per_frame=8
        )
        assert base != framed

    def test_omitted_codes_per_frame_equals_documented_default(self):
        # A request that says nothing and a request that spells out the
        # default produce the same container bytes, so the dispatcher
        # normalises the omitted field to DEFAULT_CODES_PER_FRAME — both
        # must share one routing key.
        explicit = workload_fingerprint(
            "compress_stream", None, PAYLOAD,
            codes_per_frame=DEFAULT_CODES_PER_FRAME,
        )
        assert explicit == workload_fingerprint(
            "compress_stream", None, PAYLOAD,
            codes_per_frame=DEFAULT_CODES_PER_FRAME,
        )
        assert explicit != workload_fingerprint(
            "compress_stream", None, PAYLOAD
        )  # raw helper does not normalise; the dispatcher does

    def test_chunk_bytes_never_reaches_the_fingerprint(self):
        # chunk_bytes is result-neutral (byte-identity under any
        # chunking) so the fingerprint API deliberately has no such
        # parameter; requests differing only there share routing.
        import inspect

        params = inspect.signature(workload_fingerprint).parameters
        assert "chunk_bytes" not in params

    def test_stream_and_one_shot_ops_never_collide(self):
        assert workload_fingerprint(
            "compress", None, PAYLOAD
        ) != workload_fingerprint("compress_stream", None, PAYLOAD)


@pytest.fixture
def backends():
    servers = [
        CompressionServer(ServiceConfig(workers=2, queue_depth=8))
        for _ in range(2)
    ]
    for server in servers:
        server.start()
    yield servers
    for server in servers:
        if server.state != "stopped":
            server.drain()


@pytest.fixture
def fleet(backends, tmp_path):
    dispatcher = FleetDispatcher(
        FleetConfig(
            port=0,
            workers=2,
            queue_depth=16,
            backends=tuple(server.address_str for server in backends),
            probe_interval=0.5,
            probe_timeout=1.0,
            backend_timeout=5.0,
            backend_connect_timeout=2.0,
            backend_breaker_threshold=2,
            backend_breaker_cooldown=0.3,
            cache_dir=str(tmp_path / "cache"),
        )
    )
    dispatcher.start()
    yield dispatcher
    if dispatcher.state != "stopped":
        dispatcher.drain()


@pytest.fixture
def client(fleet):
    with ServiceClient(fleet.address) as c:
        yield c


def local_stream_container(data, codes_per_frame=DEFAULT_CODES_PER_FRAME):
    config = LZWConfig()
    enc = StreamEncoder(config)
    sink = io.BytesIO()
    writer = StreamContainerWriter(config, sink, codes_per_frame=codes_per_frame)
    writer.write_codes(
        enc.feed(TernaryVector.from_int(
            int.from_bytes(data, "little"), len(data) * 8
        ))
    )
    writer.finalize(enc.finalize(), enc.original_bits)
    return sink.getvalue()


def test_stream_through_fleet_is_byte_identical(fleet, client):
    header, payload = client.compress_stream(PAYLOAD, chunk_bytes=77)
    assert header["ok"] and header["code"] == 0
    assert payload == local_stream_container(PAYLOAD)


def test_stream_requests_are_routed_but_never_cached(fleet, client):
    for _ in range(2):
        header, _ = client.compress_stream(PAYLOAD)
        assert header["ok"]
    counters = fleet.recorder.snapshot()["counters"]
    assert counters[ev.FLEET_REQUESTS] == 2
    # A repeated one-shot compress would hit the cache; the streaming op
    # is deliberately uncached (unbounded reply sizes), so both requests
    # must have gone to a backend.
    assert counters.get(ev.FLEET_CACHE_HITS, 0) == 0
