"""Workload fingerprints and rendezvous routing."""

from repro.fleet.router import rank_backends, workload_fingerprint

BACKENDS = ("10.0.0.1:7878", "10.0.0.2:7878", "10.0.0.3:7878")


def test_fingerprint_is_stable_and_config_order_insensitive():
    a = workload_fingerprint("compress", {"char_bits": 2, "dict_size": 64}, b"01X0")
    b = workload_fingerprint("compress", {"dict_size": 64, "char_bits": 2}, b"01X0")
    assert a == b
    assert len(a) == 64 and int(a, 16) >= 0  # a hex sha256 digest


def test_fingerprint_treats_missing_and_empty_config_alike():
    assert workload_fingerprint("compress", None, b"x") == workload_fingerprint(
        "compress", {}, b"x"
    )


def test_fingerprint_separates_op_config_and_payload():
    base = workload_fingerprint("compress", {"char_bits": 2}, b"01X0")
    assert workload_fingerprint("verify", {"char_bits": 2}, b"01X0") != base
    assert workload_fingerprint("compress", {"char_bits": 3}, b"01X0") != base
    assert workload_fingerprint("compress", {"char_bits": 2}, b"01X1") != base


def test_fingerprint_folds_in_the_seed():
    cold = workload_fingerprint("compress", None, b"01X0")
    warm = workload_fingerprint("compress", None, b"01X0", seed="TFpXUw==")
    other = workload_fingerprint("compress", None, b"01X0", seed="TFpXUworMQ==")
    assert cold != warm != other != cold
    assert warm == workload_fingerprint(
        "compress", None, b"01X0", seed="TFpXUw=="
    )
    assert cold == workload_fingerprint("compress", None, b"01X0", seed=None)


def test_field_separator_prevents_boundary_collisions():
    # op/config/payload are length-delimited by the NUL separator, so
    # shifting bytes across a field boundary must change the digest.
    assert workload_fingerprint("ab", None, b"cd") != workload_fingerprint(
        "abc", None, b"d"
    )


def test_ranking_is_deterministic_and_a_permutation():
    fp = workload_fingerprint("compress", None, b"0101")
    first = rank_backends(fp, BACKENDS)
    assert first == rank_backends(fp, BACKENDS)
    assert sorted(first) == sorted(BACKENDS)
    # Input order of the membership set must not matter.
    assert first == rank_backends(fp, tuple(reversed(BACKENDS)))


def test_different_fingerprints_spread_over_backends():
    tops = {
        rank_backends(workload_fingerprint("compress", None, bytes([i])), BACKENDS)[0]
        for i in range(64)
    }
    assert tops == set(BACKENDS)  # no backend is unreachable


def test_membership_change_only_moves_the_dead_backends_keys():
    fingerprints = [
        workload_fingerprint("compress", None, b"key-%d" % i) for i in range(128)
    ]
    dead = BACKENDS[0]
    survivors = tuple(b for b in BACKENDS if b != dead)
    moved = 0
    for fp in fingerprints:
        before = rank_backends(fp, BACKENDS)[0]
        after = rank_backends(fp, survivors)[0]
        if before == dead:
            moved += 1
            assert after == rank_backends(fp, BACKENDS)[1]  # failover order
        else:
            assert after == before  # unaffected keys keep their backend
    assert 0 < moved < len(fingerprints)  # ~1/N, never 0, never all
