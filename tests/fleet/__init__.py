"""Tests for the dispatcher tier (repro.fleet)."""
