"""Fleet fault plans are deterministic; one live trial stays honest."""

import pytest

from repro.fleet.chaos import run_trial
from repro.reliability.chaos import FLEET_FAULTS, FleetFaultPlan


def test_plan_validates_its_inputs():
    with pytest.raises(ValueError):
        FleetFaultPlan("meteor_strike")
    with pytest.raises(ValueError):
        FleetFaultPlan("backend_kill", requests=1)
    with pytest.raises(ValueError):
        FleetFaultPlan("backend_kill", backends=0)


@pytest.mark.parametrize("fault", FLEET_FAULTS)
def test_plan_is_a_pure_function_of_fault_and_seed(fault):
    for seed in range(5):
        a = FleetFaultPlan(fault, seed=seed)
        b = FleetFaultPlan(fault, seed=seed)
        assert a.trigger_index == b.trigger_index
        assert a.target_backend == b.target_backend
        assert a.tamper(b"0123456789") == b.tamper(b"0123456789")


def test_trigger_index_stays_strictly_inside_the_run():
    for seed in range(50):
        plan = FleetFaultPlan("backend_kill", seed=seed, requests=10)
        assert 1 <= plan.trigger_index <= 8
        assert 0 <= plan.target_backend < plan.backends


def test_tamper_flips_exactly_one_bit():
    plan = FleetFaultPlan("cache_tamper", seed=3)
    data = bytes(range(64))
    tampered = plan.tamper(data)
    assert len(tampered) == len(data)
    diff = [(a, b) for a, b in zip(data, tampered) if a != b]
    assert len(diff) == 1
    assert bin(diff[0][0] ^ diff[0][1]).count("1") == 1
    assert plan.tamper(b"") == b""


def test_backend_kill_trial_has_no_silent_corruption(tmp_path):
    # One real trial: three backend subprocesses, one SIGKILLed mid-run.
    # Every request must come back byte-identical to the serial oracle
    # or as a typed error -- never corrupted, never untyped.
    plan = FleetFaultPlan("backend_kill", seed=1, requests=6)
    report = run_trial(plan, tmp_path)
    assert report["outcomes"]["silent_corruption"] == 0
    assert report["outcomes"]["untyped"] == 0
    assert sum(report["outcomes"].values()) == 6
    assert report["outcomes"]["correct"] >= 1
    assert report["ok"], report
