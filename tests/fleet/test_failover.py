"""Failover, breaker gating, hedging and the no-backends contract."""

import socket
import time

import pytest

from repro.container import dump_bytes
from repro.core import LZWConfig, compress
from repro.fleet import FleetConfig, FleetDispatcher
from repro.fleet.router import rank_backends, workload_fingerprint
from repro.observability import schema as ev
from repro.service import CompressionServer, ServiceClient, ServiceConfig
from repro.testfile import parse_test_text


def serial_container(text, config=None):
    result = compress(parse_test_text(text).to_stream(), config or LZWConfig())
    return dump_bytes(result.compressed, result.assigned_stream)


def texts_ranking_first(address, backends, count):
    """Deterministic cube texts whose rendezvous order starts at ``address``."""
    found = []
    for i in range(10_000):
        text = f"{i % 16:04b}\n{i // 16 % 16:04b}\n{i // 256 % 16:04b}\n"
        fp = workload_fingerprint("compress", None, text.encode())
        if rank_backends(fp, backends)[0] == address and text not in found:
            found.append(text)
            if len(found) == count:
                return found
    raise AssertionError("could not steer enough texts to the target backend")


def make_fleet(addresses, tmp_path, **overrides):
    settings = dict(
        port=0,
        workers=2,
        queue_depth=16,
        backends=tuple(addresses),
        probe_interval=5.0,  # slow: these tests drive the breakers directly
        probe_timeout=1.0,
        backend_timeout=5.0,
        backend_connect_timeout=2.0,
        failover_attempts=2,
        backend_breaker_threshold=2,
        backend_breaker_cooldown=0.5,
        cache_dir=str(tmp_path / "cache"),
    )
    settings.update(overrides)
    dispatcher = FleetDispatcher(FleetConfig(**settings))
    dispatcher.start()
    return dispatcher


def test_dead_backend_fails_over_to_the_survivor(tmp_path):
    servers = [
        CompressionServer(ServiceConfig(workers=2, queue_depth=8)) for _ in range(2)
    ]
    for server in servers:
        server.start()
    addresses = tuple(server.address_str for server in servers)
    dispatcher = make_fleet(addresses, tmp_path)
    try:
        # Kill backend 0 and send requests that *rank it first*, so every
        # one of them must take the failover path to succeed.
        servers[0].drain()
        texts = texts_ranking_first(addresses[0], addresses, 4)
        with ServiceClient(dispatcher.address) as client:
            for text in texts:
                header, payload = client.compress(text)
                assert header["ok"], header
                assert payload == serial_container(text)
        counters = dispatcher.recorder.snapshot()["counters"]
        assert counters[ev.FLEET_FAILOVERS] >= 1
        assert counters[ev.FLEET_BACKEND_ERRORS] >= 1
        # Two transport failures tripped the dead backend's breaker, so
        # later requests skip it without burning a connect attempt.
        assert dispatcher.backends[addresses[0]].breaker.state != "closed"
    finally:
        dispatcher.drain()
        for server in servers:
            if server.state != "stopped":
                server.drain()


def test_no_healthy_backend_is_a_typed_503_with_retry_hint(tmp_path):
    # An address nobody listens on: bind, note the port, close.
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    dead = "%s:%d" % probe.getsockname()[:2]
    probe.close()
    dispatcher = make_fleet((dead,), tmp_path, backend_connect_timeout=0.5)
    try:
        with ServiceClient(dispatcher.address) as client:
            header, _ = client.compress("01X0\n1XX1\n")
        assert header["code"] == 503
        assert header["error"]["type"] == "OverloadError"
        assert header["error"]["diagnostics"]["reason"] == "no_backends"
        assert isinstance(header["retry_after_ms"], int)
        assert header["retry_after_ms"] >= 1
        counters = dispatcher.recorder.snapshot()["counters"]
        assert counters[ev.FLEET_NO_BACKENDS] == 1
    finally:
        dispatcher.drain()


def test_hedge_rescues_a_hung_primary(tmp_path):
    # The primary is a black hole: it accepts connections (via the
    # listen backlog) but never answers.  The hedge must win.
    hole = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    hole.bind(("127.0.0.1", 0))
    hole.listen(8)
    hole_address = "%s:%d" % hole.getsockname()[:2]
    server = CompressionServer(ServiceConfig(workers=2, queue_depth=8))
    server.start()
    addresses = (hole_address, server.address_str)
    dispatcher = make_fleet(
        addresses,
        tmp_path,
        hedge_after_ms=150.0,
        backend_timeout=3.0,
        cache_dir=None,
    )
    try:
        text = texts_ranking_first(hole_address, addresses, 1)[0]
        started = time.monotonic()
        with ServiceClient(dispatcher.address) as client:
            header, payload = client.compress(text)
        elapsed = time.monotonic() - started
        assert header["ok"], header
        assert payload == serial_container(text)
        assert elapsed < 3.0, "the hedge, not the primary timeout, must answer"
        counters = dispatcher.recorder.snapshot()["counters"]
        assert counters[ev.FLEET_HEDGES] == 1
        assert counters[ev.FLEET_HEDGE_WINS] == 1
    finally:
        dispatcher.drain()
        hole.close()
        if server.state != "stopped":
            server.drain()


def test_fast_primary_never_hedges(tmp_path):
    server = CompressionServer(ServiceConfig(workers=2, queue_depth=8))
    server.start()
    dispatcher = make_fleet(
        (server.address_str,), tmp_path, hedge_after_ms=2000.0, cache_dir=None
    )
    try:
        with ServiceClient(dispatcher.address) as client:
            header, _ = client.compress("01X0\n1XX1\n")
        assert header["ok"]
        counters = dispatcher.recorder.snapshot()["counters"]
        assert ev.FLEET_HEDGES not in counters
    finally:
        dispatcher.drain()
        if server.state != "stopped":
            server.drain()


def test_open_breaker_reroutes_without_dialing(tmp_path):
    servers = [
        CompressionServer(ServiceConfig(workers=2, queue_depth=8)) for _ in range(2)
    ]
    for server in servers:
        server.start()
    addresses = tuple(server.address_str for server in servers)
    dispatcher = make_fleet(addresses, tmp_path, backend_breaker_cooldown=60.0)
    try:
        target = dispatcher.backends[addresses[0]]
        target.breaker.record_failure()
        target.breaker.record_failure()  # threshold 2: now open
        texts = texts_ranking_first(addresses[0], addresses, 2)
        with ServiceClient(dispatcher.address) as client:
            for text in texts:
                header, payload = client.compress(text)
                assert header["ok"]
                assert payload == serial_container(text)
        counters = dispatcher.recorder.snapshot()["counters"]
        # Skipping an open breaker is routing, not failover: no transport
        # attempt was made against the broken backend.
        assert ev.FLEET_BACKEND_ERRORS not in counters
    finally:
        dispatcher.drain()
        for server in servers:
            if server.state != "stopped":
                server.drain()
