"""Reliability subsystem: typed errors, fault injection, salvage, verify.

The ATE use case tolerates no silent miscoding — a wrongly decoded bit
is a false pass/fail on the tester.  This package provides the tooling
that *proves* the decode stack fails loudly:

* :mod:`~repro.reliability.errors` — the unified exception taxonomy
  (:class:`ReproError` and friends) used across every layer;
* :mod:`~repro.reliability.inject` — deterministic, seeded fault
  injectors over container bytes;
* :mod:`~repro.reliability.chaos` — deterministic *process-level*
  injectors (worker exception / SIGKILL / hang / corrupt-result) for
  the supervised batch engine;
* :mod:`~repro.reliability.campaign` — the injection campaign runners
  asserting the *detected / correct / silent-corruption* trichotomy,
  over container bytes and over batch worker processes;
* :mod:`~repro.reliability.salvage` — :func:`decode_partial`, the
  graceful-degradation decoder for debugging bad ATE dumps;
* :mod:`~repro.reliability.verify` — staged container integrity
  verification backing ``repro verify``;
* :mod:`~repro.reliability.crashsim` — the power-cut simulator behind
  the :class:`~repro.reliability.atomic.FSBackend` seam, enumerating a
  crash at every I/O boundary of every artefact writer;
* :mod:`~repro.reliability.fsck` — unified deep scan/repair over every
  on-disk artefact kind, backing ``repro fsck``.

Only the error taxonomy is imported eagerly; the tooling modules import
the rest of the package, so they are loaded lazily to keep this package
importable from the lowest layers (``repro.bitstream`` raises
:class:`StreamError`).
"""

from .errors import (
    ConfigError,
    ContainerError,
    DeadlineError,
    DecodeError,
    OverloadError,
    ProtocolError,
    ReproError,
    ShardError,
    SnapshotError,
    StreamError,
    TestFileError,
)

__all__ = [
    "ConfigError",
    "ContainerError",
    "DeadlineError",
    "DecodeError",
    "OverloadError",
    "ProtocolError",
    "ReproError",
    "ShardError",
    "SnapshotError",
    "StreamError",
    "TestFileError",
    "atomic_write_bytes",
    "atomic_write_text",
    # lazily loaded:
    "CampaignResult",
    "ChaosPlan",
    "Check",
    "CrashCampaignResult",
    "CrashFS",
    "CrashWriterSpec",
    "DurableAppendFile",
    "FSBackend",
    "FsckReport",
    "SimulatedCrash",
    "INJECTORS",
    "MULTI_INJECTORS",
    "PROCESS_FAULTS",
    "SEEDED_INJECTORS",
    "STREAM_INJECTORS",
    "PartialDecodeResult",
    "ProcessCampaignResult",
    "ProcessTrial",
    "Trial",
    "TrialOutcome",
    "VerifyReport",
    "current_backend",
    "decode_partial",
    "fsck_paths",
    "inject",
    "run_campaign",
    "run_crash_campaign",
    "run_process_campaign",
    "run_trial",
    "salvage_container",
    "use_backend",
    "verify_container",
]

_LAZY = {
    "atomic_write_bytes": "atomic",
    "atomic_write_text": "atomic",
    "DurableAppendFile": "atomic",
    "FSBackend": "atomic",
    "current_backend": "atomic",
    "use_backend": "atomic",
    "CrashCampaignResult": "crashsim",
    "CrashFS": "crashsim",
    "CrashWriterSpec": "crashsim",
    "SimulatedCrash": "crashsim",
    "run_crash_campaign": "crashsim",
    "FsckReport": "fsck",
    "fsck_paths": "fsck",
    "INJECTORS": "inject",
    "MULTI_INJECTORS": "inject",
    "SEEDED_INJECTORS": "inject",
    "STREAM_INJECTORS": "inject",
    "inject": "inject",
    "ChaosPlan": "chaos",
    "PROCESS_FAULTS": "chaos",
    "CampaignResult": "campaign",
    "ProcessCampaignResult": "campaign",
    "ProcessTrial": "campaign",
    "Trial": "campaign",
    "TrialOutcome": "campaign",
    "run_campaign": "campaign",
    "run_process_campaign": "campaign",
    "run_trial": "campaign",
    "Check": "verify",
    "PartialDecodeResult": "salvage",
    "decode_partial": "salvage",
    "salvage_container": "salvage",
    "VerifyReport": "verify",
    "verify_container": "verify",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
