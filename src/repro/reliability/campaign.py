"""Fault-injection campaign runners.

A *byte* campaign takes a known-good container and its original
(pre-X-fill) cube stream, corrupts the container under every registered
injector for a range of seeds, and classifies each trial into the
trichotomy the ATE use case demands:

``DETECTED``
    the corrupted container was rejected with a typed
    :class:`~repro.reliability.errors.ReproError` subclass — the safe
    outcome;
``CORRECT``
    the corruption happened to be harmless (e.g. a flipped bit in the
    zero padding): decoding succeeded *and* the result still covers
    every specified bit of the original stream;
``SILENT``
    decoding succeeded but produced a stream that does **not** cover the
    original — the catastrophic outcome a tester can never tolerate;
``ESCAPED``
    a non-``ReproError`` exception leaked through the public API — a
    hardening bug even though the corruption did not go unnoticed.

:func:`run_campaign` returns a :class:`CampaignResult`; the test suite
asserts ``result.ok`` (zero ``SILENT``, zero ``ESCAPED``) across every
injector class and seed.

A *process* campaign (:func:`run_process_campaign`) applies the same
trichotomy one layer up: instead of corrupting bytes it injects
process-level faults (worker exception, SIGKILL, hang, corrupt-result —
see :mod:`repro.reliability.chaos`) into a supervised
:func:`~repro.parallel.compress_batch` run and demands that every batch
either completes with containers **byte-identical to the unfaulted
run** (the retry/degrade paths healed it) or fails loudly with a typed
error — never silently different bytes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..bitstream import TernaryVector
from ..container import decode_container
from .errors import ReproError
from .inject import INJECTORS, inject

__all__ = [
    "TrialOutcome",
    "Trial",
    "CampaignResult",
    "run_campaign",
    "ProcessTrial",
    "ProcessCampaignResult",
    "run_process_campaign",
]


class TrialOutcome(enum.Enum):
    """Classification of one corrupted-container decode attempt."""

    DETECTED = "detected"
    CORRECT = "correct"
    SILENT = "silent"
    ESCAPED = "escaped"


@dataclass(frozen=True)
class Trial:
    """One (injector, seed) corruption and how the decode stack handled it."""

    injector: str
    seed: int
    outcome: TrialOutcome
    error: Optional[BaseException] = None

    def describe(self) -> str:
        base = f"{self.injector}/seed={self.seed}: {self.outcome.value}"
        if self.error is not None:
            base += f" ({type(self.error).__name__}: {self.error})"
        return base


@dataclass(frozen=True)
class CampaignResult:
    """Aggregate of every trial in one campaign run."""

    trials: Tuple[Trial, ...]

    @property
    def counts(self) -> Dict[TrialOutcome, int]:
        """Trials per outcome class."""
        tally = {outcome: 0 for outcome in TrialOutcome}
        for trial in self.trials:
            tally[trial.outcome] += 1
        return tally

    @property
    def failures(self) -> Tuple[Trial, ...]:
        """Trials that violate the no-silent-corruption guarantee."""
        return tuple(
            t
            for t in self.trials
            if t.outcome in (TrialOutcome.SILENT, TrialOutcome.ESCAPED)
        )

    @property
    def ok(self) -> bool:
        """True when no trial was silent corruption or an escaped exception."""
        return not self.failures

    def summary(self) -> str:
        """Multi-line human-readable report."""
        counts = self.counts
        lines = [
            f"{len(self.trials)} trials: "
            + ", ".join(f"{o.value}={counts[o]}" for o in TrialOutcome)
        ]
        lines.extend(t.describe() for t in self.failures)
        return "\n".join(lines)


def run_trial(
    container: bytes, original: TernaryVector, injector: str, seed: int
) -> Trial:
    """Corrupt, decode and classify a single trial."""
    corrupted = inject(container, injector, seed)
    try:
        stream = decode_container(corrupted)
    except ReproError as exc:
        return Trial(injector, seed, TrialOutcome.DETECTED, exc)
    except Exception as exc:  # noqa: BLE001 - the escape *is* the finding
        return Trial(injector, seed, TrialOutcome.ESCAPED, exc)
    if stream.covers(original):
        return Trial(injector, seed, TrialOutcome.CORRECT)
    return Trial(injector, seed, TrialOutcome.SILENT)


def run_campaign(
    container: bytes,
    original: TernaryVector,
    injectors: Optional[Sequence[str]] = None,
    seeds: Iterable[int] = range(50),
) -> CampaignResult:
    """Run the full injector × seed grid against one container.

    ``original`` is the cube stream the container was compressed from
    (don't-cares allowed); a decode only counts as ``CORRECT`` when it
    still covers every specified bit.
    """
    names = tuple(injectors) if injectors is not None else tuple(sorted(INJECTORS))
    seed_list = tuple(seeds)
    trials = [
        run_trial(container, original, name, seed)
        for name in names
        for seed in seed_list
    ]
    return CampaignResult(tuple(trials))


# ----------------------------------------------------------------------
# Process-level (chaos) campaign
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ProcessTrial:
    """One (fault, seed) chaos run and how the supervised batch fared."""

    fault: str
    seed: int
    outcome: TrialOutcome
    on_failure: str
    detail: str = ""

    def describe(self) -> str:
        base = (
            f"{self.fault}/seed={self.seed}/on_failure={self.on_failure}: "
            f"{self.outcome.value}"
        )
        if self.detail:
            base += f" ({self.detail})"
        return base


@dataclass(frozen=True)
class ProcessCampaignResult:
    """Aggregate of every trial in one process-fault campaign run."""

    trials: Tuple[ProcessTrial, ...]

    @property
    def counts(self) -> Dict[TrialOutcome, int]:
        """Trials per outcome class."""
        tally = {outcome: 0 for outcome in TrialOutcome}
        for trial in self.trials:
            tally[trial.outcome] += 1
        return tally

    @property
    def failures(self) -> Tuple[ProcessTrial, ...]:
        """Trials that violate the no-silent-corruption guarantee."""
        return tuple(
            t
            for t in self.trials
            if t.outcome in (TrialOutcome.SILENT, TrialOutcome.ESCAPED)
        )

    @property
    def ok(self) -> bool:
        """True when no trial was silent corruption or an escaped exception."""
        return not self.failures

    def summary(self) -> str:
        """Multi-line human-readable report."""
        counts = self.counts
        lines = [
            f"{len(self.trials)} trials: "
            + ", ".join(f"{o.value}={counts[o]}" for o in TrialOutcome)
        ]
        lines.extend(t.describe() for t in self.failures)
        return "\n".join(lines)

    def to_json(self) -> dict:
        """Machine-readable report (the CI chaos job's artifact body)."""
        return {
            "ok": self.ok,
            "counts": {o.value: c for o, c in self.counts.items()},
            "trials": [
                {
                    "fault": t.fault,
                    "seed": t.seed,
                    "on_failure": t.on_failure,
                    "outcome": t.outcome.value,
                    "detail": t.detail,
                }
                for t in self.trials
            ],
        }


def run_process_trial(
    config,
    streams: Sequence[TernaryVector],
    reference: Sequence[Optional[bytes]],
    fault: str,
    seed: int,
    *,
    workers: int = 1,
    shard_bits: int = 0,
    pattern_bits=0,
    on_failure: str = "degrade",
    rate: float = 0.6,
    shard_timeout: Optional[float] = None,
    retry_policy=None,
) -> ProcessTrial:
    """Run one chaos-injected batch and classify it.

    ``reference`` is the unfaulted run's container list — the oracle a
    surviving batch must match byte for byte.  A ``kill`` fault needs a
    real pool (``workers >= 2``) and is bumped there automatically; all
    other faults honour ``workers`` as given.
    """
    from ..parallel import compress_batch
    from .chaos import ChaosPlan
    from .errors import ShardError

    plan = ChaosPlan(fault, seed=seed, rate=rate)
    if fault == "kill":
        workers = max(workers, 2)
    try:
        items = compress_batch(
            config,
            streams,
            workers=workers,
            shard_bits=shard_bits,
            pattern_bits=pattern_bits,
            on_failure=on_failure,
            shard_timeout=shard_timeout,
            retry_policy=retry_policy,
            chaos=plan,
        )
    except ReproError as exc:
        return ProcessTrial(
            fault, seed, TrialOutcome.DETECTED, on_failure,
            f"{type(exc).__name__}: {exc}",
        )
    except Exception as exc:  # noqa: BLE001 - the escape *is* the finding
        return ProcessTrial(
            fault, seed, TrialOutcome.ESCAPED, on_failure,
            f"{type(exc).__name__}: {exc}",
        )
    skipped = [
        error for item in items if not item.ok for error in item.errors
    ]
    for item, expected in zip(items, reference):
        if item.ok and item.container != expected:
            return ProcessTrial(
                fault, seed, TrialOutcome.SILENT, on_failure,
                "completed container differs from the unfaulted run",
            )
    if skipped:
        if not all(isinstance(error, ShardError) for error in skipped):
            return ProcessTrial(
                fault, seed, TrialOutcome.ESCAPED, on_failure,
                "skipped shard surfaced an untyped error",
            )
        return ProcessTrial(
            fault, seed, TrialOutcome.DETECTED, on_failure,
            f"{len(skipped)} shard(s) skipped with typed ShardError",
        )
    return ProcessTrial(fault, seed, TrialOutcome.CORRECT, on_failure)


def run_process_campaign(
    config,
    streams: Sequence[TernaryVector],
    faults: Optional[Sequence[str]] = None,
    seeds: Iterable[int] = range(10),
    *,
    workers: int = 1,
    shard_bits: int = 0,
    pattern_bits=0,
    on_failure: str = "degrade",
    rate: float = 0.6,
    shard_timeout: Optional[float] = None,
    retry_policy=None,
) -> ProcessCampaignResult:
    """Run the full process-fault × seed grid against one batch.

    The unfaulted ``workers=1`` run is computed once as the byte oracle;
    every chaos trial must end byte-identical to it or fail loudly with
    a typed error — the process-level zero-silent-corruption guarantee.
    """
    from ..parallel import compress_batch
    from .chaos import PROCESS_FAULTS

    names = tuple(faults) if faults is not None else PROCESS_FAULTS
    reference: List[Optional[bytes]] = [
        item.container
        for item in compress_batch(
            config, streams, workers=1,
            shard_bits=shard_bits, pattern_bits=pattern_bits,
        )
    ]
    trials = [
        run_process_trial(
            config,
            streams,
            reference,
            fault,
            seed,
            workers=workers,
            shard_bits=shard_bits,
            pattern_bits=pattern_bits,
            on_failure=on_failure,
            rate=rate,
            shard_timeout=shard_timeout,
            retry_policy=retry_policy,
        )
        for fault in names
        for seed in tuple(seeds)
    ]
    return ProcessCampaignResult(tuple(trials))
