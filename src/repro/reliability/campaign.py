"""Fault-injection campaign runner.

A campaign takes a known-good container and its original (pre-X-fill)
cube stream, corrupts the container under every registered injector for
a range of seeds, and classifies each trial into the trichotomy the ATE
use case demands:

``DETECTED``
    the corrupted container was rejected with a typed
    :class:`~repro.reliability.errors.ReproError` subclass — the safe
    outcome;
``CORRECT``
    the corruption happened to be harmless (e.g. a flipped bit in the
    zero padding): decoding succeeded *and* the result still covers
    every specified bit of the original stream;
``SILENT``
    decoding succeeded but produced a stream that does **not** cover the
    original — the catastrophic outcome a tester can never tolerate;
``ESCAPED``
    a non-``ReproError`` exception leaked through the public API — a
    hardening bug even though the corruption did not go unnoticed.

:func:`run_campaign` returns a :class:`CampaignResult`; the test suite
asserts ``result.ok`` (zero ``SILENT``, zero ``ESCAPED``) across every
injector class and seed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..bitstream import TernaryVector
from ..container import decode_container
from .errors import ReproError
from .inject import INJECTORS, inject

__all__ = ["TrialOutcome", "Trial", "CampaignResult", "run_campaign"]


class TrialOutcome(enum.Enum):
    """Classification of one corrupted-container decode attempt."""

    DETECTED = "detected"
    CORRECT = "correct"
    SILENT = "silent"
    ESCAPED = "escaped"


@dataclass(frozen=True)
class Trial:
    """One (injector, seed) corruption and how the decode stack handled it."""

    injector: str
    seed: int
    outcome: TrialOutcome
    error: Optional[BaseException] = None

    def describe(self) -> str:
        base = f"{self.injector}/seed={self.seed}: {self.outcome.value}"
        if self.error is not None:
            base += f" ({type(self.error).__name__}: {self.error})"
        return base


@dataclass(frozen=True)
class CampaignResult:
    """Aggregate of every trial in one campaign run."""

    trials: Tuple[Trial, ...]

    @property
    def counts(self) -> Dict[TrialOutcome, int]:
        """Trials per outcome class."""
        tally = {outcome: 0 for outcome in TrialOutcome}
        for trial in self.trials:
            tally[trial.outcome] += 1
        return tally

    @property
    def failures(self) -> Tuple[Trial, ...]:
        """Trials that violate the no-silent-corruption guarantee."""
        return tuple(
            t
            for t in self.trials
            if t.outcome in (TrialOutcome.SILENT, TrialOutcome.ESCAPED)
        )

    @property
    def ok(self) -> bool:
        """True when no trial was silent corruption or an escaped exception."""
        return not self.failures

    def summary(self) -> str:
        """Multi-line human-readable report."""
        counts = self.counts
        lines = [
            f"{len(self.trials)} trials: "
            + ", ".join(f"{o.value}={counts[o]}" for o in TrialOutcome)
        ]
        lines.extend(t.describe() for t in self.failures)
        return "\n".join(lines)


def run_trial(
    container: bytes, original: TernaryVector, injector: str, seed: int
) -> Trial:
    """Corrupt, decode and classify a single trial."""
    corrupted = inject(container, injector, seed)
    try:
        stream = decode_container(corrupted)
    except ReproError as exc:
        return Trial(injector, seed, TrialOutcome.DETECTED, exc)
    except Exception as exc:  # noqa: BLE001 - the escape *is* the finding
        return Trial(injector, seed, TrialOutcome.ESCAPED, exc)
    if stream.covers(original):
        return Trial(injector, seed, TrialOutcome.CORRECT)
    return Trial(injector, seed, TrialOutcome.SILENT)


def run_campaign(
    container: bytes,
    original: TernaryVector,
    injectors: Optional[Sequence[str]] = None,
    seeds: Iterable[int] = range(50),
) -> CampaignResult:
    """Run the full injector × seed grid against one container.

    ``original`` is the cube stream the container was compressed from
    (don't-cares allowed); a decode only counts as ``CORRECT`` when it
    still covers every specified bit.
    """
    names = tuple(injectors) if injectors is not None else tuple(sorted(INJECTORS))
    seed_list = tuple(seeds)
    trials = [
        run_trial(container, original, name, seed)
        for name in names
        for seed in seed_list
    ]
    return CampaignResult(tuple(trials))
