"""Crash-consistent file writes for containers, journals and reports.

A ``repro compress -o`` killed mid-write used to leave a torn,
half-written ``.lzwt`` on disk that ``repro verify`` then diagnosed as
corruption — indistinguishable from real bit rot.  Every artefact
writer in the package now goes through :func:`atomic_write_bytes` /
:func:`atomic_write_text` instead:

1. the data is written to a ``<name>.tmp.<pid>.<seq>`` sibling in the
   target directory (same filesystem, so the final rename cannot cross
   a device boundary; the per-process sequence number keeps concurrent
   writers of the same path — e.g. service worker threads — from
   clobbering each other's temp file);
2. the file is flushed and ``fsync``\\ ed so the bytes are durable
   before they become visible;
3. ``os.replace`` atomically installs the file under its final name —
   readers see either the complete old version or the complete new
   version, never a prefix;
4. the containing directory is fsynced (best effort) so the rename
   itself survives a crash.

Environmental write failures that operators actually hit — disk full
(``ENOSPC``/``EDQUOT``), permissions (``EACCES``/``EPERM``), read-only
filesystems (``EROFS``) — are mapped to a typed
:class:`~repro.reliability.errors.ContainerError` carrying the path and
errno, so the CLI reports them on its documented integrity/input exit
paths instead of leaking a raw traceback.  The temp file is unlinked on
any failure; a crash between write and rename leaves only a
``*.tmp.*`` file that never shadows the real artefact (``repro fsck``
sweeps those leftovers).

The FSBackend seam
------------------

Every OS-level operation these writers perform goes through an
injectable :class:`FSBackend` (default: the real OS calls).  That seam
is what lets :mod:`repro.reliability.crashsim` put a *simulated* disk
with power-cut semantics underneath the real writer code paths and
enumerate a crash at every I/O boundary — the durability claims in
this docstring are proven by that harness, not just asserted.  Install
a backend for a scope with :func:`use_backend`; production code never
passes one explicitly and gets the OS.
"""

from __future__ import annotations

import errno
import itertools
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Optional, Union

from .errors import ContainerError

__all__ = [
    "DurableAppendFile",
    "FSBackend",
    "atomic_write_bytes",
    "atomic_write_text",
    "current_backend",
    "use_backend",
]

#: Errnos mapped to a typed ContainerError (environmental, actionable).
_TYPED_ERRNOS = frozenset(
    {errno.ENOSPC, errno.EDQUOT, errno.EACCES, errno.EPERM, errno.EROFS}
)

#: Per-process sequence for temp names: two threads writing the same
#: target concurrently must not share a temp file (``next()`` on a
#: ``count`` is atomic under the GIL).
_TMP_COUNTER = itertools.count()


class FSBackend:
    """The file operations the durable writers perform, as a seam.

    The default implementation is the real OS.  A test backend (see
    :class:`~repro.reliability.crashsim.CrashFS`) substitutes a
    simulated disk so every call site below doubles as a crash point.
    Handles returned by :meth:`open` must support ``write``/``flush``/
    ``close``/``closed`` and be usable as context managers.
    """

    def open(self, path: Union[str, Path], mode: str):
        return open(path, mode)

    def fsync(self, handle) -> None:
        os.fsync(handle.fileno())

    def replace(self, src: Union[str, Path], dst: Union[str, Path]) -> None:
        os.replace(src, dst)

    def unlink(self, path: Union[str, Path]) -> None:
        os.unlink(path)

    def fsync_dir(self, directory: Union[str, Path]) -> None:
        """Persist renames in ``directory`` by fsyncing it (best effort)."""
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return  # e.g. Windows: directories cannot be opened for fsync
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)


_OS_BACKEND = FSBackend()
_active_backend: FSBackend = _OS_BACKEND


def current_backend() -> FSBackend:
    """The backend writers resolve when none is passed explicitly."""
    return _active_backend


@contextmanager
def use_backend(backend: FSBackend):
    """Install ``backend`` as the process-wide default for the scope.

    Intended for the crash-injection harness and tests; not
    thread-scoped (a campaign owns the process while it runs).
    """
    global _active_backend
    previous = _active_backend
    _active_backend = backend
    try:
        yield backend
    finally:
        _active_backend = previous


def _typed_error(path: Path, exc: OSError):
    if exc.errno in _TYPED_ERRNOS:
        return ContainerError(
            f"cannot write {path}: {exc.strerror}",
            path=str(path),
            errno=errno.errorcode.get(exc.errno, exc.errno),
        )
    return exc


def _fsync_dir(directory: Path) -> None:
    """Backwards-compatible alias used by older call sites."""
    _active_backend.fsync_dir(directory)


def atomic_write_bytes(
    path: Union[str, Path], data: bytes, fs: Optional[FSBackend] = None
) -> None:
    """Write ``data`` to ``path`` atomically (tmp + fsync + replace).

    Raises :class:`ContainerError` for environmental write failures
    (disk full, permissions, read-only filesystem); other ``OSError``\\ s
    propagate unchanged.  On any failure the temp file is removed and
    ``path`` is untouched.
    """
    fs = fs if fs is not None else _active_backend
    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}.{next(_TMP_COUNTER)}")
    try:
        handle = fs.open(tmp, "wb")
        try:
            handle.write(data)
            handle.flush()
            fs.fsync(handle)
        except OSError:
            # Close before unlinking, but never let a secondary close
            # failure (the kernel retrying a failed buffered write)
            # mask the root cause.
            try:
                handle.close()
            except OSError:
                pass
            raise
        handle.close()
        fs.replace(tmp, path)
    except OSError as exc:
        try:
            fs.unlink(tmp)
        except OSError:
            pass
        raise _typed_error(path, exc) from exc
    fs.fsync_dir(path.parent)


def atomic_write_text(
    path: Union[str, Path], text: str, encoding: str = "utf-8"
) -> None:
    """Text-mode convenience wrapper over :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode(encoding))


class DurableAppendFile:
    """Durable append-only journal writes (the streaming-frame sibling
    of :func:`atomic_write_bytes`).

    A whole-file tmp+rename cannot serve a stream that grows for hours,
    so the v5 streaming container appends *frames* instead and makes
    each one durable before the next begins: :meth:`sync` flushes and
    ``fsync``\\ s after every frame, and the directory entry is fsynced
    once at creation.  A crash therefore leaves a prefix of whole
    frames plus at most one torn tail — exactly what the v5 reader's
    salvage path recovers from.

    The same environmental errnos as :func:`atomic_write_bytes` map to
    a typed :class:`ContainerError`; other ``OSError``\\ s propagate.
    :meth:`close` never leaks the handle: even when the final ``sync``
    fails (disk full at the last frame), the descriptor is closed and
    the *sync* error — the root cause — is the one raised.
    """

    def __init__(
        self,
        path: Union[str, Path],
        overwrite: bool = True,
        fs: Optional[FSBackend] = None,
    ) -> None:
        self.path = Path(path)
        self._fs = fs if fs is not None else _active_backend
        mode = "wb" if overwrite else "ab"
        try:
            self._handle = self._fs.open(self.path, mode)
        except OSError as exc:
            raise _typed_error(self.path, exc) from exc
        self._fs.fsync_dir(self.path.parent)

    def _typed(self, exc: OSError):
        return _typed_error(self.path, exc)

    def write(self, data: bytes) -> None:
        """Append ``data`` (buffered; not yet durable)."""
        try:
            self._handle.write(data)
        except OSError as exc:
            raise self._typed(exc) from exc

    def sync(self) -> None:
        """Make everything appended so far durable (flush + fsync)."""
        try:
            self._handle.flush()
            self._fs.fsync(self._handle)
        except OSError as exc:
            raise self._typed(exc) from exc

    def close(self, sync: bool = True) -> None:
        """Close the handle, optionally syncing first.

        The handle is *always* closed.  If the sync fails, its typed
        error is raised after the close; a secondary failure from the
        close itself (the kernel flushing the same doomed buffer) never
        masks it.
        """
        if self._handle.closed:
            return
        sync_error: Optional[BaseException] = None
        if sync:
            try:
                self.sync()
            except BaseException as exc:
                sync_error = exc
        try:
            self._handle.close()
        except OSError as exc:
            if sync_error is None:
                raise self._typed(exc) from exc
        if sync_error is not None:
            raise sync_error

    def __enter__(self) -> "DurableAppendFile":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(sync=exc_type is None)
