"""Crash-consistent file writes for containers, journals and reports.

A ``repro compress -o`` killed mid-write used to leave a torn,
half-written ``.lzwt`` on disk that ``repro verify`` then diagnosed as
corruption — indistinguishable from real bit rot.  Every artefact
writer in the package now goes through :func:`atomic_write_bytes` /
:func:`atomic_write_text` instead:

1. the data is written to a ``<name>.tmp.<pid>`` sibling in the target
   directory (same filesystem, so the final rename cannot cross a
   device boundary);
2. the file is flushed and ``fsync``\\ ed so the bytes are durable
   before they become visible;
3. ``os.replace`` atomically installs the file under its final name —
   readers see either the complete old version or the complete new
   version, never a prefix;
4. the containing directory is fsynced (best effort) so the rename
   itself survives a crash.

Environmental write failures that operators actually hit — disk full
(``ENOSPC``/``EDQUOT``), permissions (``EACCES``/``EPERM``), read-only
filesystems (``EROFS``) — are mapped to a typed
:class:`~repro.reliability.errors.ContainerError` carrying the path and
errno, so the CLI reports them on its documented integrity/input exit
paths instead of leaking a raw traceback.  The temp file is unlinked on
any failure; a crash between write and rename leaves only a
``*.tmp.*`` file that never shadows the real artefact.
"""

from __future__ import annotations

import errno
import os
from pathlib import Path
from typing import Union

from .errors import ContainerError

__all__ = ["DurableAppendFile", "atomic_write_bytes", "atomic_write_text"]

#: Errnos mapped to a typed ContainerError (environmental, actionable).
_TYPED_ERRNOS = frozenset(
    {errno.ENOSPC, errno.EDQUOT, errno.EACCES, errno.EPERM, errno.EROFS}
)


def _fsync_dir(directory: Path) -> None:
    """Persist a rename by fsyncing its directory (best effort)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # e.g. Windows: directories cannot be opened for fsync
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (tmp + fsync + replace).

    Raises :class:`ContainerError` for environmental write failures
    (disk full, permissions, read-only filesystem); other ``OSError``\\ s
    propagate unchanged.  On any failure the temp file is removed and
    ``path`` is untouched.
    """
    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        try:
            tmp.unlink()
        except OSError:
            pass
        if exc.errno in _TYPED_ERRNOS:
            raise ContainerError(
                f"cannot write {path}: {exc.strerror}",
                path=str(path),
                errno=errno.errorcode.get(exc.errno, exc.errno),
            ) from exc
        raise
    _fsync_dir(path.parent)


def atomic_write_text(
    path: Union[str, Path], text: str, encoding: str = "utf-8"
) -> None:
    """Text-mode convenience wrapper over :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode(encoding))


class DurableAppendFile:
    """Durable append-only journal writes (the streaming-frame sibling
    of :func:`atomic_write_bytes`).

    A whole-file tmp+rename cannot serve a stream that grows for hours,
    so the v5 streaming container appends *frames* instead and makes
    each one durable before the next begins: :meth:`sync` flushes and
    ``fsync``\\ s after every frame, and the directory entry is fsynced
    once at creation.  A crash therefore leaves a prefix of whole
    frames plus at most one torn tail — exactly what the v5 reader's
    salvage path recovers from.

    The same environmental errnos as :func:`atomic_write_bytes` map to
    a typed :class:`ContainerError`; other ``OSError``\\ s propagate.
    """

    def __init__(self, path: Union[str, Path], overwrite: bool = True) -> None:
        self.path = Path(path)
        mode = "wb" if overwrite else "ab"
        try:
            self._handle = open(self.path, mode)
        except OSError as exc:
            raise self._typed(exc) from exc
        _fsync_dir(self.path.parent)

    def _typed(self, exc: OSError):
        if exc.errno in _TYPED_ERRNOS:
            return ContainerError(
                f"cannot write {self.path}: {exc.strerror}",
                path=str(self.path),
                errno=errno.errorcode.get(exc.errno, exc.errno),
            )
        return exc

    def write(self, data: bytes) -> None:
        """Append ``data`` (buffered; not yet durable)."""
        try:
            self._handle.write(data)
        except OSError as exc:
            raise self._typed(exc) from exc

    def sync(self) -> None:
        """Make everything appended so far durable (flush + fsync)."""
        try:
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except OSError as exc:
            raise self._typed(exc) from exc

    def close(self, sync: bool = True) -> None:
        if self._handle.closed:
            return
        try:
            if sync:
                self.sync()
        finally:
            self._handle.close()

    def __enter__(self) -> "DurableAppendFile":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(sync=exc_type is None)
