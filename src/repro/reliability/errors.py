"""Unified exception taxonomy for the whole library.

Every error a public API can raise derives from :class:`ReproError`, so
callers (the CLI, the fault-injection campaign, ATE tooling built on
top) can distinguish *our* typed diagnoses from genuine programming
errors with a single ``except ReproError``.  Nothing in this module
imports the rest of the package — it sits below every other layer.

Each exception carries **structured diagnostics**: keyword arguments
given at raise time are stored in :attr:`ReproError.diagnostics` and
also set as attributes, so a harness can ask *where* a stream broke
(``exc.bit_offset``), *which* code was undecodable (``exc.code_index``)
or *what* the dictionary state was (``exc.dict_next_code``) without
parsing the message.

The subclasses double as Python's builtin exceptions where the old code
raised them (``StreamError`` is an ``EOFError``, the ``ValueError``
family stays a ``ValueError``), so pre-taxonomy ``except`` clauses keep
working.

Class-level :attr:`ReproError.exit_code` gives the CLI its documented
process exit status per failure class:

==============================  ====
usage / bad configuration         2
unreadable or malformed input     3
integrity failure                 4
shard failure / degraded batch    5
==============================  ====
"""

from __future__ import annotations

from typing import Any, Dict

__all__ = [
    "ReproError",
    "StreamError",
    "DecodeError",
    "ContainerError",
    "SnapshotError",
    "ConfigError",
    "TestFileError",
    "ShardError",
    "ProtocolError",
    "OverloadError",
    "DeadlineError",
]


class ReproError(Exception):
    """Base class of every typed error raised by the library.

    Parameters
    ----------
    message:
        Human-readable one-line description.
    **diagnostics:
        Structured context (byte/bit offsets, code indices, dictionary
        state...).  ``None`` values are dropped; the rest are stored in
        :attr:`diagnostics` and set as attributes.
    """

    #: Process exit status the CLI uses for this failure class.
    exit_code = 1

    def __init__(self, message: str, **diagnostics: Any) -> None:
        self.message = message
        self.diagnostics: Dict[str, Any] = {
            key: value for key, value in diagnostics.items() if value is not None
        }
        for key, value in self.diagnostics.items():
            setattr(self, key, value)
        super().__init__(message)

    def __str__(self) -> str:
        if self.diagnostics:
            detail = ", ".join(
                f"{key}={value!r}" for key, value in sorted(self.diagnostics.items())
            )
            return f"{self.message} [{detail}]"
        return self.message


class StreamError(ReproError, EOFError):
    """Bit-level I/O failure: a read past the end of a bit stream.

    Typical diagnostics: ``bit_offset`` (position of the failed read),
    ``requested_bits``, ``available_bits``.
    """

    exit_code = 4


class DecodeError(ReproError, ValueError):
    """A code stream is not decodable under its configuration.

    Typical diagnostics: ``code_index`` (ordinal of the offending code),
    ``code``, ``bit_offset`` (of the code in the packed payload),
    ``dict_next_code`` (next free dictionary slot at failure),
    ``chars_decoded`` (characters successfully produced before it).
    """

    exit_code = 4


class ContainerError(ReproError, ValueError):
    """A ``.lzwt`` container is malformed or fails an integrity check.

    Typical diagnostics: ``byte_offset``, ``field`` (header field name),
    ``expected`` / ``actual`` (checksum values).
    """

    exit_code = 4


class SnapshotError(ContainerError):
    """A dictionary snapshot is malformed, tampered, or mismatched.

    Raised when a serialized :class:`~repro.core.dictionary.
    DictionarySnapshot` fails structural validation (bad magic/CRC,
    out-of-range entry), cannot be replayed into a dictionary
    (duplicate child, capacity or entry-width violation — the
    signature of a re-signed tamper), or names a configuration other
    than the one the seeded segment decodes under.

    Typical diagnostics: ``field`` (offending header field or entry
    index), ``expected`` / ``actual``, ``digest`` (the snapshot's seed
    id when known).
    """

    exit_code = 4


class ConfigError(ReproError, ValueError):
    """An :class:`~repro.core.config.LZWConfig` parameter is invalid.

    Typical diagnostics: ``field`` (the offending parameter name),
    ``value``.
    """

    exit_code = 2


class ShardError(ReproError, RuntimeError):
    """A batch shard failed every recovery path the supervisor has.

    Raised (policy ``fail``/``degrade``) or surfaced in
    :attr:`~repro.parallel.engine.BatchItemResult.errors` (policy
    ``skip``) when a shard exhausted its retries, timed out, or kept
    crashing its worker — the process-level analogue of
    :class:`DecodeError`.

    Typical diagnostics: ``workload`` / ``shard`` (the job key),
    ``attempts`` (how many were made), ``kind`` (``error`` / ``timeout``
    / ``crash`` / ``invalid``), ``cause`` (repr of the last underlying
    failure).
    """

    exit_code = 5


class ProtocolError(ReproError, ValueError):
    """A service request violates the wire protocol.

    Raised by the :mod:`repro.service` framing layer for malformed
    request lines, declared payloads over the limit, or clients too slow
    to complete a request within the I/O budget.

    Typical diagnostics: ``reason`` (``"bad_header"`` / ``"oversized"``
    / ``"timeout"`` / ``"bad_field"``), ``limit`` / ``actual`` for size
    violations.
    """

    exit_code = 3


class OverloadError(ReproError, RuntimeError):
    """The service shed a request instead of accepting it.

    The structured 429/503-style rejection: the admission queue is
    full, the client exceeded its rate limit, the circuit breaker is
    open, or the server is draining.  Never silent, never a hang — the
    caller always gets a typed reply.

    Typical diagnostics: ``reason`` (``"queue_full"`` /
    ``"rate_limited"`` / ``"breaker_open"`` / ``"draining"``),
    ``depth`` / ``capacity`` for queue sheds, ``retry_after``
    (seconds) when the server can estimate one.
    """

    exit_code = 1


class DeadlineError(ReproError, RuntimeError):
    """A request's deadline expired (or it was cancelled) mid-flight.

    Raised by :class:`repro.service.cancel.CancellationToken` checks in
    the encoder's symbol loop and between pipeline stages, so a slow
    request stops burning CPU the moment its client stopped caring.

    Typical diagnostics: ``reason`` (``"deadline"`` / ``"cancelled"``),
    ``deadline_s`` (the original budget in seconds).
    """

    exit_code = 1


class TestFileError(ReproError, ValueError):
    """A test-vector file does not parse.

    Typical diagnostics: ``line`` (1-based line number), ``source``
    (file or set name).
    """

    exit_code = 3
    #: Not a test case, despite the name (keeps pytest collection quiet).
    __test__ = False
