"""Process-level chaos injection for the supervised batch engine.

The byte-level injectors (:mod:`repro.reliability.inject`) corrupt a
finished container; the chaos harness instead attacks the *processes*
that produce one, modelling the failures a long multi-workload batch
run actually meets on a build farm:

``exception``
    the worker raises mid-shard (a transient bug, a flaky dependency);
``kill``
    the worker is SIGKILLed (OOM killer, operator) — the pool breaks
    and must be respawned; **only meaningful with a real pool**: an
    inline run would kill the calling process;
``hang``
    the worker stops making progress (deadlock, livelock) — caught by
    the per-shard timeout;
``corrupt``
    the *pre-encode hook*: the shard's input stream is deterministically
    corrupted before encoding, so the worker returns a well-formed but
    wrong result — the case only the supervisor's result validation can
    catch.

A :class:`ChaosPlan` is a frozen, picklable value object; which shards
it targets and what the corruption does are pure functions of
``(seed, workload, shard)``, so a failing trial is reproducible from
its ``(fault, seed)`` pair alone, exactly like the byte injectors.
Faults trigger only while ``attempt < attempts``, which is what lets
the retry path win: the default plan faults the first attempt and lets
every retry through clean.
"""

from __future__ import annotations

import os
import random
import signal
import socket
import time
from dataclasses import dataclass

from ..bitstream import TernaryVector

__all__ = [
    "CLIENT_FAULTS",
    "FLEET_FAULTS",
    "PROCESS_FAULTS",
    "ChaosPlan",
    "ClientFaultPlan",
    "FleetFaultPlan",
    "InjectedWorkerError",
]

#: The process-level fault classes, in campaign order.
PROCESS_FAULTS = ("exception", "kill", "hang", "corrupt")

#: The service-client fault classes the soak harness drives.
CLIENT_FAULTS = ("slow_loris", "oversized_frame", "garbage_frame", "disconnect")

#: The dispatcher-tier fault classes the fleet chaos campaign drives.
FLEET_FAULTS = ("backend_kill", "backend_hang", "backend_partition", "cache_tamper")


class InjectedWorkerError(RuntimeError):
    """The chaos harness's injected worker exception (picklable)."""


def _corrupt_stream(stream: TernaryVector, rng: random.Random) -> TernaryVector:
    """Deterministically flip one care bit of ``stream``.

    Flipping a *care* bit makes the encoded result fail the
    covers-the-original check; a stream with no care bits has nothing
    detectable (or harmful) to corrupt and is returned unchanged.
    """
    care_positions = [i for i, bit in enumerate(stream) if bit is not None]
    if not care_positions:
        return stream
    position = rng.choice(care_positions)
    flipped = TernaryVector.from_int(1 - stream[position], 1)
    return stream[:position] + flipped + stream[position + 1 :]


@dataclass(frozen=True)
class ChaosPlan:
    """Deterministic schedule of process faults for one batch run.

    ``rate`` is the fraction of shards targeted (decided per shard from
    ``seed``); a targeted shard faults on every attempt below
    ``attempts`` and runs clean afterwards.  ``hang_seconds`` bounds the
    injected hang so an un-timeouted test cannot wedge forever.
    """

    fault: str
    seed: int = 0
    rate: float = 1.0
    attempts: int = 1
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.fault not in PROCESS_FAULTS:
            raise ValueError(
                f"unknown fault {self.fault!r}; known: {', '.join(PROCESS_FAULTS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")

    def _rng(self, workload: int, shard: int) -> random.Random:
        # String seeds hash deterministically across processes (sha512),
        # unlike tuples through the salted builtin hash().
        return random.Random(f"chaos:{self.fault}:{self.seed}:{workload}.{shard}")

    def targets(self, workload: int, shard: int) -> bool:
        """Whether this plan faults shard ``(workload, shard)`` at all."""
        return self._rng(workload, shard).random() < self.rate

    def apply(
        self, workload: int, shard: int, attempt: int, stream: TernaryVector
    ) -> TernaryVector:
        """Trigger the planned fault, or pass ``stream`` through clean.

        Called by the shard worker immediately before encoding (the
        pre-encode hook).  Returns the (possibly corrupted) stream.
        """
        if attempt >= self.attempts or not self.targets(workload, shard):
            return stream
        if self.fault == "exception":
            raise InjectedWorkerError(
                f"injected worker exception on shard ({workload}, {shard}) "
                f"attempt {attempt}"
            )
        if self.fault == "kill":  # pragma: no cover - dies in the worker
            os.kill(os.getpid(), signal.SIGKILL)
        if self.fault == "hang":
            deadline = time.monotonic() + self.hang_seconds
            while time.monotonic() < deadline:
                time.sleep(0.01)
            return stream
        return _corrupt_stream(stream, self._rng(workload, shard))


@dataclass(frozen=True)
class FleetFaultPlan:
    """One dispatcher-tier fault, as a reproducible value object.

    Where :class:`ChaosPlan` attacks batch workers and
    :class:`ClientFaultPlan` attacks the serving front door, this
    attacks the *fleet* — the layer between a dispatcher and its
    backends:

    ``backend_kill``
        one backend is SIGKILLed mid-campaign (crash, OOM);
    ``backend_hang``
        one backend is SIGSTOPped — sockets stay open, nothing is
        answered (wedged process, GC death spiral);
    ``backend_partition``
        the network path to one backend starts dropping connections
        (the harness interposes a proxy and cuts it);
    ``cache_tamper``
        bytes of one result-cache entry are flipped on disk (bit rot,
        torn write escaping the atomic path) — the dispatcher must
        treat the entry as a miss, never serve it.

    Which backend (or cache entry) is targeted and when the fault fires
    are pure functions of ``(fault, seed)``, so a failing campaign
    trial is reproducible from that pair alone.  The plan only
    *decides*; the fleet harness (:mod:`repro.fleet.chaos`) owns the
    processes and actually pulls the trigger — reliability sits below
    the fleet layer and must stay importable without it.
    """

    fault: str
    seed: int = 0
    #: Requests the campaign sends for this trial.
    requests: int = 24
    #: Backends the trial assumes (targeting is modulo this count).
    backends: int = 3

    def __post_init__(self) -> None:
        if self.fault not in FLEET_FAULTS:
            raise ValueError(
                f"unknown fault {self.fault!r}; known: {', '.join(FLEET_FAULTS)}"
            )
        if self.requests < 2:
            raise ValueError("a trial needs at least 2 requests")
        if self.backends < 1:
            raise ValueError("a trial needs at least 1 backend")

    def _rng(self) -> random.Random:
        return random.Random(f"fleet-chaos:{self.fault}:{self.seed}")

    @property
    def trigger_index(self) -> int:
        """Request ordinal after which the fault is injected.

        Strictly inside the run (never before the first request or
        after the last), so every trial exercises both the healthy and
        the faulted regime.
        """
        return 1 + self._rng().randrange(max(1, self.requests - 2))

    @property
    def target_backend(self) -> int:
        """Index of the backend (or cache shard) the fault targets."""
        return self._rng().randrange(self.backends)

    def tamper(self, data: bytes) -> bytes:
        """Deterministically flip one byte of a cache entry's bytes."""
        if not data:
            return data
        rng = self._rng()
        position = rng.randrange(len(data))
        flipped = data[position] ^ (1 << rng.randrange(8))
        return data[:position] + bytes([flipped]) + data[position + 1 :]


@dataclass(frozen=True)
class ClientFaultPlan:
    """One hostile service client, as a reproducible value object.

    Where :class:`ChaosPlan` attacks the batch engine's *workers*,
    this attacks the serving layer's *front door* — the four client
    behaviours a network service must survive without hanging a
    connection thread or crashing:

    ``slow_loris``
        starts a header and then dribbles bytes slower than the
        server's I/O budget — must become a typed ``timeout`` reply
        (or a close), never a parked thread;
    ``oversized_frame``
        declares a payload bigger than the server's cap — must be
        rejected from the *header alone* (413-style reply) without
        buffering the body;
    ``garbage_frame``
        sends bytes that are not a JSON header — typed ``bad_header``
        reply, connection closed;
    ``disconnect``
        vanishes mid-payload — the server must treat the connection as
        over and reclaim the thread, with nothing to reply to.

    :meth:`run` executes one such interaction against a live server and
    reports what actually happened, so the soak harness can assert the
    contract (typed reply or clean close — never a hang) per fault.
    The service modules are imported lazily: reliability sits *below*
    the service layer and must stay importable without it.
    """

    fault: str
    seed: int = 0
    #: Seconds between dribbled bytes for ``slow_loris``; the driver
    #: must pair this with a server ``io_timeout`` it exceeds.
    dribble_interval: float = 0.3
    #: Ceiling on one interaction, so a misbehaving server fails the
    #: soak instead of wedging it.
    reply_timeout: float = 10.0

    def __post_init__(self) -> None:
        if self.fault not in CLIENT_FAULTS:
            raise ValueError(
                f"unknown fault {self.fault!r}; known: {', '.join(CLIENT_FAULTS)}"
            )

    def run(self, address) -> dict:
        """Attack ``address`` once; return the observed outcome.

        The outcome dict has ``fault``, ``reply`` (the decoded reply
        header, or ``None`` if the server just closed) and ``closed``
        (whether the server ended the connection afterwards, which the
        protocol requires after any framing violation).
        """
        from ..service.protocol import MessageStream, connect, encode_message

        sock = connect(address, timeout=self.reply_timeout)
        try:
            if self.fault == "slow_loris":
                header = encode_message({"op": "ping", "id": "loris"})
                # Three dribbled bytes are enough: the server's message
                # clock starts at the first one.
                for byte in header[:3]:
                    sock.sendall(bytes([byte]))
                    time.sleep(self.dribble_interval)
            elif self.fault == "oversized_frame":
                sock.sendall(
                    b'{"op": "compress", "id": "oversized", '
                    b'"payload_len": 1099511627776}\n'
                )
            elif self.fault == "garbage_frame":
                rng = random.Random(f"client-chaos:{self.seed}")
                junk = bytes(rng.randrange(256) for _ in range(64))
                sock.sendall(junk.replace(b"\n", b"?") + b"\n")
            else:  # disconnect: declare a payload, send half, vanish
                sock.sendall(
                    b'{"op": "compress", "id": "gone", "payload_len": 1024}\n'
                )
                sock.sendall(b"01X0" * 128)  # 512 of the promised 1024
                return {"fault": self.fault, "reply": None, "closed": True}
            reply = self._read_reply(sock)
            closed = self._observe_close(sock)
            return {"fault": self.fault, "reply": reply, "closed": closed}
        finally:
            try:
                sock.close()
            except OSError:
                pass

    def _read_reply(self, sock) -> "dict | None":
        from ..service.protocol import MessageStream

        stream = MessageStream(sock, io_timeout=self.reply_timeout)
        deadline = time.monotonic() + self.reply_timeout
        try:
            while time.monotonic() < deadline:
                message = stream.recv_message()
                if message is not None:
                    return message[0]
                if stream._eof:
                    return None
        except Exception:  # noqa: BLE001 - a garbage reply is "no reply"
            return None
        return None

    def _observe_close(self, sock) -> bool:
        """True if the server closes the connection within the budget."""
        deadline = time.monotonic() + self.reply_timeout
        sock.settimeout(0.1)
        while time.monotonic() < deadline:
            try:
                if sock.recv(4096) == b"":
                    return True
            except socket.timeout:
                continue
            except OSError:
                return True  # reset counts as closed
        return False
