"""Process-level chaos injection for the supervised batch engine.

The byte-level injectors (:mod:`repro.reliability.inject`) corrupt a
finished container; the chaos harness instead attacks the *processes*
that produce one, modelling the failures a long multi-workload batch
run actually meets on a build farm:

``exception``
    the worker raises mid-shard (a transient bug, a flaky dependency);
``kill``
    the worker is SIGKILLed (OOM killer, operator) — the pool breaks
    and must be respawned; **only meaningful with a real pool**: an
    inline run would kill the calling process;
``hang``
    the worker stops making progress (deadlock, livelock) — caught by
    the per-shard timeout;
``corrupt``
    the *pre-encode hook*: the shard's input stream is deterministically
    corrupted before encoding, so the worker returns a well-formed but
    wrong result — the case only the supervisor's result validation can
    catch.

A :class:`ChaosPlan` is a frozen, picklable value object; which shards
it targets and what the corruption does are pure functions of
``(seed, workload, shard)``, so a failing trial is reproducible from
its ``(fault, seed)`` pair alone, exactly like the byte injectors.
Faults trigger only while ``attempt < attempts``, which is what lets
the retry path win: the default plan faults the first attempt and lets
every retry through clean.
"""

from __future__ import annotations

import os
import random
import signal
import time
from dataclasses import dataclass

from ..bitstream import TernaryVector

__all__ = ["PROCESS_FAULTS", "ChaosPlan", "InjectedWorkerError"]

#: The process-level fault classes, in campaign order.
PROCESS_FAULTS = ("exception", "kill", "hang", "corrupt")


class InjectedWorkerError(RuntimeError):
    """The chaos harness's injected worker exception (picklable)."""


def _corrupt_stream(stream: TernaryVector, rng: random.Random) -> TernaryVector:
    """Deterministically flip one care bit of ``stream``.

    Flipping a *care* bit makes the encoded result fail the
    covers-the-original check; a stream with no care bits has nothing
    detectable (or harmful) to corrupt and is returned unchanged.
    """
    care_positions = [i for i, bit in enumerate(stream) if bit is not None]
    if not care_positions:
        return stream
    position = rng.choice(care_positions)
    flipped = TernaryVector.from_int(1 - stream[position], 1)
    return stream[:position] + flipped + stream[position + 1 :]


@dataclass(frozen=True)
class ChaosPlan:
    """Deterministic schedule of process faults for one batch run.

    ``rate`` is the fraction of shards targeted (decided per shard from
    ``seed``); a targeted shard faults on every attempt below
    ``attempts`` and runs clean afterwards.  ``hang_seconds`` bounds the
    injected hang so an un-timeouted test cannot wedge forever.
    """

    fault: str
    seed: int = 0
    rate: float = 1.0
    attempts: int = 1
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.fault not in PROCESS_FAULTS:
            raise ValueError(
                f"unknown fault {self.fault!r}; known: {', '.join(PROCESS_FAULTS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")

    def _rng(self, workload: int, shard: int) -> random.Random:
        # String seeds hash deterministically across processes (sha512),
        # unlike tuples through the salted builtin hash().
        return random.Random(f"chaos:{self.fault}:{self.seed}:{workload}.{shard}")

    def targets(self, workload: int, shard: int) -> bool:
        """Whether this plan faults shard ``(workload, shard)`` at all."""
        return self._rng(workload, shard).random() < self.rate

    def apply(
        self, workload: int, shard: int, attempt: int, stream: TernaryVector
    ) -> TernaryVector:
        """Trigger the planned fault, or pass ``stream`` through clean.

        Called by the shard worker immediately before encoding (the
        pre-encode hook).  Returns the (possibly corrupted) stream.
        """
        if attempt >= self.attempts or not self.targets(workload, shard):
            return stream
        if self.fault == "exception":
            raise InjectedWorkerError(
                f"injected worker exception on shard ({workload}, {shard}) "
                f"attempt {attempt}"
            )
        if self.fault == "kill":  # pragma: no cover - dies in the worker
            os.kill(os.getpid(), signal.SIGKILL)
        if self.fault == "hang":
            deadline = time.monotonic() + self.hang_seconds
            while time.monotonic() < deadline:
                time.sleep(0.01)
            return stream
        return _corrupt_stream(stream, self._rng(workload, shard))
