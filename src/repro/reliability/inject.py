"""Deterministic, seeded fault injectors over container bytes.

Each injector is a pure function ``(data, rng) -> bytes`` returning a
corrupted copy of a ``.lzwt`` container; the same seed always produces
the same corruption, so a failing campaign trial is reproducible from
its ``(injector, seed)`` pair alone.

The injector classes model the faults an ATE link or archive can
plausibly suffer:

``bit_flip``
    one flipped bit anywhere in the file (header or payload);
``byte_drop``
    one byte removed (framing slip — everything after shifts);
``truncate``
    the file cut short at a random point (interrupted download);
``header_corrupt``
    a header field byte overwritten (configuration corruption);
``crc_tamper``
    the adversarial case: a payload bit is flipped **and both the
    payload CRC and the header CRC are recomputed to match**, so only
    the decoded-stream digest (or the decoder's own range checks) can
    catch it.

Multi-segment (v3) containers get two additional injector classes in
:data:`MULTI_INJECTORS`, aimed at the sharded framing specifically:

``segment_payload``
    one flipped bit inside a randomly chosen shard's payload region —
    must be caught by that segment's payload CRC;
``segment_entry_tamper``
    one byte of a randomly chosen segment-table entry overwritten
    **with the header CRC recomputed to match**, so detection has to
    come from the per-segment checks (offset/size validation, payload
    CRC, code-count cross-check or the decoded-stream digest), and the
    failing segment index must be reported.

Seeded (v4) containers get two more in :data:`SEEDED_INJECTORS`,
aimed at the warm-dictionary machinery:

``snapshot_tamper``
    one flipped bit inside a seed blob with the snapshot's own CRC,
    the blob-table CRC and the header CRC all re-signed — only the
    snapshot replay or the decoded-stream digest can catch it;
``seed_mismatch``
    a segment's ``seed_mode``/``blob_index`` rewritten to a different
    structurally valid combination with the header CRC re-signed — the
    stream then decodes under the wrong dictionary, which the seeded
    decode or the stream digest must reject.

Streaming (v5) containers get three more in :data:`STREAM_INJECTORS`,
modelling the failure modes of an append-only frame journal:

``frame_torn``
    the file cut mid-frame (header or payload) — the crash signature
    of a writer killed between ``write`` and ``fsync``; the reader must
    report a typed torn-tail error and salvage must keep every frame
    before the tear;
``frame_crc_tamper``
    the adversarial case: a payload bit of one data frame is flipped
    **with that frame's payload CRC, chain CRC and header CRC all
    re-signed**, so the frame is self-consistent — detection must come
    from the *next* frame's (or the terminal's) chain CRC, from the
    dictionary digest, or from the decode itself;
``mid_stream_truncate``
    the file cut exactly at a frame boundary, losing the terminal (and
    possibly trailing frames): a structurally clean but unsealed
    journal — the reader must refuse it as incomplete
    (``missing_terminal``), never pass it off as the whole stream.

These injectors corrupt *bytes at rest*.  Their process-level
counterparts — worker exceptions, SIGKILL, hangs and corrupt results
inside a live batch — live in :mod:`repro.reliability.chaos` and drive
:func:`~repro.reliability.campaign.run_process_campaign`.
"""

from __future__ import annotations

import random
import struct
import zlib
from typing import Callable, Dict

from ..container import (
    BLOB_ENTRY_SIZE,
    BLOB_INDEX_ENTRY_OFFSET,
    HEADER_CRC_OFFSET,
    HEADER_SIZE,
    PAYLOAD_CRC_OFFSET,
    SEED_BLOB,
    SEED_CHAIN,
    SEED_COLD,
    SEED_MODE_ENTRY_OFFSET,
    SEGMENT_ENTRY_SIZE,
    SEGMENT_ENTRY_V4_SIZE,
    V3_HEADER_CRC_OFFSET,
    V3_SEGMENT_COUNT_OFFSET,
    V3_SEGMENT_TABLE_OFFSET,
    V4_BLOB_COUNT_OFFSET,
    V4_HEADER_CRC_OFFSET,
    V4_SEGMENT_COUNT_OFFSET,
    V4_SEGMENT_TABLE_OFFSET,
    _NO_BLOB,
)

__all__ = [
    "INJECTORS",
    "MULTI_INJECTORS",
    "SEEDED_INJECTORS",
    "STREAM_INJECTORS",
    "inject",
]

Injector = Callable[[bytes, random.Random], bytes]


def _flip_bit(data: bytes, rng: random.Random) -> bytes:
    """Flip one uniformly chosen bit anywhere in the container."""
    out = bytearray(data)
    position = rng.randrange(len(out) * 8)
    out[position // 8] ^= 1 << (7 - position % 8)
    return bytes(out)


def _drop_byte(data: bytes, rng: random.Random) -> bytes:
    """Remove one uniformly chosen byte (shifts the rest down)."""
    position = rng.randrange(len(data))
    return data[:position] + data[position + 1 :]


def _truncate(data: bytes, rng: random.Random) -> bytes:
    """Cut the container short at a random length (possibly to zero)."""
    keep = rng.randrange(len(data))
    return data[:keep]


def _corrupt_header(data: bytes, rng: random.Random) -> bytes:
    """Overwrite one header byte with a guaranteed-different value."""
    out = bytearray(data)
    position = rng.randrange(min(HEADER_SIZE, len(out)))
    out[position] ^= rng.randrange(1, 256)
    return bytes(out)


def _tamper_payload_fix_crcs(data: bytes, rng: random.Random) -> bytes:
    """Flip a payload bit and recompute both CRCs to hide it.

    Models an adversarial (or multi-fault) corruption that defeats the
    transport checksums; detecting it requires content verification —
    the decoded-stream digest or the decoder's own consistency checks.
    Requires a version-2 container with a non-empty payload.
    """
    if len(data) <= HEADER_SIZE:
        raise ValueError("crc_tamper needs a container with a non-empty payload")
    out = bytearray(data)
    position = rng.randrange((len(out) - HEADER_SIZE) * 8)
    out[HEADER_SIZE + position // 8] ^= 1 << (7 - position % 8)
    struct.pack_into(
        ">I", out, PAYLOAD_CRC_OFFSET, zlib.crc32(bytes(out[HEADER_SIZE:]))
    )
    struct.pack_into(
        ">I", out, HEADER_CRC_OFFSET, zlib.crc32(bytes(out[:HEADER_CRC_OFFSET]))
    )
    return bytes(out)


def _require_multi(data: bytes) -> int:
    """Segment count of a v3 container (injector precondition check)."""
    if len(data) < V3_SEGMENT_TABLE_OFFSET or data[4] != 3:
        raise ValueError("this injector needs a multi-segment (v3) container")
    count = int.from_bytes(
        data[V3_SEGMENT_COUNT_OFFSET : V3_SEGMENT_COUNT_OFFSET + 4], "big"
    )
    if count < 1 or len(data) < V3_SEGMENT_TABLE_OFFSET + count * SEGMENT_ENTRY_SIZE:
        raise ValueError("malformed multi-segment container")
    return count


def _segment_payload_flip(data: bytes, rng: random.Random) -> bytes:
    """Flip one bit inside a randomly chosen shard's payload region."""
    count = _require_multi(data)
    table_end = V3_SEGMENT_TABLE_OFFSET + count * SEGMENT_ENTRY_SIZE
    if len(data) <= table_end:
        raise ValueError("segment_payload needs a non-empty payload area")
    out = bytearray(data)
    position = rng.randrange((len(out) - table_end) * 8)
    out[table_end + position // 8] ^= 1 << (7 - position % 8)
    return bytes(out)


def _segment_entry_tamper(data: bytes, rng: random.Random) -> bytes:
    """Corrupt one segment-table entry byte and re-sign the header CRC.

    The recomputed CRC hides the tampering from the header checksum, so
    the per-segment checks (and only they) must catch it — the v3
    analogue of ``crc_tamper``.
    """
    count = _require_multi(data)
    out = bytearray(data)
    segment = rng.randrange(count)
    entry_start = V3_SEGMENT_TABLE_OFFSET + segment * SEGMENT_ENTRY_SIZE
    position = entry_start + rng.randrange(SEGMENT_ENTRY_SIZE)
    out[position] ^= rng.randrange(1, 256)
    table_end = V3_SEGMENT_TABLE_OFFSET + count * SEGMENT_ENTRY_SIZE
    struct.pack_into(
        ">I",
        out,
        V3_HEADER_CRC_OFFSET,
        zlib.crc32(
            bytes(out[:V3_HEADER_CRC_OFFSET])
            + bytes(out[V3_SEGMENT_TABLE_OFFSET:table_end])
        ),
    )
    return bytes(out)


def _require_seeded(data: bytes):
    """Structure of a v4 container (injector precondition check).

    Returns ``(segment_count, blob_count, table_end, blob_table_end)``.
    """
    if len(data) < V4_SEGMENT_TABLE_OFFSET or data[4] != 4:
        raise ValueError("this injector needs a seeded (v4) container")
    count = int.from_bytes(
        data[V4_SEGMENT_COUNT_OFFSET : V4_SEGMENT_COUNT_OFFSET + 4], "big"
    )
    blob_count = int.from_bytes(
        data[V4_BLOB_COUNT_OFFSET : V4_BLOB_COUNT_OFFSET + 2], "big"
    )
    table_end = V4_SEGMENT_TABLE_OFFSET + count * SEGMENT_ENTRY_V4_SIZE
    blob_table_end = table_end + blob_count * BLOB_ENTRY_SIZE
    if count < 1 or len(data) < blob_table_end:
        raise ValueError("malformed seeded container")
    return count, blob_count, table_end, blob_table_end


def _resign_v4_header(out: bytearray, blob_table_end: int) -> None:
    """Recompute the v4 header CRC over the header and both tables."""
    struct.pack_into(
        ">I",
        out,
        V4_HEADER_CRC_OFFSET,
        zlib.crc32(
            bytes(out[:V4_HEADER_CRC_OFFSET])
            + bytes(out[V4_SEGMENT_TABLE_OFFSET:blob_table_end])
        ),
    )


def _snapshot_tamper(data: bytes, rng: random.Random) -> bytes:
    """Flip a bit inside a seed blob and re-sign every covering CRC.

    The snapshot's own trailing CRC-32, the blob-table CRC and the
    header CRC are all recomputed to match, so no transport checksum
    can catch the corruption — detection must come from the snapshot
    replay (:class:`~repro.reliability.errors.SnapshotError` on a
    semantic violation) or from the seeded decode disagreeing with the
    stored stream digest.  Requires a v4 container with at least one
    seed blob.
    """
    _count, blob_count, table_end, blob_table_end = _require_seeded(data)
    if not blob_count:
        raise ValueError("snapshot_tamper needs a container with seed blobs")
    out = bytearray(data)
    blob = rng.randrange(blob_count)
    entry_start = table_end + blob * BLOB_ENTRY_SIZE
    offset, length, _crc = struct.unpack_from(">QII", out, entry_start)
    blob_start = blob_table_end + offset
    if length <= 4:
        raise ValueError("seed blob too short to tamper")
    # Flip anywhere except the snapshot's own trailing CRC (re-signing
    # that field would undo a flip inside it).
    position = rng.randrange((length - 4) * 8)
    out[blob_start + position // 8] ^= 1 << (7 - position % 8)
    struct.pack_into(
        ">I",
        out,
        blob_start + length - 4,
        zlib.crc32(bytes(out[blob_start : blob_start + length - 4])),
    )
    struct.pack_into(
        ">I",
        out,
        entry_start + 12,
        zlib.crc32(bytes(out[blob_start : blob_start + length])),
    )
    _resign_v4_header(out, blob_table_end)
    return bytes(out)


def _seed_mismatch(data: bytes, rng: random.Random) -> bytes:
    """Rewrite one segment's seed mode to a *structurally valid* lie.

    The segment's ``seed_mode``/``blob_index`` fields are replaced with
    a different combination the format itself allows (cold ↔ blob ↔
    chain, respecting chain-not-at-segment-0 and blob-index bounds) and
    the header CRC is re-signed, so structural validation passes and
    the decode runs under the *wrong* dictionary seed.  Detection must
    come from the seeded decode failing outright or from the
    decoded-stream digest mismatch; a trial where the swapped seed
    happens not to influence the bytes (an empty preamble blob vs cold,
    say) may legitimately verify as correct.
    """
    count, blob_count, table_end, blob_table_end = _require_seeded(data)
    out = bytearray(data)
    options = []
    for segment in range(count):
        entry_start = V4_SEGMENT_TABLE_OFFSET + segment * SEGMENT_ENTRY_V4_SIZE
        mode = out[entry_start + SEED_MODE_ENTRY_OFFSET]
        alternatives = []
        if mode != SEED_COLD:
            alternatives.append((SEED_COLD, _NO_BLOB))
        if mode != SEED_CHAIN and segment > 0:
            alternatives.append((SEED_CHAIN, _NO_BLOB))
        if blob_count:
            current_blob = int.from_bytes(
                out[
                    entry_start
                    + BLOB_INDEX_ENTRY_OFFSET : entry_start
                    + BLOB_INDEX_ENTRY_OFFSET
                    + 2
                ],
                "big",
            )
            for index in range(blob_count):
                if mode == SEED_BLOB and index == current_blob:
                    continue
                alternatives.append((SEED_BLOB, index))
        options.extend(
            (entry_start, new_mode, new_blob)
            for new_mode, new_blob in alternatives
        )
    if not options:
        raise ValueError("seed_mismatch has no alternative seed to lie about")
    entry_start, new_mode, new_blob = rng.choice(options)
    out[entry_start + SEED_MODE_ENTRY_OFFSET] = new_mode
    struct.pack_into(">H", out, entry_start + BLOB_INDEX_ENTRY_OFFSET, new_blob)
    _resign_v4_header(out, blob_table_end)
    return bytes(out)


def _require_stream(data: bytes):
    """Scan of a valid v5 container (injector precondition check)."""
    if len(data) < 5 or data[4] != 5:
        raise ValueError("this injector needs a streaming (v5) container")
    from ..streamio import scan_stream

    scan = scan_stream(data)
    if scan.error is not None or scan.terminal is None:
        raise ValueError("malformed streaming container")
    return scan


def _frame_torn(data: bytes, rng: random.Random) -> bytes:
    """Cut the journal mid-frame: the crash-between-write-and-fsync case.

    The cut lands strictly inside a randomly chosen frame (data or
    terminal) — never on a frame boundary — so the survivor is a clean
    prefix plus one torn trailing frame.
    """
    scan = _require_stream(data)
    spans = [(f.header_offset, f.end_offset) for f in scan.frames]
    spans.append((scan.terminal.header_offset, scan.terminal.end_offset))
    start, end = rng.choice(spans)
    return data[: rng.randrange(start + 1, end)]


def _frame_crc_tamper(data: bytes, rng: random.Random) -> bytes:
    """Flip a payload bit in one data frame and re-sign that frame.

    The frame's payload CRC, chain CRC and header CRC are all
    recomputed, so the tampered frame passes its own checks — the v5
    analogue of ``crc_tamper``.  Detection must come from the next
    frame's (or terminal's) chain CRC, the dictionary digest, or the
    decode itself.
    """
    from ..streamio import (
        DATA_CHAIN_CRC_OFFSET,
        DATA_HEADER_CRC_OFFSET,
        DATA_PAYLOAD_CRC_OFFSET,
        FRAME_DATA_HEADER_SIZE,
    )

    scan = _require_stream(data)
    candidates = [f for f in scan.frames if f.end_offset - f.header_offset > FRAME_DATA_HEADER_SIZE]
    if not candidates:
        raise ValueError("frame_crc_tamper needs a data frame with a payload")
    frame = rng.choice(candidates)
    out = bytearray(data)
    payload_start = frame.header_offset + FRAME_DATA_HEADER_SIZE
    payload_len = frame.end_offset - payload_start
    position = rng.randrange(payload_len * 8)
    out[payload_start + position // 8] ^= 1 << (7 - position % 8)
    payload = bytes(out[payload_start : frame.end_offset])
    struct.pack_into(
        ">I", out, frame.header_offset + DATA_PAYLOAD_CRC_OFFSET, zlib.crc32(payload)
    )
    # The chain CRC through this frame, recomputed over the tampered
    # payload (earlier frames are untouched, so their chain stands).
    prev_chain = scan.frames[frame.index - 1].chain_crc if frame.index else 0
    struct.pack_into(
        ">I",
        out,
        frame.header_offset + DATA_CHAIN_CRC_OFFSET,
        zlib.crc32(payload, prev_chain),
    )
    struct.pack_into(
        ">I",
        out,
        frame.header_offset + DATA_HEADER_CRC_OFFSET,
        zlib.crc32(bytes(out[frame.header_offset : frame.header_offset + DATA_HEADER_CRC_OFFSET])),
    )
    return bytes(out)


def _mid_stream_truncate(data: bytes, rng: random.Random) -> bytes:
    """Cut the journal exactly at a frame boundary, losing the terminal.

    The survivor is structurally clean — every kept frame verifies —
    but unsealed; readers must refuse it as incomplete rather than
    silently return a prefix of the stream.
    """
    scan = _require_stream(data)
    boundaries = [f.end_offset for f in scan.frames]
    boundaries.append(scan.terminal.header_offset)  # header + frames, no terminal
    if len(scan.frames):
        boundaries.append(scan.frames[0].header_offset)  # header only
    return data[: rng.choice(sorted(set(boundaries)))]


#: Injector classes applicable to any container, keyed by campaign name.
INJECTORS: Dict[str, Injector] = {
    "bit_flip": _flip_bit,
    "byte_drop": _drop_byte,
    "truncate": _truncate,
    "header_corrupt": _corrupt_header,
    "crc_tamper": _tamper_payload_fix_crcs,
}

#: Additional injectors that target the multi-segment (v3) framing.
MULTI_INJECTORS: Dict[str, Injector] = {
    "segment_payload": _segment_payload_flip,
    "segment_entry_tamper": _segment_entry_tamper,
}

#: Additional injectors that target the seeded (v4) framing.
SEEDED_INJECTORS: Dict[str, Injector] = {
    "snapshot_tamper": _snapshot_tamper,
    "seed_mismatch": _seed_mismatch,
}

#: Additional injectors that target the streaming (v5) frame journal.
STREAM_INJECTORS: Dict[str, Injector] = {
    "frame_torn": _frame_torn,
    "frame_crc_tamper": _frame_crc_tamper,
    "mid_stream_truncate": _mid_stream_truncate,
}


def inject(data: bytes, injector: str, seed: int) -> bytes:
    """Apply the named injector to ``data`` under a deterministic seed."""
    known = {
        **INJECTORS,
        **MULTI_INJECTORS,
        **SEEDED_INJECTORS,
        **STREAM_INJECTORS,
    }
    try:
        fn = known[injector]
    except KeyError:
        raise ValueError(
            f"unknown injector {injector!r}; known: {', '.join(sorted(known))}"
        ) from None
    if not data:
        raise ValueError("cannot inject faults into an empty container")
    # A string seed hashes deterministically (sha512) across processes,
    # unlike tuple seeds which go through the salted builtin hash().
    return fn(data, random.Random(f"{injector}:{seed}"))
