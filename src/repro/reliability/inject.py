"""Deterministic, seeded fault injectors over container bytes.

Each injector is a pure function ``(data, rng) -> bytes`` returning a
corrupted copy of a ``.lzwt`` container; the same seed always produces
the same corruption, so a failing campaign trial is reproducible from
its ``(injector, seed)`` pair alone.

The injector classes model the faults an ATE link or archive can
plausibly suffer:

``bit_flip``
    one flipped bit anywhere in the file (header or payload);
``byte_drop``
    one byte removed (framing slip — everything after shifts);
``truncate``
    the file cut short at a random point (interrupted download);
``header_corrupt``
    a header field byte overwritten (configuration corruption);
``crc_tamper``
    the adversarial case: a payload bit is flipped **and both the
    payload CRC and the header CRC are recomputed to match**, so only
    the decoded-stream digest (or the decoder's own range checks) can
    catch it.
"""

from __future__ import annotations

import random
import struct
import zlib
from typing import Callable, Dict

from ..container import HEADER_CRC_OFFSET, HEADER_SIZE, PAYLOAD_CRC_OFFSET

__all__ = ["INJECTORS", "inject"]

Injector = Callable[[bytes, random.Random], bytes]


def _flip_bit(data: bytes, rng: random.Random) -> bytes:
    """Flip one uniformly chosen bit anywhere in the container."""
    out = bytearray(data)
    position = rng.randrange(len(out) * 8)
    out[position // 8] ^= 1 << (7 - position % 8)
    return bytes(out)


def _drop_byte(data: bytes, rng: random.Random) -> bytes:
    """Remove one uniformly chosen byte (shifts the rest down)."""
    position = rng.randrange(len(data))
    return data[:position] + data[position + 1 :]


def _truncate(data: bytes, rng: random.Random) -> bytes:
    """Cut the container short at a random length (possibly to zero)."""
    keep = rng.randrange(len(data))
    return data[:keep]


def _corrupt_header(data: bytes, rng: random.Random) -> bytes:
    """Overwrite one header byte with a guaranteed-different value."""
    out = bytearray(data)
    position = rng.randrange(min(HEADER_SIZE, len(out)))
    out[position] ^= rng.randrange(1, 256)
    return bytes(out)


def _tamper_payload_fix_crcs(data: bytes, rng: random.Random) -> bytes:
    """Flip a payload bit and recompute both CRCs to hide it.

    Models an adversarial (or multi-fault) corruption that defeats the
    transport checksums; detecting it requires content verification —
    the decoded-stream digest or the decoder's own consistency checks.
    Requires a version-2 container with a non-empty payload.
    """
    if len(data) <= HEADER_SIZE:
        raise ValueError("crc_tamper needs a container with a non-empty payload")
    out = bytearray(data)
    position = rng.randrange((len(out) - HEADER_SIZE) * 8)
    out[HEADER_SIZE + position // 8] ^= 1 << (7 - position % 8)
    struct.pack_into(
        ">I", out, PAYLOAD_CRC_OFFSET, zlib.crc32(bytes(out[HEADER_SIZE:]))
    )
    struct.pack_into(
        ">I", out, HEADER_CRC_OFFSET, zlib.crc32(bytes(out[:HEADER_CRC_OFFSET]))
    )
    return bytes(out)


#: All injector classes, keyed by campaign name.
INJECTORS: Dict[str, Injector] = {
    "bit_flip": _flip_bit,
    "byte_drop": _drop_byte,
    "truncate": _truncate,
    "header_corrupt": _corrupt_header,
    "crc_tamper": _tamper_payload_fix_crcs,
}


def inject(data: bytes, injector: str, seed: int) -> bytes:
    """Apply the named injector to ``data`` under a deterministic seed."""
    try:
        fn = INJECTORS[injector]
    except KeyError:
        raise ValueError(
            f"unknown injector {injector!r}; known: {', '.join(sorted(INJECTORS))}"
        ) from None
    if not data:
        raise ValueError("cannot inject faults into an empty container")
    # A string seed hashes deterministically (sha512) across processes,
    # unlike tuple seeds which go through the salted builtin hash().
    return fn(data, random.Random(f"{injector}:{seed}"))
