"""Unified deep scan/repair over every on-disk artefact (``repro fsck``).

Recovery machinery already exists per format — staged verification
(:mod:`~repro.reliability.verify`), salvage decoding
(:mod:`~repro.reliability.salvage`), the tolerant v5 scan
(:func:`~repro.streamio.scan_stream`), the checkpoint journal's
discard-torn-entries load, the fleet cache's verified reads — but an
operator staring at a directory after a crash had to know which tool
matched which file.  ``repro fsck PATH...`` is the single entry point:
it auto-detects what each path is, runs the right deep verification,
and (with ``--repair``) rewrites what can be salvaged.

Artefact kinds and their repair policies:

============== ======================================================
kind            policy
============== ======================================================
container v5    rebuild: the seal-verified frame prefix is re-sealed
                with a fresh terminal frame (torn tails and unsealed
                journals are the crash signature this format is
                designed around); dropped frames are reported
journal         trim: structurally invalid JSONL entries (torn last
                line, CRC-mismatched container blobs) are dropped and
                the file rewritten; an unreadable header is a refusal
                (the batch binding is gone)
container v1–v4 verify-only: the one-shot formats carry no redundancy
                beyond their CRCs, so a payload fault is a typed
                refusal — salvage decoding can extract the prefix, but
                fsck will not forge a container for lost data
snapshot blob   verify-only (LZWS blobs are atomic artefacts; a CRC
                fault is a refusal)
cache entry     quarantine: a corrupt entry is moved aside — the cache
                re-encodes on the next miss, the bad bytes are kept
                for forensics
stale tmp       sweep: ``*.tmp.*`` leftovers from crashed atomic
                writers are reported and (with ``--repair``) removed
============== ======================================================

Every repair is itself crash-safe: the original is preserved as
``<name>.quarantine`` and the replacement goes through
:func:`~repro.reliability.atomic.atomic_write_bytes` — fsck dying
mid-repair can only leave the quarantined original plus a tmp file a
second fsck sweeps.  A rebuilt artefact is re-verified before it is
installed; a rebuild that does not verify is a refusal, never a write.
Clean artefacts are **byte-neutral**: fsck never rewrites a file that
passes verification, with or without ``--repair``.

Exit codes follow ``repro verify``: 0 everything clean (or repaired),
3 only unrecognised/unreadable paths, 4 integrity faults remain
(unrepaired, or repair refused).
"""

from __future__ import annotations

import base64
import binascii
import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .atomic import atomic_write_bytes
from .errors import ContainerError, ReproError, SnapshotError
from .verify import verify_container

__all__ = [
    "FsckItem",
    "FsckReport",
    "fsck_paths",
    "detect_kind",
]

#: Statuses that leave a fault on disk (drive exit code 4).
_FAULT_STATUSES = frozenset({"corrupt", "salvageable", "stale_tmp", "refused"})
#: Statuses meaning fsck could not even classify the path (exit 3).
_UNKNOWN_STATUSES = frozenset({"unknown", "unreadable"})


@dataclass(frozen=True)
class FsckItem:
    """One scanned path: what it is, what state it is in, what was done.

    ``status`` vocabulary: ``clean`` (verifies; byte-neutral),
    ``salvageable`` (fault found, a repair is available — dry run),
    ``corrupt`` (fault found, repairability unknown/none),
    ``repaired`` (rewritten; original at ``.quarantine``),
    ``swept`` (stale tmp removed), ``stale_tmp`` (reported, not
    removed), ``quarantined`` (an earlier repair's ``.quarantine``
    artefact — informational), ``refused`` (fault found and repair is
    refused: no redundancy to rebuild from), ``unreadable`` (I/O error),
    ``unknown`` (no artefact kind matched).
    """

    path: str
    kind: str
    status: str
    detail: str = ""
    notes: Tuple[str, ...] = ()
    churned: int = 0  #: bytes rewritten into the path (0 = untouched)

    @property
    def is_fault(self) -> bool:
        return self.status in _FAULT_STATUSES

    def describe(self) -> str:
        flag = "FAULT" if self.is_fault else "ok   "
        line = f"{flag} {self.path} [{self.kind}] {self.status}"
        if self.detail:
            line += f": {self.detail}"
        return line


@dataclass
class FsckReport:
    """Everything one fsck invocation found and did."""

    items: List[FsckItem] = field(default_factory=list)
    repair: bool = False
    scrub_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.exit_code == 0

    @property
    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for item in self.items:
            counts[item.status] = counts.get(item.status, 0) + 1
        return counts

    @property
    def exit_code(self) -> int:
        if any(item.is_fault for item in self.items):
            return 4
        if any(item.status in _UNKNOWN_STATUSES for item in self.items):
            return 3
        return 0

    def to_json(self) -> dict:
        return {
            "schema": "repro.fsck/1",
            "ok": self.ok,
            "exit_code": self.exit_code,
            "repair": self.repair,
            "counts": self.counts,
            "items": [
                {
                    "path": item.path,
                    "kind": item.kind,
                    "status": item.status,
                    "detail": item.detail,
                    "notes": list(item.notes),
                    "churned": item.churned,
                }
                for item in self.items
            ],
            "scrub": self.scrub_stats,
        }

    def describe(self) -> str:
        lines = [item.describe() for item in self.items]
        for directory, stats in sorted(self.scrub_stats.items()):
            summary = ", ".join(f"{k}={v}" for k, v in sorted(stats.items()))
            lines.append(f"scrub {directory}: {summary}")
        counts = ", ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))
        lines.append(f"{'PASS' if self.ok else 'FAIL'} ({counts or 'nothing scanned'})")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Kind detection
# ----------------------------------------------------------------------


def detect_kind(path: Path, data: bytes) -> str:
    """Classify a file by name and content (see the module table)."""
    name = path.name
    if name.endswith(".quarantine"):
        return "quarantine"
    if ".tmp." in name:
        return "tmp"
    if name.endswith(".entry"):
        return "cache-entry"
    if data[:4] == b"LZWT" and len(data) >= 5:
        return f"container-v{data[4]}"
    if data[:4] == b"LZWS":
        return "snapshot"
    first_line = data.split(b"\n", 1)[0]
    if first_line[:1] == b"{":
        try:
            head = json.loads(first_line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            head = None
        if isinstance(head, dict) and head.get("kind") == "header" and "fingerprint" in head:
            return "journal"
    if data[:1] in (b"{", b"["):
        try:
            json.loads(data.decode("utf-8"))
            return "report"
        except (UnicodeDecodeError, json.JSONDecodeError):
            pass
    return "unknown"


# ----------------------------------------------------------------------
# Per-kind deep checks and rebuilds
# ----------------------------------------------------------------------


def _rebuild_stream(data: bytes) -> Tuple[bytes, Tuple[str, ...]]:
    """Rebuild a v5 journal from its seal-verified frame prefix.

    Raises :class:`ContainerError` when the stream header itself is
    unusable (nothing to anchor a rebuild to).  Returns the rebuilt
    container bytes and human-readable notes on what was dropped.
    """
    from ..core.stream import StreamDecoder
    from ..streamio import (
        V5_HEADER_SIZE,
        frame_seal,
        pack_chars,
        scan_stream,
        terminal_frame_bytes,
    )
    from .errors import DecodeError

    scan = scan_stream(data)  # raises only for an unusable header
    decoder = StreamDecoder(scan.config)
    chars_crc = 0
    kept = []
    notes: List[str] = []
    for frame in scan.frames:
        chunk: List[int] = []
        try:
            for code in frame.codes:
                chunk.extend(decoder.push(code))
        except DecodeError as exc:
            notes.append(f"frame {frame.index} undecodable ({exc.message}); dropped")
            break
        next_crc = zlib.crc32(pack_chars(chunk), chars_crc)
        if frame_seal(decoder.snapshot(), next_crc) != frame.dict_digest:
            notes.append(f"frame {frame.index} seal mismatch; dropped")
            break
        chars_crc = next_crc
        kept.append(frame)
    dropped = len(scan.frames) - len(kept)
    if dropped > 1:
        notes.append(f"frames after the first fault dropped ({dropped} total)")
    if scan.error is not None:
        reason = getattr(scan.error, "reason", None) or "structural"
        notes.append(f"tail unparseable past frame {len(scan.frames) - 1} ({reason})")
    if kept:
        last = kept[-1]
        # The writer's terminal seal equals the last frame's (no codes
        # are pushed between the final data frame and finalize), so the
        # kept prefix's own header fields are the rebuild's totals —
        # no re-derivation that could diverge from the writer.
        terminal = terminal_frame_bytes(
            len(kept),
            sum(frame.num_codes for frame in kept),
            last.original_bits_cum,
            last.chain_crc,
            last.dict_digest,
        )
        body = data[V5_HEADER_SIZE : kept[-1].end_offset]
    else:
        terminal = terminal_frame_bytes(
            0, 0, 0, 0, frame_seal(StreamDecoder(scan.config).snapshot(), 0)
        )
        body = b""
        notes.append("no complete frame survived; resealed as an empty stream")
    rebuilt = data[:V5_HEADER_SIZE] + body + terminal
    return rebuilt, tuple(notes)


def _journal_lines(data: bytes) -> Tuple[bytes, List[bytes], List[str]]:
    """Split a journal, validate entries; returns (header, kept, notes).

    Raises :class:`ContainerError` when the header line is unreadable
    or is not a shard-journal header — without the batch fingerprint
    binding there is nothing safe to rebuild.
    """
    lines = data.split(b"\n")
    terminated = lines and lines[-1] == b""
    if terminated:
        lines = lines[:-1]
    if not lines:
        raise ContainerError("journal is empty", reason="journal_header")
    try:
        header = json.loads(lines[0].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        raise ContainerError(
            "journal header line is unreadable; the batch binding is lost",
            reason="journal_header",
        ) from None
    if not isinstance(header, dict) or header.get("kind") != "header":
        raise ContainerError(
            "not a shard-journal file (bad header)", reason="journal_header"
        )
    kept: List[bytes] = []
    notes: List[str] = []
    for number, raw in enumerate(lines[1:], start=2):
        try:
            record = json.loads(raw.decode("utf-8"))
            if not isinstance(record, dict) or record.get("kind") != "shard":
                raise ValueError("not a shard entry")
            container = base64.b64decode(record["container"], validate=True)
            if zlib.crc32(container) != record["crc"]:
                raise ValueError("container CRC mismatch")
        except (
            UnicodeDecodeError,
            json.JSONDecodeError,
            KeyError,
            ValueError,
            TypeError,
            binascii.Error,
        ) as exc:
            notes.append(f"line {number}: invalid entry dropped ({exc})")
            continue
        kept.append(raw)
    if not terminated and not notes:
        notes.append("journal not newline-terminated (torn final write)")
    return lines[0], kept, notes


def _check_cache_entry(path: Path, data: bytes) -> Optional[str]:
    """None when the entry verifies, else a fault description."""
    fingerprint = path.name[: -len(".entry")]
    newline = data.find(b"\n")
    if newline < 0:
        return "no metadata line"
    try:
        meta = json.loads(data[:newline].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return "metadata line unreadable"
    if not isinstance(meta, dict) or meta.get("fingerprint") != fingerprint:
        return "fingerprint mismatch (entry does not answer its own key)"
    container = data[newline + 1 :]
    if meta.get("crc") != zlib.crc32(container):
        return "container CRC mismatch"
    if not isinstance(meta.get("fields"), dict):
        return "reply fields missing"
    report = verify_container(container)
    if not report.ok:
        failed = [check.name for check in report.checks if not check.ok]
        return f"stored container fails verification ({', '.join(failed)})"
    return None


# ----------------------------------------------------------------------
# Per-path inspection
# ----------------------------------------------------------------------


def _quarantine_and_replace(path: Path, rebuilt: bytes) -> None:
    """Install a repair crash-safely: keep the original, write atomically."""
    os.replace(path, path.with_name(path.name + ".quarantine"))
    atomic_write_bytes(path, rebuilt)


def _inspect_file(path: Path, repair: bool) -> FsckItem:
    try:
        data = path.read_bytes()
    except OSError as exc:
        return FsckItem(str(path), "unreadable", "unreadable", detail=str(exc))
    kind = detect_kind(path, data)

    if kind == "quarantine":
        return FsckItem(
            str(path), kind, "quarantined", detail="kept for forensics"
        )

    if kind == "tmp":
        if repair:
            try:
                path.unlink()
            except OSError as exc:
                return FsckItem(str(path), kind, "stale_tmp", detail=str(exc))
            return FsckItem(
                str(path), kind, "swept", detail="stale temp file removed"
            )
        return FsckItem(
            str(path),
            kind,
            "stale_tmp",
            detail="leftover from a crashed atomic write (--repair removes)",
        )

    if kind.startswith("container-"):
        return _inspect_container(path, data, kind, repair)

    if kind == "snapshot":
        return _inspect_snapshot(path, data, kind)

    if kind == "journal":
        return _inspect_journal(path, data, kind, repair)

    if kind == "cache-entry":
        fault = _check_cache_entry(path, data)
        if fault is None:
            return FsckItem(str(path), kind, "clean")
        if repair:
            try:
                os.replace(path, path.with_name(path.name + ".quarantine"))
            except OSError as exc:
                return FsckItem(str(path), kind, "corrupt", detail=str(exc))
            return FsckItem(
                str(path),
                kind,
                "repaired",
                detail=f"{fault}; entry quarantined (cache re-encodes on miss)",
            )
        return FsckItem(str(path), kind, "salvageable", detail=fault)

    if kind == "report":
        return FsckItem(str(path), kind, "clean", detail="well-formed JSON")

    return FsckItem(
        str(path), kind, "unknown", detail="no artefact signature matched"
    )


def _inspect_container(path: Path, data: bytes, kind: str, repair: bool) -> FsckItem:
    report = verify_container(data)
    if report.ok:
        return FsckItem(str(path), kind, "clean")
    failed = [check.name for check in report.checks if not check.ok]
    detail = f"fails {', '.join(failed)}"
    if not report.recognised:
        # Carries our magic but cannot be parsed as any container
        # version: a torn header stub from an interrupted append-journal
        # (atomic writers never leave torn finals).  There is nothing to
        # rebuild from, so --repair moves it aside for forensics.
        if not repair:
            return FsckItem(str(path), kind, "corrupt", detail=detail)
        os.replace(path, path.with_name(path.name + ".quarantine"))
        return FsckItem(
            str(path),
            kind,
            "quarantined",
            detail=f"{detail}; unparseable header stub moved aside",
        )

    if report.version == 5:
        try:
            rebuilt, notes = _rebuild_stream(data)
        except ContainerError as exc:
            return FsckItem(
                str(path),
                kind,
                "refused",
                detail=f"{detail}; rebuild refused: {exc.message}",
            )
        if not verify_container(rebuilt).ok:
            return FsckItem(
                str(path),
                kind,
                "refused",
                detail=f"{detail}; rebuilt prefix does not verify",
                notes=notes,
            )
        if not repair:
            return FsckItem(
                str(path),
                kind,
                "salvageable",
                detail=f"{detail}; frame-prefix rebuild available (--repair)",
                notes=notes,
            )
        _quarantine_and_replace(path, rebuilt)
        return FsckItem(
            str(path),
            kind,
            "repaired",
            detail=f"{detail}; resealed frame prefix installed",
            notes=notes,
            churned=len(rebuilt),
        )

    # v1–v4: one-shot formats with no redundancy — a fault is a typed,
    # documented refusal (salvage decoding can still extract the
    # prefix, but fsck will not write a container for lost data).
    return FsckItem(
        str(path),
        kind,
        "refused",
        detail=(
            f"{detail}; v{report.version} carries no redundancy to rebuild "
            "from — extract the decodable prefix with salvage decoding"
        ),
    )


def _inspect_snapshot(path: Path, data: bytes, kind: str) -> FsckItem:
    from ..core.dictionary import DictionarySnapshot

    try:
        DictionarySnapshot.from_bytes(data)
    except (SnapshotError, ReproError) as exc:
        return FsckItem(
            str(path),
            kind,
            "refused",
            detail=(
                f"{exc.message}; snapshot blobs carry no redundancy — "
                "re-derive the snapshot from its source container"
            ),
        )
    return FsckItem(str(path), kind, "clean")


def _inspect_journal(path: Path, data: bytes, kind: str, repair: bool) -> FsckItem:
    try:
        header_line, kept, notes = _journal_lines(data)
    except ContainerError as exc:
        return FsckItem(
            str(path), kind, "refused", detail=f"repair refused: {exc.message}"
        )
    if not notes:
        return FsckItem(str(path), kind, "clean")
    rebuilt = b"\n".join([header_line] + kept) + b"\n"
    detail = f"{len(notes)} problem(s); {len(kept)} valid entries"
    if not repair:
        return FsckItem(
            str(path),
            kind,
            "salvageable",
            detail=f"{detail}; trimmed rewrite available (--repair)",
            notes=tuple(notes),
        )
    _quarantine_and_replace(path, rebuilt)
    return FsckItem(
        str(path),
        kind,
        "repaired",
        detail=f"{detail}; invalid entries trimmed",
        notes=tuple(notes),
        churned=len(rebuilt),
    )


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def _scrub_cache_dir(directory: Path, repair: bool, recorder) -> Dict[str, int]:
    from ..fleet.cache import ResultCache

    cache = ResultCache(directory, recorder=recorder)
    return cache.scrub(repair=repair)


def fsck_paths(
    paths: Sequence[Union[str, Path]],
    repair: bool = False,
    scrub: bool = False,
    recorder=None,
) -> FsckReport:
    """Scan (and with ``repair`` fix) every given file or directory.

    Directories are walked recursively and every file inspected; with
    ``scrub`` a directory is instead treated as a fleet result-cache
    root and swept through :meth:`~repro.fleet.cache.ResultCache.scrub`
    (quarantining corrupt entries only when ``repair`` is also set).
    """
    report = FsckReport(repair=repair)
    for given in paths:
        given = Path(given)
        if given.is_dir():
            if scrub:
                stats = _scrub_cache_dir(given, repair, recorder)
                report.scrub_stats[str(given)] = stats
                if stats["corrupt"] and not repair:
                    status, detail = "corrupt", (
                        f"{stats['corrupt']} corrupt entries (--repair quarantines)"
                    )
                elif stats["stale_tmp"] and not repair:
                    status, detail = "stale_tmp", (
                        f"{stats['stale_tmp']} stale temp files (--repair sweeps)"
                    )
                elif stats["corrupt"]:
                    status, detail = "repaired", (
                        f"{stats['quarantined']}/{stats['corrupt']} corrupt "
                        "entries quarantined"
                    )
                else:
                    status, detail = "clean", f"{stats['clean']} entries verified"
                report.items.append(
                    FsckItem(str(given), "cache-dir", status, detail=detail)
                )
                continue
            files = sorted(
                entry for entry in given.rglob("*") if entry.is_file()
            )
            for entry in files:
                report.items.append(_inspect_file(entry, repair))
            continue
        if not given.exists():
            report.items.append(
                FsckItem(str(given), "unreadable", "unreadable", detail="no such file")
            )
            continue
        report.items.append(_inspect_file(given, repair))
    return report
