"""Crash-point injection: prove the durability contracts, don't assert them.

Every artefact writer in the package claims a recovery contract —
old-or-new for :func:`~repro.reliability.atomic.atomic_write_bytes`,
whole-frame-prefix for the v5 journal, resume-equals-fresh for the
checkpoint journal, never-serve-corrupt for the fleet cache.  This
module *demonstrates* those claims: it runs the real writer code over a
simulated disk (:class:`CrashFS`, installed through the
:class:`~repro.reliability.atomic.FSBackend` seam), enumerates a power
cut at **every** I/O boundary the writer crosses, and materialises the
post-crash filesystem for a recovery check.

Power-cut model
---------------

The simulated disk distinguishes three durability tiers, mirroring
what a journalling filesystem actually guarantees:

* **durable** bytes — written *and* covered by an ``fsync`` of the
  file; they survive any crash;
* **volatile** bytes — written but not yet fsynced; a crash may keep
  *any prefix* of them (the page cache flushes out of order and
  sector-at-a-time).  Each crash point is therefore expanded along a
  survival axis: ``none`` (all volatile bytes lost), ``half`` (a torn
  prefix), ``all`` (the cache happened to flush);
* **pending metadata** — renames, unlinks and file creations not yet
  covered by a directory fsync (or, for creation/content, an fsync of
  the file itself).  Each crash point is expanded along a metadata
  axis: ``lost`` (pending operations rolled back — the lost-rename
  case) and ``kept``.

``open(..., "wb")`` models truncation as immediately durable (the
conservative direction for old-or-new checks: the *old* content is
gone the moment a writer truncates in place, which is exactly why
``atomic_write_bytes`` never does).  A crash raises
:class:`SimulatedCrash` — a ``BaseException``, because a power cut
does not run ``except Exception`` cleanup handlers; once crashed the
disk freezes and every later operation is inert, so ``finally``
blocks in writer code cannot alter the post-crash state.

Besides crashes, :class:`CrashFS` injects *environmental* failures
(``fail_at``/``fail_errno``): the scheduled operation raises e.g.
``ENOSPC`` and the writer keeps running — this drives the
disk-full-mid-append campaign arm, where the contract is a typed
:class:`~repro.reliability.errors.ContainerError` plus an artefact
that still honours its recovery contract.

The states reached from different crash points frequently coincide
(every ``flush`` boundary, for instance, is indistinguishable from the
preceding ``write``).  :func:`run_crash_campaign` deduplicates states
by content digest and runs recovery once per *unique* state, while the
report still accounts for every enumerated point.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from .atomic import FSBackend, use_backend
from .errors import ReproError

__all__ = [
    "CrashCampaignResult",
    "CrashFS",
    "CrashPoint",
    "CrashTrial",
    "CrashWriterSpec",
    "SimulatedCrash",
    "enumerate_crash_points",
    "run_crash_campaign",
    "BAD_OUTCOMES",
    "DATA_SURVIVAL",
    "META_SURVIVAL",
]

#: Volatile-data survival levels a power cut is expanded over.
DATA_SURVIVAL = ("none", "half", "all")
#: Pending-metadata survival levels (renames/unlinks/creations).
META_SURVIVAL = ("lost", "kept")

#: Outcome labels that fail a campaign.  ``recover`` callbacks may
#: return any label; these two (or labels prefixed with them) mean the
#: durability contract broke.
BAD_OUTCOMES = ("silent", "escaped")


class SimulatedCrash(BaseException):
    """The power cut.  A ``BaseException``: cleanup code that catches
    ``Exception``/``OSError`` must not run, exactly as it would not run
    on a real power loss."""


class _SimFile:
    """One simulated inode: durable content + unsynced tail."""

    __slots__ = ("durable", "volatile", "link_durable")

    def __init__(self, durable: bytes = b"", link_durable: bool = True) -> None:
        self.durable = durable
        self.volatile = b""
        #: Whether the directory entry survives a crash (true once the
        #: file — or its directory — has been fsynced).
        self.link_durable = link_durable


class _SimHandle:
    """File-object shim routing writes into the simulated disk."""

    def __init__(self, fs: "CrashFS", path: str, append: bool) -> None:
        self._fs = fs
        self._path = path
        self.closed = False
        del append  # position bookkeeping lives in the _SimFile

    def write(self, data: bytes) -> int:
        self._fs._write(self._path, bytes(data))
        return len(data)

    def flush(self) -> None:
        self._fs._flush(self._path)

    def close(self) -> None:
        if not self.closed:
            self._fs._close(self._path)
            self.closed = True

    def fileno(self) -> int:  # pragma: no cover — nothing should need it
        raise OSError("simulated handle has no file descriptor")

    @property
    def path(self) -> str:
        return self._path

    def __enter__(self) -> "_SimHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class CrashFS(FSBackend):
    """A :class:`FSBackend` over a simulated disk with power-cut
    semantics.

    ``crash_after=k`` raises :class:`SimulatedCrash` in place of the
    *k*-th operation (0-based; operations 0..k-1 applied).
    ``fail_at=k`` instead makes the *k*-th operation raise
    ``OSError(fail_errno)`` once, then continues normally.  With
    neither, the writer runs to completion and ``trace`` records every
    operation — the schedule later campaigns enumerate over.
    """

    def __init__(
        self,
        initial: Optional[Dict[str, bytes]] = None,
        crash_after: Optional[int] = None,
        fail_at: Optional[int] = None,
        fail_errno: int = 28,  # ENOSPC
    ) -> None:
        self.files: Dict[str, _SimFile] = {
            str(path): _SimFile(durable=data)
            for path, data in (initial or {}).items()
        }
        #: Metadata ops not yet covered by a directory fsync, oldest
        #: first: ("rename", src, moved, dst, old_dst) / ("unlink",
        #: path, file) / ("create", path, file).
        self.pending: List[tuple] = []
        self.trace: List[str] = []
        self.crash_after = crash_after
        self.fail_at = fail_at
        self.fail_errno = fail_errno
        self.crashed = False

    # -- op scheduling -------------------------------------------------

    def _tick(self, desc: str) -> None:
        if self.crashed:
            # Frozen: the machine is off.  Writer-side cleanup that
            # still executes (finally blocks) must not touch the disk.
            raise SimulatedCrash(desc)
        index = len(self.trace)
        if self.crash_after is not None and index == self.crash_after:
            self.crashed = True
            raise SimulatedCrash(f"power cut before op {index}: {desc}")
        if self.fail_at is not None and index == self.fail_at:
            self.fail_at = None  # fail once, then recover
            self.trace.append(f"{desc} -> E{self.fail_errno}")
            raise OSError(self.fail_errno, os.strerror(self.fail_errno), desc)
        self.trace.append(desc)

    # -- FSBackend surface ---------------------------------------------

    def open(self, path, mode: str):
        path = str(path)
        if mode not in ("wb", "ab"):
            raise ValueError(f"CrashFS supports binary modes only, got {mode!r}")
        self._tick(f"open:{mode}:{_short(path)}")
        existing = self.files.get(path)
        if mode == "wb" or existing is None:
            # Creation (or in-place truncation, modelled as durable —
            # see the module docstring).  A brand-new file's directory
            # entry is pending until an fsync covers it.
            created = _SimFile(durable=b"", link_durable=False)
            if existing is None:
                self.pending.append(("create", path, created))
            else:
                created.link_durable = existing.link_durable
            self.files[path] = created
        return _SimHandle(self, path, append=mode == "ab")

    def _write(self, path: str, data: bytes) -> None:
        self._tick(f"write:{len(data)}:{_short(path)}")
        self.files[path].volatile += data

    def _flush(self, path: str) -> None:
        # Application buffer -> page cache: still volatile.
        self._tick(f"flush:{_short(path)}")

    def _close(self, path: str) -> None:
        self._tick(f"close:{_short(path)}")

    def fsync(self, handle) -> None:
        path = handle.path
        self._tick(f"fsync:{_short(path)}")
        sim = self.files[path]
        sim.durable += sim.volatile
        sim.volatile = b""
        sim.link_durable = True

    def replace(self, src, dst) -> None:
        src, dst = str(src), str(dst)
        self._tick(f"replace:{_short(src)}->{_short(dst)}")
        moved = self.files.pop(src, None)
        if moved is None:
            raise OSError(2, "No such file or directory", src)
        old = self.files.get(dst)
        self.files[dst] = moved
        self.pending.append(("rename", src, moved, dst, old))

    def unlink(self, path) -> None:
        path = str(path)
        self._tick(f"unlink:{_short(path)}")
        gone = self.files.pop(path, None)
        if gone is None:
            raise OSError(2, "No such file or directory", path)
        self.pending.append(("unlink", path, gone))

    def fsync_dir(self, directory) -> None:
        directory = str(directory)
        self._tick(f"dirsync:{_short(directory)}")
        # Directory fsync persists every pending metadata op under it.
        kept: List[tuple] = []
        for op in self.pending:
            target = op[3] if op[0] == "rename" else op[1]
            if os.path.dirname(target) == directory:
                if op[0] in ("rename", "create"):
                    op[2].link_durable = True
            else:
                kept.append(op)
        self.pending = kept

    # -- post-crash state ----------------------------------------------

    def materialize(self, survival: str, meta: str) -> Dict[str, bytes]:
        """The on-disk bytes after the power cut, path -> content.

        ``survival`` picks how much of each file's volatile tail made
        it out of the page cache; ``meta`` decides whether pending
        renames/unlinks/creations were persisted by the journal or
        rolled back.
        """
        names: Dict[str, _SimFile] = dict(self.files)
        rolled_back = set()
        if meta == "lost":
            for op in reversed(self.pending):
                if op[0] == "rename":
                    _, src, moved, dst, old = op
                    if old is not None:
                        names[dst] = old
                    else:
                        names.pop(dst, None)
                    names[src] = moved
                elif op[0] == "unlink":
                    names[op[1]] = op[2]
                else:  # create
                    rolled_back.add(op[1])
        state: Dict[str, bytes] = {}
        for path, sim in names.items():
            if meta == "lost" and (path in rolled_back or not sim.link_durable):
                continue
            tail = sim.volatile
            if survival == "none":
                tail = b""
            elif survival == "half":
                tail = tail[: len(tail) // 2]
            state[path] = sim.durable + tail
        return state


def _short(path: str) -> str:
    return os.path.basename(path) or path


# ----------------------------------------------------------------------
# Campaign runner
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CrashPoint:
    """One enumerated failure: where in the schedule, and how much
    survived."""

    index: int  #: ops 0..index-1 applied; the crash replaced op ``index``
    op: str  #: description of the interrupted op ("complete" when none)
    survival: str  #: DATA_SURVIVAL level
    meta: str  #: META_SURVIVAL level
    mode: str = "crash"  #: "crash" or "errno" (environmental failure)

    def describe(self) -> str:
        return f"{self.mode}@{self.index}[{self.op}] data={self.survival} meta={self.meta}"


@dataclass(frozen=True)
class CrashTrial:
    """One recovery check: a crash point, the state it produced and the
    classified outcome."""

    point: CrashPoint
    state_digest: str
    outcome: str
    detail: str = ""

    @property
    def ok(self) -> bool:
        return not self.outcome.startswith(BAD_OUTCOMES)


@dataclass(frozen=True)
class CrashWriterSpec:
    """One artefact writer under test.

    ``write(root)`` runs the production writer against paths under
    ``root`` (all file I/O is intercepted through the backend seam).
    ``recover(root)`` inspects a materialised post-crash directory and
    returns an outcome label — anything starting with ``silent`` or
    ``escaped`` fails the campaign; every other label (``clean``,
    ``old``, ``prefix``, ``detected``, ...) is the spec's own
    vocabulary for an honoured contract.  ``setup(root)`` optionally
    returns pre-existing durable files (``relative path -> bytes``),
    e.g. the old artefact version for overwrite contracts.
    """

    name: str
    write: Callable[[Path], None]
    recover: Callable[[Path], Union[str, Tuple[str, str]]]
    setup: Optional[Callable[[Path], Dict[str, bytes]]] = None
    #: Whether the writer itself may raise a typed ReproError at a
    #: scheduled environmental failure (ENOSPC arm).  Untyped writer
    #: exceptions are always "escaped".
    description: str = ""


def enumerate_crash_points(
    spec: CrashWriterSpec, root: Path
) -> Tuple[List[str], Dict[str, bytes]]:
    """Record the spec's full op schedule (no faults injected).

    Returns the op trace and the initial (pre-state) files.  The trace
    length bounds the crash indices the campaign replays.
    """
    initial = _initial_state(spec, root)
    fs = CrashFS(initial=initial)
    with use_backend(fs):
        spec.write(root)
    return fs.trace, initial


def _initial_state(spec: CrashWriterSpec, root: Path) -> Dict[str, bytes]:
    if spec.setup is None:
        return {}
    return {
        str(root / rel): data for rel, data in spec.setup(root).items()
    }


def _state_digest(state: Dict[str, bytes]) -> str:
    digest = hashlib.sha256()
    for path in sorted(state):
        digest.update(path.encode())
        digest.update(b"\0")
        digest.update(hashlib.sha256(state[path]).digest())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def _materialize_to_dir(
    state: Dict[str, bytes], virtual_root: Path, real_root: Path
) -> None:
    real_root.mkdir(parents=True, exist_ok=True)
    for path, data in state.items():
        rel = os.path.relpath(path, str(virtual_root))
        target = real_root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(data)


@dataclass
class CrashCampaignResult:
    """All trials of one writer's campaign plus the dedup accounting."""

    name: str
    trials: List[CrashTrial] = field(default_factory=list)
    ops: List[str] = field(default_factory=list)
    points_enumerated: int = 0
    unique_states: int = 0

    @property
    def ok(self) -> bool:
        return all(trial.ok for trial in self.trials)

    @property
    def outcome_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for trial in self.trials:
            label = trial.outcome.split(":", 1)[0]
            counts[label] = counts.get(label, 0) + 1
        return counts

    def failures(self) -> List[CrashTrial]:
        return [trial for trial in self.trials if not trial.ok]

    def summary(self) -> str:
        counts = ", ".join(
            f"{label}={count}" for label, count in sorted(self.outcome_counts.items())
        )
        status = "OK" if self.ok else "FAILED"
        return (
            f"{self.name}: {status} — {self.points_enumerated} crash points, "
            f"{self.unique_states} unique states, {counts}"
        )

    def to_json(self) -> dict:
        return {
            "writer": self.name,
            "ok": self.ok,
            "ops": len(self.ops),
            "points_enumerated": self.points_enumerated,
            "unique_states": self.unique_states,
            "outcomes": self.outcome_counts,
            "failures": [
                {
                    "point": trial.point.describe(),
                    "state": trial.state_digest,
                    "outcome": trial.outcome,
                    "detail": trial.detail,
                }
                for trial in self.failures()
            ],
        }


def run_crash_campaign(
    spec: CrashWriterSpec,
    workdir: Union[str, Path],
    errno_ops: Sequence[str] = ("write", "fsync"),
    max_errno_points: Optional[int] = None,
) -> CrashCampaignResult:
    """Replay every crash point of ``spec`` and classify the recoveries.

    For each op index the writer is re-run against a fresh simulated
    disk that cuts power in place of that op; the post-crash state is
    expanded over the ``DATA_SURVIVAL`` × ``META_SURVIVAL`` grid,
    deduplicated by content, materialised under ``workdir`` and handed
    to ``spec.recover``.  A second arm injects ``ENOSPC`` at every op
    whose description starts with one of ``errno_ops`` and requires the
    writer to fail *typed* (or succeed) — an untyped exception is
    ``escaped``.
    """
    workdir = Path(workdir)
    virtual_root = workdir / "virtual"
    virtual_root.mkdir(parents=True, exist_ok=True)
    ops, initial = enumerate_crash_points(spec, virtual_root)
    result = CrashCampaignResult(name=spec.name, ops=list(ops))

    recovered: Dict[str, str] = {}  # state digest -> outcome
    details: Dict[str, str] = {}
    trial_dir = 0

    def recover_state(state: Dict[str, bytes], point: CrashPoint) -> CrashTrial:
        nonlocal trial_dir
        digest = _state_digest(state)
        if digest not in recovered:
            trial_dir += 1
            real_root = workdir / f"state-{trial_dir:04d}"
            _materialize_to_dir(state, virtual_root, real_root)
            try:
                outcome = spec.recover(real_root)
                if isinstance(outcome, tuple):
                    outcome, detail = outcome
                else:
                    detail = ""
            except ReproError as exc:
                outcome, detail = "escaped:typed-from-recover", str(exc)
            except Exception as exc:  # noqa: BLE001 — classified, not hidden
                outcome, detail = "escaped:recover-raised", f"{type(exc).__name__}: {exc}"
            recovered[digest] = outcome
            details[digest] = detail
            result.unique_states += 1
        return CrashTrial(
            point=point,
            state_digest=digest,
            outcome=recovered[digest],
            detail=details[digest],
        )

    # Arm 1: power cut in place of every op (plus the completed run).
    for index in range(len(ops) + 1):
        fs = CrashFS(initial=dict(initial), crash_after=index)
        completed = False
        try:
            with use_backend(fs):
                spec.write(virtual_root)
            completed = True
        except SimulatedCrash:
            pass
        op = ops[index] if index < len(ops) else "complete"
        if completed:
            # No crash fired: a single fully-survived state.
            state = fs.materialize("all", "kept")
            result.points_enumerated += 1
            result.trials.append(
                recover_state(state, CrashPoint(index, op, "all", "kept"))
            )
            continue
        for survival in DATA_SURVIVAL:
            for meta in META_SURVIVAL:
                point = CrashPoint(index, op, survival, meta)
                state = fs.materialize(survival, meta)
                result.points_enumerated += 1
                result.trials.append(recover_state(state, point))

    # Arm 2: environmental failure (ENOSPC) at every matching op; the
    # writer keeps running and must fail typed — then the artefact must
    # still honour its recovery contract.
    errno_indices = [
        index
        for index, op in enumerate(ops)
        if op.startswith(tuple(errno_ops))
    ]
    if max_errno_points is not None:
        errno_indices = errno_indices[:max_errno_points]
    for index in errno_indices:
        fs = CrashFS(initial=dict(initial), fail_at=index)
        writer_outcome = "completed"
        detail = ""
        try:
            with use_backend(fs):
                spec.write(virtual_root)
        except ReproError as exc:
            writer_outcome = "detected"
            detail = f"{type(exc).__name__}: {exc}"
        except OSError as exc:
            # A raw OSError reaching the operator is allowed only for
            # non-environmental errnos; the injected ones must be typed.
            writer_outcome = "escaped:untyped-oserror"
            detail = str(exc)
        except Exception as exc:  # noqa: BLE001 — classified, not hidden
            writer_outcome = "escaped:writer-raised"
            detail = f"{type(exc).__name__}: {exc}"
        point = CrashPoint(index, ops[index], "all", "kept", mode="errno")
        if writer_outcome.startswith("escaped"):
            result.points_enumerated += 1
            result.trials.append(
                CrashTrial(point=point, state_digest="-", outcome=writer_outcome, detail=detail)
            )
            continue
        state = fs.materialize("all", "kept")
        result.points_enumerated += 1
        trial = recover_state(state, point)
        if trial.outcome.startswith(BAD_OUTCOMES):
            outcome = trial.outcome
        else:
            outcome = f"{writer_outcome}+{trial.outcome}"
        result.trials.append(
            CrashTrial(
                point=point,
                state_digest=trial.state_digest,
                outcome=outcome,
                detail=trial.detail or detail,
            )
        )

    shutil.rmtree(virtual_root, ignore_errors=True)
    return result


def campaign_report(results: Sequence[CrashCampaignResult]) -> dict:
    """The JSON envelope the durability campaign writes as its artifact."""
    return {
        "schema": "repro.durability/1",
        "ok": all(result.ok for result in results),
        "writers": [result.to_json() for result in results],
        "totals": {
            "points": sum(result.points_enumerated for result in results),
            "unique_states": sum(result.unique_states for result in results),
            "failures": sum(len(result.failures()) for result in results),
        },
    }
