"""Salvage decoding: recover the longest decodable prefix.

When an ATE dump comes back corrupted the strict decoder rejects it
outright, which is the correct production behaviour but useless for
debugging *where* the stream went bad.  :func:`decode_partial` decodes
code by code and, instead of raising, returns everything decoded up to
the first undecodable code together with a machine-readable diagnosis
(the failing code index, its bit offset in the payload and the
dictionary state).  :func:`salvage_container` does the same starting
from raw container bytes, tolerating payload CRC mismatches and
truncated payloads that :func:`repro.container.load_bytes` rejects.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..bitstream import BitReader, TernaryVector
from ..core import CompressedStream, LZWConfig
from ..core.decoder import _chars_to_stream, iter_decode
from .errors import DecodeError, ReproError, StreamError

__all__ = ["PartialDecodeResult", "decode_partial", "salvage_container"]


@dataclass(frozen=True)
class PartialDecodeResult:
    """Outcome of a best-effort decode.

    Attributes
    ----------
    stream:
        The decoded prefix as a fully specified ternary stream.  On a
        complete decode it is truncated to ``original_bits`` like the
        strict decoder's output.
    chars:
        The decoded character sequence backing ``stream``.
    codes_decoded:
        How many leading codes decoded successfully.
    total_codes:
        Length of the input code sequence.
    complete:
        True when every code decoded and the stream reached
        ``original_bits``.
    error:
        The typed error that stopped the decode (``None`` when
        ``complete``).
    failed_code_index / failed_bit_offset:
        Position of the first undecodable code in the code sequence and
        in the packed payload bit stream (``None`` when ``complete``).
    notes:
        Human-readable observations gathered while salvaging (CRC
        mismatches tolerated, payload truncation, ...).
    """

    stream: TernaryVector
    chars: Tuple[int, ...]
    codes_decoded: int
    total_codes: int
    complete: bool
    error: Optional[ReproError] = None
    failed_code_index: Optional[int] = None
    failed_bit_offset: Optional[int] = None
    notes: Tuple[str, ...] = field(default=())

    @property
    def recovered_bits(self) -> int:
        """Number of scan-stream bits recovered."""
        return len(self.stream)

    def describe(self) -> str:
        """One-line summary for logs and the CLI."""
        if self.complete:
            return (
                f"complete: {self.codes_decoded}/{self.total_codes} codes, "
                f"{self.recovered_bits} bits"
            )
        where = (
            f"code {self.failed_code_index} (bit offset {self.failed_bit_offset})"
            if self.failed_code_index is not None
            else "end of stream"
        )
        reason = self.error.message if self.error is not None else "unknown"
        return (
            f"partial: recovered {self.codes_decoded}/{self.total_codes} codes "
            f"({self.recovered_bits} bits) up to {where}: {reason}"
        )


def decode_partial(compressed: CompressedStream) -> PartialDecodeResult:
    """Best-effort decode of a :class:`CompressedStream`.

    Never raises for an undecodable stream: the longest decodable prefix
    is returned with the typed error attached.
    """
    return _decode_partial_codes(
        compressed.codes, compressed.config, compressed.original_bits
    )


def _decode_partial_codes(
    codes: Tuple[int, ...],
    config: LZWConfig,
    original_bits: Optional[int],
    notes: Tuple[str, ...] = (),
) -> PartialDecodeResult:
    chars = []
    codes_decoded = 0
    error: Optional[ReproError] = None
    try:
        for index, expansion in iter_decode(codes, config):
            chars.extend(expansion)
            codes_decoded = index + 1
    except DecodeError as exc:
        error = exc
    prefix = _chars_to_stream(chars, config, None)
    if error is None and original_bits is not None:
        if original_bits > len(prefix):
            error = DecodeError(
                f"decoded {len(prefix)} bits but {original_bits} expected",
                decoded_bits=len(prefix),
                expected_bits=original_bits,
            )
        else:
            prefix = prefix[:original_bits]
    return PartialDecodeResult(
        stream=prefix,
        chars=tuple(chars),
        codes_decoded=codes_decoded,
        total_codes=len(codes),
        complete=error is None,
        error=error,
        failed_code_index=getattr(error, "code_index", None),
        failed_bit_offset=getattr(error, "bit_offset", None),
        notes=notes,
    )


def salvage_container(data: bytes) -> PartialDecodeResult:
    """Best-effort decode starting from raw ``.lzwt`` container bytes.

    The header must still parse (magic, version, a valid configuration);
    beyond that every integrity failure is tolerated and recorded in
    ``notes``: payload CRC mismatches, declared bit counts exceeding the
    data, and trailing partial codes are all clamped rather than fatal.

    Raises :class:`~repro.reliability.errors.ContainerError` only when
    the header itself is unusable.
    """
    from ..container import _parse_header  # deferred: container imports core

    header = _parse_header(data)
    config = header.config
    notes = []
    payload = header.payload
    payload_bits = header.payload_bits
    if zlib.crc32(payload) != header.payload_crc:
        notes.append("payload CRC mismatch (tolerated)")
    if payload_bits > len(payload) * 8:
        notes.append(
            f"declared payload bits ({payload_bits}) exceed data "
            f"({len(payload) * 8}); clamped"
        )
        payload_bits = len(payload) * 8
    if payload_bits % config.code_bits:
        notes.append("trailing partial code dropped")
        payload_bits -= payload_bits % config.code_bits
    reader = BitReader.from_bytes(payload, payload_bits)
    codes = []
    try:
        while not reader.exhausted:
            codes.append(reader.read(config.code_bits))
    except StreamError:  # pragma: no cover - excluded by the clamping above
        notes.append("payload ended mid-code")
    return _decode_partial_codes(
        tuple(codes), config, header.original_bits, notes=tuple(notes)
    )
