"""Salvage decoding: recover the longest decodable prefix.

When an ATE dump comes back corrupted the strict decoder rejects it
outright, which is the correct production behaviour but useless for
debugging *where* the stream went bad.  :func:`decode_partial` decodes
code by code and, instead of raising, returns everything decoded up to
the first undecodable code together with a machine-readable diagnosis
(the failing code index, its bit offset in the payload and the
dictionary state).  :func:`salvage_container` does the same starting
from raw container bytes, tolerating payload CRC mismatches and
truncated payloads that :func:`repro.container.load_bytes` rejects.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..bitstream import BitReader, TernaryVector
from ..core import CompressedStream, LZWConfig
from ..core.decoder import _chars_to_stream, iter_decode
from .errors import DecodeError, ReproError, StreamError

__all__ = ["PartialDecodeResult", "decode_partial", "salvage_container"]


@dataclass(frozen=True)
class PartialDecodeResult:
    """Outcome of a best-effort decode.

    Attributes
    ----------
    stream:
        The decoded prefix as a fully specified ternary stream.  On a
        complete decode it is truncated to ``original_bits`` like the
        strict decoder's output.
    chars:
        The decoded character sequence backing ``stream``.
    codes_decoded:
        How many leading codes decoded successfully.
    total_codes:
        Length of the input code sequence.
    complete:
        True when every code decoded and the stream reached
        ``original_bits``.
    error:
        The typed error that stopped the decode (``None`` when
        ``complete``).
    failed_code_index / failed_bit_offset:
        Position of the first undecodable code in the code sequence and
        in the packed payload bit stream (``None`` when ``complete``).
        For a multi-segment container these are relative to the failing
        *segment*'s code sequence and payload.
    notes:
        Human-readable observations gathered while salvaging (CRC
        mismatches tolerated, payload truncation, ...).
    failed_segment:
        For a multi-segment (v3) container, the table index of the first
        segment that failed to decode (``None`` when ``complete`` or for
        single-stream containers).  Segments before it are recovered in
        full; segments after it are not attempted (each decodes with a
        fresh dictionary, but the *logical* stream is their ordered
        concatenation, so a hole would misalign every later bit).
    """

    stream: TernaryVector
    chars: Tuple[int, ...]
    codes_decoded: int
    total_codes: int
    complete: bool
    error: Optional[ReproError] = None
    failed_code_index: Optional[int] = None
    failed_bit_offset: Optional[int] = None
    notes: Tuple[str, ...] = field(default=())
    failed_segment: Optional[int] = None

    @property
    def recovered_bits(self) -> int:
        """Number of scan-stream bits recovered."""
        return len(self.stream)

    def describe(self) -> str:
        """One-line summary for logs and the CLI."""
        if self.complete:
            return (
                f"complete: {self.codes_decoded}/{self.total_codes} codes, "
                f"{self.recovered_bits} bits"
            )
        where = (
            f"code {self.failed_code_index} (bit offset {self.failed_bit_offset})"
            if self.failed_code_index is not None
            else "end of stream"
        )
        if self.failed_segment is not None:
            where = f"segment {self.failed_segment}, {where}"
        reason = self.error.message if self.error is not None else "unknown"
        return (
            f"partial: recovered {self.codes_decoded}/{self.total_codes} codes "
            f"({self.recovered_bits} bits) up to {where}: {reason}"
        )


def decode_partial(compressed: CompressedStream) -> PartialDecodeResult:
    """Best-effort decode of a :class:`CompressedStream`.

    Never raises for an undecodable stream: the longest decodable prefix
    is returned with the typed error attached.
    """
    return _decode_partial_codes(
        compressed.codes, compressed.config, compressed.original_bits
    )


def _decode_partial_codes(
    codes: Tuple[int, ...],
    config: LZWConfig,
    original_bits: Optional[int],
    notes: Tuple[str, ...] = (),
    seed=None,
    link: Optional[int] = None,
) -> PartialDecodeResult:
    chars = []
    codes_decoded = 0
    error: Optional[ReproError] = None
    try:
        for index, expansion in iter_decode(
            codes, config, seed=seed, link=link
        ):
            chars.extend(expansion)
            codes_decoded = index + 1
    except DecodeError as exc:
        error = exc
    prefix = _chars_to_stream(chars, config, None)
    if error is None and original_bits is not None:
        if original_bits > len(prefix):
            error = DecodeError(
                f"decoded {len(prefix)} bits but {original_bits} expected",
                decoded_bits=len(prefix),
                expected_bits=original_bits,
            )
        else:
            prefix = prefix[:original_bits]
    return PartialDecodeResult(
        stream=prefix,
        chars=tuple(chars),
        codes_decoded=codes_decoded,
        total_codes=len(codes),
        complete=error is None,
        error=error,
        failed_code_index=getattr(error, "code_index", None),
        failed_bit_offset=getattr(error, "bit_offset", None),
        notes=notes,
    )


def salvage_container(data: bytes, recorder=None) -> PartialDecodeResult:
    """Best-effort decode starting from raw ``.lzwt`` container bytes.

    The header must still parse (magic, version, a valid configuration —
    and, for multi-segment v3 containers, a structurally valid segment
    table); beyond that every integrity failure is tolerated and
    recorded in ``notes``: header/payload CRC mismatches, declared bit
    counts exceeding the data, and trailing partial codes are all
    clamped rather than fatal.  A v3 container salvages segment by
    segment: every segment before the first undecodable one is
    recovered in full and the failing table index is reported as
    ``failed_segment`` (matching the ``segment=i`` diagnostics of
    ``repro verify``'s exit-code-4 errors).  A seeded (v4) container
    additionally resolves each segment's dictionary seed first — an
    unreadable seed blob or an underivable chain seed makes that
    segment undecodable (see :func:`_salvage_seeded`).  A streaming
    (v5) journal salvages frame by frame, recovering every complete
    digest-verified frame before the first fault (see
    :func:`_salvage_stream`).

    Raises :class:`~repro.reliability.errors.ContainerError` only when
    the header (or v3 segment table) itself is unusable.
    """
    from ..container import _parse_header, container_version
    from .errors import ContainerError

    try:
        version = container_version(data)
    except ContainerError:
        version = None  # let _parse_header report the header problem
    if version == 3:
        return _salvage_multi(data)
    if version == 4:
        return _salvage_seeded(data)
    if version == 5:
        return _salvage_stream(data, recorder=recorder)
    header = _parse_header(data)
    config = header.config
    notes = []
    payload = header.payload
    payload_bits = header.payload_bits
    if zlib.crc32(payload) != header.payload_crc:
        notes.append("payload CRC mismatch (tolerated)")
    if payload_bits > len(payload) * 8:
        notes.append(
            f"declared payload bits ({payload_bits}) exceed data "
            f"({len(payload) * 8}); clamped"
        )
        payload_bits = len(payload) * 8
    if payload_bits % config.code_bits:
        notes.append("trailing partial code dropped")
        payload_bits -= payload_bits % config.code_bits
    reader = BitReader.from_bytes(payload, payload_bits)
    codes = []
    try:
        while not reader.exhausted:
            codes.append(reader.read(config.code_bits))
    except StreamError:  # pragma: no cover - excluded by the clamping above
        notes.append("payload ended mid-code")
    return _decode_partial_codes(
        tuple(codes), config, header.original_bits, notes=tuple(notes)
    )


def _salvage_stream(data: bytes, recorder=None) -> PartialDecodeResult:
    """Frame-by-frame best-effort decode of a streaming (v5) journal.

    Every structurally valid, digest-verified frame before the first
    fault is recovered — the crash-recovery contract of the append-only
    format: a torn tail (the crash signature) or a missing terminal
    costs only the unfinished suffix, and is distinguished in the notes
    from mid-file corruption.  A frame whose dictionary digest
    mismatches is dropped along with everything after it (a diverged
    dictionary would expand every later code to the wrong string).

    Raises :class:`~repro.reliability.errors.ContainerError` only when
    the 19-byte stream header itself is unusable.
    """
    from ..core.stream import StreamDecoder
    from ..observability import NULL_RECORDER
    from ..observability import schema as ev
    from ..streamio import frame_seal, pack_chars, scan_stream

    rec = recorder if recorder is not None else NULL_RECORDER
    scan = scan_stream(data)  # raises only for an unusable header
    config = scan.config
    notes = []
    decoder = StreamDecoder(config)
    chars = []
    chars_crc = 0
    codes_decoded = 0
    frames_kept = 0
    error: Optional[ReproError] = scan.error
    failed_frame: Optional[int] = None
    failed_code_index: Optional[int] = None
    failed_bit_offset: Optional[int] = None

    for frame in scan.frames:
        frame_chars = []
        try:
            for code in frame.codes:
                frame_chars.extend(decoder.push(code))
        except DecodeError as exc:
            error = exc
            failed_frame = frame.index
            failed_code_index = getattr(exc, "code_index", None)
            failed_bit_offset = getattr(exc, "bit_offset", None)
            notes.append(f"frame {frame.index} undecodable")
            break
        next_crc = zlib.crc32(pack_chars(frame_chars), chars_crc)
        if frame_seal(decoder.snapshot(), next_crc) != frame.dict_digest:
            error = DecodeError(
                f"frame {frame.index} seal mismatch "
                "(decoded content diverges from the writer's)",
                frame=frame.index,
            )
            failed_frame = frame.index
            notes.append(f"frame {frame.index} seal mismatch")
            break
        chars_crc = next_crc
        chars.extend(frame_chars)
        codes_decoded += frame.num_codes
        frames_kept += 1
        if rec.enabled:
            rec.incr(ev.STREAM_FRAMES_SALVAGED)

    if failed_frame is not None and failed_frame + 1 < len(scan.frames):
        notes.append(
            f"frames {failed_frame + 1}..{len(scan.frames) - 1} not attempted"
        )
    if failed_frame is None and scan.error is not None:
        reason = getattr(scan.error, "reason", None)
        if reason == "torn_tail":
            notes.append(
                f"torn tail after frame {frames_kept - 1} (crash while "
                "appending); complete frames recovered"
                if frames_kept
                else "torn tail before the first complete frame"
            )
        elif reason == "missing_terminal":
            notes.append(
                "journal unsealed: no terminal frame (crash before "
                f"finalize); {frames_kept} complete frames recovered"
            )
        else:
            notes.append(
                f"frame {len(scan.frames)} unreadable "
                f"({scan.error.message}); later frames not attempted"
            )
        failed_frame = len(scan.frames)

    if scan.terminal is not None:
        total_codes = scan.terminal.total_codes
    else:
        total_codes = sum(frame.num_codes for frame in scan.frames)
        notes.append("total code count unknown (journal unsealed)")

    prefix = _chars_to_stream(chars, config, None)
    complete = error is None and scan.terminal is not None
    if complete:
        total_bits = scan.terminal.total_original_bits
        if total_bits > len(prefix):
            error = DecodeError(
                f"decoded {len(prefix)} bits but {total_bits} expected",
                decoded_bits=len(prefix),
                expected_bits=total_bits,
            )
            complete = False
        else:
            prefix = prefix[:total_bits]
    return PartialDecodeResult(
        stream=prefix,
        chars=tuple(chars),
        codes_decoded=codes_decoded,
        total_codes=total_codes,
        complete=complete,
        error=error,
        failed_code_index=failed_code_index,
        failed_bit_offset=failed_bit_offset,
        notes=tuple(notes),
        failed_segment=failed_frame,
    )


def _salvage_multi(data: bytes) -> PartialDecodeResult:
    """Segment-by-segment best-effort decode of a v3 container.

    The segment table must be structurally sound (:func:`_parse_multi`
    still raises on a torn table); a mismatching header CRC or segment
    payload CRC is tolerated with a note, and the decode stops at the
    first segment whose payload does not decode.
    """
    from ..container import (  # deferred: container imports core
        V3_HEADER_CRC_OFFSET,
        _parse_multi,
        _segment_payload,
    )

    header = _parse_multi(data)
    config = header.config
    notes = []
    actual_crc = zlib.crc32(data[:V3_HEADER_CRC_OFFSET] + header.table)
    if actual_crc != header.header_crc:
        notes.append("header CRC mismatch (tolerated)")
    streams = []
    chars = []
    codes_decoded = 0
    total_codes = sum(entry.num_codes for entry in header.segments)
    for index, entry in enumerate(header.segments):
        payload = _segment_payload(header, entry)
        if zlib.crc32(payload) != entry.payload_crc:
            notes.append(f"segment {index}: payload CRC mismatch (tolerated)")
        reader = BitReader.from_bytes(payload, entry.payload_bits)
        codes = []
        while not reader.exhausted:
            codes.append(reader.read(config.code_bits))
        partial = _decode_partial_codes(tuple(codes), config, entry.original_bits)
        codes_decoded += partial.codes_decoded
        streams.append(partial.stream)
        chars.extend(partial.chars)
        if not partial.complete:
            notes.append(
                f"segment {index} undecodable; segments {index + 1}.."
                f"{len(header.segments) - 1} not attempted"
                if index + 1 < len(header.segments)
                else f"segment {index} undecodable"
            )
            return PartialDecodeResult(
                stream=TernaryVector.concat_all(streams),
                chars=tuple(chars),
                codes_decoded=codes_decoded,
                total_codes=total_codes,
                complete=False,
                error=partial.error,
                failed_code_index=partial.failed_code_index,
                failed_bit_offset=partial.failed_bit_offset,
                notes=tuple(notes),
                failed_segment=index,
            )
    return PartialDecodeResult(
        stream=TernaryVector.concat_all(streams),
        chars=tuple(chars),
        codes_decoded=codes_decoded,
        total_codes=total_codes,
        complete=True,
        notes=tuple(notes),
    )


def _salvage_seeded(data: bytes) -> PartialDecodeResult:
    """Segment-by-segment best-effort decode of a seeded (v4) container.

    Same stop-at-first-failure structure as :func:`_salvage_multi`,
    with seeding on top: a blob-seeded segment whose seed blob is
    unreadable (CRC, parse or config mismatch) is undecodable — a
    corrupt dictionary would expand every code to the wrong string, so
    no partial output is attempted from it; a chained segment whose
    predecessor did not decode in full has no derivable seed and stops
    the salvage the same way.
    """
    from ..container import (  # deferred: container imports core
        SEED_BLOB,
        SEED_CHAIN,
        V4_HEADER_CRC_OFFSET,
        _load_blob,
        _parse_seeded,
        _seeded_payload,
    )
    from ..core.decoder import derive_final_snapshot
    from .errors import SnapshotError

    header = _parse_seeded(data, strict=False)
    config = header.config
    notes = []
    actual_crc = zlib.crc32(data[:V4_HEADER_CRC_OFFSET] + header.tables)
    if actual_crc != header.header_crc:
        notes.append("header CRC mismatch (tolerated)")
    snapshots = {}
    for index in range(len(header.blobs)):
        try:
            snapshots[index] = _load_blob(header, index)
        except (ReproError, SnapshotError) as exc:
            notes.append(f"seed blob {index} unreadable: {exc.message}")
    streams = []
    chars = []
    codes_decoded = 0
    total_codes = sum(entry.num_codes for entry in header.segments)
    prev_state = None  # (codes, seed, link) of the last complete segment

    def stop(index, partial=None, error=None):
        if index + 1 < len(header.segments):
            notes.append(
                f"segment {index} undecodable; segments {index + 1}.."
                f"{len(header.segments) - 1} not attempted"
            )
        else:
            notes.append(f"segment {index} undecodable")
        return PartialDecodeResult(
            stream=TernaryVector.concat_all(streams),
            chars=tuple(chars),
            codes_decoded=codes_decoded,
            total_codes=total_codes,
            complete=False,
            error=partial.error if partial is not None else error,
            failed_code_index=(
                partial.failed_code_index if partial is not None else None
            ),
            failed_bit_offset=(
                partial.failed_bit_offset if partial is not None else None
            ),
            notes=tuple(notes),
            failed_segment=index,
        )

    for index, entry in enumerate(header.segments):
        payload = _seeded_payload(header, entry)
        payload_bits = entry.payload_bits
        if len(payload) < (entry.payload_bits + 7) // 8:
            notes.append(f"segment {index}: payload truncated (tolerated)")
            payload_bits = min(payload_bits, len(payload) * 8)
            payload_bits -= payload_bits % config.code_bits
        elif zlib.crc32(payload) != entry.payload_crc:
            notes.append(f"segment {index}: payload CRC mismatch (tolerated)")
        reader = BitReader.from_bytes(payload, payload_bits)
        codes = []
        while not reader.exhausted:
            codes.append(reader.read(config.code_bits))
        seed = link = None
        if entry.seed_mode == SEED_BLOB:
            seed = snapshots.get(entry.blob_index)
            if seed is None:
                return stop(
                    index,
                    error=SnapshotError(
                        f"segment {index} seeds from unreadable blob "
                        f"{entry.blob_index}",
                        segment=index,
                        blob=entry.blob_index,
                    ),
                )
        elif entry.seed_mode == SEED_CHAIN:
            if prev_state is None:
                return stop(
                    index,
                    error=DecodeError(
                        f"segment {index} chains from an incomplete "
                        "predecessor; its seed cannot be derived",
                        segment=index,
                    ),
                )
            prev_codes, prev_seed, prev_link = prev_state
            try:
                seed = derive_final_snapshot(
                    prev_codes, config, seed=prev_seed, link=prev_link
                )
            except (DecodeError, SnapshotError) as exc:
                return stop(index, error=exc)
            link = prev_codes[-1] if prev_codes else prev_link
        partial = _decode_partial_codes(
            tuple(codes), config, entry.original_bits, seed=seed, link=link
        )
        codes_decoded += partial.codes_decoded
        streams.append(partial.stream)
        chars.extend(partial.chars)
        if not partial.complete:
            return stop(index, partial=partial)
        prev_state = (tuple(codes), seed, link)
    return PartialDecodeResult(
        stream=TernaryVector.concat_all(streams),
        chars=tuple(chars),
        codes_decoded=codes_decoded,
        total_codes=total_codes,
        complete=True,
        notes=tuple(notes),
    )
