"""Staged container integrity verification (the ``repro verify`` engine).

Runs the checks a ``.lzwt`` container must pass, in dependency order,
and reports each one individually instead of stopping at the first
typed exception — an operator debugging a bad ATE archive wants to know
*all* of what is wrong, not just the first failure:

1. **header** — magic, version, parsable and valid configuration;
2. **header-crc** — the v2 header checksum (skipped for v1);
3. **payload-crc** — the payload checksum and declared bit counts;
4. **decode** — the code stream decodes under its configuration;
5. **stream-digest** — the decoded stream matches the stored digest
   (skipped for v1);
6. **coverage** — optional: the decoded stream covers a reference cube
   stream (full round-trip verification).

The report distinguishes *not a container* (bad magic / truncated
header / unknown version → CLI exit 3) from *recognised but failing
integrity* (→ CLI exit 4).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional, Tuple

from ..bitstream import TernaryVector
from ..container import (
    HEADER_CRC_OFFSET,
    _parse_header,
    load_bytes,
    stream_digest,
)
from ..core import decode
from .errors import ContainerError, ReproError

__all__ = ["Check", "VerifyReport", "verify_container"]


@dataclass(frozen=True)
class Check:
    """One verification stage: name, pass/fail and a detail line."""

    name: str
    ok: bool
    detail: str

    def describe(self) -> str:
        return f"{'ok  ' if self.ok else 'FAIL'} {self.name}: {self.detail}"


@dataclass(frozen=True)
class VerifyReport:
    """Outcome of all verification stages for one container."""

    checks: Tuple[Check, ...]
    recognised: bool
    version: Optional[int] = None
    config_summary: Optional[str] = None
    num_codes: Optional[int] = None
    original_bits: Optional[int] = None

    @property
    def ok(self) -> bool:
        """True when every stage passed."""
        return all(check.ok for check in self.checks)

    @property
    def exit_code(self) -> int:
        """Documented process exit status: 0 ok, 3 not a container, 4 integrity."""
        if self.ok:
            return 0
        return 4 if self.recognised else 3

    def describe(self) -> str:
        lines = []
        if self.recognised:
            codes = "?" if self.num_codes is None else self.num_codes
            lines.append(
                f"container v{self.version}: {self.config_summary}, "
                f"{codes} codes, {self.original_bits} original bits"
            )
        lines.extend(check.describe() for check in self.checks)
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)


def verify_container(
    data: bytes, original: Optional[TernaryVector] = None
) -> VerifyReport:
    """Verify container bytes stage by stage; never raises for bad data.

    ``original`` enables the final coverage stage: the decoded stream
    must reproduce every specified bit of the given cube stream.
    """
    checks = []
    try:
        header = _parse_header(data)
    except ContainerError as exc:
        return VerifyReport(
            checks=(Check("header", False, str(exc)),),
            recognised=False,
        )
    checks.append(
        Check("header", True, f"v{header.version}, {header.config.describe()}")
    )

    if header.header_crc is None:
        checks.append(Check("header-crc", True, "not present (v1 container)"))
    else:
        actual = zlib.crc32(data[:HEADER_CRC_OFFSET])
        checks.append(
            Check(
                "header-crc",
                actual == header.header_crc,
                f"stored {header.header_crc:#010x}, computed {actual:#010x}",
            )
        )

    compressed = None
    try:
        compressed = load_bytes(data, verify=False)
        checks.append(
            Check(
                "payload-crc",
                True,
                f"{len(header.payload)} bytes, {header.payload_bits} bits",
            )
        )
    except ReproError as exc:
        checks.append(Check("payload-crc", False, str(exc)))

    stream = None
    if compressed is not None:
        try:
            stream = decode(compressed)
            checks.append(
                Check(
                    "decode",
                    True,
                    f"{compressed.num_codes} codes -> {len(stream)} bits",
                )
            )
        except ReproError as exc:
            checks.append(Check("decode", False, str(exc)))

    if stream is not None:
        if header.stream_crc is None:
            checks.append(Check("stream-digest", True, "not present (v1 container)"))
        else:
            actual = stream_digest(stream)
            checks.append(
                Check(
                    "stream-digest",
                    actual == header.stream_crc,
                    f"stored {header.stream_crc:#010x}, computed {actual:#010x}",
                )
            )
        if original is not None:
            if stream.covers(original):
                detail = f"covers all {original.care_count} specified bits"
                checks.append(Check("coverage", True, detail))
            else:
                checks.append(
                    Check("coverage", False, "decoded stream does not cover original")
                )

    return VerifyReport(
        checks=tuple(checks),
        recognised=True,
        version=header.version,
        config_summary=header.config.describe(),
        num_codes=compressed.num_codes if compressed is not None else None,
        original_bits=header.original_bits,
    )
