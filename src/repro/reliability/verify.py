"""Staged container integrity verification (the ``repro verify`` engine).

Runs the checks a ``.lzwt`` container must pass, in dependency order,
and reports each one individually instead of stopping at the first
typed exception — an operator debugging a bad ATE archive wants to know
*all* of what is wrong, not just the first failure:

1. **header** — magic, version, parsable and valid configuration;
2. **header-crc** — the v2 header checksum (skipped for v1);
3. **payload-crc** — the payload checksum and declared bit counts;
4. **decode** — the code stream decodes under its configuration;
5. **stream-digest** — the decoded stream matches the stored digest
   (skipped for v1);
6. **coverage** — optional: the decoded stream covers a reference cube
   stream (full round-trip verification).

Multi-segment (v3) containers run the same stages per segment: after
the header and the table-covering header CRC, every segment gets its
own ``segment[i] payload-crc`` / ``segment[i] decode`` /
``segment[i] stream-digest`` checks, so a corrupted shard is reported
by index; the optional coverage stage then checks the concatenated
decode against the reference stream.

Streaming (v5) frame journals run ``frame[i] payload-crc`` /
``frame[i] decode`` stages per frame plus a ``terminal`` stage that
fails for an unsealed journal (see :func:`_verify_stream`).

The report distinguishes *not a container* (bad magic / truncated
header / unknown version → CLI exit 3) from *recognised but failing
integrity* (→ CLI exit 4).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional, Tuple

from ..bitstream import TernaryVector
from ..container import (
    BLOB_ENTRY_SIZE,
    HEADER_CRC_OFFSET,
    SEED_BLOB,
    SEED_CHAIN,
    SEED_COLD,
    SEED_MODE_NAMES,
    SEGMENT_ENTRY_SIZE,
    SEGMENT_ENTRY_V4_SIZE,
    V3_HEADER_CRC_OFFSET,
    V3_SEGMENT_TABLE_OFFSET,
    V4_HEADER_CRC_OFFSET,
    V4_SEGMENT_TABLE_OFFSET,
    _BLOB_ENTRY,
    _HEADER_V3,
    _HEADER_V4,
    _MAGIC,
    _SEGMENT_ENTRY,
    _SEGMENT_ENTRY_V4,
    BlobInfo,
    SeededSegmentInfo,
    SegmentInfo,
    _parse_header,
    _read_codes,
    load_bytes,
    stream_digest,
)
from ..core import (
    CompressedStream,
    DictionarySnapshot,
    LZWConfig,
    decode,
    derive_final_snapshot,
)
from .errors import (
    ConfigError,
    ContainerError,
    DecodeError,
    ReproError,
    SnapshotError,
)
from ..observability import NULL_RECORDER, Recorder, metrics_snapshot

__all__ = ["Check", "VerifyReport", "verify_container"]


@dataclass(frozen=True)
class Check:
    """One verification stage: name, pass/fail and a detail line."""

    name: str
    ok: bool
    detail: str

    def describe(self) -> str:
        return f"{'ok  ' if self.ok else 'FAIL'} {self.name}: {self.detail}"


@dataclass(frozen=True)
class VerifyReport:
    """Outcome of all verification stages for one container."""

    checks: Tuple[Check, ...]
    recognised: bool
    version: Optional[int] = None
    config_summary: Optional[str] = None
    num_codes: Optional[int] = None
    original_bits: Optional[int] = None
    segments: Optional[int] = None
    #: Recorder snapshot (versioned metrics envelope) when
    #: :func:`verify_container` ran with a recorder attached — the
    #: decode counters and per-stage spans that accompany a failure
    #: diagnosis.  ``None`` when no recorder was supplied.
    metrics: Optional[dict] = None

    @property
    def ok(self) -> bool:
        """True when every stage passed."""
        return all(check.ok for check in self.checks)

    @property
    def exit_code(self) -> int:
        """Documented process exit status: 0 ok, 3 not a container, 4 integrity."""
        if self.ok:
            return 0
        return 4 if self.recognised else 3

    def describe(self) -> str:
        lines = []
        if self.recognised:
            codes = "?" if self.num_codes is None else self.num_codes
            seg = "" if self.segments is None else f"{self.segments} segments, "
            lines.append(
                f"container v{self.version}: {self.config_summary}, "
                f"{seg}{codes} codes, {self.original_bits} original bits"
            )
        lines.extend(check.describe() for check in self.checks)
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)


def verify_container(
    data: bytes,
    original: Optional[TernaryVector] = None,
    recorder: Optional[Recorder] = None,
) -> VerifyReport:
    """Verify container bytes stage by stage; never raises for bad data.

    ``original`` enables the final coverage stage: the decoded stream
    must reproduce every specified bit of the given cube stream.
    Multi-segment containers get per-segment stages named
    ``segment[i] ...`` so the failing shard is identified by index.
    ``recorder`` collects per-stage ``verify.*`` spans plus the decode
    and container counters; its snapshot lands on
    :attr:`VerifyReport.metrics` so failure diagnostics carry the
    counter state at the point things went wrong.
    """
    rec = recorder if recorder is not None else NULL_RECORDER
    if len(data) >= 5 and data[:4] == _MAGIC and data[4] == 3:
        return _verify_multi(data, original, rec)
    if len(data) >= 5 and data[:4] == _MAGIC and data[4] == 4:
        return _verify_seeded(data, original, rec)
    if len(data) >= 5 and data[:4] == _MAGIC and data[4] == 5:
        return _verify_stream(data, original, rec)
    checks = []
    try:
        with rec.span("verify.header"):
            header = _parse_header(data)
    except ContainerError as exc:
        return VerifyReport(
            checks=(Check("header", False, str(exc)),),
            recognised=False,
            metrics=metrics_snapshot(rec) if rec.enabled else None,
        )
    checks.append(
        Check("header", True, f"v{header.version}, {header.config.describe()}")
    )

    if header.header_crc is None:
        checks.append(Check("header-crc", True, "not present (v1 container)"))
    else:
        actual = zlib.crc32(data[:HEADER_CRC_OFFSET])
        checks.append(
            Check(
                "header-crc",
                actual == header.header_crc,
                f"stored {header.header_crc:#010x}, computed {actual:#010x}",
            )
        )

    compressed = None
    try:
        with rec.span("verify.payload-crc"):
            compressed = load_bytes(data, verify=False, recorder=rec)
        checks.append(
            Check(
                "payload-crc",
                True,
                f"{len(header.payload)} bytes, {header.payload_bits} bits",
            )
        )
    except ReproError as exc:
        checks.append(Check("payload-crc", False, str(exc)))

    stream = None
    if compressed is not None:
        try:
            with rec.span("verify.decode"):
                stream = decode(compressed, recorder=rec)
            checks.append(
                Check(
                    "decode",
                    True,
                    f"{compressed.num_codes} codes -> {len(stream)} bits",
                )
            )
        except ReproError as exc:
            checks.append(Check("decode", False, str(exc)))

    if stream is not None:
        if header.stream_crc is None:
            checks.append(Check("stream-digest", True, "not present (v1 container)"))
        else:
            actual = stream_digest(stream)
            checks.append(
                Check(
                    "stream-digest",
                    actual == header.stream_crc,
                    f"stored {header.stream_crc:#010x}, computed {actual:#010x}",
                )
            )
        if original is not None:
            with rec.span("verify.coverage"):
                covers = stream.covers(original)
            if covers:
                detail = f"covers all {original.care_count} specified bits"
                checks.append(Check("coverage", True, detail))
            else:
                checks.append(
                    Check("coverage", False, "decoded stream does not cover original")
                )

    return VerifyReport(
        checks=tuple(checks),
        recognised=True,
        version=header.version,
        config_summary=header.config.describe(),
        num_codes=compressed.num_codes if compressed is not None else None,
        original_bits=header.original_bits,
        metrics=metrics_snapshot(rec) if rec.enabled else None,
    )


def _verify_segment(
    config: LZWConfig,
    entry: SegmentInfo,
    index: int,
    payload_area: bytes,
    rec: Recorder = NULL_RECORDER,
    seed: Optional[DictionarySnapshot] = None,
    link: Optional[int] = None,
) -> Tuple[list, Optional[TernaryVector], Optional[Tuple[int, ...]]]:
    """Run the payload-crc / decode / stream-digest stages of one segment.

    ``seed``/``link`` carry a v4 segment's resolved seeding state; the
    decode stage then runs under it.  Returns the stage checks, the
    decoded stream (``None`` past the first failure) and the parsed
    codes (``None`` until the payload parses — v4 chain successors need
    them to derive their own seed).
    """
    name = f"segment[{index}]"
    checks = []
    end = entry.offset + (entry.payload_bits + 7) // 8
    if end > len(payload_area):
        checks.append(
            Check(
                f"{name} payload-crc",
                False,
                f"payload extends past the container "
                f"(needs {end} bytes, {len(payload_area)} present)",
            )
        )
        return checks, None, None
    if entry.payload_bits % config.code_bits:
        checks.append(
            Check(
                f"{name} payload-crc",
                False,
                f"{entry.payload_bits} payload bits is not a whole number "
                f"of {config.code_bits}-bit codes",
            )
        )
        return checks, None, None
    if entry.num_codes != entry.payload_bits // config.code_bits:
        checks.append(
            Check(
                f"{name} payload-crc",
                False,
                f"code count {entry.num_codes} disagrees with "
                f"{entry.payload_bits} payload bits",
            )
        )
        return checks, None, None
    payload = payload_area[entry.offset : end]
    actual_crc = zlib.crc32(payload)
    if actual_crc != entry.payload_crc:
        checks.append(
            Check(
                f"{name} payload-crc",
                False,
                f"stored {entry.payload_crc:#010x}, computed {actual_crc:#010x}",
            )
        )
        return checks, None, None
    checks.append(
        Check(
            f"{name} payload-crc",
            True,
            f"{len(payload)} bytes, {entry.num_codes} codes",
        )
    )

    codes = _read_codes(payload, entry.payload_bits, config)
    try:
        with rec.span(f"verify.{name} decode"):
            stream = decode(
                CompressedStream(codes, config, entry.original_bits),
                recorder=rec,
                seed=seed,
                link=link,
            )
        checks.append(
            Check(f"{name} decode", True, f"{len(codes)} codes -> {len(stream)} bits")
        )
    except (ReproError, ValueError) as exc:
        checks.append(Check(f"{name} decode", False, str(exc)))
        return checks, None, codes

    actual_digest = stream_digest(stream)
    checks.append(
        Check(
            f"{name} stream-digest",
            actual_digest == entry.stream_crc,
            f"stored {entry.stream_crc:#010x}, computed {actual_digest:#010x}",
        )
    )
    if actual_digest != entry.stream_crc:
        return checks, None, codes
    return checks, stream, codes


def _verify_multi(
    data: bytes,
    original: Optional[TernaryVector] = None,
    rec: Recorder = NULL_RECORDER,
) -> VerifyReport:
    """Staged verification of a multi-segment (v3) container."""
    metrics = (lambda: metrics_snapshot(rec) if rec.enabled else None)
    if len(data) < _HEADER_V3.size:
        return VerifyReport(
            checks=(Check("header", False, "truncated container header"),),
            recognised=False,
            version=3,
            metrics=metrics(),
        )
    _, _, char_bits, dict_size, entry_bits, count, header_crc = _HEADER_V3.unpack_from(
        data
    )
    try:
        config = LZWConfig(
            char_bits=char_bits, dict_size=dict_size, entry_bits=entry_bits
        )
    except ConfigError as exc:
        return VerifyReport(
            checks=(
                Check("header", False, f"invalid configuration: {exc.message}"),
            ),
            recognised=False,
            version=3,
            metrics=metrics(),
        )

    checks = []
    table_end = V3_SEGMENT_TABLE_OFFSET + count * SEGMENT_ENTRY_SIZE
    if count < 1 or len(data) < table_end:
        detail = (
            "segment count must be >= 1"
            if count < 1
            else f"truncated segment table ({count} segments declared, "
            f"{len(data)} bytes total)"
        )
        checks.append(Check("header", False, detail))
        return VerifyReport(
            checks=tuple(checks),
            recognised=True,
            version=3,
            config_summary=config.describe(),
            segments=count,
            metrics=metrics(),
        )
    checks.append(
        Check("header", True, f"v3, {config.describe()}, {count} segments")
    )

    table = data[V3_SEGMENT_TABLE_OFFSET:table_end]
    actual_crc = zlib.crc32(data[:V3_HEADER_CRC_OFFSET] + table)
    checks.append(
        Check(
            "header-crc",
            actual_crc == header_crc,
            f"stored {header_crc:#010x}, computed {actual_crc:#010x} "
            "(covers header + segment table)",
        )
    )

    payload_area = data[table_end:]
    streams = []
    total_codes = 0
    total_bits = 0
    for index in range(count):
        entry = SegmentInfo(
            *_SEGMENT_ENTRY.unpack_from(table, index * SEGMENT_ENTRY_SIZE)
        )
        total_codes += entry.num_codes
        total_bits += entry.original_bits
        segment_checks, stream, _ = _verify_segment(
            config, entry, index, payload_area, rec
        )
        checks.extend(segment_checks)
        streams.append(stream)

    if original is not None and all(s is not None for s in streams):
        with rec.span("verify.coverage"):
            decoded = TernaryVector.concat_all(streams)
            covers = decoded.covers(original)
        if covers:
            detail = f"covers all {original.care_count} specified bits"
            checks.append(Check("coverage", True, detail))
        else:
            checks.append(
                Check("coverage", False, "decoded stream does not cover original")
            )

    return VerifyReport(
        checks=tuple(checks),
        recognised=True,
        version=3,
        config_summary=config.describe(),
        num_codes=total_codes,
        original_bits=total_bits,
        segments=count,
        metrics=metrics(),
    )


def _verify_stream(
    data: bytes,
    original: Optional[TernaryVector] = None,
    rec: Recorder = NULL_RECORDER,
) -> VerifyReport:
    """Staged verification of a streaming (v5) frame journal.

    After the header stages, every data frame gets a
    ``frame[i] payload-crc`` stage (header CRC, payload CRC, chain CRC,
    index sequencing) and a ``frame[i] decode`` stage (the codes decode
    and the dictionary digest + cumulative original-bits match).  The
    walk stops at the first *framing* fault — the chain structure means
    nothing after a torn or corrupt frame can be trusted — and a
    journal without a terminal frame fails the ``terminal`` stage
    (unsealed: the crash-before-finalize signature).
    """
    import io

    from ..core.stream import StreamDecoder, chars_to_vector
    from ..streamio import (
        _HEADER_V5,
        V5_HEADER_CRC_OFFSET,
        V5_HEADER_SIZE,
        StreamContainerReader,
        frame_seal,
        pack_chars,
    )

    metrics = (lambda: metrics_snapshot(rec) if rec.enabled else None)
    if len(data) < V5_HEADER_SIZE:
        return VerifyReport(
            checks=(Check("header", False, "truncated container header"),),
            recognised=False,
            version=5,
            metrics=metrics(),
        )
    _, _, char_bits, dict_size, entry_bits, flags, header_crc = _HEADER_V5.unpack_from(
        data
    )
    if flags & ~0x01:
        return VerifyReport(
            checks=(Check("header", False, f"unknown flags 0x{flags:02x}"),),
            recognised=True,
            version=5,
            metrics=metrics(),
        )
    try:
        config = LZWConfig(
            char_bits=char_bits,
            dict_size=dict_size,
            entry_bits=entry_bits,
            reset_on_full=bool(flags & 0x01),
        )
    except ConfigError as exc:
        return VerifyReport(
            checks=(
                Check("header", False, f"invalid configuration: {exc.message}"),
            ),
            recognised=False,
            version=5,
            metrics=metrics(),
        )
    checks = [Check("header", True, f"v5 streaming, {config.describe()}")]
    actual_crc = zlib.crc32(data[:V5_HEADER_CRC_OFFSET])
    header_crc_ok = actual_crc == header_crc
    checks.append(
        Check(
            "header-crc",
            header_crc_ok,
            f"stored {header_crc:#010x}, computed {actual_crc:#010x}",
        )
    )
    if not header_crc_ok:
        return VerifyReport(
            checks=tuple(checks),
            recognised=True,
            version=5,
            config_summary=config.describe(),
            metrics=metrics(),
        )

    reader = StreamContainerReader(io.BytesIO(data), recorder=rec)
    decoder = StreamDecoder(config, recorder=rec)
    chars: list = []
    chars_crc = 0
    decode_ok = True
    framing_ok = True
    last_cum_bits = 0
    total_codes = 0
    frame_count = 0
    with rec.span("verify.frames"):
        while True:
            try:
                frame = reader.read_frame()
            except ContainerError as exc:
                checks.append(Check(f"frame[{frame_count}] payload-crc", False, str(exc)))
                framing_ok = False
                break
            if frame is None:
                break
            frame_count += 1
            total_codes += frame.num_codes
            checks.append(
                Check(
                    f"frame[{frame.index}] payload-crc",
                    True,
                    f"{frame.num_codes} codes, chain {frame.chain_crc:#010x}",
                )
            )
            if not decode_ok:
                checks.append(
                    Check(
                        f"frame[{frame.index}] decode",
                        False,
                        "not attempted (decoder state diverged earlier)",
                    )
                )
                continue
            frame_chars: list = []
            try:
                for code in frame.codes:
                    frame_chars.extend(decoder.push(code))
            except DecodeError as exc:
                checks.append(Check(f"frame[{frame.index}] decode", False, str(exc)))
                decode_ok = False
                continue
            next_crc = zlib.crc32(pack_chars(frame_chars), chars_crc)
            actual_seal = frame_seal(decoder.snapshot(), next_crc)
            cum_bits = decoder.chars_decoded * config.char_bits
            diff = cum_bits - frame.original_bits_cum
            if actual_seal != frame.dict_digest:
                checks.append(
                    Check(
                        f"frame[{frame.index}] decode",
                        False,
                        f"seal mismatch (stored "
                        f"{frame.dict_digest.hex()}, computed "
                        f"{actual_seal.hex()})",
                    )
                )
                decode_ok = False
            elif diff < 0 or diff >= config.char_bits or (
                frame.original_bits_cum < last_cum_bits
            ):
                checks.append(
                    Check(
                        f"frame[{frame.index}] decode",
                        False,
                        f"cumulative original_bits {frame.original_bits_cum} "
                        f"inconsistent with decode ({cum_bits} bits)",
                    )
                )
                decode_ok = False
            else:
                checks.append(
                    Check(
                        f"frame[{frame.index}] decode",
                        True,
                        f"{frame.num_codes} codes -> {len(frame_chars)} chars, "
                        f"seal {actual_seal.hex()[:12]}",
                    )
                )
                chars.extend(frame_chars)
                chars_crc = next_crc
                last_cum_bits = frame.original_bits_cum

    terminal = reader.terminal
    if framing_ok:
        if terminal is None:  # pragma: no cover — read_frame raises first
            checks.append(
                Check("terminal", False, "no terminal frame (unsealed journal)")
            )
        elif decode_ok:
            actual_seal = frame_seal(decoder.snapshot(), chars_crc)
            decoded_bits = decoder.chars_decoded * config.char_bits
            diff = decoded_bits - terminal.total_original_bits
            if actual_seal != terminal.dict_digest:
                checks.append(
                    Check(
                        "terminal",
                        False,
                        f"final seal mismatch (stored "
                        f"{terminal.dict_digest.hex()}, computed "
                        f"{actual_seal.hex()})",
                    )
                )
            elif diff < 0 or (diff >= config.char_bits and decoded_bits):
                checks.append(
                    Check(
                        "terminal",
                        False,
                        f"declares {terminal.total_original_bits} original "
                        f"bits, decode produced {decoded_bits}",
                    )
                )
            else:
                checks.append(
                    Check(
                        "terminal",
                        True,
                        f"{terminal.frame_count} frames, "
                        f"{terminal.total_codes} codes, "
                        f"{terminal.total_original_bits} original bits",
                    )
                )
        else:
            checks.append(
                Check("terminal", False, "not attempted (a frame failed to decode)")
            )

    if (
        original is not None
        and framing_ok
        and decode_ok
        and terminal is not None
        and all(check.ok for check in checks)
    ):
        with rec.span("verify.coverage"):
            decoded = chars_to_vector(tuple(chars), config.char_bits)[
                : terminal.total_original_bits
            ]
            covers = decoded.covers(original)
        if covers:
            checks.append(
                Check(
                    "coverage", True, f"covers all {original.care_count} specified bits"
                )
            )
        else:
            checks.append(
                Check("coverage", False, "decoded stream does not cover original")
            )

    return VerifyReport(
        checks=tuple(checks),
        recognised=True,
        version=5,
        config_summary=config.describe(),
        num_codes=total_codes,
        original_bits=terminal.total_original_bits if terminal is not None else None,
        segments=frame_count,
        metrics=metrics(),
    )


def _verify_seeded(
    data: bytes,
    original: Optional[TernaryVector] = None,
    rec: Recorder = NULL_RECORDER,
) -> VerifyReport:
    """Staged verification of a seeded multi-segment (v4) container.

    Adds ``blob[i] crc`` / ``blob[i] parse`` stages for each stored
    dictionary snapshot and a ``segment[i] seed`` resolution stage per
    warm segment; segment decodes then run under the resolved seed.  A
    chain segment whose predecessor failed any stage reports its seed
    as unresolvable instead of producing a misleading decode failure.
    """
    metrics = (lambda: metrics_snapshot(rec) if rec.enabled else None)
    if len(data) < _HEADER_V4.size:
        return VerifyReport(
            checks=(Check("header", False, "truncated container header"),),
            recognised=False,
            version=4,
            metrics=metrics(),
        )
    (
        _,
        _,
        char_bits,
        dict_size,
        entry_bits,
        count,
        flags,
        blob_count,
        header_crc,
    ) = _HEADER_V4.unpack_from(data)
    if flags & ~0x01:
        return VerifyReport(
            checks=(Check("header", False, f"unknown flags 0x{flags:02x}"),),
            recognised=True,
            version=4,
            metrics=metrics(),
        )
    try:
        config = LZWConfig(
            char_bits=char_bits,
            dict_size=dict_size,
            entry_bits=entry_bits,
            reset_on_full=bool(flags & 0x01),
        )
    except ConfigError as exc:
        return VerifyReport(
            checks=(
                Check("header", False, f"invalid configuration: {exc.message}"),
            ),
            recognised=False,
            version=4,
            metrics=metrics(),
        )

    checks = []
    table_end = V4_SEGMENT_TABLE_OFFSET + count * SEGMENT_ENTRY_V4_SIZE
    blob_table_end = table_end + blob_count * BLOB_ENTRY_SIZE
    if count < 1 or len(data) < blob_table_end:
        detail = (
            "segment count must be >= 1"
            if count < 1
            else f"truncated segment/blob table ({count} segments, "
            f"{blob_count} blobs declared, {len(data)} bytes total)"
        )
        checks.append(Check("header", False, detail))
        return VerifyReport(
            checks=tuple(checks),
            recognised=True,
            version=4,
            config_summary=config.describe(),
            segments=count,
            metrics=metrics(),
        )
    checks.append(
        Check(
            "header",
            True,
            f"v4, {config.describe()}, {count} segments, {blob_count} seed blobs",
        )
    )

    tables = data[V4_SEGMENT_TABLE_OFFSET:blob_table_end]
    actual_crc = zlib.crc32(data[:V4_HEADER_CRC_OFFSET] + tables)
    checks.append(
        Check(
            "header-crc",
            actual_crc == header_crc,
            f"stored {header_crc:#010x}, computed {actual_crc:#010x} "
            "(covers header + segment table + blob table)",
        )
    )

    # Blob stages: CRC, then snapshot parse + config agreement.
    blob_table = data[table_end:blob_table_end]
    blobs = [
        BlobInfo(*_BLOB_ENTRY.unpack_from(blob_table, index * BLOB_ENTRY_SIZE))
        for index in range(blob_count)
    ]
    blob_area_len = max((b.offset + b.length for b in blobs), default=0)
    blob_area = data[blob_table_end : blob_table_end + blob_area_len]
    payload_area = data[blob_table_end + blob_area_len :]
    snapshots: list = []
    for index, blob in enumerate(blobs):
        raw = blob_area[blob.offset : blob.offset + blob.length]
        if len(raw) != blob.length:
            checks.append(
                Check(
                    f"blob[{index}] crc",
                    False,
                    f"blob extends past the container "
                    f"(needs {blob.offset + blob.length} bytes, "
                    f"{len(blob_area)} present)",
                )
            )
            snapshots.append(None)
            continue
        actual = zlib.crc32(raw)
        ok = actual == blob.crc
        checks.append(
            Check(
                f"blob[{index}] crc",
                ok,
                f"stored {blob.crc:#010x}, computed {actual:#010x}",
            )
        )
        if not ok:
            snapshots.append(None)
            continue
        try:
            snapshot = DictionarySnapshot.from_bytes(raw)
            snapshot.require_config(config)
            checks.append(
                Check(
                    f"blob[{index}] parse",
                    True,
                    f"{len(snapshot)} entries, digest {snapshot.digest[:12]}",
                )
            )
            snapshots.append(snapshot)
        except (SnapshotError, ContainerError) as exc:
            checks.append(Check(f"blob[{index}] parse", False, str(exc)))
            snapshots.append(None)

    # Segment stages: seed resolution, then payload/decode/digest under it.
    streams = []
    seg_codes: list = []
    seg_seeds: list = []
    seg_links: list = []
    total_codes = 0
    total_bits = 0
    for index in range(count):
        fields = _SEGMENT_ENTRY_V4.unpack_from(
            data, V4_SEGMENT_TABLE_OFFSET + index * SEGMENT_ENTRY_V4_SIZE
        )
        entry = SeededSegmentInfo(*fields[:8])
        total_codes += entry.num_codes
        total_bits += entry.original_bits
        name = f"segment[{index}]"
        seed = link = None
        seed_ok = True
        if entry.seed_mode == SEED_COLD:
            pass
        elif entry.seed_mode == SEED_BLOB:
            if entry.blob_index >= len(snapshots):
                checks.append(
                    Check(
                        f"{name} seed",
                        False,
                        f"references blob {entry.blob_index} of {len(snapshots)}",
                    )
                )
                seed_ok = False
            elif snapshots[entry.blob_index] is None:
                checks.append(
                    Check(
                        f"{name} seed",
                        False,
                        f"blob {entry.blob_index} failed its own checks",
                    )
                )
                seed_ok = False
            else:
                seed = snapshots[entry.blob_index]
                checks.append(
                    Check(
                        f"{name} seed",
                        True,
                        f"blob {entry.blob_index}, {len(seed)} entries",
                    )
                )
        elif entry.seed_mode == SEED_CHAIN:
            if index == 0:
                checks.append(
                    Check(f"{name} seed", False, "segment 0 cannot chain")
                )
                seed_ok = False
            elif seg_codes[index - 1] is None:
                checks.append(
                    Check(
                        f"{name} seed",
                        False,
                        f"predecessor segment {index - 1} failed its own checks",
                    )
                )
                seed_ok = False
            else:
                prev_codes = seg_codes[index - 1]
                try:
                    seed = derive_final_snapshot(
                        prev_codes,
                        config,
                        seed=seg_seeds[index - 1],
                        link=seg_links[index - 1],
                    )
                    link = prev_codes[-1] if prev_codes else seg_links[index - 1]
                    checks.append(
                        Check(
                            f"{name} seed",
                            True,
                            f"chained from segment {index - 1}, "
                            f"{len(seed)} entries, link {link}",
                        )
                    )
                except (DecodeError, SnapshotError) as exc:
                    checks.append(Check(f"{name} seed", False, str(exc)))
                    seed_ok = False
        else:
            checks.append(
                Check(
                    f"{name} seed",
                    False,
                    f"unknown seed mode {entry.seed_mode}",
                )
            )
            seed_ok = False

        if not seed_ok:
            streams.append(None)
            seg_codes.append(None)
            seg_seeds.append(None)
            seg_links.append(None)
            continue
        segment_checks, stream, codes = _verify_segment(
            config, entry, index, payload_area, rec, seed=seed, link=link
        )
        checks.extend(segment_checks)
        streams.append(stream)
        # A chain successor needs a fully verified predecessor: only
        # propagate codes past a clean decode + digest.
        seg_codes.append(codes if stream is not None else None)
        seg_seeds.append(seed)
        seg_links.append(link)

    if original is not None and all(s is not None for s in streams):
        with rec.span("verify.coverage"):
            decoded = TernaryVector.concat_all(streams)
            covers = decoded.covers(original)
        if covers:
            detail = f"covers all {original.care_count} specified bits"
            checks.append(Check("coverage", True, detail))
        else:
            checks.append(
                Check("coverage", False, "decoded stream does not cover original")
            )

    return VerifyReport(
        checks=tuple(checks),
        recognised=True,
        version=4,
        config_summary=config.describe(),
        num_codes=total_codes,
        original_bits=total_bits,
        segments=count,
        metrics=metrics(),
    )
