"""Staged container integrity verification (the ``repro verify`` engine).

Runs the checks a ``.lzwt`` container must pass, in dependency order,
and reports each one individually instead of stopping at the first
typed exception — an operator debugging a bad ATE archive wants to know
*all* of what is wrong, not just the first failure:

1. **header** — magic, version, parsable and valid configuration;
2. **header-crc** — the v2 header checksum (skipped for v1);
3. **payload-crc** — the payload checksum and declared bit counts;
4. **decode** — the code stream decodes under its configuration;
5. **stream-digest** — the decoded stream matches the stored digest
   (skipped for v1);
6. **coverage** — optional: the decoded stream covers a reference cube
   stream (full round-trip verification).

Multi-segment (v3) containers run the same stages per segment: after
the header and the table-covering header CRC, every segment gets its
own ``segment[i] payload-crc`` / ``segment[i] decode`` /
``segment[i] stream-digest`` checks, so a corrupted shard is reported
by index; the optional coverage stage then checks the concatenated
decode against the reference stream.

The report distinguishes *not a container* (bad magic / truncated
header / unknown version → CLI exit 3) from *recognised but failing
integrity* (→ CLI exit 4).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional, Tuple

from ..bitstream import TernaryVector
from ..container import (
    HEADER_CRC_OFFSET,
    SEGMENT_ENTRY_SIZE,
    V3_HEADER_CRC_OFFSET,
    V3_SEGMENT_TABLE_OFFSET,
    _HEADER_V3,
    _MAGIC,
    _SEGMENT_ENTRY,
    SegmentInfo,
    _parse_header,
    _read_codes,
    load_bytes,
    stream_digest,
)
from ..core import CompressedStream, LZWConfig, decode
from ..observability import NULL_RECORDER, Recorder, metrics_snapshot
from .errors import ConfigError, ContainerError, ReproError

__all__ = ["Check", "VerifyReport", "verify_container"]


@dataclass(frozen=True)
class Check:
    """One verification stage: name, pass/fail and a detail line."""

    name: str
    ok: bool
    detail: str

    def describe(self) -> str:
        return f"{'ok  ' if self.ok else 'FAIL'} {self.name}: {self.detail}"


@dataclass(frozen=True)
class VerifyReport:
    """Outcome of all verification stages for one container."""

    checks: Tuple[Check, ...]
    recognised: bool
    version: Optional[int] = None
    config_summary: Optional[str] = None
    num_codes: Optional[int] = None
    original_bits: Optional[int] = None
    segments: Optional[int] = None
    #: Recorder snapshot (versioned metrics envelope) when
    #: :func:`verify_container` ran with a recorder attached — the
    #: decode counters and per-stage spans that accompany a failure
    #: diagnosis.  ``None`` when no recorder was supplied.
    metrics: Optional[dict] = None

    @property
    def ok(self) -> bool:
        """True when every stage passed."""
        return all(check.ok for check in self.checks)

    @property
    def exit_code(self) -> int:
        """Documented process exit status: 0 ok, 3 not a container, 4 integrity."""
        if self.ok:
            return 0
        return 4 if self.recognised else 3

    def describe(self) -> str:
        lines = []
        if self.recognised:
            codes = "?" if self.num_codes is None else self.num_codes
            seg = "" if self.segments is None else f"{self.segments} segments, "
            lines.append(
                f"container v{self.version}: {self.config_summary}, "
                f"{seg}{codes} codes, {self.original_bits} original bits"
            )
        lines.extend(check.describe() for check in self.checks)
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)


def verify_container(
    data: bytes,
    original: Optional[TernaryVector] = None,
    recorder: Optional[Recorder] = None,
) -> VerifyReport:
    """Verify container bytes stage by stage; never raises for bad data.

    ``original`` enables the final coverage stage: the decoded stream
    must reproduce every specified bit of the given cube stream.
    Multi-segment containers get per-segment stages named
    ``segment[i] ...`` so the failing shard is identified by index.
    ``recorder`` collects per-stage ``verify.*`` spans plus the decode
    and container counters; its snapshot lands on
    :attr:`VerifyReport.metrics` so failure diagnostics carry the
    counter state at the point things went wrong.
    """
    rec = recorder if recorder is not None else NULL_RECORDER
    if len(data) >= 5 and data[:4] == _MAGIC and data[4] == 3:
        return _verify_multi(data, original, rec)
    checks = []
    try:
        with rec.span("verify.header"):
            header = _parse_header(data)
    except ContainerError as exc:
        return VerifyReport(
            checks=(Check("header", False, str(exc)),),
            recognised=False,
            metrics=metrics_snapshot(rec) if rec.enabled else None,
        )
    checks.append(
        Check("header", True, f"v{header.version}, {header.config.describe()}")
    )

    if header.header_crc is None:
        checks.append(Check("header-crc", True, "not present (v1 container)"))
    else:
        actual = zlib.crc32(data[:HEADER_CRC_OFFSET])
        checks.append(
            Check(
                "header-crc",
                actual == header.header_crc,
                f"stored {header.header_crc:#010x}, computed {actual:#010x}",
            )
        )

    compressed = None
    try:
        with rec.span("verify.payload-crc"):
            compressed = load_bytes(data, verify=False, recorder=rec)
        checks.append(
            Check(
                "payload-crc",
                True,
                f"{len(header.payload)} bytes, {header.payload_bits} bits",
            )
        )
    except ReproError as exc:
        checks.append(Check("payload-crc", False, str(exc)))

    stream = None
    if compressed is not None:
        try:
            with rec.span("verify.decode"):
                stream = decode(compressed, recorder=rec)
            checks.append(
                Check(
                    "decode",
                    True,
                    f"{compressed.num_codes} codes -> {len(stream)} bits",
                )
            )
        except ReproError as exc:
            checks.append(Check("decode", False, str(exc)))

    if stream is not None:
        if header.stream_crc is None:
            checks.append(Check("stream-digest", True, "not present (v1 container)"))
        else:
            actual = stream_digest(stream)
            checks.append(
                Check(
                    "stream-digest",
                    actual == header.stream_crc,
                    f"stored {header.stream_crc:#010x}, computed {actual:#010x}",
                )
            )
        if original is not None:
            with rec.span("verify.coverage"):
                covers = stream.covers(original)
            if covers:
                detail = f"covers all {original.care_count} specified bits"
                checks.append(Check("coverage", True, detail))
            else:
                checks.append(
                    Check("coverage", False, "decoded stream does not cover original")
                )

    return VerifyReport(
        checks=tuple(checks),
        recognised=True,
        version=header.version,
        config_summary=header.config.describe(),
        num_codes=compressed.num_codes if compressed is not None else None,
        original_bits=header.original_bits,
        metrics=metrics_snapshot(rec) if rec.enabled else None,
    )


def _verify_segment(
    config: LZWConfig,
    entry: SegmentInfo,
    index: int,
    payload_area: bytes,
    rec: Recorder = NULL_RECORDER,
) -> Tuple[list, Optional[TernaryVector]]:
    """Run the payload-crc / decode / stream-digest stages of one segment."""
    name = f"segment[{index}]"
    checks = []
    end = entry.offset + (entry.payload_bits + 7) // 8
    if end > len(payload_area):
        checks.append(
            Check(
                f"{name} payload-crc",
                False,
                f"payload extends past the container "
                f"(needs {end} bytes, {len(payload_area)} present)",
            )
        )
        return checks, None
    if entry.payload_bits % config.code_bits:
        checks.append(
            Check(
                f"{name} payload-crc",
                False,
                f"{entry.payload_bits} payload bits is not a whole number "
                f"of {config.code_bits}-bit codes",
            )
        )
        return checks, None
    if entry.num_codes != entry.payload_bits // config.code_bits:
        checks.append(
            Check(
                f"{name} payload-crc",
                False,
                f"code count {entry.num_codes} disagrees with "
                f"{entry.payload_bits} payload bits",
            )
        )
        return checks, None
    payload = payload_area[entry.offset : end]
    actual_crc = zlib.crc32(payload)
    if actual_crc != entry.payload_crc:
        checks.append(
            Check(
                f"{name} payload-crc",
                False,
                f"stored {entry.payload_crc:#010x}, computed {actual_crc:#010x}",
            )
        )
        return checks, None
    checks.append(
        Check(
            f"{name} payload-crc",
            True,
            f"{len(payload)} bytes, {entry.num_codes} codes",
        )
    )

    try:
        with rec.span(f"verify.{name} decode"):
            codes = _read_codes(payload, entry.payload_bits, config)
            stream = decode(
                CompressedStream(codes, config, entry.original_bits), recorder=rec
            )
        checks.append(
            Check(f"{name} decode", True, f"{len(codes)} codes -> {len(stream)} bits")
        )
    except (ReproError, ValueError) as exc:
        checks.append(Check(f"{name} decode", False, str(exc)))
        return checks, None

    actual_digest = stream_digest(stream)
    checks.append(
        Check(
            f"{name} stream-digest",
            actual_digest == entry.stream_crc,
            f"stored {entry.stream_crc:#010x}, computed {actual_digest:#010x}",
        )
    )
    if actual_digest != entry.stream_crc:
        return checks, None
    return checks, stream


def _verify_multi(
    data: bytes,
    original: Optional[TernaryVector] = None,
    rec: Recorder = NULL_RECORDER,
) -> VerifyReport:
    """Staged verification of a multi-segment (v3) container."""
    metrics = (lambda: metrics_snapshot(rec) if rec.enabled else None)
    if len(data) < _HEADER_V3.size:
        return VerifyReport(
            checks=(Check("header", False, "truncated container header"),),
            recognised=False,
            version=3,
            metrics=metrics(),
        )
    _, _, char_bits, dict_size, entry_bits, count, header_crc = _HEADER_V3.unpack_from(
        data
    )
    try:
        config = LZWConfig(
            char_bits=char_bits, dict_size=dict_size, entry_bits=entry_bits
        )
    except ConfigError as exc:
        return VerifyReport(
            checks=(
                Check("header", False, f"invalid configuration: {exc.message}"),
            ),
            recognised=False,
            version=3,
            metrics=metrics(),
        )

    checks = []
    table_end = V3_SEGMENT_TABLE_OFFSET + count * SEGMENT_ENTRY_SIZE
    if count < 1 or len(data) < table_end:
        detail = (
            "segment count must be >= 1"
            if count < 1
            else f"truncated segment table ({count} segments declared, "
            f"{len(data)} bytes total)"
        )
        checks.append(Check("header", False, detail))
        return VerifyReport(
            checks=tuple(checks),
            recognised=True,
            version=3,
            config_summary=config.describe(),
            segments=count,
            metrics=metrics(),
        )
    checks.append(
        Check("header", True, f"v3, {config.describe()}, {count} segments")
    )

    table = data[V3_SEGMENT_TABLE_OFFSET:table_end]
    actual_crc = zlib.crc32(data[:V3_HEADER_CRC_OFFSET] + table)
    checks.append(
        Check(
            "header-crc",
            actual_crc == header_crc,
            f"stored {header_crc:#010x}, computed {actual_crc:#010x} "
            "(covers header + segment table)",
        )
    )

    payload_area = data[table_end:]
    streams = []
    total_codes = 0
    total_bits = 0
    for index in range(count):
        entry = SegmentInfo(
            *_SEGMENT_ENTRY.unpack_from(table, index * SEGMENT_ENTRY_SIZE)
        )
        total_codes += entry.num_codes
        total_bits += entry.original_bits
        segment_checks, stream = _verify_segment(
            config, entry, index, payload_area, rec
        )
        checks.extend(segment_checks)
        streams.append(stream)

    if original is not None and all(s is not None for s in streams):
        with rec.span("verify.coverage"):
            decoded = TernaryVector.concat_all(streams)
            covers = decoded.covers(original)
        if covers:
            detail = f"covers all {original.care_count} specified bits"
            checks.append(Check("coverage", True, detail))
        else:
            checks.append(
                Check("coverage", False, "decoded stream does not cover original")
            )

    return VerifyReport(
        checks=tuple(checks),
        recognised=True,
        version=3,
        config_summary=config.describe(),
        num_codes=total_codes,
        original_bits=total_bits,
        segments=count,
        metrics=metrics(),
    )
