"""On-disk container for compressed test sets.

The ATE-facing artefact of the flow: the compressed code stream plus
everything the decompressor needs to be configured (the paper's
"configurator block" parameters), in a small self-describing binary
format so a test program can be archived and replayed.

Layout (big-endian, all fixed-width)::

    0   4   magic  b"LZWT"
    4   1   format version (1)
    5   1   char_bits (C_C)
    6   4   dict_size (N)
    10  4   entry_bits (C_MDATA)
    14  8   original_bits
    22  8   payload bit count
    30  4   CRC32 of the payload bytes
    34  ..  payload: the code stream, MSB-first, zero-padded to a byte

The dynamic-assignment policy knobs are deliberately *not* stored: they
affect only how the encoder chose the codes, never how codes decode.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path
from typing import Union

from .bitstream import BitReader, BitWriter
from .core import CompressedStream, LZWConfig

__all__ = ["ContainerError", "dump_bytes", "load_bytes", "dump_file", "load_file"]

_MAGIC = b"LZWT"
_VERSION = 1
_HEADER = struct.Struct(">4sBBIIQQI")


class ContainerError(ValueError):
    """Raised for malformed or corrupted container data."""


def dump_bytes(compressed: CompressedStream) -> bytes:
    """Serialise a compressed test set to container bytes."""
    writer = BitWriter()
    width = compressed.config.code_bits
    for code in compressed.codes:
        writer.write(code, width)
    payload = writer.to_bytes()
    header = _HEADER.pack(
        _MAGIC,
        _VERSION,
        compressed.config.char_bits,
        compressed.config.dict_size,
        compressed.config.entry_bits,
        compressed.original_bits,
        writer.bit_length,
        zlib.crc32(payload),
    )
    return header + payload


def load_bytes(data: bytes) -> CompressedStream:
    """Parse container bytes back into a :class:`CompressedStream`."""
    if len(data) < _HEADER.size:
        raise ContainerError("truncated container header")
    (
        magic,
        version,
        char_bits,
        dict_size,
        entry_bits,
        original_bits,
        payload_bits,
        crc,
    ) = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise ContainerError(f"bad magic {magic!r}")
    if version != _VERSION:
        raise ContainerError(f"unsupported container version {version}")
    payload = data[_HEADER.size :]
    if zlib.crc32(payload) != crc:
        raise ContainerError("payload CRC mismatch (corrupted container)")
    try:
        config = LZWConfig(
            char_bits=char_bits, dict_size=dict_size, entry_bits=entry_bits
        )
    except ValueError as exc:
        raise ContainerError(f"invalid configuration in header: {exc}") from None
    if payload_bits > len(payload) * 8:
        raise ContainerError("declared payload length exceeds data")
    if payload_bits % config.code_bits:
        raise ContainerError("payload is not a whole number of codes")
    reader = BitReader.from_bytes(payload, payload_bits)
    codes = []
    while not reader.exhausted:
        codes.append(reader.read(config.code_bits))
    try:
        return CompressedStream(tuple(codes), config, original_bits)
    except ValueError as exc:
        raise ContainerError(str(exc)) from None


def dump_file(compressed: CompressedStream, path: Union[str, Path]) -> None:
    """Write a container file."""
    Path(path).write_bytes(dump_bytes(compressed))


def load_file(path: Union[str, Path]) -> CompressedStream:
    """Read a container file."""
    return load_bytes(Path(path).read_bytes())
