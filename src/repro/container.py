"""On-disk container for compressed test sets.

The ATE-facing artefact of the flow: the compressed code stream plus
everything the decompressor needs to be configured (the paper's
"configurator block" parameters), in a small self-describing binary
format so a test program can be archived and replayed.

Layout of format version 2 (big-endian, all fixed-width)::

    0   4   magic  b"LZWT"
    4   1   format version (2)
    5   1   char_bits (C_C)
    6   4   dict_size (N)
    10  4   entry_bits (C_MDATA)
    14  8   original_bits
    22  8   payload bit count
    30  4   CRC32 of the payload bytes
    34  4   CRC32 digest of the *decoded* stream
    38  4   CRC32 of header bytes 0..38
    42  ..  payload: the code stream, MSB-first, zero-padded to a byte

Version 1 containers (no stream digest, no header CRC — bytes 0..34
followed by the payload) are still read.

Format version 3 is the **multi-segment** framing produced by the batch
engine (:mod:`repro.parallel`): several independently coded shards of
one logical stream, each with its own LZW dictionary, share one file::

    0   4   magic  b"LZWT"
    4   1   format version (3)
    5   1   char_bits (C_C)
    6   4   dict_size (N)
    10  4   entry_bits (C_MDATA)
    14  4   segment count S (>= 1)
    18  4   CRC32 of header bytes 0..18 + the segment table
    22  ..  segment table: S entries of 36 bytes each ::

            0   8   payload byte offset (relative to the payload area)
            8   8   original_bits of this segment
            16  8   payload bit count
            24  4   code count
            28  4   CRC32 of the segment's payload bytes
            32  4   CRC32 digest of the segment's *decoded* stream

        ..  payload area: per-segment code streams, MSB-first, each
            zero-padded to a byte boundary, at the declared offsets

Every segment decodes with a fresh dictionary; the logical stream is
the concatenation of the segment decodes in table order.  A batch of
exactly one segment is written as a plain v2 container, so the serial
and batch paths are bit-identical in the single-shard case.

Format version 4 is the **seeded** multi-segment framing: segments may
start from a warm dictionary (a trained preamble stored once in a blob
table, or the previous segment's final state in a pipelined wave)::

    0   4   magic  b"LZWT"
    4   1   format version (4)
    5   1   char_bits (C_C)
    6   4   dict_size (N)
    10  4   entry_bits (C_MDATA)
    14  4   segment count S (>= 1)
    18  1   flags (bit 0: reset_on_full)
    19  2   blob count B
    21  4   CRC32 of header bytes 0..21 + segment table + blob table
    25  ..  segment table: S entries of 40 bytes each ::

            0   8   payload byte offset (relative to the payload area)
            8   8   original_bits of this segment
            16  8   payload bit count
            24  4   code count
            28  4   CRC32 of the segment's payload bytes
            32  4   CRC32 digest of the segment's *decoded* stream
            36  1   seed mode (0 cold, 1 blob, 2 chain)
            37  2   blob index (0xFFFF when the mode takes no blob)
            39  1   reserved (0)

        ..  blob table: B entries of 16 bytes each ::

            0   8   blob byte offset (relative to the blob area)
            8   4   blob byte length
            12  4   CRC32 of the blob bytes

        ..  blob area: ``LZWS`` dictionary snapshots, deduplicated by
            digest (segments sharing a preamble share one blob)
        ..  payload area: per-segment code streams as in v3

A *cold* segment decodes with a fresh dictionary.  A *blob* segment
decodes with the dictionary restored from its blob-table snapshot.  A
*chain* segment decodes with the previous segment's **final** state —
derived from the previous segment's codes, never stored — with the
cross-segment link code being the previous segment's last code.  A
container whose segments are all cold is written in the v2/v3 formats
bit-for-bit, so cold plans never see the v4 framing.

The three checksums split the failure modes cleanly:

* the **header CRC** catches any flipped header field (the payload CRC
  never covered the header);
* the **payload CRC** catches transport corruption of the code stream;
* the **stream digest** is computed over the *decoded* scan stream, so
  even an adversarial corruption that fixes up both CRCs cannot decode
  to different scan data undetected.

The dynamic-assignment policy knobs are deliberately *not* stored: they
affect only how the encoder chose the codes, never how codes decode.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path
from typing import NamedTuple, Optional, Sequence, Tuple, Union

from .bitstream import BitReader, BitWriter, TernaryVector
from .core import (
    CompressedStream,
    DictionarySnapshot,
    LZWConfig,
    decode,
    derive_final_snapshot,
)
from .observability import NULL_RECORDER, Recorder
from .observability import schema as ev
from .reliability.atomic import atomic_write_bytes
from .reliability.errors import ConfigError, ContainerError, DecodeError, SnapshotError

__all__ = [
    "ContainerError",
    "LoadedSegment",
    "SEED_BLOB",
    "SEED_CHAIN",
    "SEED_COLD",
    "SEED_MODE_NAMES",
    "SegmentInfo",
    "SegmentSeed",
    "SeededSegmentInfo",
    "container_version",
    "decode_container",
    "dump_bytes",
    "dump_segments",
    "load_bytes",
    "load_seeded",
    "load_segments",
    "dump_file",
    "load_file",
    "stream_digest",
]

_MAGIC = b"LZWT"
_VERSION = 2
_VERSION_MULTI = 3
_VERSION_SEEDED = 4
_VERSION_STREAM = 5
_HEADER_V1 = struct.Struct(">4sBBIIQQI")
_HEADER_V2 = struct.Struct(">4sBBIIQQIII")
_HEADER_V3 = struct.Struct(">4sBBIIII")
_HEADER_V4 = struct.Struct(">4sBBIIIBHI")
_SEGMENT_ENTRY = struct.Struct(">QQQIII")
_SEGMENT_ENTRY_V4 = struct.Struct(">QQQIIIBHB")
_BLOB_ENTRY = struct.Struct(">QII")

# Field offsets of the v2 header (used by the fault injectors to build
# checksum-consistent corruptions).
PAYLOAD_CRC_OFFSET = 30
STREAM_CRC_OFFSET = 34
HEADER_CRC_OFFSET = 38
HEADER_SIZE = _HEADER_V2.size

# v3 (multi-segment) layout constants, likewise exported for the
# injectors and the staged verifier.
V3_SEGMENT_COUNT_OFFSET = 14
V3_HEADER_CRC_OFFSET = 18
V3_SEGMENT_TABLE_OFFSET = _HEADER_V3.size
SEGMENT_ENTRY_SIZE = _SEGMENT_ENTRY.size

# v4 (seeded multi-segment) layout constants.
V4_SEGMENT_COUNT_OFFSET = 14
V4_FLAGS_OFFSET = 18
V4_BLOB_COUNT_OFFSET = 19
V4_HEADER_CRC_OFFSET = 21
V4_SEGMENT_TABLE_OFFSET = _HEADER_V4.size
SEGMENT_ENTRY_V4_SIZE = _SEGMENT_ENTRY_V4.size
BLOB_ENTRY_SIZE = _BLOB_ENTRY.size
SEED_MODE_ENTRY_OFFSET = 36
BLOB_INDEX_ENTRY_OFFSET = 37

_FLAG_RESET_ON_FULL = 0x01
_NO_BLOB = 0xFFFF

# Segment seeding modes of the v4 format.
SEED_COLD = 0
SEED_BLOB = 1
SEED_CHAIN = 2
SEED_MODE_NAMES = {SEED_COLD: "cold", SEED_BLOB: "blob", SEED_CHAIN: "chain"}


class SegmentSeed(NamedTuple):
    """How one segment's dictionary is initialised.

    ``snapshot`` must carry the **resolved** seeding state for any warm
    mode: for ``SEED_BLOB`` it is written to the blob table; for
    ``SEED_CHAIN`` it is the previous segment's derived final state
    (used only to compute this segment's stream digest — chains are
    re-derived from codes at load time, never stored).  ``link`` is the
    cross-segment link code of a chain segment (the previous segment's
    last emitted code).
    """

    mode: int = SEED_COLD
    snapshot: Optional[DictionarySnapshot] = None
    link: Optional[int] = None


COLD_SEED = SegmentSeed()


class LoadedSegment(NamedTuple):
    """One loaded segment plus the seeding state it decodes under."""

    compressed: CompressedStream
    seed: Optional[DictionarySnapshot]
    link: Optional[int]
    seed_mode: int


def stream_digest(stream: TernaryVector) -> int:
    """CRC32 digest of a fully specified decoded stream.

    Covers both the bit values and the length, so a decode that produces
    the wrong number of bits is as detectable as one producing wrong
    values.
    """
    nbytes = (len(stream) + 7) // 8
    payload = len(stream).to_bytes(8, "big") + stream.value_mask.to_bytes(
        nbytes, "little"
    )
    return zlib.crc32(payload)


class _Header(NamedTuple):
    """Parsed container header plus the payload bytes that follow it."""

    version: int
    config: LZWConfig
    original_bits: int
    payload_bits: int
    payload_crc: int
    stream_crc: Optional[int]
    header_crc: Optional[int]
    header_size: int
    payload: bytes


def _parse_header(data: bytes) -> _Header:
    """Parse and validate the fixed-size header (no checksum checks)."""
    if len(data) < 5:
        raise ContainerError("truncated container header", byte_offset=len(data))
    if data[:4] != _MAGIC:
        raise ContainerError(f"bad magic {data[:4]!r}", byte_offset=0, field="magic")
    version = data[4]
    if version == 1:
        header_struct = _HEADER_V1
    elif version == _VERSION:
        header_struct = _HEADER_V2
    elif version == _VERSION_MULTI:
        raise ContainerError(
            "multi-segment (v3) container; load it with load_segments()",
            byte_offset=4,
            field="version",
        )
    elif version == _VERSION_SEEDED:
        raise ContainerError(
            "seeded (v4) container; load it with load_seeded()",
            byte_offset=4,
            field="version",
        )
    elif version == _VERSION_STREAM:
        raise ContainerError(
            "streaming (v5) container; load it with repro.streamio",
            byte_offset=4,
            field="version",
        )
    else:
        raise ContainerError(
            f"unsupported container version {version}",
            byte_offset=4,
            field="version",
        )
    if len(data) < header_struct.size:
        raise ContainerError(
            "truncated container header",
            byte_offset=len(data),
            field="header",
        )
    fields = header_struct.unpack_from(data)
    stream_crc: Optional[int] = None
    header_crc: Optional[int] = None
    if version == 1:
        _, _, char_bits, dict_size, entry_bits, original_bits, payload_bits, crc = (
            fields
        )
    else:
        (
            _,
            _,
            char_bits,
            dict_size,
            entry_bits,
            original_bits,
            payload_bits,
            crc,
            stream_crc,
            header_crc,
        ) = fields
    try:
        config = LZWConfig(
            char_bits=char_bits, dict_size=dict_size, entry_bits=entry_bits
        )
    except ConfigError as exc:
        raise ContainerError(
            f"invalid configuration in header: {exc.message}",
            field=getattr(exc, "field", None),
        ) from None
    return _Header(
        version=version,
        config=config,
        original_bits=original_bits,
        payload_bits=payload_bits,
        payload_crc=crc,
        stream_crc=stream_crc,
        header_crc=header_crc,
        header_size=header_struct.size,
        payload=data[header_struct.size :],
    )


def dump_bytes(
    compressed: CompressedStream,
    stream: Optional[TernaryVector] = None,
    recorder: Optional[Recorder] = None,
) -> bytes:
    """Serialise a compressed test set to container bytes.

    ``stream`` may supply the already-decoded scan stream (e.g. a
    :class:`~repro.core.pipeline.CompressionResult`'s
    ``assigned_stream``) to avoid re-decoding when computing the stream
    digest; when omitted the codes are decoded here.  ``recorder``
    collects ``container.*`` counters and a ``pack`` span.
    """
    rec = recorder if recorder is not None else NULL_RECORDER
    with rec.span("pack"):
        writer = BitWriter()
        width = compressed.config.code_bits
        for code in compressed.codes:
            writer.write(code, width)
        payload = writer.to_bytes()
        if stream is None:
            stream = decode(compressed)
        header_wo_crc = _HEADER_V2.pack(
            _MAGIC,
            _VERSION,
            compressed.config.char_bits,
            compressed.config.dict_size,
            compressed.config.entry_bits,
            compressed.original_bits,
            writer.bit_length,
            zlib.crc32(payload),
            stream_digest(stream),
            0,
        )
        header_crc = zlib.crc32(header_wo_crc[:HEADER_CRC_OFFSET])
        header = header_wo_crc[:HEADER_CRC_OFFSET] + struct.pack(">I", header_crc)
        data = header + payload
    if rec.enabled:
        rec.incr(ev.CONTAINER_BYTES_WRITTEN, len(data))
        rec.incr(ev.CONTAINER_SEGMENTS_WRITTEN)
    return data


def _read_codes(payload: bytes, payload_bits: int, config: LZWConfig) -> Tuple[int, ...]:
    reader = BitReader.from_bytes(payload, payload_bits)
    codes = []
    while not reader.exhausted:
        codes.append(reader.read(config.code_bits))
    return tuple(codes)


def load_bytes(
    data: bytes, verify: bool = True, recorder: Optional[Recorder] = None
) -> CompressedStream:
    """Parse container bytes back into a :class:`CompressedStream`.

    With ``verify`` (the default) a version-2 container's decoded stream
    is checked against the stored digest, which catches corruptions that
    preserve both CRCs; pass ``verify=False`` to skip the extra decode
    when the caller decodes (and therefore validates) the stream anyway.
    """
    rec = recorder if recorder is not None else NULL_RECORDER
    if rec.enabled:
        rec.incr(ev.CONTAINER_BYTES_READ, len(data))
        rec.incr(ev.CONTAINER_SEGMENTS_READ)
    header = _parse_header(data)
    if header.header_crc is not None:
        actual = zlib.crc32(data[:HEADER_CRC_OFFSET])
        if actual != header.header_crc:
            raise ContainerError(
                "header CRC mismatch (corrupted header)",
                byte_offset=HEADER_CRC_OFFSET,
                expected=header.header_crc,
                actual=actual,
            )
    payload = header.payload
    actual_payload_crc = zlib.crc32(payload)
    if actual_payload_crc != header.payload_crc:
        raise ContainerError(
            "payload CRC mismatch (corrupted container)",
            byte_offset=PAYLOAD_CRC_OFFSET,
            expected=header.payload_crc,
            actual=actual_payload_crc,
        )
    config = header.config
    if header.payload_bits > len(payload) * 8:
        raise ContainerError(
            "declared payload length exceeds data",
            field="payload_bits",
            expected=header.payload_bits,
            actual=len(payload) * 8,
        )
    if header.payload_bits % config.code_bits:
        raise ContainerError(
            "payload is not a whole number of codes",
            field="payload_bits",
            expected=config.code_bits,
            actual=header.payload_bits,
        )
    codes = _read_codes(payload, header.payload_bits, config)
    try:
        compressed = CompressedStream(codes, config, header.original_bits)
    except ValueError as exc:
        raise ContainerError(str(exc)) from None
    if verify and header.stream_crc is not None:
        actual_digest = stream_digest(decode(compressed))
        if actual_digest != header.stream_crc:
            raise ContainerError(
                "decoded stream digest mismatch (tampered payload)",
                byte_offset=STREAM_CRC_OFFSET,
                expected=header.stream_crc,
                actual=actual_digest,
            )
    return compressed


# ----------------------------------------------------------------------
# Multi-segment (v3) framing
# ----------------------------------------------------------------------


class SegmentInfo(NamedTuple):
    """One parsed segment-table entry of a v3 container."""

    offset: int
    original_bits: int
    payload_bits: int
    num_codes: int
    payload_crc: int
    stream_crc: int


class _MultiHeader(NamedTuple):
    """Parsed v3 header: configuration, table and the payload area."""

    config: LZWConfig
    segments: Tuple[SegmentInfo, ...]
    header_crc: int
    table: bytes
    payload_area: bytes


def container_version(data: bytes) -> int:
    """Format version of container bytes (validates magic only)."""
    if len(data) < 5 or data[:4] != _MAGIC:
        raise ContainerError(f"bad magic {data[:5]!r}", byte_offset=0, field="magic")
    return data[4]


def _parse_multi(data: bytes) -> _MultiHeader:
    """Parse a v3 header and segment table (no checksum checks)."""
    if len(data) < _HEADER_V3.size:
        raise ContainerError("truncated container header", byte_offset=len(data))
    if data[:4] != _MAGIC:
        raise ContainerError(f"bad magic {data[:4]!r}", byte_offset=0, field="magic")
    if data[4] != _VERSION_MULTI:
        raise ContainerError(
            f"not a multi-segment container (version {data[4]})",
            byte_offset=4,
            field="version",
        )
    _, _, char_bits, dict_size, entry_bits, count, header_crc = _HEADER_V3.unpack_from(
        data
    )
    if count < 1:
        raise ContainerError(
            "segment count must be >= 1",
            byte_offset=V3_SEGMENT_COUNT_OFFSET,
            field="segment_count",
        )
    try:
        config = LZWConfig(
            char_bits=char_bits, dict_size=dict_size, entry_bits=entry_bits
        )
    except ConfigError as exc:
        raise ContainerError(
            f"invalid configuration in header: {exc.message}",
            field=getattr(exc, "field", None),
        ) from None
    table_end = V3_SEGMENT_TABLE_OFFSET + count * SEGMENT_ENTRY_SIZE
    if len(data) < table_end:
        raise ContainerError(
            f"truncated segment table ({count} segments declared)",
            byte_offset=len(data),
            field="segment_table",
        )
    table = data[V3_SEGMENT_TABLE_OFFSET:table_end]
    payload_area = data[table_end:]
    segments = []
    for index in range(count):
        entry = SegmentInfo(
            *_SEGMENT_ENTRY.unpack_from(table, index * SEGMENT_ENTRY_SIZE)
        )
        end = entry.offset + (entry.payload_bits + 7) // 8
        if end > len(payload_area):
            raise ContainerError(
                "segment payload extends past the end of the container",
                segment=index,
                expected=end,
                actual=len(payload_area),
            )
        if entry.payload_bits % config.code_bits:
            raise ContainerError(
                "segment payload is not a whole number of codes",
                segment=index,
                field="payload_bits",
                expected=config.code_bits,
                actual=entry.payload_bits,
            )
        if entry.num_codes != entry.payload_bits // config.code_bits:
            raise ContainerError(
                "segment code count disagrees with its payload bit count",
                segment=index,
                field="num_codes",
                expected=entry.payload_bits // config.code_bits,
                actual=entry.num_codes,
            )
        segments.append(entry)
    return _MultiHeader(
        config=config,
        segments=tuple(segments),
        header_crc=header_crc,
        table=table,
        payload_area=payload_area,
    )


def _segment_payload(header: _MultiHeader, entry: SegmentInfo) -> bytes:
    """The padded payload bytes of one segment."""
    return header.payload_area[entry.offset : entry.offset + (entry.payload_bits + 7) // 8]


def dump_segments(
    parts: Sequence[CompressedStream],
    streams: Optional[Sequence[Optional[TernaryVector]]] = None,
    recorder: Optional[Recorder] = None,
    seeds: Optional[Sequence[SegmentSeed]] = None,
) -> bytes:
    """Serialise independently coded segments into one container.

    ``parts`` must share one :class:`LZWConfig` (they decode on the same
    hardware).  ``streams`` optionally supplies the already-decoded
    stream per segment, as in :func:`dump_bytes`.  ``seeds`` optionally
    supplies per-segment warm-dictionary seeding; any non-cold entry
    switches the output to the v4 seeded framing.  A single cold
    segment is written in the v2 format, so batch output degenerates to
    the serial container bit-for-bit when there is no sharding.
    """
    if not parts:
        raise ValueError("dump_segments needs at least one segment")
    if streams is None:
        streams = [None] * len(parts)
    if len(streams) != len(parts):
        raise ValueError("streams must align with parts")
    config = parts[0].config
    for part in parts[1:]:
        if part.config != config:
            raise ValueError("all segments must share one LZWConfig")
    if seeds is not None and len(seeds) != len(parts):
        raise ValueError("seeds must align with parts")
    if seeds is not None and any(seed.mode != SEED_COLD for seed in seeds):
        return _dump_seeded(parts, streams, seeds, recorder)
    if len(parts) == 1:
        return dump_bytes(parts[0], streams[0], recorder)

    rec = recorder if recorder is not None else NULL_RECORDER
    with rec.span("pack"):
        entries = []
        payloads = []
        offset = 0
        width = config.code_bits
        for part, stream in zip(parts, streams):
            writer = BitWriter()
            for code in part.codes:
                writer.write(code, width)
            payload = writer.to_bytes()
            if stream is None:
                stream = decode(part)
            entries.append(
                _SEGMENT_ENTRY.pack(
                    offset,
                    part.original_bits,
                    writer.bit_length,
                    len(part.codes),
                    zlib.crc32(payload),
                    stream_digest(stream),
                )
            )
            payloads.append(payload)
            offset += len(payload)
        table = b"".join(entries)
        fixed_wo_crc = _HEADER_V3.pack(
            _MAGIC,
            _VERSION_MULTI,
            config.char_bits,
            config.dict_size,
            config.entry_bits,
            len(parts),
            0,
        )[:V3_HEADER_CRC_OFFSET]
        header_crc = zlib.crc32(fixed_wo_crc + table)
        data = fixed_wo_crc + struct.pack(">I", header_crc) + table + b"".join(payloads)
    if rec.enabled:
        rec.incr(ev.CONTAINER_BYTES_WRITTEN, len(data))
        rec.incr(ev.CONTAINER_SEGMENTS_WRITTEN, len(parts))
    return data


def load_segments(
    data: bytes, verify: bool = True, recorder: Optional[Recorder] = None
) -> Tuple[CompressedStream, ...]:
    """Parse container bytes into one :class:`CompressedStream` per segment.

    Accepts every format version: v1/v2 containers load as a single
    segment (via :func:`load_bytes`), v3 containers as their full
    segment sequence.  Integrity failures raise
    :class:`ContainerError` carrying the failing ``segment`` index.
    """
    if container_version(data) != _VERSION_MULTI:
        return (load_bytes(data, verify=verify, recorder=recorder),)
    rec = recorder if recorder is not None else NULL_RECORDER
    header = _parse_multi(data)
    if rec.enabled:
        rec.incr(ev.CONTAINER_BYTES_READ, len(data))
        rec.incr(ev.CONTAINER_SEGMENTS_READ, len(header.segments))
    actual_crc = zlib.crc32(data[:V3_HEADER_CRC_OFFSET] + header.table)
    if actual_crc != header.header_crc:
        raise ContainerError(
            "header CRC mismatch (corrupted header or segment table)",
            byte_offset=V3_HEADER_CRC_OFFSET,
            expected=header.header_crc,
            actual=actual_crc,
        )
    out = []
    for index, entry in enumerate(header.segments):
        payload = _segment_payload(header, entry)
        actual = zlib.crc32(payload)
        if actual != entry.payload_crc:
            raise ContainerError(
                "segment payload CRC mismatch (corrupted container)",
                segment=index,
                expected=entry.payload_crc,
                actual=actual,
            )
        codes = _read_codes(payload, entry.payload_bits, header.config)
        try:
            compressed = CompressedStream(codes, header.config, entry.original_bits)
        except ValueError as exc:
            raise ContainerError(str(exc), segment=index) from None
        if verify:
            actual_digest = stream_digest(decode(compressed))
            if actual_digest != entry.stream_crc:
                raise ContainerError(
                    "segment decoded stream digest mismatch (tampered payload)",
                    segment=index,
                    expected=entry.stream_crc,
                    actual=actual_digest,
                )
        out.append(compressed)
    return tuple(out)


# ----------------------------------------------------------------------
# Seeded multi-segment (v4) framing
# ----------------------------------------------------------------------


class SeededSegmentInfo(NamedTuple):
    """One parsed segment-table entry of a v4 container."""

    offset: int
    original_bits: int
    payload_bits: int
    num_codes: int
    payload_crc: int
    stream_crc: int
    seed_mode: int
    blob_index: int


class BlobInfo(NamedTuple):
    """One parsed blob-table entry of a v4 container."""

    offset: int
    length: int
    crc: int


class _SeededHeader(NamedTuple):
    """Parsed v4 header: configuration, tables and the data areas."""

    config: LZWConfig
    segments: Tuple[SeededSegmentInfo, ...]
    blobs: Tuple[BlobInfo, ...]
    header_crc: int
    tables: bytes
    blob_area: bytes
    payload_area: bytes


def _dump_seeded(
    parts: Sequence[CompressedStream],
    streams: Sequence[Optional[TernaryVector]],
    seeds: Sequence[SegmentSeed],
    recorder: Optional[Recorder] = None,
) -> bytes:
    """Serialise segments with warm-dictionary seeding into a v4 container."""
    config = parts[0].config
    expected_link: Optional[int] = None
    for index, (part, seed) in enumerate(zip(parts, seeds)):
        if seed.mode not in SEED_MODE_NAMES:
            raise ValueError(f"segment {index}: unknown seed mode {seed.mode}")
        if seed.mode == SEED_CHAIN:
            if index == 0:
                raise ValueError("segment 0 cannot chain from a previous segment")
            if seed.snapshot is None or seed.link is None:
                raise ValueError(
                    f"segment {index}: chain seeding needs the resolved "
                    "snapshot and link"
                )
            if seed.link != expected_link:
                raise ValueError(
                    f"segment {index}: chain link {seed.link} is not the "
                    f"previous segment's last code {expected_link}"
                )
        elif seed.mode == SEED_BLOB:
            if seed.snapshot is None:
                raise ValueError(f"segment {index}: blob seeding needs a snapshot")
            if seed.link is not None:
                raise ValueError(f"segment {index}: blob seeding takes no link")
        elif seed.snapshot is not None or seed.link is not None:
            raise ValueError(f"segment {index}: cold seeding takes no state")
        if seed.snapshot is not None:
            seed.snapshot.require_config(config)
        expected_link = part.codes[-1] if part.codes else (
            seed.link if seed.mode == SEED_CHAIN else None
        )

    rec = recorder if recorder is not None else NULL_RECORDER
    with rec.span("pack"):
        # Blob table: deduplicate snapshots by digest, first-reference order.
        blob_bytes: list = []
        blob_order: dict = {}
        for seed in seeds:
            if seed.mode != SEED_BLOB:
                continue
            digest = seed.snapshot.digest
            if digest not in blob_order:
                blob_order[digest] = len(blob_bytes)
                blob_bytes.append(seed.snapshot.to_bytes())
        if len(blob_bytes) >= _NO_BLOB:
            raise ValueError(f"too many distinct seed blobs ({len(blob_bytes)})")

        entries = []
        payloads = []
        offset = 0
        width = config.code_bits
        for part, stream, seed in zip(parts, streams, seeds):
            writer = BitWriter()
            for code in part.codes:
                writer.write(code, width)
            payload = writer.to_bytes()
            if stream is None:
                stream = decode(part, seed=seed.snapshot, link=seed.link)
            blob_index = (
                blob_order[seed.snapshot.digest] if seed.mode == SEED_BLOB else _NO_BLOB
            )
            entries.append(
                _SEGMENT_ENTRY_V4.pack(
                    offset,
                    part.original_bits,
                    writer.bit_length,
                    len(part.codes),
                    zlib.crc32(payload),
                    stream_digest(stream),
                    seed.mode,
                    blob_index,
                    0,
                )
            )
            payloads.append(payload)
            offset += len(payload)

        blob_entries = []
        blob_offset = 0
        for blob in blob_bytes:
            blob_entries.append(
                _BLOB_ENTRY.pack(blob_offset, len(blob), zlib.crc32(blob))
            )
            blob_offset += len(blob)

        flags = _FLAG_RESET_ON_FULL if config.reset_on_full else 0
        tables = b"".join(entries) + b"".join(blob_entries)
        fixed_wo_crc = _HEADER_V4.pack(
            _MAGIC,
            _VERSION_SEEDED,
            config.char_bits,
            config.dict_size,
            config.entry_bits,
            len(parts),
            flags,
            len(blob_bytes),
            0,
        )[:V4_HEADER_CRC_OFFSET]
        header_crc = zlib.crc32(fixed_wo_crc + tables)
        data = (
            fixed_wo_crc
            + struct.pack(">I", header_crc)
            + tables
            + b"".join(blob_bytes)
            + b"".join(payloads)
        )
    if rec.enabled:
        rec.incr(ev.CONTAINER_BYTES_WRITTEN, len(data))
        rec.incr(ev.CONTAINER_SEGMENTS_WRITTEN, len(parts))
    return data


def _parse_seeded(data: bytes, strict: bool = True) -> _SeededHeader:
    """Parse a v4 header, segment table and blob table (no checksum checks).

    ``strict=False`` tolerates a container whose blob or payload area
    has been truncated — the tables must still parse, but the area
    bounds checks are skipped so a best-effort consumer (salvage) can
    clamp to whatever bytes survive.
    """
    if len(data) < _HEADER_V4.size:
        raise ContainerError("truncated container header", byte_offset=len(data))
    if data[:4] != _MAGIC:
        raise ContainerError(f"bad magic {data[:4]!r}", byte_offset=0, field="magic")
    if data[4] != _VERSION_SEEDED:
        raise ContainerError(
            f"not a seeded container (version {data[4]})",
            byte_offset=4,
            field="version",
        )
    (
        _,
        _,
        char_bits,
        dict_size,
        entry_bits,
        count,
        flags,
        blob_count,
        header_crc,
    ) = _HEADER_V4.unpack_from(data)
    if count < 1:
        raise ContainerError(
            "segment count must be >= 1",
            byte_offset=V4_SEGMENT_COUNT_OFFSET,
            field="segment_count",
        )
    if flags & ~_FLAG_RESET_ON_FULL:
        raise ContainerError(
            f"unknown container flags 0x{flags:02x}",
            byte_offset=V4_FLAGS_OFFSET,
            field="flags",
        )
    try:
        config = LZWConfig(
            char_bits=char_bits,
            dict_size=dict_size,
            entry_bits=entry_bits,
            reset_on_full=bool(flags & _FLAG_RESET_ON_FULL),
        )
    except ConfigError as exc:
        raise ContainerError(
            f"invalid configuration in header: {exc.message}",
            field=getattr(exc, "field", None),
        ) from None
    table_end = V4_SEGMENT_TABLE_OFFSET + count * SEGMENT_ENTRY_V4_SIZE
    blob_table_end = table_end + blob_count * BLOB_ENTRY_SIZE
    if len(data) < blob_table_end:
        raise ContainerError(
            f"truncated segment/blob table ({count} segments, "
            f"{blob_count} blobs declared)",
            byte_offset=len(data),
            field="segment_table",
        )
    tables = data[V4_SEGMENT_TABLE_OFFSET:blob_table_end]
    seg_table = data[V4_SEGMENT_TABLE_OFFSET:table_end]
    blob_table = data[table_end:blob_table_end]

    blobs = []
    blob_area_len = 0
    for index in range(blob_count):
        blob = BlobInfo(*_BLOB_ENTRY.unpack_from(blob_table, index * BLOB_ENTRY_SIZE))
        blob_area_len = max(blob_area_len, blob.offset + blob.length)
        blobs.append(blob)
    if strict and len(data) < blob_table_end + blob_area_len:
        raise ContainerError(
            "blob area extends past the end of the container",
            field="blob_table",
            expected=blob_table_end + blob_area_len,
            actual=len(data),
        )
    blob_area = data[blob_table_end : blob_table_end + blob_area_len]
    payload_area = data[blob_table_end + blob_area_len :]

    segments = []
    for index in range(count):
        fields = _SEGMENT_ENTRY_V4.unpack_from(seg_table, index * SEGMENT_ENTRY_V4_SIZE)
        entry = SeededSegmentInfo(*fields[:8])
        if entry.seed_mode not in SEED_MODE_NAMES:
            raise ContainerError(
                f"unknown segment seed mode {entry.seed_mode}",
                segment=index,
                field="seed_mode",
            )
        if entry.seed_mode == SEED_CHAIN and index == 0:
            raise ContainerError(
                "segment 0 cannot chain from a previous segment",
                segment=index,
                field="seed_mode",
            )
        if entry.seed_mode == SEED_BLOB:
            if entry.blob_index >= len(blobs):
                raise ContainerError(
                    f"segment references blob {entry.blob_index} of {len(blobs)}",
                    segment=index,
                    field="blob_index",
                )
        elif entry.blob_index != _NO_BLOB:
            raise ContainerError(
                f"{SEED_MODE_NAMES[entry.seed_mode]} segment carries a blob index",
                segment=index,
                field="blob_index",
            )
        end = entry.offset + (entry.payload_bits + 7) // 8
        if strict and end > len(payload_area):
            raise ContainerError(
                "segment payload extends past the end of the container",
                segment=index,
                expected=end,
                actual=len(payload_area),
            )
        if entry.payload_bits % config.code_bits:
            raise ContainerError(
                "segment payload is not a whole number of codes",
                segment=index,
                field="payload_bits",
                expected=config.code_bits,
                actual=entry.payload_bits,
            )
        if entry.num_codes != entry.payload_bits // config.code_bits:
            raise ContainerError(
                "segment code count disagrees with its payload bit count",
                segment=index,
                field="num_codes",
                expected=entry.payload_bits // config.code_bits,
                actual=entry.num_codes,
            )
        segments.append(entry)
    return _SeededHeader(
        config=config,
        segments=tuple(segments),
        blobs=tuple(blobs),
        header_crc=header_crc,
        tables=tables,
        blob_area=blob_area,
        payload_area=payload_area,
    )


def _seeded_payload(header: _SeededHeader, entry: SeededSegmentInfo) -> bytes:
    """The padded payload bytes of one v4 segment."""
    return header.payload_area[
        entry.offset : entry.offset + (entry.payload_bits + 7) // 8
    ]


def _load_blob(header: _SeededHeader, index: int) -> DictionarySnapshot:
    """Check, parse and config-validate one seed blob."""
    blob = header.blobs[index]
    raw = header.blob_area[blob.offset : blob.offset + blob.length]
    actual = zlib.crc32(raw)
    if actual != blob.crc:
        raise ContainerError(
            "seed blob CRC mismatch (corrupted container)",
            blob=index,
            expected=blob.crc,
            actual=actual,
        )
    snapshot = DictionarySnapshot.from_bytes(raw)
    snapshot.require_config(header.config)
    return snapshot


def _chain_seed(
    prev: LoadedSegment, config: LZWConfig, index: int
) -> Tuple[DictionarySnapshot, Optional[int]]:
    """Derive segment ``index``'s seeding state from its predecessor."""
    codes = prev.compressed.codes
    try:
        snapshot = derive_final_snapshot(codes, config, seed=prev.seed, link=prev.link)
    except (DecodeError, SnapshotError) as exc:
        raise ContainerError(
            f"chain seed underivable from segment {index - 1}: {exc}",
            segment=index,
            field="seed_mode",
        ) from exc
    link = codes[-1] if codes else prev.link
    return snapshot, link


def load_seeded(
    data: bytes, verify: bool = True, recorder: Optional[Recorder] = None
) -> Tuple[LoadedSegment, ...]:
    """Parse container bytes into seed-aware segments, any format version.

    v1/v2/v3 containers load as cold segments; v4 containers resolve
    each segment's seeding state — blob snapshots are CRC-checked and
    parsed, chain states re-derived from the previous segment's codes.
    Integrity failures raise :class:`ContainerError` (or
    :class:`SnapshotError` for malformed blobs).
    """
    version = container_version(data)
    if version == _VERSION_STREAM:
        raise ContainerError(
            "streaming (v5) container; decode it with decode_container() "
            "or repro.streamio",
            byte_offset=4,
            field="version",
        )
    if version != _VERSION_SEEDED:
        return tuple(
            LoadedSegment(compressed, None, None, SEED_COLD)
            for compressed in load_segments(data, verify=verify, recorder=recorder)
        )
    rec = recorder if recorder is not None else NULL_RECORDER
    header = _parse_seeded(data)
    if rec.enabled:
        rec.incr(ev.CONTAINER_BYTES_READ, len(data))
        rec.incr(ev.CONTAINER_SEGMENTS_READ, len(header.segments))
    actual_crc = zlib.crc32(data[:V4_HEADER_CRC_OFFSET] + header.tables)
    if actual_crc != header.header_crc:
        raise ContainerError(
            "header CRC mismatch (corrupted header or tables)",
            byte_offset=V4_HEADER_CRC_OFFSET,
            expected=header.header_crc,
            actual=actual_crc,
        )
    snapshots = [_load_blob(header, index) for index in range(len(header.blobs))]
    out: list = []
    for index, entry in enumerate(header.segments):
        payload = _seeded_payload(header, entry)
        actual = zlib.crc32(payload)
        if actual != entry.payload_crc:
            raise ContainerError(
                "segment payload CRC mismatch (corrupted container)",
                segment=index,
                expected=entry.payload_crc,
                actual=actual,
            )
        codes = _read_codes(payload, entry.payload_bits, header.config)
        try:
            compressed = CompressedStream(codes, header.config, entry.original_bits)
        except ValueError as exc:
            raise ContainerError(str(exc), segment=index) from None
        seed: Optional[DictionarySnapshot] = None
        link: Optional[int] = None
        if entry.seed_mode == SEED_BLOB:
            seed = snapshots[entry.blob_index]
        elif entry.seed_mode == SEED_CHAIN:
            seed, link = _chain_seed(out[index - 1], header.config, index)
        if verify:
            try:
                decoded = decode(compressed, seed=seed, link=link)
            except (DecodeError, SnapshotError) as exc:
                raise ContainerError(
                    f"segment does not decode under its declared seed: {exc}",
                    segment=index,
                    field="seed_mode",
                ) from exc
            actual_digest = stream_digest(decoded)
            if actual_digest != entry.stream_crc:
                raise ContainerError(
                    "segment decoded stream digest mismatch (tampered payload)",
                    segment=index,
                    expected=entry.stream_crc,
                    actual=actual_digest,
                )
        out.append(LoadedSegment(compressed, seed, link, entry.seed_mode))
    return tuple(out)


def decode_container(
    data: bytes, verify: bool = True, recorder: Optional[Recorder] = None
) -> TernaryVector:
    """Decode container bytes of any version to the full logical stream.

    For multi-segment containers this is the concatenation of the
    per-segment decodes in table order; v4 segments decode under their
    declared seeding state; v5 streaming containers decode frame by
    frame with per-frame digest verification.
    """
    rec = recorder if recorder is not None else NULL_RECORDER
    if container_version(data) == _VERSION_STREAM:
        from .streamio import decode_stream_bytes

        return decode_stream_bytes(data, recorder=recorder)
    return TernaryVector.concat_all(
        [
            decode(segment.compressed, recorder=rec, seed=segment.seed, link=segment.link)
            for segment in load_seeded(data, verify=verify, recorder=rec)
        ]
    )


def dump_file(
    compressed: CompressedStream,
    path: Union[str, Path],
    stream: Optional[TernaryVector] = None,
    recorder: Optional[Recorder] = None,
) -> None:
    """Write a container file (``stream`` as in :func:`dump_bytes`).

    The write is atomic (tmp + fsync + rename): a killed writer leaves
    either the previous container or none, never a torn file that
    ``repro verify`` would misreport as corruption.
    """
    atomic_write_bytes(path, dump_bytes(compressed, stream, recorder))


def load_file(
    path: Union[str, Path],
    verify: bool = True,
    recorder: Optional[Recorder] = None,
) -> CompressedStream:
    """Read a container file."""
    return load_bytes(Path(path).read_bytes(), verify=verify, recorder=recorder)
