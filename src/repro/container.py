"""On-disk container for compressed test sets.

The ATE-facing artefact of the flow: the compressed code stream plus
everything the decompressor needs to be configured (the paper's
"configurator block" parameters), in a small self-describing binary
format so a test program can be archived and replayed.

Layout of format version 2 (big-endian, all fixed-width)::

    0   4   magic  b"LZWT"
    4   1   format version (2)
    5   1   char_bits (C_C)
    6   4   dict_size (N)
    10  4   entry_bits (C_MDATA)
    14  8   original_bits
    22  8   payload bit count
    30  4   CRC32 of the payload bytes
    34  4   CRC32 digest of the *decoded* stream
    38  4   CRC32 of header bytes 0..38
    42  ..  payload: the code stream, MSB-first, zero-padded to a byte

Version 1 containers (no stream digest, no header CRC — bytes 0..34
followed by the payload) are still read.

The three checksums split the failure modes cleanly:

* the **header CRC** catches any flipped header field (the payload CRC
  never covered the header);
* the **payload CRC** catches transport corruption of the code stream;
* the **stream digest** is computed over the *decoded* scan stream, so
  even an adversarial corruption that fixes up both CRCs cannot decode
  to different scan data undetected.

The dynamic-assignment policy knobs are deliberately *not* stored: they
affect only how the encoder chose the codes, never how codes decode.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path
from typing import NamedTuple, Optional, Tuple, Union

from .bitstream import BitReader, BitWriter, TernaryVector
from .core import CompressedStream, LZWConfig, decode
from .reliability.errors import ConfigError, ContainerError

__all__ = [
    "ContainerError",
    "dump_bytes",
    "load_bytes",
    "dump_file",
    "load_file",
    "stream_digest",
]

_MAGIC = b"LZWT"
_VERSION = 2
_HEADER_V1 = struct.Struct(">4sBBIIQQI")
_HEADER_V2 = struct.Struct(">4sBBIIQQIII")

# Field offsets of the v2 header (used by the fault injectors to build
# checksum-consistent corruptions).
PAYLOAD_CRC_OFFSET = 30
STREAM_CRC_OFFSET = 34
HEADER_CRC_OFFSET = 38
HEADER_SIZE = _HEADER_V2.size


def stream_digest(stream: TernaryVector) -> int:
    """CRC32 digest of a fully specified decoded stream.

    Covers both the bit values and the length, so a decode that produces
    the wrong number of bits is as detectable as one producing wrong
    values.
    """
    nbytes = (len(stream) + 7) // 8
    payload = len(stream).to_bytes(8, "big") + stream.value_mask.to_bytes(
        nbytes, "little"
    )
    return zlib.crc32(payload)


class _Header(NamedTuple):
    """Parsed container header plus the payload bytes that follow it."""

    version: int
    config: LZWConfig
    original_bits: int
    payload_bits: int
    payload_crc: int
    stream_crc: Optional[int]
    header_crc: Optional[int]
    header_size: int
    payload: bytes


def _parse_header(data: bytes) -> _Header:
    """Parse and validate the fixed-size header (no checksum checks)."""
    if len(data) < 5:
        raise ContainerError("truncated container header", byte_offset=len(data))
    if data[:4] != _MAGIC:
        raise ContainerError(f"bad magic {data[:4]!r}", byte_offset=0, field="magic")
    version = data[4]
    if version == 1:
        header_struct = _HEADER_V1
    elif version == _VERSION:
        header_struct = _HEADER_V2
    else:
        raise ContainerError(
            f"unsupported container version {version}",
            byte_offset=4,
            field="version",
        )
    if len(data) < header_struct.size:
        raise ContainerError(
            "truncated container header",
            byte_offset=len(data),
            field="header",
        )
    fields = header_struct.unpack_from(data)
    stream_crc: Optional[int] = None
    header_crc: Optional[int] = None
    if version == 1:
        _, _, char_bits, dict_size, entry_bits, original_bits, payload_bits, crc = (
            fields
        )
    else:
        (
            _,
            _,
            char_bits,
            dict_size,
            entry_bits,
            original_bits,
            payload_bits,
            crc,
            stream_crc,
            header_crc,
        ) = fields
    try:
        config = LZWConfig(
            char_bits=char_bits, dict_size=dict_size, entry_bits=entry_bits
        )
    except ConfigError as exc:
        raise ContainerError(
            f"invalid configuration in header: {exc.message}",
            field=getattr(exc, "field", None),
        ) from None
    return _Header(
        version=version,
        config=config,
        original_bits=original_bits,
        payload_bits=payload_bits,
        payload_crc=crc,
        stream_crc=stream_crc,
        header_crc=header_crc,
        header_size=header_struct.size,
        payload=data[header_struct.size :],
    )


def dump_bytes(
    compressed: CompressedStream, stream: Optional[TernaryVector] = None
) -> bytes:
    """Serialise a compressed test set to container bytes.

    ``stream`` may supply the already-decoded scan stream (e.g. a
    :class:`~repro.core.pipeline.CompressionResult`'s
    ``assigned_stream``) to avoid re-decoding when computing the stream
    digest; when omitted the codes are decoded here.
    """
    writer = BitWriter()
    width = compressed.config.code_bits
    for code in compressed.codes:
        writer.write(code, width)
    payload = writer.to_bytes()
    if stream is None:
        stream = decode(compressed)
    header_wo_crc = _HEADER_V2.pack(
        _MAGIC,
        _VERSION,
        compressed.config.char_bits,
        compressed.config.dict_size,
        compressed.config.entry_bits,
        compressed.original_bits,
        writer.bit_length,
        zlib.crc32(payload),
        stream_digest(stream),
        0,
    )
    header_crc = zlib.crc32(header_wo_crc[:HEADER_CRC_OFFSET])
    header = header_wo_crc[:HEADER_CRC_OFFSET] + struct.pack(">I", header_crc)
    return header + payload


def _read_codes(payload: bytes, payload_bits: int, config: LZWConfig) -> Tuple[int, ...]:
    reader = BitReader.from_bytes(payload, payload_bits)
    codes = []
    while not reader.exhausted:
        codes.append(reader.read(config.code_bits))
    return tuple(codes)


def load_bytes(data: bytes, verify: bool = True) -> CompressedStream:
    """Parse container bytes back into a :class:`CompressedStream`.

    With ``verify`` (the default) a version-2 container's decoded stream
    is checked against the stored digest, which catches corruptions that
    preserve both CRCs; pass ``verify=False`` to skip the extra decode
    when the caller decodes (and therefore validates) the stream anyway.
    """
    header = _parse_header(data)
    if header.header_crc is not None:
        actual = zlib.crc32(data[:HEADER_CRC_OFFSET])
        if actual != header.header_crc:
            raise ContainerError(
                "header CRC mismatch (corrupted header)",
                byte_offset=HEADER_CRC_OFFSET,
                expected=header.header_crc,
                actual=actual,
            )
    payload = header.payload
    actual_payload_crc = zlib.crc32(payload)
    if actual_payload_crc != header.payload_crc:
        raise ContainerError(
            "payload CRC mismatch (corrupted container)",
            byte_offset=PAYLOAD_CRC_OFFSET,
            expected=header.payload_crc,
            actual=actual_payload_crc,
        )
    config = header.config
    if header.payload_bits > len(payload) * 8:
        raise ContainerError(
            "declared payload length exceeds data",
            field="payload_bits",
            expected=header.payload_bits,
            actual=len(payload) * 8,
        )
    if header.payload_bits % config.code_bits:
        raise ContainerError(
            "payload is not a whole number of codes",
            field="payload_bits",
            expected=config.code_bits,
            actual=header.payload_bits,
        )
    codes = _read_codes(payload, header.payload_bits, config)
    try:
        compressed = CompressedStream(codes, config, header.original_bits)
    except ValueError as exc:
        raise ContainerError(str(exc)) from None
    if verify and header.stream_crc is not None:
        actual_digest = stream_digest(decode(compressed))
        if actual_digest != header.stream_crc:
            raise ContainerError(
                "decoded stream digest mismatch (tampered payload)",
                byte_offset=STREAM_CRC_OFFSET,
                expected=header.stream_crc,
                actual=actual_digest,
            )
    return compressed


def dump_file(
    compressed: CompressedStream,
    path: Union[str, Path],
    stream: Optional[TernaryVector] = None,
) -> None:
    """Write a container file (``stream`` as in :func:`dump_bytes`)."""
    Path(path).write_bytes(dump_bytes(compressed, stream))


def load_file(path: Union[str, Path], verify: bool = True) -> CompressedStream:
    """Read a container file."""
    return load_bytes(Path(path).read_bytes(), verify=verify)
