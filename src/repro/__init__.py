"""Reproduction of Knieser et al., "A Technique for High Ratio LZW
Compression" (DATE 2003): don't-care-aware LZW scan test compression,
its baselines, a hardware decompressor model and an ATPG substrate.

Quick use::

    from repro import LZWConfig, TernaryVector, compress

    cubes = TernaryVector("01XX10XXX1" * 100)
    result = compress(cubes, LZWConfig(char_bits=7, dict_size=1024))
    print(result.ratio_percent)
"""

from .bitstream import TernaryVector, X
from .core import (
    CompressedStream,
    CompressionResult,
    LZWConfig,
    compress,
    compress_batch,
    decompress,
)
from .observability import (
    CompositeRecorder,
    CounterRecorder,
    NullRecorder,
    Recorder,
    SpanRecorder,
)
from .parallel import BatchItemResult, ShardPlan, plan_shards
from .reliability import ReproError

__version__ = "1.0.0"

__all__ = [
    "BatchItemResult",
    "CompositeRecorder",
    "CompressedStream",
    "CompressionResult",
    "CounterRecorder",
    "LZWConfig",
    "NullRecorder",
    "Recorder",
    "ReproError",
    "ShardPlan",
    "SpanRecorder",
    "TernaryVector",
    "X",
    "compress",
    "compress_batch",
    "decompress",
    "plan_shards",
    "__version__",
]
