"""Parallel sharded batch compression (see DESIGN.md, "Batch engine").

Public surface:

* :class:`ShardPlan` / :func:`plan_shards` — explicit, pattern-aligned
  cut plans;
* :func:`compress_batch` — encode many workloads (optionally sharded)
  across a process pool, returning per-workload
  :class:`BatchItemResult`\\ s whose containers are bit-identical for
  any worker count.
"""

from .engine import BatchItemResult, ShardResult, compress_batch
from .shard import ShardPlan, plan_shards

__all__ = [
    "BatchItemResult",
    "ShardPlan",
    "ShardResult",
    "compress_batch",
    "plan_shards",
]
