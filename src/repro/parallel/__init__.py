"""Parallel sharded batch compression (see DESIGN.md, "Batch engine").

Public surface:

* :class:`ShardPlan` / :func:`plan_shards` — explicit, pattern-aligned
  cut plans;
* :func:`compress_batch` — encode many workloads (optionally sharded)
  across a supervised process pool, returning per-workload
  :class:`BatchItemResult`\\ s whose containers are bit-identical for
  any worker count and any crash/retry schedule;
* :class:`RetryPolicy` / :func:`run_supervised` — the fault-tolerant
  execution layer (retries, per-shard timeouts, pool respawn,
  degrade/skip policies);
* :class:`ShardJournal` / :func:`batch_fingerprint` — the
  shard-completion checkpoint behind ``repro batch --checkpoint/--resume``;
* :class:`SeedPlan` / :func:`train_preamble` — warm-dictionary seeding
  strategies (``cold`` / ``preamble`` / ``wave``) behind
  ``repro batch --seed-mode``.
"""

from .engine import BatchItemResult, ShardResult, compress_batch
from .journal import ShardJournal, batch_fingerprint
from .seeding import COLD_PLAN, SEED_MODES, SeedPlan, train_preamble
from .shard import ShardPlan, plan_shards
from .supervisor import ON_FAILURE_POLICIES, RetryPolicy, run_supervised

__all__ = [
    "BatchItemResult",
    "COLD_PLAN",
    "ON_FAILURE_POLICIES",
    "RetryPolicy",
    "SEED_MODES",
    "SeedPlan",
    "ShardJournal",
    "ShardPlan",
    "ShardResult",
    "batch_fingerprint",
    "compress_batch",
    "plan_shards",
    "run_supervised",
    "train_preamble",
]
