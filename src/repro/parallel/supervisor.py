"""Supervised execution of batch shard jobs.

:func:`run_supervised` is the fault-tolerant layer between
:func:`~repro.parallel.engine.compress_batch` and the worker pool.  The
engine's single ``pool.map`` call had one failure mode: any worker
crash, hang or exception aborted the whole batch.  The supervisor
instead drives per-shard futures and recovers from every *loud*
process-level failure:

* **retries** — a failed attempt is re-submitted under a
  :class:`RetryPolicy` (bounded attempts, deterministic exponential
  backoff with *seeded* jitter — no wall clock and no global ``random``
  in the decision path, so a given schedule of failures always produces
  the same retry schedule);
* **timeouts** — each attempt runs under a per-shard timeout enforced
  *inside* the worker with ``SIGALRM`` (precise, no pool teardown) plus
  a parent-side watchdog over the whole submission wave that catches
  alarm-proof hangs by terminating and respawning the pool;
* **crashes** — a dead worker (``BrokenProcessPool``: SIGKILL, OOM,
  segfault) poisons every in-flight future; the supervisor respawns the
  pool and charges one attempt to each in-flight shard (the culprit is
  not identifiable from the parent);
* **graceful degradation** — a shard that exhausts its pool attempts is
  handled per the ``on_failure`` policy: ``fail`` raises a typed
  :class:`~repro.reliability.errors.ShardError`, ``degrade`` re-runs the
  shard inline in the calling process (serial fallback; one last
  attempt, no pool between it and the result), ``skip`` records the
  :class:`ShardError` as the shard's outcome and carries on;
* **result validation** — an optional ``validate`` hook rejects results
  that came back structurally wrong (e.g. a corrupted-input encode whose
  output no longer covers the shard), turning *silent* corruption into a
  retriable failure.

Because the worker function is pure, a retried shard reproduces its
bytes exactly — the engine's determinism contract ("same inputs + same
plan ⇒ bit-identical containers") therefore extends to *any* crash,
timeout or retry schedule, which ``tests/reliability/test_chaos.py``
asserts under injected process faults.

Everything is observable through the :mod:`repro.observability`
vocabulary: ``batch.retries`` / ``batch.worker_crashes`` /
``batch.timeouts`` / ``batch.degraded_shards`` / ``batch.skipped_shards``
counters and a ``retry`` span around each backoff wait.
"""

from __future__ import annotations

import math
import random
import signal
import time
from concurrent.futures import ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..observability import NULL_RECORDER, Recorder
from ..observability import schema as ev
from ..reliability.errors import ConfigError, ShardError

__all__ = [
    "RetryPolicy",
    "ON_FAILURE_POLICIES",
    "run_supervised",
]

#: A shard job key: (workload index, shard index).
Key = Tuple[int, int]

#: Valid ``on_failure`` policies, in escalation order.
ON_FAILURE_POLICIES = ("fail", "degrade", "skip")

#: Parent-watchdog slack on top of the theoretical wave budget, seconds.
_WATCHDOG_GRACE = 2.0


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how fast failed shard attempts are retried.

    The backoff for attempt ``n`` (1-based; attempt 1 is the first
    *retry*) is ``min(backoff_max, backoff_base * backoff_factor**(n-1))``
    scaled by a jitter factor in ``[1, 1 + jitter]`` drawn from a
    :class:`random.Random` seeded with ``(seed, key, n)`` — fully
    deterministic, so two runs that fail the same way wait the same way.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                "max_attempts must be >= 1",
                field="max_attempts",
                value=self.max_attempts,
            )
        for name in ("backoff_base", "backoff_factor", "backoff_max", "jitter"):
            if getattr(self, name) < 0:
                raise ConfigError(
                    f"{name} must be non-negative",
                    field=name,
                    value=getattr(self, name),
                )

    def delay(self, key: Key, attempt: int) -> float:
        """Seconds to wait before retry ``attempt`` of shard ``key``."""
        raw = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** max(0, attempt - 1),
        )
        rng = random.Random(f"retry:{self.seed}:{key[0]}.{key[1]}:{attempt}")
        return raw * (1.0 + self.jitter * rng.random())


class _WorkerTimeout(Exception):
    """Raised inside a worker when its SIGALRM budget expires."""


def _call_with_timeout(fn: Callable[[Any], Any], args: Any, timeout: Optional[float]):
    """Run ``fn(args)``, bounded by a ``SIGALRM``-based timeout.

    Module-level so the pool can pickle it by reference.  Contexts
    without a usable alarm — Windows (no ``SIGALRM``), non-main threads
    (``signal.signal`` raises ``ValueError``), restricted environments
    where installing the handler or arming the timer fails — degrade
    cleanly to an unbounded call here; the parent-side wave watchdog is
    the backstop that still catches the hang.  Nothing in this function
    may raise at startup for a platform limitation: a worker that can't
    arm an alarm must still run its shard.
    """
    if not timeout or not hasattr(signal, "SIGALRM"):
        return fn(args)

    def _on_alarm(signum, frame):
        raise _WorkerTimeout(f"shard attempt exceeded {timeout}s")

    try:
        previous = signal.signal(signal.SIGALRM, _on_alarm)
    except (ValueError, OSError, RuntimeError):
        # Not the main thread, or signals are unavailable entirely.
        return fn(args)
    try:
        signal.setitimer(signal.ITIMER_REAL, timeout)
    except (ValueError, OSError, AttributeError):
        # Handler installed but the timer can't be armed: restore and
        # fall back to the watchdog rather than failing the shard.
        signal.signal(signal.SIGALRM, previous)
        return fn(args)
    try:
        return fn(args)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Hard-stop a pool whose workers may be hung: kill, then discard."""
    for process in list(getattr(pool, "_processes", {}).values()):
        try:
            process.terminate()
        except Exception:  # already dead / reaped
            pass
    pool.shutdown(wait=False, cancel_futures=True)


@dataclass
class _Attempt:
    """Outcome of one shard attempt, as classified by the supervisor."""

    key: Key
    result: Any = None
    ok: bool = False
    kind: str = "error"  # error | timeout | crash | invalid
    cause: Optional[BaseException] = None


class _Supervisor:
    """One supervised run over a fixed set of shard jobs."""

    def __init__(
        self,
        worker: Callable[[Any], Any],
        make_args: Callable[[Key, int], Any],
        keys: Sequence[Key],
        workers: int,
        retry_policy: RetryPolicy,
        shard_timeout: Optional[float],
        on_failure: str,
        validate: Optional[Callable[[Key, Any], Optional[str]]],
        recorder: Recorder,
        sleep: Callable[[float], None],
        on_result: Optional[Callable[[Key, Any], None]],
    ) -> None:
        self.worker = worker
        self.make_args = make_args
        self.keys = list(keys)
        self.workers = workers
        self.policy = retry_policy
        self.timeout = shard_timeout
        self.on_failure = on_failure
        self.validate = validate
        self.rec = recorder
        self.sleep = sleep
        self.on_result = on_result
        self.attempts: Dict[Key, int] = {key: 0 for key in self.keys}
        self.results: Dict[Key, Any] = {}
        self.pool: Optional[ProcessPoolExecutor] = None

    # -- attempt classification ----------------------------------------

    def _classify(self, key: Key, result: Any, exc: Optional[BaseException]) -> _Attempt:
        if exc is None:
            message = self.validate(key, result) if self.validate else None
            if message is None:
                return _Attempt(key, result=result, ok=True)
            return _Attempt(key, kind="invalid", cause=ShardError(message))
        if isinstance(exc, _WorkerTimeout):
            if self.rec.enabled:
                self.rec.incr(ev.BATCH_TIMEOUTS)
            return _Attempt(key, kind="timeout", cause=exc)
        if isinstance(exc, BrokenProcessPool):
            return _Attempt(key, kind="crash", cause=exc)
        return _Attempt(key, kind="error", cause=exc)

    def _shard_error(self, attempt: _Attempt) -> ShardError:
        return ShardError(
            f"shard ({attempt.key[0]}, {attempt.key[1]}) failed after "
            f"{self.attempts[attempt.key]} attempt(s): {attempt.kind}",
            workload=attempt.key[0],
            shard=attempt.key[1],
            attempts=self.attempts[attempt.key],
            kind=attempt.kind,
            cause=repr(attempt.cause),
        )

    # -- wave execution ------------------------------------------------

    def _run_wave_inline(self, wave: List[Key]) -> List[_Attempt]:
        outcomes = []
        for key in wave:
            args = self.make_args(key, self.attempts[key])
            try:
                result = _call_with_timeout(self.worker, args, self.timeout)
            except Exception as exc:  # noqa: BLE001 - classified below
                outcomes.append(self._classify(key, None, exc))
            else:
                outcomes.append(self._classify(key, result, None))
        return outcomes

    def _run_wave_pooled(self, wave: List[Key]) -> List[_Attempt]:
        pool_size = min(self.workers, len(wave))
        if self.pool is None:
            # spawn matches the engine's pinned start method (see
            # engine docstring) and survives respawn after a crash.
            self.pool = ProcessPoolExecutor(
                max_workers=pool_size, mp_context=get_context("spawn")
            )
        futures = {
            self.pool.submit(
                _call_with_timeout,
                self.worker,
                self.make_args(key, self.attempts[key]),
                self.timeout,
            ): key
            for key in wave
        }
        budget = None
        if self.timeout:
            # Worst-case wall clock for the wave if every queued shard
            # burns its full in-worker budget, plus grace; beyond that
            # the hang is alarm-proof and the pool must die.
            budget = (
                self.timeout * math.ceil(len(wave) / pool_size) + _WATCHDOG_GRACE
            )
        done, not_done = wait(set(futures), timeout=budget)
        outcomes = []
        pool_broken = False
        for future in done:
            key = futures[future]
            exc = future.exception()
            if isinstance(exc, BrokenProcessPool):
                pool_broken = True
            outcomes.append(
                self._classify(key, None if exc else future.result(), exc)
            )
        if not_done:
            _terminate_pool(self.pool)
            self.pool = None
            for future in not_done:
                if self.rec.enabled:
                    self.rec.incr(ev.BATCH_TIMEOUTS)
                outcomes.append(
                    _Attempt(
                        futures[future],
                        kind="timeout",
                        cause=_WorkerTimeout(
                            f"wave watchdog expired after {budget}s"
                        ),
                    )
                )
        elif pool_broken:
            _terminate_pool(self.pool)
            self.pool = None
            if self.rec.enabled:
                self.rec.incr(ev.BATCH_WORKER_CRASHES)
        return outcomes

    # -- failure policies ----------------------------------------------

    def _handle_exhausted(self, attempt: _Attempt) -> None:
        key = attempt.key
        if self.on_failure == "degrade":
            # Serial fallback: one last inline attempt with nothing but
            # this process between the shard and its result.  No timeout
            # here — an alarm in the caller's thread is not ours to own.
            self.attempts[key] += 1
            try:
                result = self.worker(self.make_args(key, self.attempts[key] - 1))
            except Exception as exc:  # noqa: BLE001 - re-raised typed below
                raise self._shard_error(
                    _Attempt(key, kind=attempt.kind, cause=exc)
                ) from exc
            message = self.validate(key, result) if self.validate else None
            if message is not None:
                raise self._shard_error(
                    _Attempt(key, kind="invalid", cause=ShardError(message))
                )
            if self.rec.enabled:
                self.rec.incr(ev.BATCH_DEGRADED_SHARDS)
            self._accept(key, result)
            return
        error = self._shard_error(attempt)
        if self.on_failure == "skip":
            if self.rec.enabled:
                self.rec.incr(ev.BATCH_SKIPPED_SHARDS)
            self.results[key] = error
            return
        if self.pool is not None:
            _terminate_pool(self.pool)
            self.pool = None
        raise error

    def _accept(self, key: Key, result: Any) -> None:
        """Store a good result and notify the caller immediately.

        ``on_result`` fires per completed shard — not at the end of the
        run — so a checkpoint journal stays crash-consistent even when a
        later shard aborts the whole batch under ``on_failure="fail"``.
        """
        self.results[key] = result
        if self.on_result is not None:
            self.on_result(key, result)

    # -- main loop -----------------------------------------------------

    def run(self) -> Dict[Key, Any]:
        outstanding = list(self.keys)
        pooled = self.workers > 1 and len(self.keys) > 1
        try:
            while outstanding:
                wave = outstanding
                outstanding = []
                if pooled:
                    outcomes = self._run_wave_pooled(wave)
                else:
                    outcomes = self._run_wave_inline(wave)
                delays = []
                for attempt in outcomes:
                    key = attempt.key
                    self.attempts[key] += 1
                    if attempt.ok:
                        self._accept(key, attempt.result)
                    elif self.attempts[key] < self.policy.max_attempts:
                        if self.rec.enabled:
                            self.rec.incr(ev.BATCH_RETRIES)
                        delays.append(self.policy.delay(key, self.attempts[key]))
                        outstanding.append(key)
                    else:
                        self._handle_exhausted(attempt)
                if delays and outstanding:
                    with self.rec.span("retry"):
                        self.sleep(max(delays))
        finally:
            if self.pool is not None:
                self.pool.shutdown(wait=True)
                self.pool = None
        return self.results


def run_supervised(
    worker: Callable[[Any], Any],
    keys: Sequence[Key],
    make_args: Callable[[Key, int], Any],
    workers: int = 1,
    retry_policy: Optional[RetryPolicy] = None,
    shard_timeout: Optional[float] = None,
    on_failure: str = "fail",
    validate: Optional[Callable[[Key, Any], Optional[str]]] = None,
    recorder: Optional[Recorder] = None,
    sleep: Callable[[float], None] = time.sleep,
    on_result: Optional[Callable[[Key, Any], None]] = None,
) -> Dict[Key, Any]:
    """Run one job per key through the supervised pool.

    Parameters
    ----------
    worker:
        Module-level picklable function of one argument (runs in worker
        processes when ``workers > 1``).
    keys:
        Job identities, ``(workload, shard)`` pairs.
    make_args:
        ``(key, attempt) -> args`` builder, called in the parent for
        every attempt so retries can carry the attempt number (the chaos
        injectors key off it).
    workers:
        Pool size; ``<= 1`` (or a single job) runs inline with the same
        retry/timeout/degradation semantics, minus crash recovery.
    retry_policy / shard_timeout / on_failure / validate:
        See the module docstring.  ``shard_timeout`` is seconds per
        attempt; ``validate(key, result)`` returns an error message to
        reject a structurally wrong result, or ``None`` to accept.
    recorder:
        Observability sink for the ``batch.*`` supervision counters and
        ``retry`` spans.
    sleep:
        Injectable clock for tests; only ever called with the
        deterministic backoff delays.
    on_result:
        ``(key, result)`` callback fired the moment a shard's result is
        accepted (validated), in addition to appearing in the returned
        dict.  Lets a checkpoint journal record progress even when a
        later shard aborts the run.  Never called for skipped shards.

    Returns a dict mapping every key to its result — or to a
    :class:`ShardError` under ``on_failure="skip"``.
    """
    if on_failure not in ON_FAILURE_POLICIES:
        raise ConfigError(
            f"on_failure must be one of {', '.join(ON_FAILURE_POLICIES)}",
            field="on_failure",
            value=on_failure,
        )
    if shard_timeout is not None and shard_timeout <= 0:
        raise ConfigError(
            "shard_timeout must be positive",
            field="shard_timeout",
            value=shard_timeout,
        )
    supervisor = _Supervisor(
        worker=worker,
        make_args=make_args,
        keys=keys,
        workers=workers,
        retry_policy=retry_policy or RetryPolicy(),
        shard_timeout=shard_timeout,
        on_failure=on_failure,
        validate=validate,
        recorder=recorder if recorder is not None else NULL_RECORDER,
        sleep=sleep,
        on_result=on_result,
    )
    return supervisor.run()
