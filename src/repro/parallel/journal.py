"""Shard-completion journal: checkpoint/resume for long batch runs.

A multi-workload batch that dies (machine reboot, OOM, operator
Ctrl-C) used to restart from zero.  The journal is an append-only JSONL
file the engine writes one entry to per completed shard, keyed by
``(workload, shard)``; a resumed run replays valid entries instead of
re-encoding.

Safety properties:

* **binding** — the file opens with a header carrying a fingerprint of
  the batch identity (streams, configs, shard plans).  Resuming against
  a journal written for *different* inputs is a typed
  :class:`~repro.reliability.errors.ConfigError`, never a silent mix;
* **integrity** — each entry stores the shard's serialised v2 container
  plus its CRC32; entries whose CRC does not match (torn write, disk
  corruption) are discarded on load and the shard is re-encoded — the
  journal is a cache, recomputation is always the authority;
* **determinism** — a replayed shard is bit-identical to a re-encoded
  one (the container bytes *are* the encoding), so a killed-then-resumed
  batch reproduces the exact bytes of an uninterrupted run;
* **crash-consistency** — entries are one line each, flushed as
  written; a run killed mid-write loses at most the torn last line.

Worker metrics snapshots ride along in each entry so a resumed
instrumented run still merges the same per-shard counters.
"""

from __future__ import annotations

import base64
import binascii
import errno
import hashlib
import json
import zlib
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

from ..bitstream import TernaryVector
from ..container import dump_bytes, load_bytes
from ..core.config import LZWConfig
from ..core.decoder import decode
from ..core.dictionary import DictionarySnapshot
from ..core.encoder import CompressedStream, EncodeStats
from ..reliability.atomic import current_backend
from ..reliability.errors import (
    ConfigError,
    ContainerError,
    DecodeError,
    SnapshotError,
)
from .seeding import COLD_PLAN, SeedPlan
from .shard import ShardPlan

__all__ = ["ShardJournal", "batch_fingerprint"]

_JOURNAL_VERSION = 2


#: A journal key: (workload index, shard index).
Key = Tuple[int, int]


def batch_fingerprint(
    configs: Sequence[LZWConfig],
    streams: Sequence[TernaryVector],
    plans: Sequence[ShardPlan],
    seed_plan: Optional[SeedPlan] = None,
) -> str:
    """Hex digest of a batch's identity: inputs, configs, plans, seeding.

    Any change to a stream's bits, a config parameter affecting the
    emitted bytes, a shard cut or the **seed plan** changes the
    fingerprint, so a journal can never be replayed against a batch it
    was not written for.  The seed-plan identity is folded in
    unconditionally: journals from before seeding existed (whose
    fingerprints omit it) are invalidated rather than silently mixing
    cold shards into a warm batch.  ``engine`` is deliberately *not*
    part of the identity — both engines emit identical bytes, so a
    fast-engine journal may resume a reference-engine batch.
    """
    seed_plan = seed_plan if seed_plan is not None else COLD_PLAN
    digest = hashlib.sha256()
    digest.update(f"seed={seed_plan.identity}".encode())
    for config, stream, plan in zip(configs, streams, plans):
        digest.update(
            f"|{config.char_bits}:{config.dict_size}:{config.entry_bits}"
            f":{config.policy}:{config.lookahead}:{config.lookahead_budget}"
            f":{int(config.reset_on_full)}|"
            f"{plan.total_bits}:{','.join(map(str, plan.cuts))}|"
            f"{len(stream)}".encode()
        )
        nbytes = (len(stream) + 7) // 8
        digest.update(stream.value_mask.to_bytes(nbytes, "little"))
        digest.update(stream.care_mask.to_bytes(nbytes, "little"))
    return digest.hexdigest()


class ShardJournal:
    """Append-only shard-completion log bound to one batch identity.

    Use :meth:`open`; entries live in :attr:`completed` as the engine's
    ``ShardResult`` objects (imported lazily to avoid an import cycle
    with the engine).
    """

    def __init__(self, path: Path, fingerprint: str) -> None:
        self.path = path
        self.fingerprint = fingerprint
        self.completed: Dict[Key, "object"] = {}
        self._handle = None
        self._fs = None

    @classmethod
    def open(
        cls,
        path: Union[str, Path],
        fingerprint: str,
        resume: bool = False,
    ) -> "ShardJournal":
        """Open (and with ``resume`` replay) a journal file.

        Without ``resume`` any existing file is truncated and a fresh
        header written.  With ``resume``, a file whose header
        fingerprint disagrees with this batch raises
        :class:`ConfigError`; a missing file starts fresh.
        """
        journal = cls(Path(path), fingerprint)
        if resume and journal.path.exists():
            journal._load()
        # Binary handles through the FSBackend seam so the crash-point
        # harness can interpose a simulated disk under journal appends.
        journal._fs = current_backend()
        journal._handle = journal._fs.open(
            journal.path, "ab" if journal.completed else "wb"
        )
        if not journal.completed:
            journal._write_line(
                {
                    "kind": "header",
                    "version": _JOURNAL_VERSION,
                    "fingerprint": fingerprint,
                }
            )
        return journal

    # -- persistence ---------------------------------------------------

    def _write_line(self, record: dict) -> None:
        line = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        # fsync per entry: a completed shard recorded here must survive
        # the very crash the journal exists for.  ENOSPC/EACCES surface
        # as typed ContainerErrors like every other artefact write.
        try:
            self._handle.write(line)
            self._handle.flush()
            self._fs.fsync(self._handle)
        except OSError as exc:
            if exc.errno in (errno.ENOSPC, errno.EDQUOT, errno.EACCES, errno.EROFS):
                raise ContainerError(
                    f"cannot write checkpoint journal {self.path}: {exc.strerror}",
                    path=str(self.path),
                    errno=errno.errorcode.get(exc.errno, exc.errno),
                ) from exc
            raise

    def _load(self) -> None:
        lines = self.path.read_text(encoding="utf-8").splitlines()
        if not lines:
            return
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            raise ConfigError(
                "checkpoint journal header is unreadable", field="checkpoint"
            ) from None
        if header.get("kind") != "header" or header.get("version") != _JOURNAL_VERSION:
            raise ConfigError(
                "not a shard-journal file (bad header)",
                field="checkpoint",
                value=str(self.path),
            )
        if header.get("fingerprint") != self.fingerprint:
            raise ConfigError(
                "checkpoint journal was written for a different batch "
                "(streams, configs or shard plans changed)",
                field="checkpoint",
                expected=self.fingerprint,
                actual=header.get("fingerprint"),
            )
        for line in lines[1:]:
            entry = self._parse_entry(line)
            if entry is None:
                continue  # torn or corrupted entry: recompute that shard
            key, result = entry
            self.completed[key] = result

    def _parse_entry(self, line: str):
        from .engine import ShardResult  # deferred: engine imports us

        try:
            record = json.loads(line)
            if record.get("kind") != "shard":
                return None
            container = base64.b64decode(record["container"], validate=True)
            if zlib.crc32(container) != record["crc"]:
                return None
            seed: Optional[DictionarySnapshot] = None
            if record.get("seed"):
                seed = DictionarySnapshot.from_bytes(
                    base64.b64decode(record["seed"], validate=True)
                )
            link = record.get("link")
            cold = seed is None and link is None
            # A seeded shard's stored v2 digest covers its *seeded*
            # decode; load raw and decode under the recorded seed, so a
            # corrupt seed/link simply discards the entry and the shard
            # is re-encoded.
            loaded = load_bytes(container, verify=cold)
            compressed = CompressedStream(
                loaded.codes,
                loaded.config,
                loaded.original_bits,
                tuple(record.get("expansion_chars", ())),
            )
            key = (int(record["workload"]), int(record["shard"]))
            final_state = None
            if record.get("final_state"):
                final_state = base64.b64decode(record["final_state"], validate=True)
            result = ShardResult(
                index=key[1],
                compressed=compressed,
                assigned_stream=decode(compressed, seed=seed, link=link),
                stats=EncodeStats(**record["stats"]),
                metrics=record.get("metrics"),
                seed_mode=int(record.get("seed_mode", 0)),
                seed=seed,
                link=link,
                final_state=final_state,
            )
        except (
            KeyError,
            ValueError,
            TypeError,
            binascii.Error,
            ContainerError,
            DecodeError,
            SnapshotError,
        ):
            return None
        return key, result

    def record(self, workload: int, shard: int, result) -> None:
        """Append one completed shard (flushed immediately)."""
        container = dump_bytes(result.compressed, result.assigned_stream)
        entry = {
            "kind": "shard",
            "workload": workload,
            "shard": shard,
            "crc": zlib.crc32(container),
            "container": base64.b64encode(container).decode("ascii"),
            "expansion_chars": list(result.compressed.expansion_chars),
            "stats": asdict(result.stats),
            "metrics": result.metrics,
        }
        if result.seed_mode:
            entry["seed_mode"] = result.seed_mode
            entry["link"] = result.link
            if result.seed is not None:
                entry["seed"] = base64.b64encode(result.seed.to_bytes()).decode("ascii")
        if result.final_state is not None:
            entry["final_state"] = base64.b64encode(result.final_state).decode("ascii")
        self._write_line(entry)
        self.completed[(workload, shard)] = result

    def close(self) -> None:
        """Close the underlying file handle."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ShardJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
