"""Warm-dictionary seed planning for sharded batches.

Cold-started shards pay the LZW learning curve once *per shard*: every
segment spends its opening codes re-deriving phrases the previous
segment already knew, which is where the batch engine's ratio loss
against serial encoding comes from.  A :class:`SeedPlan` names one of
three strategies for warming the per-shard dictionaries:

``cold``
    The status quo: every shard starts an empty dictionary.  Shards are
    fully independent (maximum parallelism), containers stay in the
    v2/v3 formats bit-for-bit.

``preamble``
    The parent trains a dictionary serially on a stream prefix (by
    default the first shard's extent) and seeds **every** shard of the
    workload from that snapshot.  Shards remain independent — they can
    encode *and decode* in parallel — at the cost of one serial
    training pass and of the snapshot stored once in the container's
    blob table.

``wave``
    Pipelined chaining: shard ``i`` seeds from shard ``i-1``'s final
    dictionary state with the cross-shard link code, reproducing the
    serial encoder's dictionary evolution up to the forced phrase
    breaks at the cut points.  Best ratio (near-serial); parallelism
    comes from running the same-numbered shard of *different* workloads
    concurrently.  Nothing is stored: the decoder re-derives each
    chained seed from the previous segment's codes.

The plan is part of the batch's identity: it is folded into the
checkpoint-journal fingerprint (a cold journal can never resume a warm
batch) and into service/fleet workload fingerprints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..bitstream import TernaryVector
from ..core.config import LZWConfig
from ..core.dictionary import DictionarySnapshot
from ..core.encoder import LZWEncoder
from ..observability import Recorder
from ..reliability.errors import ConfigError
from .shard import ShardPlan

__all__ = ["COLD_PLAN", "SEED_MODES", "SeedPlan", "train_preamble"]

#: Valid seeding strategies, in increasing order of dictionary warmth.
SEED_MODES = ("cold", "preamble", "wave")


@dataclass(frozen=True)
class SeedPlan:
    """How the shards of a batch seed their dictionaries.

    ``preamble_bits`` is the training-prefix length for ``preamble``
    mode; ``0`` means *auto* — each workload trains on its first
    shard's extent, so the training pass costs exactly one shard of
    serial encoding.
    """

    mode: str = "cold"
    preamble_bits: int = 0

    def __post_init__(self) -> None:
        if self.mode not in SEED_MODES:
            raise ConfigError(
                f"seed mode must be one of {', '.join(SEED_MODES)}",
                field="seed_mode",
                value=self.mode,
            )
        if self.preamble_bits < 0:
            raise ConfigError(
                "preamble_bits must be >= 0",
                field="preamble_bits",
                value=self.preamble_bits,
            )
        if self.preamble_bits and self.mode != "preamble":
            raise ConfigError(
                f"preamble_bits is only meaningful in preamble mode, not {self.mode}",
                field="preamble_bits",
                value=self.preamble_bits,
            )

    @property
    def is_cold(self) -> bool:
        return self.mode == "cold"

    @property
    def identity(self) -> str:
        """Canonical string folded into batch/workload fingerprints."""
        if self.mode == "preamble":
            return f"preamble:{self.preamble_bits}"
        return self.mode

    def resolve_preamble_bits(self, plan: ShardPlan) -> int:
        """The training-prefix length for one workload's shard plan."""
        if self.mode != "preamble":
            return 0
        if self.preamble_bits:
            return min(self.preamble_bits, plan.total_bits)
        return plan.cuts[0] if plan.cuts else 0


#: The default plan: every shard cold, exactly the pre-seeding engine.
COLD_PLAN = SeedPlan()


def train_preamble(
    stream: TernaryVector,
    config: LZWConfig,
    preamble_bits: int,
    recorder: Optional[Recorder] = None,
) -> Optional[DictionarySnapshot]:
    """Serially encode a stream prefix and snapshot the trained trie.

    Returns ``None`` when there is nothing to train on (zero prefix or
    a dictionary that allocated no entries) — callers fall back to cold
    seeding rather than shipping an empty blob.
    """
    bits = min(preamble_bits, len(stream))
    if bits <= 0:
        return None
    encoder = LZWEncoder(config, recorder=recorder)
    encoder.encode(stream[:bits])
    snapshot = encoder.dictionary.snapshot()
    return snapshot if len(snapshot) else None
