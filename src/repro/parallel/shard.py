"""Shard planning: where to cut a scan stream for independent coding.

A :class:`ShardPlan` is a value object — the ordered interior cut
offsets of one logical stream.  It is part of the compressed artefact's
identity: the batch engine guarantees *same inputs + same plan ⇒
bit-identical container*, so plans are explicit, hashable and
serialisable rather than implied by worker count.

:func:`plan_shards` builds the standard plan: shards of roughly
``shard_bits`` bits, with every cut aligned to a *pattern boundary*
(a multiple of the test set's vector width) so no test vector is ever
split across two dictionaries — the property that keeps per-shard
compression close to serial compression on ATPG workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..bitstream import TernaryVector

__all__ = ["ShardPlan", "plan_shards"]


@dataclass(frozen=True)
class ShardPlan:
    """Interior cut offsets (in bits) of a ``total_bits``-bit stream.

    ``cuts`` must be strictly increasing and lie strictly inside
    ``(0, total_bits)``; an empty tuple means a single shard covering
    the whole stream.
    """

    total_bits: int
    cuts: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.total_bits < 0:
            raise ValueError("total_bits must be non-negative")
        previous = 0
        for cut in self.cuts:
            if not previous < cut < self.total_bits:
                raise ValueError(
                    f"cuts must be strictly increasing within (0, {self.total_bits}); "
                    f"got {self.cuts}"
                )
            previous = cut

    @property
    def num_shards(self) -> int:
        """Number of shards the plan produces."""
        return len(self.cuts) + 1

    @property
    def bounds(self) -> Tuple[Tuple[int, int], ...]:
        """``(start, stop)`` bit range of every shard, in order."""
        edges = (0,) + self.cuts + (self.total_bits,)
        return tuple(zip(edges, edges[1:]))

    def split(self, stream: TernaryVector) -> List[TernaryVector]:
        """Cut ``stream`` into the planned shards."""
        if len(stream) != self.total_bits:
            raise ValueError(
                f"plan covers {self.total_bits} bits but stream has {len(stream)}"
            )
        return [stream[start:stop] for start, stop in self.bounds]


def plan_shards(
    total_bits: int,
    shard_bits: int = 0,
    pattern_bits: int = 0,
) -> ShardPlan:
    """Plan shards of roughly ``shard_bits`` bits over a stream.

    ``shard_bits <= 0`` (or larger than the stream) yields the trivial
    single-shard plan.  With ``pattern_bits`` set, every cut is rounded
    *up* to the next multiple of it so no pattern straddles a shard
    boundary; a ``shard_bits`` smaller than one pattern degenerates to
    one pattern per shard.
    """
    if shard_bits <= 0 or shard_bits >= total_bits:
        return ShardPlan(total_bits)
    if pattern_bits < 0:
        raise ValueError("pattern_bits must be non-negative")
    cuts: List[int] = []
    position = 0
    while True:
        position += shard_bits
        if pattern_bits:
            remainder = position % pattern_bits
            if remainder:
                position += pattern_bits - remainder
        if position >= total_bits:
            break
        cuts.append(position)
    return ShardPlan(total_bits, tuple(cuts))
