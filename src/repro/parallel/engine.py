"""Parallel sharded batch-compression engine.

The unit of work is one *shard* — a pattern-aligned slice of one
workload's scan stream — encoded with its own fresh LZW dictionary.
All shards of all workloads in a batch are flattened into one job list
and driven through the fault-tolerant supervisor
(:mod:`repro.parallel.supervisor`) over a
:class:`~concurrent.futures.ProcessPoolExecutor`; results are
reassembled strictly by ``(workload, shard)`` index, so the output is a
pure function of the inputs and the shard plans.  Worker count,
completion order — and, because ``_encode_shard`` is pure, any
crash/retry/timeout schedule — can never leak into the container bytes:
the determinism contract ``tests/parallel`` and
``tests/reliability/test_chaos.py`` lock down.

The pool is pinned to the ``spawn`` multiprocessing start method on
every platform.  ``fork`` (the historical Linux default) duplicates the
parent's arbitrary state into workers, so fork-started and
spawn-started pools can diverge in behaviour (inherited globals, open
handles, signal dispositions) between Linux and macOS; ``spawn`` starts
every worker from a clean interpreter, makes the picklability of jobs
an enforced invariant, and is also what lets the supervisor respawn a
crashed pool identically.

With ``workers <= 1`` the engine runs inline in the calling process
(no pool, no pickling) with the same retry/timeout/degradation
semantics; the inline path is also the deterministic reference the
parallel paths are compared against.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..bitstream import TernaryVector
from ..container import dump_segments
from ..core.config import LZWConfig
from ..core.decoder import decode
from ..core.encoder import CompressedStream, EncodeStats, LZWEncoder
from ..observability import (
    NULL_RECORDER,
    CompositeRecorder,
    CounterRecorder,
    Recorder,
    SpanRecorder,
)
from ..observability import schema as ev
from ..reliability.chaos import ChaosPlan
from ..reliability.errors import ConfigError, ShardError
from .journal import ShardJournal, batch_fingerprint
from .shard import ShardPlan, plan_shards
from .supervisor import ON_FAILURE_POLICIES, RetryPolicy, run_supervised

__all__ = ["ShardResult", "BatchItemResult", "compress_batch"]

#: One shard job: (workload index, shard index, shard stream, config,
#: whether the worker should record a metrics snapshot, the chaos plan
#: (None outside fault drills), and the 0-based attempt number).
_Job = Tuple[int, int, TernaryVector, LZWConfig, bool, Optional[ChaosPlan], int]


@dataclass(frozen=True)
class ShardResult:
    """One encoded shard: codes, the implied X assignment and stats.

    ``metrics`` is the worker-local recorder snapshot (counters,
    histograms and encode/assign spans) when the batch ran with a
    recorder attached, else ``None``.  Snapshots travel with the result
    precisely because worker processes cannot share the caller's
    recorder object.
    """

    index: int
    compressed: CompressedStream
    assigned_stream: TernaryVector
    stats: EncodeStats
    metrics: Optional[dict] = None


@dataclass(frozen=True)
class BatchItemResult:
    """Everything produced for one workload of a batch.

    ``container`` is the serialised artefact: a v2 container for a
    single shard, the multi-segment v3 framing otherwise (see
    :mod:`repro.container`).  Under ``on_failure="skip"`` a workload
    with failed shards carries the typed
    :class:`~repro.reliability.errors.ShardError`\\ s in ``errors`` and
    ``container is None`` — there is no such thing as a partially
    trustworthy container.
    """

    plan: ShardPlan
    shards: Tuple[ShardResult, ...]
    container: Optional[bytes]
    errors: Tuple[ShardError, ...] = ()

    @property
    def ok(self) -> bool:
        """True when every planned shard encoded successfully."""
        return not self.errors

    @property
    def num_shards(self) -> int:
        """Number of independently coded segments."""
        return len(self.shards)

    @property
    def original_bits(self) -> int:
        """Uncompressed size of the whole workload in bits."""
        return sum(s.compressed.original_bits for s in self.shards)

    @property
    def compressed_bits(self) -> int:
        """Compressed size over all segments in bits."""
        return sum(s.compressed.compressed_bits for s in self.shards)

    @property
    def num_codes(self) -> int:
        """Total emitted codes over all segments."""
        return sum(s.compressed.num_codes for s in self.shards)

    @property
    def ratio(self) -> float:
        """Compression ratio ``1 - compressed/original`` (may be negative)."""
        if self.original_bits == 0:
            return 0.0
        return 1.0 - self.compressed_bits / self.original_bits

    @property
    def ratio_percent(self) -> float:
        """Ratio as the percentage the paper's tables report."""
        return 100.0 * self.ratio

    @property
    def assigned_stream(self) -> TernaryVector:
        """The fully specified stream the decompressor reproduces."""
        return TernaryVector.concat_all([s.assigned_stream for s in self.shards])

    def verify(self, original: TernaryVector) -> bool:
        """True iff the decoded stream covers every specified bit."""
        return self.ok and self.assigned_stream.covers(original)


def _encode_shard(job: _Job) -> ShardResult:
    """Pool worker: encode one shard with a fresh dictionary.

    Module-level (picklable by reference) and pure — the only state is
    the job tuple, so spawn and inline execution (and any retry of the
    same job) agree exactly.  The chaos plan, when present, is the
    injectable pre-encode hook the fault drills use: it may raise, kill
    or hang the worker, or corrupt the input stream before encoding.
    When recording, the shard gets its own counter+span sinks and ships
    the snapshot back with the result for deterministic merging.
    """
    item_index, shard_index, stream, config, record, chaos, attempt = job
    if chaos is not None:
        stream = chaos.apply(item_index, shard_index, attempt, stream)
    rec: Recorder = NULL_RECORDER
    if record:
        rec = CompositeRecorder([CounterRecorder(), SpanRecorder()])
    encoder = LZWEncoder(config, recorder=rec)
    with rec.span("encode"):
        compressed = encoder.encode(stream)
    with rec.span("assign"):
        assigned = decode(compressed, recorder=rec)
    return ShardResult(
        index=shard_index,
        compressed=compressed,
        assigned_stream=assigned,
        stats=encoder.stats(),
        metrics=rec.snapshot() if record else None,
    )


def _broadcast(value, count: int, name: str) -> List:
    """Expand a scalar to ``count`` copies; validate sequence lengths."""
    if value is None or not isinstance(value, (list, tuple)):
        return [value] * count
    if len(value) != count:
        raise ConfigError(
            f"{name} has {len(value)} entries for {count} streams",
            field=name,
            expected=count,
            actual=len(value),
        )
    return list(value)


def compress_batch(
    configs: Union[LZWConfig, Sequence[Optional[LZWConfig]], None],
    streams: Sequence[TernaryVector],
    workers: Optional[int] = None,
    shard_bits: int = 0,
    pattern_bits: Union[int, Sequence[int]] = 0,
    plans: Optional[Sequence[ShardPlan]] = None,
    recorder: Optional[Recorder] = None,
    retry_policy: Optional[RetryPolicy] = None,
    shard_timeout: Optional[float] = None,
    on_failure: str = "fail",
    checkpoint: Optional[Union[str, "os.PathLike"]] = None,
    resume: bool = False,
    chaos: Optional[ChaosPlan] = None,
) -> List[BatchItemResult]:
    """Compress a batch of scan streams across a supervised worker pool.

    Parameters
    ----------
    configs:
        One :class:`LZWConfig` shared by every stream, a per-stream
        sequence, or ``None`` for the defaults.
    streams:
        The ternary scan streams, one per workload.  An empty sequence
        returns an empty result list; a zero-length stream yields one
        (empty-segment) container.
    workers:
        Pool size; ``None`` means ``os.cpu_count()`` and ``<= 1`` runs
        inline.  **Never affects the output bytes.**
    shard_bits:
        Target shard size in bits; ``0`` disables intra-stream sharding
        (each workload is one segment).
    pattern_bits:
        Pattern (vector) width per stream — cuts are aligned up to its
        multiples so no vector straddles shards.  Scalar or per-stream.
    plans:
        Explicit per-stream :class:`ShardPlan`\\ s, overriding
        ``shard_bits``/``pattern_bits`` planning.
    recorder:
        Optional :mod:`repro.observability` sink.  The parent records
        ``plan``/``encode``/``reassemble`` spans, the ``batch.*``
        planning and supervision counters, and ``retry`` spans; each
        worker records its own shard snapshot which is merged back in
        ``(workload, shard)`` order under a ``shard[i.j]`` label — so
        merged counters are identical for every ``workers`` value, and
        only span timings vary.
    retry_policy:
        :class:`~repro.parallel.supervisor.RetryPolicy` for failed shard
        attempts (default: 3 attempts, deterministic seeded backoff).
    shard_timeout:
        Seconds one shard attempt may run before it is declared hung
        (``None`` disables timeouts).
    on_failure:
        What to do with a shard that exhausts its retries: ``"fail"``
        raises :class:`~repro.reliability.errors.ShardError`,
        ``"degrade"`` re-runs it inline (serial fallback), ``"skip"``
        records the error in the workload's
        :attr:`BatchItemResult.errors` and continues.
    checkpoint:
        Path of a shard-completion journal.  Completed shards are
        appended as they finish; with ``resume=True`` an existing
        journal for the *same* batch (validated by fingerprint and
        per-entry CRC) is replayed so a killed run restarts from its
        completed shards — with bytes identical to an uninterrupted run.
    chaos:
        A :class:`~repro.reliability.chaos.ChaosPlan` for fault drills;
        ``None`` (always, outside the chaos harness) runs clean.

    Returns one :class:`BatchItemResult` per input stream, in input
    order.
    """
    # Validate the supervision knobs up front (not lazily in
    # run_supervised) so an empty batch with a bogus policy still fails
    # with the typed error instead of silently succeeding.
    if on_failure not in ON_FAILURE_POLICIES:
        raise ConfigError(
            f"on_failure must be one of {', '.join(ON_FAILURE_POLICIES)}",
            field="on_failure",
            value=on_failure,
        )
    if shard_timeout is not None and shard_timeout <= 0:
        raise ConfigError(
            "shard_timeout must be positive",
            field="shard_timeout",
            value=shard_timeout,
        )
    if resume and checkpoint is None:
        raise ConfigError(
            "resume=True needs a checkpoint path", field="resume"
        )
    rec = recorder if recorder is not None else NULL_RECORDER
    recording = rec.enabled
    streams = list(streams)
    with rec.span("plan"):
        config_list = [
            cfg or LZWConfig() for cfg in _broadcast(configs, len(streams), "configs")
        ]
        pattern_list = _broadcast(pattern_bits, len(streams), "pattern_bits")
        if plans is None:
            plan_list = [
                plan_shards(len(stream), shard_bits, pattern or 0)
                for stream, pattern in zip(streams, pattern_list)
            ]
        else:
            plan_list = list(plans)
            if len(plan_list) != len(streams):
                raise ConfigError(
                    f"plans has {len(plan_list)} entries for {len(streams)} streams",
                    field="plans",
                    expected=len(streams),
                    actual=len(plan_list),
                )

        shard_streams: Dict[Tuple[int, int], TernaryVector] = {}
        shard_configs: Dict[Tuple[int, int], LZWConfig] = {}
        for item_index, (stream, config, plan) in enumerate(
            zip(streams, config_list, plan_list)
        ):
            for shard_index, shard in enumerate(plan.split(stream)):
                shard_streams[(item_index, shard_index)] = shard
                shard_configs[(item_index, shard_index)] = config
    if recording:
        rec.incr(ev.BATCH_WORKLOADS, len(streams))
        rec.incr(ev.BATCH_SHARDS, len(shard_streams))

    journal: Optional[ShardJournal] = None
    results: Dict[Tuple[int, int], object] = {}
    if checkpoint is not None:
        fingerprint = batch_fingerprint(config_list, streams, plan_list)
        journal = ShardJournal.open(checkpoint, fingerprint, resume=resume)
        for key, replayed in journal.completed.items():
            if key in shard_streams:
                results[key] = replayed
                if recording:
                    rec.incr(ev.BATCH_JOURNAL_HITS)

    pending = sorted(key for key in shard_streams if key not in results)

    def _make_args(key: Tuple[int, int], attempt: int) -> _Job:
        return (
            key[0],
            key[1],
            shard_streams[key],
            shard_configs[key],
            recording,
            chaos,
            attempt,
        )

    def _validate(key: Tuple[int, int], result: ShardResult) -> Optional[str]:
        # The one cheap end-to-end check the parent can make without
        # the workload context: the decoded shard must still cover the
        # shard it was cut from.  Catches corrupted-input encodes that
        # are otherwise perfectly well-formed.
        if not result.assigned_stream.covers(shard_streams[key]):
            return (
                f"shard ({key[0]}, {key[1]}) result does not cover its "
                "input stream"
            )
        return None

    def _on_result(key: Tuple[int, int], result: ShardResult) -> None:
        # Fired per accepted shard, so a batch aborted by a later
        # shard's ShardError still leaves its completed work resumable.
        if journal is not None:
            journal.record(key[0], key[1], result)

    try:
        with rec.span("encode"):
            if workers is None:
                workers = os.cpu_count() or 1
            if pending:
                supervised = run_supervised(
                    _encode_shard,
                    pending,
                    _make_args,
                    workers=workers,
                    retry_policy=retry_policy,
                    shard_timeout=shard_timeout,
                    on_failure=on_failure,
                    validate=_validate,
                    recorder=rec,
                    on_result=_on_result,
                )
                for key in pending:
                    results[key] = supervised[key]
    finally:
        if journal is not None:
            journal.close()

    with rec.span("reassemble"):
        # Deterministic reassembly: order by (workload, shard), never by
        # completion.  Worker snapshots merge in the same order, so
        # merged metrics are worker-count- and retry-schedule-
        # independent.
        per_item: List[List[ShardResult]] = [[] for _ in streams]
        per_item_errors: List[List[ShardError]] = [[] for _ in streams]
        for (item_index, shard_index), outcome in sorted(results.items()):
            if isinstance(outcome, ShardError):
                per_item_errors[item_index].append(outcome)
                continue
            per_item[item_index].append(outcome)
            if recording:
                rec.merge_child(outcome.metrics, f"shard[{item_index}.{shard_index}]")

        out = []
        for plan, shards, errors in zip(plan_list, per_item, per_item_errors):
            shard_tuple = tuple(shards)
            if errors:
                out.append(
                    BatchItemResult(plan, shard_tuple, None, tuple(errors))
                )
                continue
            container = dump_segments(
                [s.compressed for s in shard_tuple],
                [s.assigned_stream for s in shard_tuple],
                recorder=rec,
            )
            out.append(BatchItemResult(plan, shard_tuple, container))
    return out
