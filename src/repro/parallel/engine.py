"""Parallel sharded batch-compression engine.

The unit of work is one *shard* — a pattern-aligned slice of one
workload's scan stream — encoded with its own fresh LZW dictionary.
All shards of all workloads in a batch are flattened into one job list
and spread over a :class:`concurrent.futures.ProcessPoolExecutor`;
results are reassembled strictly by ``(workload, shard)`` index, so the
output is a pure function of the inputs and the shard plans.  Worker
count and completion order can never leak into the container bytes —
the determinism contract ``tests/parallel`` locks down.

With ``workers <= 1`` the engine runs inline in the calling process
(no pool, no pickling), which is also the deterministic reference the
parallel paths are compared against.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..bitstream import TernaryVector
from ..container import dump_segments
from ..core.config import LZWConfig
from ..core.decoder import decode
from ..core.encoder import CompressedStream, EncodeStats, LZWEncoder
from ..observability import (
    NULL_RECORDER,
    CompositeRecorder,
    CounterRecorder,
    Recorder,
    SpanRecorder,
)
from ..observability import schema as ev
from .shard import ShardPlan, plan_shards

__all__ = ["ShardResult", "BatchItemResult", "compress_batch"]

#: One pool job: (workload index, shard index, shard stream, config,
#: whether the worker should record a metrics snapshot).
_Job = Tuple[int, int, TernaryVector, LZWConfig, bool]


@dataclass(frozen=True)
class ShardResult:
    """One encoded shard: codes, the implied X assignment and stats.

    ``metrics`` is the worker-local recorder snapshot (counters,
    histograms and encode/assign spans) when the batch ran with a
    recorder attached, else ``None``.  Snapshots travel with the result
    precisely because worker processes cannot share the caller's
    recorder object.
    """

    index: int
    compressed: CompressedStream
    assigned_stream: TernaryVector
    stats: EncodeStats
    metrics: Optional[dict] = None


@dataclass(frozen=True)
class BatchItemResult:
    """Everything produced for one workload of a batch.

    ``container`` is the serialised artefact: a v2 container for a
    single shard, the multi-segment v3 framing otherwise (see
    :mod:`repro.container`).
    """

    plan: ShardPlan
    shards: Tuple[ShardResult, ...]
    container: bytes

    @property
    def num_shards(self) -> int:
        """Number of independently coded segments."""
        return len(self.shards)

    @property
    def original_bits(self) -> int:
        """Uncompressed size of the whole workload in bits."""
        return sum(s.compressed.original_bits for s in self.shards)

    @property
    def compressed_bits(self) -> int:
        """Compressed size over all segments in bits."""
        return sum(s.compressed.compressed_bits for s in self.shards)

    @property
    def num_codes(self) -> int:
        """Total emitted codes over all segments."""
        return sum(s.compressed.num_codes for s in self.shards)

    @property
    def ratio(self) -> float:
        """Compression ratio ``1 - compressed/original`` (may be negative)."""
        if self.original_bits == 0:
            return 0.0
        return 1.0 - self.compressed_bits / self.original_bits

    @property
    def ratio_percent(self) -> float:
        """Ratio as the percentage the paper's tables report."""
        return 100.0 * self.ratio

    @property
    def assigned_stream(self) -> TernaryVector:
        """The fully specified stream the decompressor reproduces."""
        return TernaryVector.concat_all([s.assigned_stream for s in self.shards])

    def verify(self, original: TernaryVector) -> bool:
        """True iff the decoded stream covers every specified bit."""
        return self.assigned_stream.covers(original)


def _encode_shard(job: _Job) -> Tuple[int, int, ShardResult]:
    """Pool worker: encode one shard with a fresh dictionary.

    Module-level (picklable by reference) and pure — the only state is
    the job tuple, so fork, spawn and inline execution agree exactly.
    When recording, the shard gets its own counter+span sinks and ships
    the snapshot back with the result for deterministic merging.
    """
    item_index, shard_index, stream, config, record = job
    rec: Recorder = NULL_RECORDER
    if record:
        rec = CompositeRecorder([CounterRecorder(), SpanRecorder()])
    encoder = LZWEncoder(config, recorder=rec)
    with rec.span("encode"):
        compressed = encoder.encode(stream)
    with rec.span("assign"):
        assigned = decode(compressed, recorder=rec)
    return item_index, shard_index, ShardResult(
        index=shard_index,
        compressed=compressed,
        assigned_stream=assigned,
        stats=encoder.stats(),
        metrics=rec.snapshot() if record else None,
    )


def _broadcast(value, count: int, name: str) -> List:
    """Expand a scalar to ``count`` copies; validate sequence lengths."""
    if value is None or not isinstance(value, (list, tuple)):
        return [value] * count
    if len(value) != count:
        raise ValueError(f"{name} has {len(value)} entries for {count} streams")
    return list(value)


def compress_batch(
    configs: Union[LZWConfig, Sequence[Optional[LZWConfig]], None],
    streams: Sequence[TernaryVector],
    workers: Optional[int] = None,
    shard_bits: int = 0,
    pattern_bits: Union[int, Sequence[int]] = 0,
    plans: Optional[Sequence[ShardPlan]] = None,
    recorder: Optional[Recorder] = None,
) -> List[BatchItemResult]:
    """Compress a batch of scan streams across a worker pool.

    Parameters
    ----------
    configs:
        One :class:`LZWConfig` shared by every stream, a per-stream
        sequence, or ``None`` for the defaults.
    streams:
        The ternary scan streams, one per workload.
    workers:
        Pool size; ``None`` means ``os.cpu_count()`` and ``<= 1`` runs
        inline.  **Never affects the output bytes.**
    shard_bits:
        Target shard size in bits; ``0`` disables intra-stream sharding
        (each workload is one segment).
    pattern_bits:
        Pattern (vector) width per stream — cuts are aligned up to its
        multiples so no vector straddles shards.  Scalar or per-stream.
    plans:
        Explicit per-stream :class:`ShardPlan`\\ s, overriding
        ``shard_bits``/``pattern_bits`` planning.
    recorder:
        Optional :mod:`repro.observability` sink.  The parent records
        ``plan``/``encode``/``reassemble`` spans and ``batch.*``
        counters; each worker records its own shard snapshot which is
        merged back in ``(workload, shard)`` order under a
        ``shard[i.j]`` label — so merged counters are identical for
        every ``workers`` value, and only span timings vary.

    Returns one :class:`BatchItemResult` per input stream, in input
    order.
    """
    rec = recorder if recorder is not None else NULL_RECORDER
    recording = rec.enabled
    streams = list(streams)
    with rec.span("plan"):
        config_list = [
            cfg or LZWConfig() for cfg in _broadcast(configs, len(streams), "configs")
        ]
        pattern_list = _broadcast(pattern_bits, len(streams), "pattern_bits")
        if plans is None:
            plan_list = [
                plan_shards(len(stream), shard_bits, pattern or 0)
                for stream, pattern in zip(streams, pattern_list)
            ]
        else:
            plan_list = list(plans)
            if len(plan_list) != len(streams):
                raise ValueError(
                    f"plans has {len(plan_list)} entries for {len(streams)} streams"
                )

        jobs: List[_Job] = []
        for item_index, (stream, config, plan) in enumerate(
            zip(streams, config_list, plan_list)
        ):
            for shard_index, shard in enumerate(plan.split(stream)):
                jobs.append((item_index, shard_index, shard, config, recording))
    if recording:
        rec.incr(ev.BATCH_WORKLOADS, len(streams))
        rec.incr(ev.BATCH_SHARDS, len(jobs))

    with rec.span("encode"):
        if workers is None:
            workers = os.cpu_count() or 1
        if workers <= 1 or len(jobs) <= 1:
            outcomes = [_encode_shard(job) for job in jobs]
        else:
            pool_size = min(workers, len(jobs))
            # Batch jobs per IPC round trip; chunking changes scheduling
            # granularity only, never the (index-sorted) results.
            chunksize = max(1, len(jobs) // (pool_size * 4))
            with ProcessPoolExecutor(max_workers=pool_size) as pool:
                outcomes = list(pool.map(_encode_shard, jobs, chunksize=chunksize))

    with rec.span("reassemble"):
        # Deterministic reassembly: order by (workload, shard), never by
        # completion.  pool.map already preserves order; sorting makes the
        # invariant explicit and future-proof.  Worker snapshots merge in
        # the same order, so merged metrics are worker-count-independent.
        per_item: List[List[ShardResult]] = [[] for _ in streams]
        for item_index, shard_index, result in sorted(
            outcomes, key=lambda o: (o[0], o[1])
        ):
            per_item[item_index].append(result)
            if recording:
                rec.merge_child(result.metrics, f"shard[{item_index}.{shard_index}]")

        results = []
        for plan, shards in zip(plan_list, per_item):
            shard_tuple = tuple(shards)
            container = dump_segments(
                [s.compressed for s in shard_tuple],
                [s.assigned_stream for s in shard_tuple],
                recorder=rec,
            )
            results.append(BatchItemResult(plan, shard_tuple, container))
    return results
