"""Parallel sharded batch-compression engine.

The unit of work is one *shard* — a pattern-aligned slice of one
workload's scan stream — encoded with its own fresh LZW dictionary.
All shards of all workloads in a batch are flattened into one job list
and driven through the fault-tolerant supervisor
(:mod:`repro.parallel.supervisor`) over a
:class:`~concurrent.futures.ProcessPoolExecutor`; results are
reassembled strictly by ``(workload, shard)`` index, so the output is a
pure function of the inputs and the shard plans.  Worker count,
completion order — and, because ``_encode_shard`` is pure, any
crash/retry/timeout schedule — can never leak into the container bytes:
the determinism contract ``tests/parallel`` and
``tests/reliability/test_chaos.py`` lock down.

The pool is pinned to the ``spawn`` multiprocessing start method on
every platform.  ``fork`` (the historical Linux default) duplicates the
parent's arbitrary state into workers, so fork-started and
spawn-started pools can diverge in behaviour (inherited globals, open
handles, signal dispositions) between Linux and macOS; ``spawn`` starts
every worker from a clean interpreter, makes the picklability of jobs
an enforced invariant, and is also what lets the supervisor respawn a
crashed pool identically.

With ``workers <= 1`` the engine runs inline in the calling process
(no pool, no pickling) with the same retry/timeout/degradation
semantics; the inline path is also the deterministic reference the
parallel paths are compared against.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..bitstream import TernaryVector
from ..container import SEED_BLOB, SEED_CHAIN, SEED_COLD, SegmentSeed, dump_segments
from ..core.config import LZWConfig
from ..core.decoder import decode, derive_final_snapshot
from ..core.dictionary import DictionarySnapshot
from ..core.encoder import CompressedStream, EncodeStats, LZWEncoder
from ..observability import (
    NULL_RECORDER,
    CompositeRecorder,
    CounterRecorder,
    Recorder,
    SpanRecorder,
)
from ..observability import schema as ev
from ..reliability.chaos import ChaosPlan
from ..reliability.errors import ConfigError, ShardError, SnapshotError
from .journal import ShardJournal, batch_fingerprint
from .seeding import COLD_PLAN, SeedPlan, train_preamble
from .shard import ShardPlan, plan_shards
from .supervisor import ON_FAILURE_POLICIES, RetryPolicy, run_supervised

__all__ = ["ShardResult", "BatchItemResult", "compress_batch"]

#: One shard job: (workload index, shard index, shard stream, config,
#: whether the worker should record a metrics snapshot, the chaos plan
#: (None outside fault drills), the 0-based attempt number, the seed
#: snapshot and link code (both None for a cold shard), and whether the
#: worker should ship its final dictionary state back (wave mode).
_Job = Tuple[
    int,
    int,
    TernaryVector,
    LZWConfig,
    bool,
    Optional[ChaosPlan],
    int,
    Optional[DictionarySnapshot],
    Optional[int],
    bool,
]


@dataclass(frozen=True)
class ShardResult:
    """One encoded shard: codes, the implied X assignment and stats.

    ``metrics`` is the worker-local recorder snapshot (counters,
    histograms and encode/assign spans) when the batch ran with a
    recorder attached, else ``None``.  Snapshots travel with the result
    precisely because worker processes cannot share the caller's
    recorder object.

    ``seed_mode``/``seed``/``link`` echo the seeding state the shard
    was encoded under (see :mod:`repro.parallel.seeding`), and
    ``final_state`` carries the encoder's final dictionary snapshot in
    serialized form when the shard feeds a pipelined-wave successor.
    The final state is an optimisation, never an authority: a missing
    or unreadable snapshot is re-derived from the shard's codes.
    """

    index: int
    compressed: CompressedStream
    assigned_stream: TernaryVector
    stats: EncodeStats
    metrics: Optional[dict] = None
    seed_mode: int = SEED_COLD
    seed: Optional[DictionarySnapshot] = None
    link: Optional[int] = None
    final_state: Optional[bytes] = None


@dataclass(frozen=True)
class BatchItemResult:
    """Everything produced for one workload of a batch.

    ``container`` is the serialised artefact: a v2 container for a
    single cold shard, the multi-segment v3 framing for cold plans, the
    seeded v4 framing when any shard encoded warm (see
    :mod:`repro.container`).  Under ``on_failure="skip"`` a workload
    with failed shards carries the typed
    :class:`~repro.reliability.errors.ShardError`\\ s in ``errors`` and
    ``container is None`` — there is no such thing as a partially
    trustworthy container.
    """

    plan: ShardPlan
    shards: Tuple[ShardResult, ...]
    container: Optional[bytes]
    errors: Tuple[ShardError, ...] = ()

    @property
    def ok(self) -> bool:
        """True when every planned shard encoded successfully."""
        return not self.errors

    @property
    def num_shards(self) -> int:
        """Number of independently coded segments."""
        return len(self.shards)

    @property
    def original_bits(self) -> int:
        """Uncompressed size of the whole workload in bits."""
        return sum(s.compressed.original_bits for s in self.shards)

    @property
    def compressed_bits(self) -> int:
        """Compressed size over all segments in bits."""
        return sum(s.compressed.compressed_bits for s in self.shards)

    @property
    def num_codes(self) -> int:
        """Total emitted codes over all segments."""
        return sum(s.compressed.num_codes for s in self.shards)

    @property
    def ratio(self) -> float:
        """Compression ratio ``1 - compressed/original`` (may be negative)."""
        if self.original_bits == 0:
            return 0.0
        return 1.0 - self.compressed_bits / self.original_bits

    @property
    def ratio_percent(self) -> float:
        """Ratio as the percentage the paper's tables report."""
        return 100.0 * self.ratio

    @property
    def assigned_stream(self) -> TernaryVector:
        """The fully specified stream the decompressor reproduces."""
        return TernaryVector.concat_all([s.assigned_stream for s in self.shards])

    def verify(self, original: TernaryVector) -> bool:
        """True iff the decoded stream covers every specified bit."""
        return self.ok and self.assigned_stream.covers(original)


def _encode_shard(job: _Job) -> ShardResult:
    """Pool worker: encode one shard with a fresh dictionary.

    Module-level (picklable by reference) and pure — the only state is
    the job tuple, so spawn and inline execution (and any retry of the
    same job) agree exactly.  The chaos plan, when present, is the
    injectable pre-encode hook the fault drills use: it may raise, kill
    or hang the worker, or corrupt the input stream before encoding.
    When recording, the shard gets its own counter+span sinks and ships
    the snapshot back with the result for deterministic merging.
    """
    (
        item_index,
        shard_index,
        stream,
        config,
        record,
        chaos,
        attempt,
        seed,
        link,
        want_final,
    ) = job
    if chaos is not None:
        stream = chaos.apply(item_index, shard_index, attempt, stream)
    rec: Recorder = NULL_RECORDER
    if record:
        rec = CompositeRecorder([CounterRecorder(), SpanRecorder()])
    encoder = LZWEncoder(config, recorder=rec, seed=seed, link=link)
    with rec.span("encode"):
        compressed = encoder.encode(stream)
    with rec.span("assign"):
        assigned = decode(compressed, recorder=rec, seed=seed, link=link)
    if link is not None:
        seed_mode = SEED_CHAIN
    elif seed is not None:
        seed_mode = SEED_BLOB
    else:
        seed_mode = SEED_COLD
    final_state = None
    if want_final:
        final_state = encoder.dictionary.snapshot().to_bytes()
    return ShardResult(
        index=shard_index,
        compressed=compressed,
        assigned_stream=assigned,
        stats=encoder.stats(),
        metrics=rec.snapshot() if record else None,
        seed_mode=seed_mode,
        seed=seed,
        link=link,
        final_state=final_state,
    )


def _broadcast(value, count: int, name: str) -> List:
    """Expand a scalar to ``count`` copies; validate sequence lengths."""
    if value is None or not isinstance(value, (list, tuple)):
        return [value] * count
    if len(value) != count:
        raise ConfigError(
            f"{name} has {len(value)} entries for {count} streams",
            field=name,
            expected=count,
            actual=len(value),
        )
    return list(value)


def compress_batch(
    configs: Union[LZWConfig, Sequence[Optional[LZWConfig]], None],
    streams: Sequence[TernaryVector],
    workers: Optional[int] = None,
    shard_bits: int = 0,
    pattern_bits: Union[int, Sequence[int]] = 0,
    plans: Optional[Sequence[ShardPlan]] = None,
    recorder: Optional[Recorder] = None,
    retry_policy: Optional[RetryPolicy] = None,
    shard_timeout: Optional[float] = None,
    on_failure: str = "fail",
    checkpoint: Optional[Union[str, "os.PathLike"]] = None,
    resume: bool = False,
    chaos: Optional[ChaosPlan] = None,
    seed_plan: Union[SeedPlan, str, None] = None,
) -> List[BatchItemResult]:
    """Compress a batch of scan streams across a supervised worker pool.

    Parameters
    ----------
    configs:
        One :class:`LZWConfig` shared by every stream, a per-stream
        sequence, or ``None`` for the defaults.
    streams:
        The ternary scan streams, one per workload.  An empty sequence
        returns an empty result list; a zero-length stream yields one
        (empty-segment) container.
    workers:
        Pool size; ``None`` means ``os.cpu_count()`` and ``<= 1`` runs
        inline.  **Never affects the output bytes.**
    shard_bits:
        Target shard size in bits; ``0`` disables intra-stream sharding
        (each workload is one segment).
    pattern_bits:
        Pattern (vector) width per stream — cuts are aligned up to its
        multiples so no vector straddles shards.  Scalar or per-stream.
    plans:
        Explicit per-stream :class:`ShardPlan`\\ s, overriding
        ``shard_bits``/``pattern_bits`` planning.
    recorder:
        Optional :mod:`repro.observability` sink.  The parent records
        ``plan``/``encode``/``reassemble`` spans, the ``batch.*``
        planning and supervision counters, and ``retry`` spans; each
        worker records its own shard snapshot which is merged back in
        ``(workload, shard)`` order under a ``shard[i.j]`` label — so
        merged counters are identical for every ``workers`` value, and
        only span timings vary.
    retry_policy:
        :class:`~repro.parallel.supervisor.RetryPolicy` for failed shard
        attempts (default: 3 attempts, deterministic seeded backoff).
    shard_timeout:
        Seconds one shard attempt may run before it is declared hung
        (``None`` disables timeouts).
    on_failure:
        What to do with a shard that exhausts its retries: ``"fail"``
        raises :class:`~repro.reliability.errors.ShardError`,
        ``"degrade"`` re-runs it inline (serial fallback), ``"skip"``
        records the error in the workload's
        :attr:`BatchItemResult.errors` and continues.
    checkpoint:
        Path of a shard-completion journal.  Completed shards are
        appended as they finish; with ``resume=True`` an existing
        journal for the *same* batch (validated by fingerprint and
        per-entry CRC) is replayed so a killed run restarts from its
        completed shards — with bytes identical to an uninterrupted run.
    chaos:
        A :class:`~repro.reliability.chaos.ChaosPlan` for fault drills;
        ``None`` (always, outside the chaos harness) runs clean.
    seed_plan:
        A :class:`~repro.parallel.seeding.SeedPlan` (or its mode name)
        choosing how shards warm their dictionaries: ``"cold"`` (the
        default), ``"preamble"`` (each workload trains a snapshot on a
        stream prefix and seeds every shard from it) or ``"wave"``
        (shard *i* seeds from shard *i-1*'s final state; same-numbered
        shards of different workloads run concurrently).  Warm plans
        emit v4 containers; cold plans keep v2/v3 bit-for-bit.  Like
        ``workers``, the *execution schedule* never affects the bytes —
        but the seed plan itself does, which is why it is part of the
        batch fingerprint.

    Returns one :class:`BatchItemResult` per input stream, in input
    order.
    """
    # Validate the supervision knobs up front (not lazily in
    # run_supervised) so an empty batch with a bogus policy still fails
    # with the typed error instead of silently succeeding.
    if on_failure not in ON_FAILURE_POLICIES:
        raise ConfigError(
            f"on_failure must be one of {', '.join(ON_FAILURE_POLICIES)}",
            field="on_failure",
            value=on_failure,
        )
    if shard_timeout is not None and shard_timeout <= 0:
        raise ConfigError(
            "shard_timeout must be positive",
            field="shard_timeout",
            value=shard_timeout,
        )
    if resume and checkpoint is None:
        raise ConfigError(
            "resume=True needs a checkpoint path", field="resume"
        )
    if seed_plan is None:
        seed_plan = COLD_PLAN
    elif isinstance(seed_plan, str):
        seed_plan = SeedPlan(mode=seed_plan)
    rec = recorder if recorder is not None else NULL_RECORDER
    recording = rec.enabled
    streams = list(streams)
    with rec.span("plan"):
        config_list = [
            cfg or LZWConfig() for cfg in _broadcast(configs, len(streams), "configs")
        ]
        pattern_list = _broadcast(pattern_bits, len(streams), "pattern_bits")
        if plans is None:
            plan_list = [
                plan_shards(len(stream), shard_bits, pattern or 0)
                for stream, pattern in zip(streams, pattern_list)
            ]
        else:
            plan_list = list(plans)
            if len(plan_list) != len(streams):
                raise ConfigError(
                    f"plans has {len(plan_list)} entries for {len(streams)} streams",
                    field="plans",
                    expected=len(streams),
                    actual=len(plan_list),
                )

        shard_streams: Dict[Tuple[int, int], TernaryVector] = {}
        shard_configs: Dict[Tuple[int, int], LZWConfig] = {}
        for item_index, (stream, config, plan) in enumerate(
            zip(streams, config_list, plan_list)
        ):
            for shard_index, shard in enumerate(plan.split(stream)):
                shard_streams[(item_index, shard_index)] = shard
                shard_configs[(item_index, shard_index)] = config
    if recording:
        rec.incr(ev.BATCH_WORKLOADS, len(streams))
        rec.incr(ev.BATCH_SHARDS, len(shard_streams))

    journal: Optional[ShardJournal] = None
    results: Dict[Tuple[int, int], object] = {}
    if checkpoint is not None:
        fingerprint = batch_fingerprint(config_list, streams, plan_list, seed_plan)
        journal = ShardJournal.open(checkpoint, fingerprint, resume=resume)
        for key, replayed in journal.completed.items():
            if key in shard_streams:
                results[key] = replayed
                if recording:
                    rec.incr(ev.BATCH_JOURNAL_HITS)

    pending = sorted(key for key in shard_streams if key not in results)

    # Per-shard seeding state: key -> (mode, snapshot, link).  Absent
    # keys are cold.  Preamble snapshots are trained serially here in
    # the parent (one prefix encode per multi-shard workload with
    # pending shards); wave seeds are resolved round by round below.
    shard_seeds: Dict[Tuple[int, int], Tuple[int, object, Optional[int]]] = {}
    if seed_plan.mode == "preamble":
        pending_items = {key[0] for key in pending}
        with rec.span("train"):
            for item_index, (stream, config, plan) in enumerate(
                zip(streams, config_list, plan_list)
            ):
                if plan.num_shards <= 1:
                    continue
                bits = seed_plan.resolve_preamble_bits(plan)
                if bits <= 0:
                    continue
                if item_index not in pending_items:
                    # Every shard replayed from the journal: the dump
                    # below rebuilds seeds from the replayed results,
                    # no need to re-train.
                    continue
                train_rec: Recorder = NULL_RECORDER
                if recording:
                    train_rec = CompositeRecorder([CounterRecorder(), SpanRecorder()])
                snapshot = train_preamble(stream, config, bits, recorder=train_rec)
                if recording:
                    rec.merge_child(train_rec.snapshot(), f"preamble[{item_index}]")
                if snapshot is None:
                    continue
                for shard_index in range(plan.num_shards):
                    shard_seeds[(item_index, shard_index)] = (SEED_BLOB, snapshot, None)
        if recording and shard_seeds:
            rec.incr(ev.BATCH_SEEDED_SHARDS, len(shard_seeds))

    want_final = {
        key: seed_plan.mode == "wave"
        and key[1] < plan_list[key[0]].num_shards - 1
        for key in shard_streams
    }

    def _make_args(key: Tuple[int, int], attempt: int) -> _Job:
        mode, snapshot, link = shard_seeds.get(key, (SEED_COLD, None, None))
        return (
            key[0],
            key[1],
            shard_streams[key],
            shard_configs[key],
            recording,
            chaos,
            attempt,
            snapshot,
            link,
            want_final[key],
        )

    def _validate(key: Tuple[int, int], result: ShardResult) -> Optional[str]:
        # The one cheap end-to-end check the parent can make without
        # the workload context: the decoded shard must still cover the
        # shard it was cut from.  Catches corrupted-input encodes that
        # are otherwise perfectly well-formed.
        if not result.assigned_stream.covers(shard_streams[key]):
            return (
                f"shard ({key[0]}, {key[1]}) result does not cover its "
                "input stream"
            )
        return None

    def _on_result(key: Tuple[int, int], result: ShardResult) -> None:
        # Fired per accepted shard, so a batch aborted by a later
        # shard's ShardError still leaves its completed work resumable.
        if journal is not None:
            journal.record(key[0], key[1], result)

    def _chain_state(prev: ShardResult, config: LZWConfig):
        # Prefer the final-state snapshot the worker shipped; fall back
        # to re-deriving it from the predecessor's codes (journal entry
        # from a degraded run, unreadable snapshot) so a lost seed costs
        # one replay, never the wave.
        if prev.final_state is not None:
            try:
                return DictionarySnapshot.from_bytes(prev.final_state)
            except SnapshotError:
                pass
        if recording:
            rec.incr(ev.BATCH_SEED_REDERIVATIONS)
        return derive_final_snapshot(
            prev.compressed.codes, config, seed=prev.seed, link=prev.link
        )

    try:
        with rec.span("encode"):
            if workers is None:
                workers = os.cpu_count() or 1
            if seed_plan.mode == "wave":
                # Pipelined rounds: round r encodes shard r of every
                # workload concurrently, seeded from round r-1's final
                # states.  Parallelism comes from the workload axis.
                max_shards = max((plan.num_shards for plan in plan_list), default=0)
                rounds = [
                    [key for key in pending if key[1] == index]
                    for index in range(max_shards)
                ]
            else:
                rounds = [pending]
            for round_keys in rounds:
                runnable = []
                for key in round_keys:
                    item_index, shard_index = key
                    if seed_plan.mode == "wave" and shard_index > 0:
                        prev = results[(item_index, shard_index - 1)]
                        if isinstance(prev, ShardError):
                            # Without the predecessor's final state the
                            # shard cannot be encoded equivalently; under
                            # "skip" the whole chain tail is abandoned.
                            results[key] = ShardError(
                                f"shard ({item_index}, {shard_index}) depends "
                                "on a failed predecessor shard",
                                workload=item_index,
                                shard=shard_index,
                                kind="dependency",
                            )
                            if recording:
                                rec.incr(ev.BATCH_SKIPPED_SHARDS)
                            continue
                        codes = prev.compressed.codes
                        shard_seeds[key] = (
                            SEED_CHAIN,
                            _chain_state(prev, shard_configs[key]),
                            codes[-1] if codes else prev.link,
                        )
                        if recording:
                            rec.incr(ev.BATCH_SEEDED_SHARDS)
                    runnable.append(key)
                if runnable:
                    supervised = run_supervised(
                        _encode_shard,
                        runnable,
                        _make_args,
                        workers=workers,
                        retry_policy=retry_policy,
                        shard_timeout=shard_timeout,
                        on_failure=on_failure,
                        validate=_validate,
                        recorder=rec,
                        on_result=_on_result,
                    )
                    for key in runnable:
                        results[key] = supervised[key]
    finally:
        if journal is not None:
            journal.close()

    with rec.span("reassemble"):
        # Deterministic reassembly: order by (workload, shard), never by
        # completion.  Worker snapshots merge in the same order, so
        # merged metrics are worker-count- and retry-schedule-
        # independent.
        per_item: List[List[ShardResult]] = [[] for _ in streams]
        per_item_errors: List[List[ShardError]] = [[] for _ in streams]
        for (item_index, shard_index), outcome in sorted(results.items()):
            if isinstance(outcome, ShardError):
                per_item_errors[item_index].append(outcome)
                continue
            per_item[item_index].append(outcome)
            if recording:
                rec.merge_child(outcome.metrics, f"shard[{item_index}.{shard_index}]")

        out = []
        for plan, shards, errors in zip(plan_list, per_item, per_item_errors):
            shard_tuple = tuple(shards)
            if errors:
                out.append(
                    BatchItemResult(plan, shard_tuple, None, tuple(errors))
                )
                continue
            seeds = None
            if any(s.seed_mode != SEED_COLD for s in shard_tuple):
                seeds = [
                    SegmentSeed(s.seed_mode, s.seed, s.link) for s in shard_tuple
                ]
            container = dump_segments(
                [s.compressed for s in shard_tuple],
                [s.assigned_stream for s in shard_tuple],
                recorder=rec,
                seeds=seeds,
            )
            out.append(BatchItemResult(plan, shard_tuple, container))
    return out
