"""Common interface for every compressor compared in the paper's Table 1.

Each scheme takes the same ternary scan stream, is free to assign the X
bits however suits it, and reports its compressed size in bits.  The
uniform :class:`BaselineResult` lets the experiment harness rank schemes
and lets the tests enforce the shared correctness invariant: the decoded
stream must cover the original cubes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..bitstream import TernaryVector
from ..core.metrics import compression_percent, compression_ratio

__all__ = ["BaselineResult", "Compressor"]


@dataclass(frozen=True)
class BaselineResult:
    """Outcome of one compression run by any scheme.

    ``assigned_stream`` is the fully specified stream the decompressor
    reproduces (original cubes with X resolved); ``extra`` carries
    scheme-specific diagnostics (chosen Golomb ``m``, token counts...).
    """

    scheme: str
    original_bits: int
    compressed_bits: int
    assigned_stream: TernaryVector
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def ratio(self) -> float:
        """Compression ratio ``1 - compressed/original``.

        Delegates to :func:`repro.core.metrics.compression_ratio`.
        """
        return compression_ratio(self.original_bits, self.compressed_bits)

    @property
    def ratio_percent(self) -> float:
        """Ratio in percent, the unit of the paper's tables."""
        return compression_percent(self.original_bits, self.compressed_bits)

    def verify(self, original: TernaryVector) -> bool:
        """True iff the reproduced stream preserves every specified bit."""
        return self.assigned_stream.covers(original)


class Compressor(abc.ABC):
    """A test-data compression scheme operating on ternary scan streams."""

    #: Short name used in tables ("LZW", "LZ77", "RLE"...).
    name: str = "?"

    @abc.abstractmethod
    def compress(self, stream: TernaryVector) -> BaselineResult:
        """Compress ``stream``, choosing X assignments to suit the scheme."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} ({self.name})>"


def make_result(
    compressor: Compressor,
    original: TernaryVector,
    compressed_bits: int,
    assigned: TernaryVector,
    extra: Optional[Dict[str, object]] = None,
) -> BaselineResult:
    """Convenience constructor enforcing the common bookkeeping."""
    return BaselineResult(
        scheme=compressor.name,
        original_bits=len(original),
        compressed_bits=compressed_bits,
        assigned_stream=assigned,
        extra=extra or {},
    )
